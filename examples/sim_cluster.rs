//! Quickstart: a 4-replica simulated PoE cluster under both SUPPORT
//! modes, with a primary-crash run to show the view change and rollback
//! machinery, printing simulated throughput.
//!
//! ```sh
//! cargo run --release --example sim_cluster
//! ```

use proof_of_execution::consensus::SupportMode;
use proof_of_execution::kernel::ids::{NodeId, ReplicaId};
use proof_of_execution::kernel::time::{Duration, Time};
use proof_of_execution::sim::{build_poe_cluster, Fault, PoeClusterConfig};

fn report(label: &str, cfg: &PoeClusterConfig, crash_primary_at: Option<Duration>) {
    let mut sim = build_poe_cluster(cfg);
    if let Some(at) = crash_primary_at {
        sim.schedule_fault(Time(at.as_nanos()), Fault::Crash(NodeId::Replica(ReplicaId(0))));
    }
    let target = cfg.total_requests();
    let ok = sim.run_until_completed(target, Time(Duration::from_secs(300).as_nanos()));
    assert!(ok, "{label}: only {}/{} requests completed", sim.completed_requests(), target);
    sim.run_for(Duration::from_secs(1));

    let done = sim.completed_requests();
    let virt = sim.now().as_secs_f64();
    let stats = sim.stats();
    println!(
        "{label:<18} {done:>5} requests in {virt:>7.3}s simulated  →  {:>9.0} req/s \
         (msgs={}, view-changes={}, rollbacks={})",
        done as f64 / virt,
        stats.delivered,
        stats.view_changes,
        stats.rollbacks,
    );
    // Convergence audit: every live replica agrees on state and ledger.
    let mut reference = None;
    for i in 0..sim.n_replicas() {
        if sim.is_crashed(NodeId::Replica(ReplicaId(i as u32))) {
            continue;
        }
        let r = sim.replica(i);
        let tuple = (r.state_digest(), r.ledger_digest(), r.execution_frontier());
        match &reference {
            None => reference = Some(tuple),
            Some(expect) => assert_eq!(*expect, tuple, "replica {i} diverged"),
        }
    }
}

fn main() {
    println!("PoE simulated cluster: n=4, f=1, 1000 requests, batch 20, 1 ms links\n");
    report("threshold (TS)", &PoeClusterConfig::new(4, SupportMode::Threshold), None);
    report("MAC (Appendix A)", &PoeClusterConfig::new(4, SupportMode::Mac), None);

    let mut crashy = PoeClusterConfig::new(4, SupportMode::Threshold);
    crashy.n_clients = 2;
    crashy.requests_per_client = 250;
    report("TS + primary kill", &crashy, Some(Duration::from_millis(40)));

    println!("\nall replicas converged; same seed ⇒ byte-identical trace (see poe-sim tests)");
}
