//! Figure-8-shaped data at paper scale: simulated PoE throughput across
//! cluster sizes up to the paper's n = 91 (§IV: f = 30, nf = 61), for
//! both SUPPORT modes, emitted as CSV on stdout.
//!
//! ```sh
//! cargo run --release --example fig8_scale > fig8.csv
//! ```
//!
//! Columns: support mode, cluster size, fault bound, quorum, completed
//! requests, simulated seconds, simulated requests/s, messages
//! delivered, frames encoded, frames decoded. `frames_encoded` vs
//! `frames_decoded` shows the encode-once broadcast at work: every
//! broadcast is encoded one time and the frame is shared across all
//! n − 1 recipients, so the gap widens with n.

use proof_of_execution::kernel::ids::{NodeId, ReplicaId};
use proof_of_execution::kernel::time::{Duration, Time};
use proof_of_execution::prelude::*;

fn run_point(support: SupportMode, n: usize, requests_per_client: u64) {
    let mut cfg = PoeClusterConfig::new(n, support);
    cfg.cluster = cfg.cluster.with_batch_size(20);
    cfg.n_clients = 2;
    cfg.requests_per_client = requests_per_client;
    let target = cfg.total_requests();
    let mut sim = build_poe_cluster(&cfg);
    let ok = sim.run_until_completed(target, Time(Duration::from_secs(300).as_nanos()));
    assert!(ok, "n={n} {support:?}: only {}/{target} completed", sim.completed_requests());
    sim.run_for(Duration::from_secs(1));

    // Convergence audit before reporting numbers.
    let mut reference = None;
    for i in 0..sim.n_replicas() {
        if sim.is_crashed(NodeId::Replica(ReplicaId(i as u32))) {
            continue;
        }
        let r = sim.replica(i);
        let tuple = (r.state_digest(), r.ledger_digest(), r.execution_frontier());
        match &reference {
            None => reference = Some(tuple),
            Some(expect) => assert_eq!(*expect, tuple, "replica {i} diverged"),
        }
    }

    let done = sim.completed_requests();
    let virt = sim.now().as_secs_f64();
    let stats = sim.stats();
    let mode = match support {
        SupportMode::Threshold => "ts",
        SupportMode::Mac => "mac",
    };
    println!(
        "{mode},{n},{f},{nf},{done},{virt:.3},{rps:.0},{delivered},{encodes},{decodes}",
        f = cfg.cluster.f,
        nf = cfg.cluster.nf(),
        rps = done as f64 / virt,
        delivered = stats.delivered,
        encodes = stats.wire_encodes,
        decodes = stats.wire_decodes,
    );
}

fn main() {
    println!(
        "mode,n,f,nf,requests,virtual_secs,req_per_sec,delivered,frames_encoded,frames_decoded"
    );
    for support in [SupportMode::Threshold, SupportMode::Mac] {
        for n in [4usize, 16, 31, 61, 91] {
            run_point(support, n, 100);
        }
    }
}
