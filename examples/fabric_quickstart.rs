//! Quickstart: a 4-replica **wall-clock** PoE cluster — the
//! multi-threaded pipelined fabric runtime (paper §III) — under both
//! SUPPORT modes, printing real throughput and latency percentiles.
//!
//! ```sh
//! cargo run --release --example fabric_quickstart
//! # bounded run (CI smoke):
//! FABRIC_REQUESTS=200 cargo run --release --example fabric_quickstart
//! ```
//!
//! Contrast with `examples/sim_cluster.rs`, which runs the same
//! automaton under the deterministic discrete-event simulator: here the
//! numbers are host wall-clock measurements of 16 stage threads + 4
//! client threads exchanging encode-once shared frames in process.

use proof_of_execution::consensus::SupportMode;
use proof_of_execution::fabric::{run_fabric, FabricConfig, FabricReport};
use std::time::Duration;

fn configured(support: SupportMode) -> FabricConfig {
    let mut cfg = FabricConfig::new(4, support);
    if let Ok(total) = std::env::var("FABRIC_REQUESTS") {
        let total: u64 = total.parse().expect("FABRIC_REQUESTS must be a number");
        // Round up so the run never measures fewer requests than asked.
        cfg.requests_per_client = total.div_ceil(cfg.n_clients as u64).max(1);
    }
    cfg
}

fn report_line(label: &str, r: &FabricReport) {
    println!(
        "{label:<18} {:>6} requests in {:>8.3}s wall  →  {:>9.0} req/s   \
         p50 {:>6} µs  p99 {:>6} µs  max {:>6} µs",
        r.completed_requests,
        r.wall.as_secs_f64(),
        r.throughput_rps(),
        r.latency.p50_us,
        r.latency.p99_us,
        r.latency.max_us,
    );
    let first = &r.replicas[0];
    let retired: u64 = r.replicas.iter().map(|x| x.consensus.retired).sum();
    let pool_hits: u64 = r.replicas.iter().map(|x| x.ingress.pool_hits).sum();
    let cut: u64 = r.replicas.iter().map(|x| x.batching.batches_cut).sum();
    let fell_behind: u64 = r.replicas.iter().map(|x| x.consensus.fell_behind).sum();
    println!(
        "{:<18} ledger {} blocks, history {}, batches cut {cut}, \
         GC-retired {retired}, pool reuse {pool_hits}",
        "",
        first.ledger_len,
        first.history_digest.short_hex(),
    );
    if fell_behind > 0 {
        println!("{:<18} ⚠ {fell_behind} replica(s) fell behind the stable checkpoint", "");
    }
}

fn run(label: &str, support: SupportMode) {
    let cfg = configured(support);
    let report = run_fabric(&cfg, Duration::from_secs(120)).expect("fabric run completes");
    assert!(report.converged(), "{label}: replicas diverged: {:#?}", report.replicas);
    assert_eq!(report.completed_requests, cfg.total_requests());
    report_line(label, &report);
}

fn main() {
    let total = configured(SupportMode::Threshold).total_requests();
    println!(
        "PoE fabric cluster: n=4, f=1, {total} requests, batch 20, \
         4 pipeline stages per replica (in-proc hub)\n"
    );
    run("threshold (TS)", SupportMode::Threshold);
    run("MAC (Appendix A)", SupportMode::Mac);
    println!(
        "\nall replicas joined cleanly with byte-identical history digests; \
         compare against the virtual-time numbers of `sim_cluster`"
    );
}
