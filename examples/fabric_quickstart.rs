//! Quickstart: a 4-replica **wall-clock** PoE cluster — the
//! multi-threaded pipelined fabric runtime (paper §III) — under both
//! SUPPORT modes, printing real throughput and latency percentiles.
//!
//! ```sh
//! cargo run --release --example fabric_quickstart
//! # bounded run (CI smoke):
//! FABRIC_REQUESTS=200 cargo run --release --example fabric_quickstart
//! # open-loop mode: offer a fixed target rate instead of closed-loop
//! # clients, and report the achieved rate + backpressure counters:
//! FABRIC_TARGET_RPS=20000 cargo run --release --example fabric_quickstart
//! # socket substrate: the same cluster over a loopback TCP mesh, with
//! # per-link supervision counters; optionally with per-peer link MACs:
//! FABRIC_TRANSPORT=tcp cargo run --release --example fabric_quickstart
//! FABRIC_TRANSPORT=tcp FABRIC_LINK_AUTH=cmac cargo run --release --example fabric_quickstart
//! ```
//!
//! Contrast with `examples/sim_cluster.rs`, which runs the same
//! automaton under the deterministic discrete-event simulator: here the
//! numbers are host wall-clock measurements of 16 stage threads + 4
//! client threads exchanging encode-once shared frames in process.

use proof_of_execution::consensus::SupportMode;
use proof_of_execution::crypto::CryptoMode;
use proof_of_execution::fabric::{
    run_fabric, run_open_loop, FabricCluster, FabricConfig, FabricReport, LinkReport,
    OpenLoopConfig, TcpTransport,
};
use std::time::Duration;

fn configured(support: SupportMode) -> FabricConfig {
    let mut cfg = FabricConfig::new(4, support);
    if let Ok(total) = std::env::var("FABRIC_REQUESTS") {
        let total: u64 = total.parse().expect("FABRIC_REQUESTS must be a number");
        // Round up so the run never measures fewer requests than asked.
        cfg.requests_per_client = total.div_ceil(cfg.n_clients as u64).max(1);
    }
    cfg
}

fn report_line(label: &str, r: &FabricReport) {
    println!(
        "{label:<18} {:>6} requests in {:>8.3}s wall  →  {:>9.0} req/s   \
         p50 {:>6} µs  p99 {:>6} µs  max {:>6} µs",
        r.completed_requests,
        r.wall.as_secs_f64(),
        r.throughput_rps(),
        r.latency.p50_us,
        r.latency.p99_us,
        r.latency.max_us,
    );
    let first = &r.replicas[0];
    let retired: u64 = r.replicas.iter().map(|x| x.consensus.retired).sum();
    let pool_hits: u64 = r.replicas.iter().map(|x| x.ingress.pool_hits).sum();
    let cut: u64 = r.replicas.iter().map(|x| x.batching.batches_cut).sum();
    let fell_behind: u64 = r.replicas.iter().map(|x| x.consensus.fell_behind).sum();
    println!(
        "{:<18} ledger {} blocks, history {}, batches cut {cut}, \
         GC-retired {retired}, pool reuse {pool_hits}",
        "",
        first.ledger_len,
        first.history_digest.short_hex(),
    );
    if fell_behind > 0 {
        println!("{:<18} ⚠ {fell_behind} replica(s) fell behind the stable checkpoint", "");
    }
    backpressure_line(r);
}

/// Backpressure visibility: what the bounded ingress→batching queue
/// shed, how often batching deferred to a backed-up consensus stage,
/// and the per-stage queue-depth peaks.
fn backpressure_line(r: &FabricReport) {
    let shed: u64 =
        r.replicas.iter().map(|x| x.ingress.shed_full + x.ingress.shed_retransmits).sum();
    let deferrals: u64 = r.replicas.iter().map(|x| x.batching.deferrals).sum();
    let batch_peak = r.replicas.iter().map(|x| x.batching.queue_peak).max().unwrap_or(0);
    let cons_peak = r.replicas.iter().map(|x| x.consensus.queue_peak).max().unwrap_or(0);
    let reply_peak = r.replicas.iter().map(|x| x.egress.queue_peak).max().unwrap_or(0);
    println!(
        "{:<18} shed {shed}, deferrals {deferrals}, queue peaks: \
         batch {batch_peak} / consensus {cons_peak} / reply {reply_peak}",
        "",
    );
}

fn run(label: &str, support: SupportMode) {
    let cfg = configured(support);
    let report = run_fabric(&cfg, Duration::from_secs(120)).expect("fabric run completes");
    assert!(report.converged(), "{label}: replicas diverged: {:#?}", report.replicas);
    assert_eq!(report.completed_requests, cfg.total_requests());
    report_line(label, &report);
}

/// Per-replica link supervision summary (socket substrate only):
/// connection churn, frame/byte volume, send-queue pressure.
fn link_lines(r: &FabricReport) {
    for rep in &r.replicas {
        let t = LinkReport::total(&rep.links);
        println!(
            "{:<18} {} links: connects {} (reconnects {}), out {} frames / {} KiB, \
             in {} frames / {} KiB, send-queue peak {}, shed {}",
            "",
            rep.id,
            t.connects,
            t.reconnects,
            t.frames_out,
            t.bytes_out / 1024,
            t.frames_in,
            t.bytes_in / 1024,
            t.queue_peak,
            t.shed,
        );
    }
}

/// Socket-substrate mode: the identical cluster and workload, but every
/// node on its own TCP hub over a loopback mesh — with optional
/// per-peer link MACs (`FABRIC_LINK_AUTH=hmac|cmac|ed25519`).
fn run_tcp(label: &str, support: SupportMode, link_auth: Option<CryptoMode>) {
    let mut cfg = configured(support);
    if let Some(mode) = link_auth {
        cfg = cfg.with_link_auth(mode);
    }
    let mut transport =
        TcpTransport::loopback(&cfg.cluster, cfg.link_auth).expect("bind loopback mesh");
    let report = FabricCluster::launch_with(&cfg, &mut transport)
        .run_to_completion(Duration::from_secs(120))
        .expect("tcp fabric run completes");
    assert!(report.converged(), "{label}: replicas diverged: {:#?}", report.replicas);
    assert_eq!(report.completed_requests, cfg.total_requests());
    let auth_failures: u64 = report.replicas.iter().map(|x| x.ingress.auth_failures).sum();
    assert_eq!(auth_failures, 0, "{label}: honest frames failed link verification");
    report_line(label, &report);
    link_lines(&report);
}

/// Open-loop mode: multiplexed sessions submit at `target_rps` on a
/// Poisson clock regardless of how the cluster is doing — the way to
/// actually saturate the pipeline (closed-loop offered load collapses
/// with the cluster). See `benches/open_loop.rs` for the full sweep.
fn open_loop(target_rps: f64) {
    let mut cfg = OpenLoopConfig::new(FabricConfig::new(4, SupportMode::Threshold), target_rps);
    cfg.sessions = 16_384;
    cfg.warmup = Duration::from_millis(500);
    cfg.measure = Duration::from_secs(2);
    cfg.abandon_after = Duration::from_secs(1);
    println!(
        "PoE fabric cluster, open loop: n=4, f=1, {} sessions over {} drivers, \
         offering {target_rps:.0} req/s (Poisson)\n",
        cfg.sessions, cfg.drivers
    );
    let r = run_open_loop(&cfg, Duration::from_secs(120)).expect("open-loop run completes");
    assert!(r.converged(), "replicas diverged under open-loop load");
    println!(
        "{:<18} offered {:>9.0} req/s  achieved {:>9.0} req/s  (ratio {:.2})   \
         p50 {:>6} µs  p99 {:>6} µs",
        "open loop (TS)",
        r.target_rps,
        r.achieved_rps,
        r.completion_ratio(),
        r.latency.p50_us,
        r.latency.p99_us,
    );
    if let Some(rpspc) = r.requests_per_sec_per_core() {
        println!(
            "{:<18} {rpspc:.0} req/s/core ({:.2} replica-CPU-seconds, drivers excluded)",
            "",
            r.fabric.replica_cpu_secs()
        );
    }
    let abandoned = r.mux.abandoned;
    if abandoned > 0 {
        println!("{:<18} {abandoned} requests shed by the cluster were abandoned (open loop never retries)", "");
    }
    backpressure_line(&r.fabric);
}

fn main() {
    if let Ok(rate) = std::env::var("FABRIC_TARGET_RPS") {
        let rate: f64 = rate.parse().expect("FABRIC_TARGET_RPS must be a number");
        open_loop(rate);
        return;
    }
    let total = configured(SupportMode::Threshold).total_requests();
    if std::env::var("FABRIC_TRANSPORT").as_deref() == Ok("tcp") {
        let link_auth = match std::env::var("FABRIC_LINK_AUTH").as_deref() {
            Ok("hmac") => Some(CryptoMode::Hmac),
            Ok("cmac") => Some(CryptoMode::Cmac),
            Ok("ed25519") => Some(CryptoMode::Ed25519),
            Ok("none") | Err(_) => None,
            Ok(other) => panic!("unknown FABRIC_LINK_AUTH {other:?}"),
        };
        println!(
            "PoE fabric cluster: n=4, f=1, {total} requests, batch 20, \
             loopback TCP mesh (link auth: {})\n",
            link_auth.map_or("off".into(), |m| format!("{m:?}")),
        );
        run_tcp("threshold (TS)", SupportMode::Threshold, link_auth);
        run_tcp("MAC (Appendix A)", SupportMode::Mac, link_auth);
        println!(
            "\nall replicas joined cleanly with byte-identical history digests \
             over real sockets; unset FABRIC_TRANSPORT for the in-proc baseline"
        );
        return;
    }
    println!(
        "PoE fabric cluster: n=4, f=1, {total} requests, batch 20, \
         4 pipeline stages per replica (in-proc hub)\n"
    );
    run("threshold (TS)", SupportMode::Threshold);
    run("MAC (Appendix A)", SupportMode::Mac);
    println!(
        "\nall replicas joined cleanly with byte-identical history digests; \
         compare against the virtual-time numbers of `sim_cluster`"
    );
}
