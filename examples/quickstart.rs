//! End-to-end smoke of the public API surface: cluster key setup,
//! batched signature verification, batched authenticator checks, the
//! allocation-free codec path, and speculative execution with rollback.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use proof_of_execution::crypto::ed25519::verify_batch;
use proof_of_execution::crypto::provider::{AuthTag, NodeIndex};
use proof_of_execution::crypto::{CertScheme, CryptoMode, KeyMaterial};
use proof_of_execution::kernel::codec::{decode_envelope, encode_msg, ScratchPool};
use proof_of_execution::kernel::ids::{ClientId, NodeId, ReplicaId, SeqNum, View};
use proof_of_execution::kernel::messages::{Envelope, ProtocolMsg};
use proof_of_execution::kernel::request::{Batch, ClientRequest};
use proof_of_execution::kernel::statemachine::StateMachine;
use proof_of_execution::store::{Op, SpeculativeStore, Transaction};

fn main() {
    // --- cluster setup: 4 replicas, 2 clients, threshold nf = 3 -------
    let km = KeyMaterial::generate(4, 2, 3, CryptoMode::Ed25519, CertScheme::MultiSig, 42);
    let primary = km.replica(0);

    // --- batched Ed25519 verification ---------------------------------
    let msgs: Vec<Vec<u8>> = (0..64u8).map(|i| vec![i; 48]).collect();
    let items: Vec<_> = msgs
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let signer = km.replica(i % 4);
            (signer.index(), m.as_slice(), signer.sign(m))
        })
        .collect();
    assert!(primary.verify_batch_from(&items), "honest batch must verify");
    let mut forged = items.clone();
    forged[17].2 = km.replica(0).sign(b"other message");
    assert!(!primary.verify_batch_from(&forged), "forged batch must fail");
    let raw: Vec<_> = msgs
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let signer = km.replica(i % 4);
            let pk = *signer.verifying_key_of(signer.index()).expect("own key");
            (m.as_slice(), pk, signer.sign(m))
        })
        .collect();
    assert!(verify_batch(&raw), "raw ed25519 batch must verify");
    println!("verify_batch: 64/64 signatures OK, forgery detected");

    // --- batched authenticator checks ----------------------------------
    let tags: Vec<(NodeIndex, AuthTag)> = msgs
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let peer = km.replica(1 + i % 3);
            (peer.index(), peer.authenticate(0, m))
        })
        .collect();
    let tag_items: Vec<(NodeIndex, &[u8], &AuthTag)> =
        msgs.iter().zip(&tags).map(|(m, (p, t))| (*p, m.as_slice(), t)).collect();
    assert!(primary.check_batch(&tag_items), "auth-tag batch must check");
    println!("check_batch:  64/64 authenticators OK");

    // --- allocation-free codec path ------------------------------------
    let batch = Batch::new(vec![ClientRequest::new(
        ClientId(0),
        1,
        Transaction::put("k", "v").encode(),
        None,
    )]);
    let msg = ProtocolMsg::PoePropose { view: View(0), seq: SeqNum(1), batch };
    let mut pool = ScratchPool::new();
    let mut wire_len = 0;
    for _ in 0..1000 {
        let body = pool.encode_msg(&msg);
        let auth = primary.authenticate(1, &body);
        pool.recycle(body);
        let env = Envelope { from: NodeId::Replica(ReplicaId(0)), auth, msg: msg.clone() };
        let wire = pool.encode_envelope(&env);
        wire_len = wire.len();
        let decoded = decode_envelope(&wire).expect("roundtrip");
        let rebody = encode_msg(&decoded.msg);
        assert!(km.replica(1).check(0, &rebody, &decoded.auth));
        pool.recycle(wire);
    }
    let (hits, misses) = pool.stats();
    assert!(misses <= 2, "steady state must reuse buffers (misses={misses})");
    println!(
        "codec:        1000 envelope roundtrips of {wire_len} B, pool hits={hits} misses={misses}"
    );

    // --- speculative execution + rollback ------------------------------
    let mut store = SpeculativeStore::with_ycsb_table(1_000, 16);
    let base = store.state_digest();
    for seq in 0..5u64 {
        let b = Batch::new(vec![ClientRequest::new(
            ClientId(1),
            seq,
            Transaction::single(Op::Put { key: b"spec".to_vec(), value: vec![seq as u8] }).encode(),
            None,
        )]);
        store.apply(SeqNum(seq), &b);
    }
    assert_ne!(store.state_digest(), base);
    store.rollback_to(None);
    assert_eq!(store.state_digest(), base, "rollback must restore the pre-speculation state");
    println!("store:        5 speculative batches applied and rolled back, digest restored");

    println!("quickstart OK");
}
