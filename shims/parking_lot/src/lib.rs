//! Offline shim for the subset of `parking_lot` used by this workspace.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly instead of
//! `Result`s. A poisoned std lock (a panic while held) is recovered
//! rather than propagated, matching parking_lot's behaviour of not
//! tracking poison at all.

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock (shim for `parking_lot::Mutex`).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader-writer lock (shim for `parking_lot::RwLock`).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn default_works() {
        let l: RwLock<u32> = RwLock::default();
        assert_eq!(*l.read(), 0);
    }
}
