//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` crate cannot be fetched. This shim provides API-compatible
//! `Rng`, `SeedableRng`, and `rngs::StdRng` implementations backed by
//! xoshiro256++ (Blackman/Vigna), seeded through SplitMix64. Statistical
//! quality is more than adequate for workload generation and network
//! delay sampling; the streams do **not** match upstream `rand`'s
//! `StdRng` (which is ChaCha12), but nothing in this repository depends
//! on upstream's exact streams — only on determinism per seed.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from an `Rng` (shim for the
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision (matches upstream's
    /// `Standard` for f64).
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<u64> for Range<u64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty range");
        uniform_u64(rng, self.start, self.end - 1)
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        uniform_u64(rng, lo, hi)
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "empty range");
        uniform_u64(rng, self.start as u64, (self.end - 1) as u64) as usize
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Uniform draw from the inclusive range [lo, hi] via Lemire's
/// widening-multiply rejection method (no modulo bias).
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    let span = hi.wrapping_sub(lo).wrapping_add(1);
    if span == 0 {
        // Full u64 range.
        return rng.next_u64();
    }
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let low = m as u64;
        if low >= span.wrapping_neg() % span {
            return lo + (m >> 64) as u64;
        }
        // Rejected: retry keeps the distribution exactly uniform.
    }
}

/// Slices fillable with random bytes (shim for `rand::Fill`).
pub trait Fill {
    /// Overwrites `self` with random data.
    fn fill_from<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let mut chunks = self.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = rng.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

/// The random-number-generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit source.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic seeding (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ generator (shim stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_inclusive_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            match rng.gen_range(0u64..=3) {
                0 => saw_lo = true,
                3 => saw_hi = true,
                1 | 2 => {}
                _ => panic!("out of range"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn fill_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_range_f64_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&x));
        }
    }
}
