//! Offline, criterion-API-compatible benchmark harness.
//!
//! The build environment cannot fetch crates.io, so this shim implements
//! the slice of the `criterion` API the `poe-bench` crate uses, with a
//! real measurement loop:
//!
//! 1. **Warm-up** — the routine runs for [`Criterion::warmup_ms`] to fill
//!    caches and settle frequency scaling, and to estimate its cost.
//! 2. **Adaptive sampling** — the iteration count per sample is chosen so
//!    one sample lasts ≈ [`Criterion::sample_ms`]; `samples` independent
//!    samples are taken.
//! 3. **Statistics** — per-iteration mean, median, and standard deviation
//!    across samples, in nanoseconds.
//!
//! Results are printed as a table and written as JSON (one file per bench
//! binary) so the repository can commit perf baselines. Output directory:
//! `$POE_BENCH_OUT`, else `<workspace>/bench-results`.
//!
//! Environment knobs: `POE_BENCH_SAMPLES`, `POE_BENCH_SAMPLE_MS`,
//! `POE_BENCH_WARMUP_MS`, `POE_BENCH_FAST=1` (minimal settings for CI
//! smoke runs).

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark (normalizes reported rates).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier, `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Just the parameter (used when the group name already says it all).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// How `iter_batched` amortizes setup (accepted for API compatibility;
/// the shim always re-runs setup per measured batch).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Passed to the benchmark closure; runs the measured loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup()` value each iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like [`Bencher::iter_batched`] but hands the routine `&mut` state.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct Record {
    /// Group name.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Samples actually taken.
    pub samples: u64,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Mean ns per iteration.
    pub mean_ns: f64,
    /// Median ns per iteration.
    pub median_ns: f64,
    /// Standard deviation of per-sample means, ns.
    pub stddev_ns: f64,
    /// Optional throughput annotation.
    pub throughput: Option<Throughput>,
}

impl Record {
    fn json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"group\":{},\"id\":{},\"samples\":{},\"iters_per_sample\":{},\
             \"mean_ns\":{:.1},\"median_ns\":{:.1},\"stddev_ns\":{:.1}",
            json_str(&self.group),
            json_str(&self.id),
            self.samples,
            self.iters_per_sample,
            self.mean_ns,
            self.median_ns,
            self.stddev_ns,
        );
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                let _ = write!(
                    s,
                    ",\"elements\":{n},\"elems_per_sec\":{:.1}",
                    n as f64 * 1e9 / self.mean_ns
                );
            }
            Some(Throughput::Bytes(n)) => {
                let _ = write!(
                    s,
                    ",\"bytes\":{n},\"bytes_per_sec\":{:.1}",
                    n as f64 * 1e9 / self.mean_ns
                );
            }
            None => {}
        }
        s.push('}');
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The benchmark driver (shim for `criterion::Criterion`).
pub struct Criterion {
    records: Vec<Record>,
    filter: Option<String>,
    list_only: bool,
    samples: u64,
    sample_ms: u64,
    warmup_ms: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::from_env()
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Prints a progress line, ignoring a closed stdout (e.g. when the
/// output is piped into `head`) instead of panicking like `println!`.
fn out_line(line: std::fmt::Arguments<'_>) {
    use std::io::Write as _;
    let _ = writeln!(std::io::stdout(), "{line}");
}

impl Criterion {
    /// Builds a driver configured from the environment and CLI arguments.
    pub fn from_env() -> Criterion {
        let fast = std::env::var("POE_BENCH_FAST").map(|v| v == "1").unwrap_or(false);
        let (samples, sample_ms, warmup_ms) = if fast { (3, 2, 2) } else { (15, 20, 50) };
        // cargo passes user args after `--`; a bare positional arg is a
        // substring filter, like real criterion. `--test`/`--list` come
        // from `cargo test --benches`.
        let mut filter = None;
        let mut list_only = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" | "--bench" => {}
                "--list" => list_only = true,
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            records: Vec::new(),
            filter,
            list_only,
            samples: env_u64("POE_BENCH_SAMPLES", samples),
            sample_ms: env_u64("POE_BENCH_SAMPLE_MS", sample_ms),
            warmup_ms: env_u64("POE_BENCH_WARMUP_MS", warmup_ms),
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into(), throughput: None }
    }

    /// Runs a standalone benchmark (group name = bench id).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id.to_string(), id.to_string(), None, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        group: String,
        id: String,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        let full = format!("{group}/{id}");
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        if self.list_only {
            out_line(format_args!("{full}: bench"));
            return;
        }

        // Warm-up + cost estimate: run single iterations until the warmup
        // budget elapses.
        let warmup = Duration::from_millis(self.warmup_ms);
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup || warm_iters == 0 {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_per_iter = start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let target_sample_ns = (self.sample_ms as f64) * 1e6;
        let iters = ((target_sample_ns / est_per_iter).floor() as u64).max(1);

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let n = per_iter_ns.len();
        let mean = per_iter_ns.iter().sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            per_iter_ns[n / 2]
        } else {
            (per_iter_ns[n / 2 - 1] + per_iter_ns[n / 2]) / 2.0
        };
        let var = per_iter_ns.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let record = Record {
            group,
            id,
            samples: self.samples,
            iters_per_sample: iters,
            mean_ns: mean,
            median_ns: median,
            stddev_ns: var.sqrt(),
            throughput,
        };
        out_line(format_args!(
            "{:<56} mean {:>14} median {:>14} ±{:>12}",
            full,
            fmt_ns(record.mean_ns),
            fmt_ns(record.median_ns),
            fmt_ns(record.stddev_ns),
        ));
        self.records.push(record);
    }

    /// All records measured so far (used by tests and custom reporters).
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Prints the summary and writes the JSON report. Called by
    /// [`criterion_main!`] after all groups have run.
    pub fn final_summary(&self) {
        if self.list_only || self.records.is_empty() {
            return;
        }
        let bench_name = std::env::args()
            .next()
            .map(|argv0| {
                let stem = PathBuf::from(argv0)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "bench".to_string());
                // Strip cargo's `-<metadata hash>` suffix.
                match stem.rsplit_once('-') {
                    Some((base, tail))
                        if tail.len() == 16 && tail.bytes().all(|b| b.is_ascii_hexdigit()) =>
                    {
                        base.to_string()
                    }
                    _ => stem,
                }
            })
            .unwrap_or_else(|| "bench".to_string());

        let out_dir = std::env::var("POE_BENCH_OUT").map(PathBuf::from).unwrap_or_else(|_| {
            // The bench binary runs with cwd = package root
            // (crates/bench); the workspace root is two levels up.
            let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".to_string());
            let p = PathBuf::from(manifest);
            p.ancestors().nth(2).unwrap_or(&p).join("bench-results")
        });
        if std::fs::create_dir_all(&out_dir).is_err() {
            eprintln!("criterion-shim: cannot create {}", out_dir.display());
            return;
        }
        let mut json = String::from("{\n");
        let _ = write!(json, "  \"bench\": {},\n  \"results\": [\n", json_str(&bench_name));
        for (i, r) in self.records.iter().enumerate() {
            json.push_str("    ");
            json.push_str(&r.json());
            json.push_str(if i + 1 < self.records.len() { ",\n" } else { "\n" });
        }
        json.push_str("  ]\n}\n");
        let path = out_dir.join(format!("{bench_name}.json"));
        match std::fs::write(&path, json) {
            Ok(()) => out_line(format_args!("wrote {}", path.display())),
            Err(e) => eprintln!("criterion-shim: write {} failed: {e}", path.display()),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A group of related benchmarks sharing a name and throughput setting.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility (the shim sizes samples itself).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (the shim times samples itself).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        let throughput = self.throughput;
        self.c.run_one(self.name.clone(), id.id, throughput, f);
        self
    }

    /// Runs one benchmark with an explicit input reference.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench binary's `main`, as in real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_env();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        std::env::set_var("POE_BENCH_FAST", "1");
        let mut c = Criterion::from_env();
        c.filter = None;
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
        assert_eq!(c.records().len(), 1);
        let r = &c.records()[0];
        assert!(r.mean_ns > 0.0);
        assert!(r.median_ns > 0.0);
        assert_eq!(r.group, "g");
        assert_eq!(r.id, "sum");
    }

    #[test]
    fn iter_batched_excludes_setup() {
        std::env::set_var("POE_BENCH_FAST", "1");
        let mut c = Criterion::from_env();
        c.filter = None;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(c.records().len(), 1);
    }

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn record_json_is_wellformed() {
        let r = Record {
            group: "g".into(),
            id: "x/1".into(),
            samples: 3,
            iters_per_sample: 10,
            mean_ns: 1.5,
            median_ns: 1.4,
            stddev_ns: 0.1,
            throughput: Some(Throughput::Elements(64)),
        };
        let j = r.json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"elements\":64"));
    }
}
