//! Offline shim for the subset of `crossbeam` used by this workspace.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is needed (by
//! the in-process transport). The shim delegates to `std::sync::mpsc`,
//! wrapping the receiver in a mutex so the handle is `Sync` like
//! crossbeam's. Throughput is lower than real crossbeam under heavy
//! multi-producer contention, which is acceptable for a shim; the
//! semantics the transport relies on — unbounded buffering, send failure
//! after the receiver is dropped — are identical.
//!
//! **Semantic restriction vs real crossbeam:** each `Receiver` is a
//! single-consumer handle. It is deliberately *not* `Clone` — a blocked
//! `recv()` holds the internal mutex, so a second consumer sharing the
//! queue would see `try_recv`/`recv_timeout` block behind it instead of
//! returning promptly. The in-proc transport consumes each node's queue
//! from one thread, which is exactly this model; if a future runtime
//! needs shared work-stealing consumers, extend the shim with a
//! condvar-based queue instead of cloning the receiver.

#![forbid(unsafe_code)]

/// Multi-producer channels (shim for `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Errors returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }

    /// Errors returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Timed out with no message.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails iff the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel. `Sync`, but
    /// single-consumer: see the crate-level restriction note.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Receiver<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.inner.lock().unwrap_or_else(|p| p.into_inner())
        }

        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.lock().recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.lock().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.lock().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Drains and returns everything currently queued.
        pub fn try_iter(&self) -> Vec<T> {
            let guard = self.lock();
            let mut out = Vec::new();
            while let Ok(v) = guard.try_recv() {
                out.push(v);
            }
            out
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: Arc::new(Mutex::new(rx)) })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(41u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 41);
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1u8).is_err());
    }

    #[test]
    fn try_recv_empty_then_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..100u32 {
                tx.send(i).unwrap();
            }
        });
        h.join().unwrap();
        let got: Vec<u32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..100).collect::<Vec<u32>>());
    }
}
