//! Multi-process loopback TCP cluster harness: four `poe-node`
//! processes (one replica each) meshed over real sockets via the stdio
//! line protocol, served by the open-loop engine running in *this*
//! process as the client substrate — including one scripted connection
//! kill (`drop-links`) inside the measured window. The run must
//! reconnect, keep serving, and converge to byte-identical
//! `history_digest`s across all four processes.

use poe_consensus::SupportMode;
use poe_fabric::{drive_external, FabricConfig, OpenLoopConfig};
use poe_workload::ArrivalProcess;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

const SEED: u64 = 7;
const N: usize = 4;

struct Node {
    id: u32,
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Node {
    fn spawn(id: u32) -> Node {
        let mut child = Command::new(env!("CARGO_BIN_EXE_poe_node"))
            .env("POE_ID", id.to_string())
            .env("POE_N", N.to_string())
            .env("POE_SEED", SEED.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn poe-node");
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        Node { id, child, stdin, stdout }
    }

    fn send(&mut self, cmd: &str) {
        writeln!(self.stdin, "{cmd}").expect("node stdin");
        self.stdin.flush().expect("node stdin flush");
    }

    /// Reads lines until one starts with `prefix`; returns its tail.
    fn await_line(&mut self, prefix: &str) -> String {
        loop {
            let mut line = String::new();
            let read = self.stdout.read_line(&mut line).expect("node stdout");
            assert!(read > 0, "node {} exited before {prefix:?}", self.id);
            let line = line.trim();
            if let Some(rest) = line.strip_prefix(prefix) {
                return rest.trim().to_string();
            }
        }
    }

    /// Reads everything up to (excluding) the `terminator` line.
    fn read_until(&mut self, terminator: &str) -> String {
        let mut body = String::new();
        loop {
            let mut line = String::new();
            let read = self.stdout.read_line(&mut line).expect("node stdout");
            assert!(read > 0, "node {} exited before {terminator:?}", self.id);
            if line.trim() == terminator {
                return body;
            }
            body.push_str(&line);
        }
    }
}

/// A Prometheus text exposition is well-formed when every sample line
/// is `name{labels} value` with a parseable value, and every series is
/// preceded by `# HELP` / `# TYPE` headers for its family.
fn assert_well_formed_exposition(text: &str) {
    let mut samples = 0;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(meta) = line.strip_prefix('#') {
            let mut parts = meta.split_whitespace();
            let kind = parts.next().unwrap_or("");
            assert!(kind == "HELP" || kind == "TYPE", "unknown comment {line:?}");
            assert!(parts.next().is_some(), "header without a metric name: {line:?}");
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("no value: {line:?}"));
        assert!(value.parse::<f64>().is_ok(), "unparseable value in {line:?}");
        let family = series.split('{').next().unwrap();
        let base = family.strip_suffix("_sum").or_else(|| family.strip_suffix("_count"));
        assert!(
            text.contains(&format!("# TYPE {family} "))
                || base.is_some_and(|b| text.contains(&format!("# TYPE {b} "))),
            "series {series} has no TYPE header"
        );
        samples += 1;
    }
    assert!(samples > 0, "exposition is empty:\n{text}");
}

fn parse_kv(s: &str) -> HashMap<String, String> {
    s.split_whitespace()
        .filter_map(|kv| kv.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

#[test]
fn four_processes_converge_through_a_connection_kill() {
    let mut nodes: Vec<Node> = (0..N as u32).map(Node::spawn).collect();
    let peers: Vec<(u32, SocketAddr)> = nodes
        .iter_mut()
        .map(|n| (n.id, n.await_line("listen").parse().expect("listen addr")))
        .collect();
    let spec = peers.iter().map(|(id, a)| format!("{id}={a}")).collect::<Vec<_>>().join(",");
    for n in &mut nodes {
        n.send(&format!("peers {spec}"));
        n.await_line("ready");
    }

    // Open-loop drive from this process; modest rate, bounded windows.
    let fabric = {
        let mut cfg = FabricConfig::new(N, SupportMode::Threshold);
        cfg.cluster = cfg.cluster.with_seed(SEED);
        cfg
    };
    let mut olc = OpenLoopConfig::new(fabric, 400.0);
    olc.sessions = 64;
    olc.drivers = 1;
    olc.warmup = Duration::from_millis(300);
    olc.measure = Duration::from_millis(1500);
    olc.abandon_after = Duration::from_millis(600);
    olc.process = ArrivalProcess::Fixed;
    olc.seed = SEED;

    // The scripted kill: sever replica 1's links in the middle of the
    // measured window, while the drive thread keeps offering load.
    let drive = std::thread::spawn({
        let olc = olc.clone();
        let peers = peers.clone();
        move || drive_external(&olc, &peers)
    });
    std::thread::sleep(olc.warmup + olc.measure / 2);
    nodes[1].send("drop-links");
    nodes[1].await_line("dropped");
    let report = drive.join().expect("drive thread");
    assert!(
        report.measured_completed > 0,
        "open-loop drive completed nothing over TCP: {report:?}"
    );

    // Live metrics scrape while the cluster is still up: node 0's
    // exposition must be well-formed Prometheus text with the key
    // ingress / queue series reporting real traffic.
    nodes[0].send("metrics");
    let expo = nodes[0].read_until("metrics-end");
    assert_well_formed_exposition(&expo);
    for series in ["poe_ingress_frames_total", "poe_batches_cut_total", "poe_queue_depth"] {
        assert!(expo.contains(series), "missing {series} in exposition:\n{expo}");
    }
    let frames: f64 = expo
        .lines()
        .find(|l| l.starts_with("poe_ingress_frames_total"))
        .and_then(|l| l.rsplit_once(' '))
        .map(|(_, v)| v.parse().expect("frame count"))
        .expect("ingress frames series");
    assert!(frames > 0.0, "node 0 saw no frames: {frames}");

    // Load is off; poll every node's progress until the execution
    // frontiers agree twice in a row (the cross-process quiesce check),
    // then stop them all and collect reports.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut agreed_rounds = 0;
    while agreed_rounds < 2 {
        assert!(Instant::now() < deadline, "frontiers never agreed across processes");
        std::thread::sleep(Duration::from_millis(100));
        let execs: Vec<String> = nodes
            .iter_mut()
            .map(|n| {
                n.send("progress");
                let kv = parse_kv(&n.await_line("progress"));
                format!("{}/{}", kv["exec"], kv["commit"])
            })
            .collect();
        agreed_rounds = if execs.iter().all(|e| *e == execs[0]) { agreed_rounds + 1 } else { 0 };
    }
    // The killed node's flight recorder must have seen the protocol
    // flow and the link supervision cycle (down → redial → reconnect).
    // Node 1 is a view-0 backup, so it executes but never cuts batches.
    nodes[1].send("dump-trace");
    let trace = nodes[1].read_until("trace-end");
    assert!(trace.contains("executed"), "no execution activity in trace:\n{trace}");
    assert!(trace.contains("reconnect=true"), "no reconnect recorded:\n{trace}");

    for n in &mut nodes {
        n.send("stop");
    }

    let mut digests = Vec::new();
    let mut reconnects_node1 = 0u64;
    for n in &mut nodes {
        let report = parse_kv(&n.await_line("report"));
        assert!(report["ledger"].parse::<u64>().unwrap() > 0, "node committed nothing");
        assert_eq!(report["auth_failures"], "0");
        digests.push(report["history"].clone());
        loop {
            let mut line = String::new();
            assert!(n.stdout.read_line(&mut line).expect("node stdout") > 0);
            let line = line.trim();
            if line == "bye" {
                break;
            }
            if n.id == 1 {
                if let Some(rest) = line.strip_prefix("link ") {
                    let kv = parse_kv(rest);
                    if kv["peer"].starts_with('r') {
                        reconnects_node1 += kv["reconnects"].parse::<u64>().unwrap();
                    }
                }
            }
        }
        let status = n.child.wait().expect("node exit");
        assert!(status.success(), "node {} exited with {status}", n.id);
    }
    assert!(
        digests.iter().all(|d| *d == digests[0]),
        "history digests diverged across processes: {digests:?}"
    );
    assert!(reconnects_node1 >= 1, "drop-links on node 1 must have forced at least one reconnect");
}
