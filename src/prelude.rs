//! One-stop imports for applications built on the PoE stack.

pub use poe_consensus::{support_digest, PoeReplica, SupportMode};
pub use poe_crypto::{CertScheme, CryptoMode, Digest};
pub use poe_fabric::{run_fabric, FabricCluster, FabricConfig, FabricReport};
pub use poe_kernel::{
    Batch, ClientId, ClientRequest, ClusterConfig, Duration, NodeId, ReplicaId, SeqNum, Time, View,
    WireBytes,
};
pub use poe_sim::{build_poe_cluster, DeliveryMode, Fault, PoeClusterConfig, SimStats, Simulator};
