//! # proof-of-execution
//!
//! Facade crate re-exporting the full PoE reproduction: the
//! Proof-of-Execution BFT consensus protocol (EDBT 2021) with its
//! substrates and baselines. See the individual crates for details:
//!
//! * [`poe_crypto`] — from-scratch cryptographic toolbox.
//! * [`poe_kernel`] — consensus kernel (ids, messages, codec, automatons).
//! * [`poe_store`] — speculative key-value store with rollback.
//! * [`poe_ledger`] — hash-chained blockchain ledger.
//! * [`poe_workload`] — YCSB-style workload generation.
//! * [`poe_net`] — simulated and in-process network substrates.
//! * [`poe_consensus`] — the PoE protocol itself.
//! * [`poe_baselines`] — PBFT, Zyzzyva, SBFT, HotStuff.
//! * [`poe_sim`] — deterministic discrete-event cluster simulator.
//! * [`poe_fabric`] — multi-threaded pipelined replica runtime.

#![forbid(unsafe_code)]

pub use poe_baselines as baselines;
pub use poe_consensus as consensus;
pub use poe_crypto as crypto;
pub use poe_fabric as fabric;
pub use poe_kernel as kernel;
pub use poe_ledger as ledger;
pub use poe_net as net;
pub use poe_sim as sim;
pub use poe_store as store;
pub use poe_workload as workload;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude;
