//! `poe-node`: one PoE replica per OS process, meshed over TCP.
//!
//! Cluster shape comes from the environment (every process of one
//! cluster must agree — key material, link MACs, and the handshake
//! cluster id all derive from the shared seed):
//!
//! | var               | meaning                                    | default       |
//! |-------------------|--------------------------------------------|---------------|
//! | `POE_ID`          | replica id (0-based)                       | required      |
//! | `POE_N`           | cluster size                               | `4`           |
//! | `POE_LISTEN`      | listen address                             | `127.0.0.1:0` |
//! | `POE_SUPPORT`     | `ts` (threshold) \| `mac` (vote) SUPPORT   | `ts`          |
//! | `POE_CRYPTO`      | client request signatures: `none`\|`hmac`\|`cmac`\|`ed25519` | `none` |
//! | `POE_LINK_AUTH`   | replica link MACs: `none`\|`hmac`\|`cmac`\|`ed25519` | `none` |
//! | `POE_SEED`        | cluster seed                               | `42`          |
//! | `POE_CLIENT_KEYS` | client key-material population             | `1`           |
//! | `POE_BATCH`       | batch size                                 | `20`          |
//!
//! The process then speaks a line protocol on stdio (a harness drives a
//! whole cluster of these through pipes):
//!
//! ```text
//! -> listen <addr>              printed once the hub is bound
//! <- peers <id>=<addr>,...      mesh with the cluster; replies "ready"
//! <- drop-links                 sever every live link; replies "dropped"
//! <- progress                   replies "progress view=.. exec=.. commit=.. events=.."
//! <- metrics                    Prometheus text exposition, then "metrics-end"
//! <- dump-trace                 flight-recorder timeline, then "trace-end"
//! <- stop                       quiesce locally, join, print the report, exit
//! -> report id=.. view=.. exec=.. ledger=.. history=<hex> state=<hex> auth_failures=..
//! -> link peer=.. connects=.. reconnects=.. frames_out=.. bytes_out=.. frames_in=.. bytes_in=.. queue_peak=.. shed=.. rejected_in=..
//! -> bye
//! ```

use poe_consensus::SupportMode;
use poe_crypto::CryptoMode;
use poe_fabric::{FabricConfig, ReplicaNode};
use poe_kernel::ids::ReplicaId;
use std::io::{BufRead, Write};
use std::net::SocketAddr;
use std::time::Duration;

fn env_or(key: &str, default: &str) -> String {
    std::env::var(key).unwrap_or_else(|_| default.to_string())
}

fn parse_crypto(s: &str) -> CryptoMode {
    match s {
        "none" => CryptoMode::None,
        "hmac" => CryptoMode::Hmac,
        "cmac" => CryptoMode::Cmac,
        "ed25519" => CryptoMode::Ed25519,
        other => panic!("unknown crypto mode {other:?} (none|hmac|cmac|ed25519)"),
    }
}

fn parse_peers(spec: &str) -> Vec<(u32, SocketAddr)> {
    spec.split(',')
        .filter(|s| !s.is_empty())
        .map(|pair| {
            let (id, addr) = pair.split_once('=').expect("peer spec is id=addr");
            (id.parse().expect("peer id"), addr.parse().expect("peer addr"))
        })
        .collect()
}

fn main() {
    let id: u32 = env_or("POE_ID", "").parse().expect("POE_ID is required (replica id)");
    let n: usize = env_or("POE_N", "4").parse().expect("POE_N");
    let listen: SocketAddr = env_or("POE_LISTEN", "127.0.0.1:0").parse().expect("POE_LISTEN");
    let support = match env_or("POE_SUPPORT", "ts").as_str() {
        "ts" => SupportMode::Threshold,
        "mac" => SupportMode::Mac,
        other => panic!("unknown support mode {other:?} (ts|mac)"),
    };
    let crypto = parse_crypto(&env_or("POE_CRYPTO", "none"));
    let link_auth = parse_crypto(&env_or("POE_LINK_AUTH", "none"));
    let seed: u64 = env_or("POE_SEED", "42").parse().expect("POE_SEED");
    let client_keys: usize = env_or("POE_CLIENT_KEYS", "1").parse().expect("POE_CLIENT_KEYS");
    let batch: usize = env_or("POE_BATCH", "20").parse().expect("POE_BATCH");

    let mut cfg = FabricConfig::new(n, support).with_link_auth(link_auth);
    cfg.cluster = cfg.cluster.with_crypto_mode(crypto).with_seed(seed).with_batch_size(batch);
    cfg.n_clients = client_keys;

    let node = ReplicaNode::bind(&cfg, ReplicaId(id), listen).expect("bind replica hub");
    let stdout = std::io::stdout();
    let say = |line: String| {
        let mut out = stdout.lock();
        writeln!(out, "{line}").expect("stdout");
        out.flush().expect("stdout flush");
    };
    say(format!("listen {}", node.local_addr().expect("bound hub has an address")));

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.expect("stdin");
        let cmd = line.trim();
        if let Some(spec) = cmd.strip_prefix("peers ") {
            node.connect(&parse_peers(spec));
            say("ready".to_string());
        } else if cmd == "drop-links" {
            node.drop_links();
            say("dropped".to_string());
        } else if cmd == "progress" {
            let p = node.progress();
            say(format!(
                "progress view={} exec={} commit={} events={}",
                p.view, p.exec, p.commit, p.events
            ));
        } else if cmd == "metrics" {
            // Multi-line reply; the terminator lets a harness (or the
            // CI smoke job) read the whole exposition off the pipe.
            say(format!("{}metrics-end", node.metrics_text()));
        } else if cmd == "dump-trace" {
            say(format!("{}trace-end", node.trace_dump()));
        } else if cmd == "stop" || cmd.is_empty() {
            break;
        } else {
            say(format!("error unknown command {cmd:?}"));
        }
    }

    // Local quiescence: the harness has stopped the load on every node;
    // wait for this replica's own event counter to go flat so in-flight
    // consensus (CERTIFYs, checkpoints, repairs) settles before the
    // digest is reported.
    node.wait_quiesce(Duration::from_millis(400), Duration::from_secs(20));
    let report = node.stop();
    say(format!(
        "report id={} view={} exec={} ledger={} history={} state={} auth_failures={}",
        report.id.0,
        report.view.0,
        report.exec_frontier.0,
        report.ledger_len,
        report.history_digest.to_hex(),
        report.state_digest.to_hex(),
        report.ingress.auth_failures,
    ));
    for l in &report.links {
        say(format!(
            "link peer={} connects={} reconnects={} frames_out={} bytes_out={} frames_in={} \
             bytes_in={} queue_peak={} shed={} rejected_in={}",
            l.peer,
            l.connects,
            l.reconnects,
            l.frames_out,
            l.bytes_out,
            l.frames_in,
            l.bytes_in,
            l.queue_peak,
            l.shed,
            l.rejected_in,
        ));
    }
    say("bye".to_string());
}
