//! Per-node cryptographic facade.
//!
//! [`KeyMaterial`] holds the key setup for an entire cluster (replicas and
//! clients); [`CryptoProvider`] is the per-node view used by protocol code.
//! The [`CryptoMode`] selects between the configurations the paper compares
//! in Figure 8: no authentication, Ed25519 everywhere, or MACs between
//! replicas with Ed25519-signing clients.
//!
//! Node indexing convention: replicas occupy global indices
//! `0..n_replicas`, clients occupy `n_replicas..n_replicas+n_clients`.

use crate::cmac::AesCmac;
use crate::ed25519::{Signature, SigningKey, VerifyingKey};
use crate::hmac::{hmac_sha256, HmacSha256};
use crate::sink::Sink;
use crate::threshold::{
    CertScheme, SignatureShare, ThresholdCert, ThresholdError, ThresholdSigner,
};
use std::sync::Arc;

/// Global node index (replicas first, then clients).
pub type NodeIndex = u32;

/// Replica/client authentication configuration (paper Figure 8).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CryptoMode {
    /// No signatures or MACs at all ("None" in Fig. 8). Unsafe; upper-bound
    /// measurements only.
    None,
    /// Everyone signs everything with Ed25519 ("ED" in Fig. 8).
    Ed25519,
    /// Replicas use HMAC-SHA256 pairwise MACs; clients sign with Ed25519.
    Hmac,
    /// Replicas use AES-CMAC pairwise MACs; clients sign with Ed25519
    /// ("CMAC" in Fig. 8, the paper's recommended configuration).
    #[default]
    Cmac,
}

/// An authenticator attached to a message, produced by
/// [`CryptoProvider::authenticate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AuthTag {
    /// No authentication (CryptoMode::None).
    None,
    /// HMAC-SHA256 tag.
    Hmac([u8; 32]),
    /// AES-CMAC tag.
    Cmac([u8; 16]),
    /// Ed25519 signature.
    Sig(Signature),
}

impl AuthTag {
    /// Serialized size in bytes (for the bandwidth model).
    pub fn encoded_len(&self) -> usize {
        match self {
            AuthTag::None => 1,
            AuthTag::Hmac(_) => 33,
            AuthTag::Cmac(_) => 17,
            AuthTag::Sig(_) => 65,
        }
    }

    /// Manual wire encoding into any [`Sink`].
    pub fn encode<S: Sink>(&self, out: &mut S) {
        match self {
            AuthTag::None => out.put_u8(0),
            AuthTag::Hmac(t) => {
                out.put_u8(1);
                out.put(t);
            }
            AuthTag::Cmac(t) => {
                out.put_u8(2);
                out.put(t);
            }
            AuthTag::Sig(s) => {
                out.put_u8(3);
                out.put(s.as_bytes());
            }
        }
    }

    /// Decodes a tag, returning it and the bytes consumed.
    pub fn decode(buf: &[u8]) -> Option<(AuthTag, usize)> {
        match *buf.first()? {
            0 => Some((AuthTag::None, 1)),
            1 => {
                let raw: [u8; 32] = buf.get(1..33)?.try_into().ok()?;
                Some((AuthTag::Hmac(raw), 33))
            }
            2 => {
                let raw: [u8; 16] = buf.get(1..17)?.try_into().ok()?;
                Some((AuthTag::Cmac(raw), 17))
            }
            3 => {
                let raw: [u8; 64] = buf.get(1..65)?.try_into().ok()?;
                Some((AuthTag::Sig(Signature::from_bytes(raw)), 65))
            }
            _ => None,
        }
    }
}

/// Cluster-wide key material: the trusted-setup output distributed to every
/// node before the system starts (standard assumption in the BFT
/// literature).
pub struct KeyMaterial {
    n_replicas: usize,
    n_clients: usize,
    mode: CryptoMode,
    cert_scheme: CertScheme,
    threshold: usize,
    mac_master: [u8; 32],
    sim_master: [u8; 32],
    signing_keys: Vec<SigningKey>,
    verifying_keys: Vec<VerifyingKey>,
}

impl KeyMaterial {
    /// Generates deterministic key material for a cluster from a seed.
    ///
    /// `threshold` is the number of signature shares needed for a
    /// certificate (the paper's `nf = n - f`).
    pub fn generate(
        n_replicas: usize,
        n_clients: usize,
        threshold: usize,
        mode: CryptoMode,
        cert_scheme: CertScheme,
        seed: u64,
    ) -> Arc<KeyMaterial> {
        let total = n_replicas + n_clients;
        let signing_keys: Vec<SigningKey> = (0..total)
            .map(|i| SigningKey::from_label(format!("poe/seed={seed}/node={i}").as_bytes()))
            .collect();
        let verifying_keys = signing_keys.iter().map(|k| k.verifying_key()).collect();
        let mac_master = hmac_sha256(&seed.to_le_bytes(), b"mac-master");
        let sim_master = hmac_sha256(&seed.to_le_bytes(), b"sim-ts-master");
        Arc::new(KeyMaterial {
            n_replicas,
            n_clients,
            mode,
            cert_scheme,
            threshold,
            mac_master,
            sim_master,
            signing_keys,
            verifying_keys,
        })
    }

    /// Number of replicas in the setup.
    pub fn n_replicas(&self) -> usize {
        self.n_replicas
    }

    /// Number of clients in the setup.
    pub fn n_clients(&self) -> usize {
        self.n_clients
    }

    /// The configured authentication mode.
    pub fn mode(&self) -> CryptoMode {
        self.mode
    }

    /// Provider for replica `i`.
    pub fn replica(self: &Arc<Self>, i: usize) -> CryptoProvider {
        assert!(i < self.n_replicas, "replica index {i} out of range");
        CryptoProvider::new(Arc::clone(self), i as NodeIndex)
    }

    /// Provider for client `c` (0-based client index).
    pub fn client(self: &Arc<Self>, c: usize) -> CryptoProvider {
        assert!(c < self.n_clients, "client index {c} out of range");
        CryptoProvider::new(Arc::clone(self), (self.n_replicas + c) as NodeIndex)
    }

    fn pair_key(&self, a: NodeIndex, b: NodeIndex) -> [u8; 32] {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut label = [0u8; 8];
        label[..4].copy_from_slice(&lo.to_le_bytes());
        label[4..].copy_from_slice(&hi.to_le_bytes());
        hmac_sha256(&self.mac_master, &label)
    }
}

/// The per-node cryptographic interface protocol code talks to.
#[derive(Clone)]
pub struct CryptoProvider {
    material: Arc<KeyMaterial>,
    me: NodeIndex,
    threshold_signer: ThresholdSigner,
}

impl CryptoProvider {
    fn new(material: Arc<KeyMaterial>, me: NodeIndex) -> Self {
        let is_replica = (me as usize) < material.n_replicas;
        let ed_key = is_replica.then(|| material.signing_keys[me as usize].clone());
        let threshold_signer = ThresholdSigner::new(
            material.cert_scheme,
            material.threshold,
            me,
            ed_key,
            material.verifying_keys[..material.n_replicas].to_vec(),
            material.sim_master,
        );
        CryptoProvider { material, me, threshold_signer }
    }

    /// This node's global index.
    pub fn index(&self) -> NodeIndex {
        self.me
    }

    /// The configured mode.
    pub fn mode(&self) -> CryptoMode {
        self.material.mode
    }

    /// The digest function `D(·)`.
    pub fn digest(&self, data: &[u8]) -> crate::digest::Digest {
        crate::digest::Digest::of(data)
    }

    // -- Point-to-point authentication ------------------------------------

    /// Authenticates `msg` for transmission to `peer` under the configured
    /// mode.
    pub fn authenticate(&self, peer: NodeIndex, msg: &[u8]) -> AuthTag {
        match self.material.mode {
            CryptoMode::None => AuthTag::None,
            CryptoMode::Ed25519 => AuthTag::Sig(self.sign(msg)),
            CryptoMode::Hmac => {
                AuthTag::Hmac(HmacSha256::new(&self.material.pair_key(self.me, peer)).tag(msg))
            }
            CryptoMode::Cmac => {
                let key = self.material.pair_key(self.me, peer);
                let k16: [u8; 16] = key[..16].try_into().expect("split");
                AuthTag::Cmac(AesCmac::new(&k16).tag(msg))
            }
        }
    }

    /// Checks a whole batch of received authenticators in one pass.
    ///
    /// Each item is `(peer, msg, tag)` as it would be passed to
    /// [`CryptoProvider::check`]; the result is `true` iff every item
    /// checks out. The win over calling `check` in a loop depends on the
    /// mode:
    ///
    /// * `Ed25519` — signatures are handed to
    ///   [`crate::ed25519::verify_batch`], amortizing the doubling chain
    ///   across the batch (>2× at batch size 64).
    /// * `Hmac` / `Cmac` — the pairwise session key **and** the MAC key
    ///   schedule (HMAC ipad/opad block states, AES round keys + CMAC
    ///   subkeys) are derived once per distinct peer instead of once per
    ///   message, then all tags are checked in one vectorized pass.
    /// * `None` — every tag must be [`AuthTag::None`].
    ///
    /// Replicas use this on the PREPREPARE/certificate firehose where
    /// consecutive messages overwhelmingly share a small peer set.
    pub fn check_batch(&self, items: &[(NodeIndex, &[u8], &AuthTag)]) -> bool {
        match self.material.mode {
            CryptoMode::None => items.iter().all(|(_, _, tag)| matches!(tag, AuthTag::None)),
            CryptoMode::Ed25519 => {
                let mut sigs = Vec::with_capacity(items.len());
                for (peer, msg, tag) in items {
                    match tag {
                        AuthTag::Sig(sig) => sigs.push((*peer, *msg, *sig)),
                        _ => return false,
                    }
                }
                self.verify_batch_from(&sigs)
            }
            CryptoMode::Hmac => {
                let mut macs: std::collections::HashMap<NodeIndex, HmacSha256> =
                    std::collections::HashMap::new();
                items.iter().all(|(peer, msg, tag)| match tag {
                    AuthTag::Hmac(t) => macs
                        .entry(*peer)
                        .or_insert_with(|| HmacSha256::new(&self.material.pair_key(self.me, *peer)))
                        .verify(msg, t),
                    _ => false,
                })
            }
            CryptoMode::Cmac => {
                let mut macs: std::collections::HashMap<NodeIndex, AesCmac> =
                    std::collections::HashMap::new();
                items.iter().all(|(peer, msg, tag)| match tag {
                    AuthTag::Cmac(t) => macs
                        .entry(*peer)
                        .or_insert_with(|| {
                            let key = self.material.pair_key(self.me, *peer);
                            let k16: [u8; 16] = key[..16].try_into().expect("split");
                            AesCmac::new(&k16)
                        })
                        .verify(msg, t),
                    _ => false,
                })
            }
        }
    }

    /// Checks an authenticator on `msg` received from `peer`.
    pub fn check(&self, peer: NodeIndex, msg: &[u8], tag: &AuthTag) -> bool {
        match (tag, self.material.mode) {
            (AuthTag::None, CryptoMode::None) => true,
            (AuthTag::Sig(sig), CryptoMode::Ed25519) => self.verify_from(peer, msg, sig),
            (AuthTag::Hmac(t), CryptoMode::Hmac) => {
                HmacSha256::new(&self.material.pair_key(self.me, peer)).verify(msg, t)
            }
            (AuthTag::Cmac(t), CryptoMode::Cmac) => {
                let key = self.material.pair_key(self.me, peer);
                let k16: [u8; 16] = key[..16].try_into().expect("split");
                AesCmac::new(&k16).verify(msg, t)
            }
            _ => false,
        }
    }

    // -- Digital signatures (always available: clients sign requests) -----

    /// Signs `msg` with this node's Ed25519 key.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        self.material.signing_keys[self.me as usize].sign(msg)
    }

    /// Verifies a signature allegedly from node `from`.
    pub fn verify_from(&self, from: NodeIndex, msg: &[u8], sig: &Signature) -> bool {
        self.material.verifying_keys.get(from as usize).is_some_and(|pk| pk.verify(msg, sig))
    }

    /// Verifies a batch of `(from, msg, signature)` triples in one shot
    /// via [`crate::ed25519::verify_batch`].
    ///
    /// `true` iff *every* triple verifies (and every `from` index is
    /// known). Callers that need to identify the offending message after
    /// a `false` fall back to per-item [`CryptoProvider::verify_from`] —
    /// the common case (all honest) never pays the serial cost.
    pub fn verify_batch_from(&self, items: &[(NodeIndex, &[u8], Signature)]) -> bool {
        let mut batch = Vec::with_capacity(items.len());
        for (from, msg, sig) in items {
            match self.material.verifying_keys.get(*from as usize) {
                Some(pk) => batch.push((*msg, *pk, *sig)),
                None => return false,
            }
        }
        crate::ed25519::verify_batch(&batch)
    }

    /// The verifying key of node `i` (e.g. for genesis-block construction).
    pub fn verifying_key_of(&self, i: NodeIndex) -> Option<&VerifyingKey> {
        self.material.verifying_keys.get(i as usize)
    }

    // -- Threshold certificates --------------------------------------------

    /// Produces this replica's signature share over `msg`.
    pub fn ts_share(&self, msg: &[u8]) -> SignatureShare {
        self.threshold_signer.share(msg)
    }

    /// Verifies a single signature share.
    pub fn ts_verify_share(&self, msg: &[u8], share: &SignatureShare) -> bool {
        self.threshold_signer.verify_share(msg, share)
    }

    /// Aggregates shares into a certificate.
    pub fn ts_aggregate(
        &self,
        msg: &[u8],
        shares: &[SignatureShare],
    ) -> Result<ThresholdCert, ThresholdError> {
        self.threshold_signer.aggregate(msg, shares)
    }

    /// Verifies an aggregated certificate.
    pub fn ts_verify_cert(&self, msg: &[u8], cert: &ThresholdCert) -> bool {
        self.threshold_signer.verify_cert(msg, cert)
    }

    /// Number of shares a certificate requires.
    pub fn ts_threshold(&self) -> usize {
        self.threshold_signer.threshold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(mode: CryptoMode) -> Arc<KeyMaterial> {
        KeyMaterial::generate(4, 2, 3, mode, CertScheme::MultiSig, 42)
    }

    #[test]
    fn replica_client_indexing() {
        let km = setup(CryptoMode::Cmac);
        assert_eq!(km.replica(0).index(), 0);
        assert_eq!(km.replica(3).index(), 3);
        assert_eq!(km.client(0).index(), 4);
        assert_eq!(km.client(1).index(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn replica_index_bounds_checked() {
        let km = setup(CryptoMode::Cmac);
        let _ = km.replica(4);
    }

    #[test]
    fn mac_roundtrip_all_modes() {
        for mode in [CryptoMode::None, CryptoMode::Ed25519, CryptoMode::Hmac, CryptoMode::Cmac] {
            let km = setup(mode);
            let a = km.replica(0);
            let b = km.replica(1);
            let tag = a.authenticate(1, b"payload");
            assert!(b.check(0, b"payload", &tag), "mode {mode:?}");
            if mode != CryptoMode::None {
                assert!(!b.check(0, b"tampered", &tag), "mode {mode:?}");
            }
        }
    }

    #[test]
    fn mac_is_pairwise() {
        // A tag made for peer 1 must not verify as coming over the (0,2) link.
        let km = setup(CryptoMode::Cmac);
        let a = km.replica(0);
        let c = km.replica(2);
        let tag = a.authenticate(1, b"m");
        assert!(!c.check(0, b"m", &tag));
    }

    #[test]
    fn wrong_mode_tag_rejected() {
        let km = setup(CryptoMode::Cmac);
        let a = km.replica(0);
        let b = km.replica(1);
        let tag = AuthTag::Hmac([0u8; 32]);
        assert!(!b.check(0, b"m", &tag));
        let _ = a;
    }

    #[test]
    fn client_signatures_verify_at_replicas() {
        let km = setup(CryptoMode::Cmac);
        let client = km.client(0);
        let replica = km.replica(2);
        let sig = client.sign(b"request");
        assert!(replica.verify_from(client.index(), b"request", &sig));
        assert!(!replica.verify_from(client.index(), b"forged", &sig));
        // Not attributable to another client.
        assert!(!replica.verify_from(km.client(1).index(), b"request", &sig));
    }

    #[test]
    fn threshold_via_provider() {
        let km = setup(CryptoMode::Cmac);
        let providers: Vec<_> = (0..4).map(|i| km.replica(i)).collect();
        let msg = b"h";
        let shares: Vec<_> = providers.iter().map(|p| p.ts_share(msg)).collect();
        let cert = providers[0].ts_aggregate(msg, &shares).expect("agg");
        for p in &providers {
            assert!(p.ts_verify_cert(msg, &cert));
        }
    }

    #[test]
    fn auth_tag_codec_roundtrip() {
        let km = setup(CryptoMode::Ed25519);
        let a = km.replica(0);
        for tag in [
            AuthTag::None,
            AuthTag::Hmac([7u8; 32]),
            AuthTag::Cmac([8u8; 16]),
            AuthTag::Sig(a.sign(b"x")),
        ] {
            let mut buf = Vec::new();
            tag.encode(&mut buf);
            assert_eq!(buf.len(), tag.encoded_len());
            let (decoded, used) = AuthTag::decode(&buf).expect("decode");
            assert_eq!(used, buf.len());
            assert_eq!(decoded, tag);
        }
        assert!(AuthTag::decode(&[]).is_none());
        assert!(AuthTag::decode(&[1, 2, 3]).is_none());
        assert!(AuthTag::decode(&[9]).is_none());
    }

    #[test]
    fn verify_batch_from_matches_serial() {
        let km = setup(CryptoMode::Ed25519);
        let replica = km.replica(0);
        let msgs: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 16 + i as usize]).collect();
        let items: Vec<(NodeIndex, &[u8], crate::ed25519::Signature)> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let signer = km.replica(i % 4);
                (signer.index(), m.as_slice(), signer.sign(m))
            })
            .collect();
        assert!(replica.verify_batch_from(&items));
        // One flipped bit anywhere sinks the batch.
        let mut bad = items.clone();
        let mut raw = *bad[5].2.as_bytes();
        raw[10] ^= 1;
        bad[5].2 = crate::ed25519::Signature::from_bytes(raw);
        assert!(!replica.verify_batch_from(&bad));
        // Unknown sender index sinks the batch.
        let mut unknown = items.clone();
        unknown[0].0 = 999;
        assert!(!replica.verify_batch_from(&unknown));
    }

    #[test]
    fn check_batch_all_modes() {
        for mode in [CryptoMode::None, CryptoMode::Ed25519, CryptoMode::Hmac, CryptoMode::Cmac] {
            let km = setup(mode);
            let receiver = km.replica(0);
            let msgs: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i; 24]).collect();
            let tags: Vec<(NodeIndex, AuthTag)> = msgs
                .iter()
                .enumerate()
                .map(|(i, m)| {
                    let peer = km.replica(1 + i % 3);
                    (peer.index(), peer.authenticate(0, m))
                })
                .collect();
            let items: Vec<(NodeIndex, &[u8], &AuthTag)> =
                msgs.iter().zip(&tags).map(|(m, (peer, tag))| (*peer, m.as_slice(), tag)).collect();
            assert!(receiver.check_batch(&items), "mode {mode:?}");
            // Per-item agreement with `check`.
            for (peer, m, tag) in &items {
                assert!(receiver.check(*peer, m, tag), "mode {mode:?}");
            }
            if mode != CryptoMode::None {
                // Tamper with one message: the batch must fail.
                let mut tampered = items.clone();
                tampered[3].1 = b"tampered message";
                assert!(!receiver.check_batch(&tampered), "mode {mode:?}");
            }
        }
    }

    #[test]
    fn check_batch_rejects_wrong_tag_kind() {
        let km = setup(CryptoMode::Cmac);
        let receiver = km.replica(0);
        let wrong = AuthTag::Hmac([0u8; 32]);
        assert!(!receiver.check_batch(&[(1, b"m".as_slice(), &wrong)]));
        let km_none = setup(CryptoMode::None);
        assert!(!km_none.replica(0).check_batch(&[(1, b"m".as_slice(), &wrong)]));
    }

    #[test]
    fn check_batch_empty_is_true() {
        for mode in [CryptoMode::None, CryptoMode::Ed25519, CryptoMode::Hmac, CryptoMode::Cmac] {
            assert!(setup(mode).replica(0).check_batch(&[]));
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = KeyMaterial::generate(4, 1, 3, CryptoMode::Cmac, CertScheme::MultiSig, 7);
        let b = KeyMaterial::generate(4, 1, 3, CryptoMode::Cmac, CertScheme::MultiSig, 7);
        let c = KeyMaterial::generate(4, 1, 3, CryptoMode::Cmac, CertScheme::MultiSig, 8);
        assert_eq!(a.replica(0).sign(b"m").as_bytes(), b.replica(0).sign(b"m").as_bytes());
        assert_ne!(a.replica(0).sign(b"m").as_bytes(), c.replica(0).sign(b"m").as_bytes());
    }
}
