//! The `D(·)` digest used throughout the protocols.
//!
//! The paper assumes a collision-resistant hash `D(·)` mapping arbitrary
//! values to constant-size digests, and uses `||` for concatenation (e.g.
//! `h := D(k || v || ⟨T⟩c)` in Figure 3). [`Digest`] wraps SHA-256 output in
//! a small copyable value type, and [`digest_concat`] implements the
//! length-prefixed concatenation-then-hash so that `D(a || b)` cannot be
//! confused with `D(a' || b')` for a different split of the same bytes.

use crate::sha2::{sha256, Sha256};
use std::fmt;

/// Length of a [`Digest`] in bytes (SHA-256).
pub const DIGEST_LEN: usize = 32;

/// A 32-byte SHA-256 digest; the paper's `D(v)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// Digest of the empty string; handy as a placeholder/sentinel.
    pub const EMPTY: Digest = Digest([0u8; DIGEST_LEN]);

    /// Hashes `data`.
    pub fn of(data: &[u8]) -> Digest {
        Digest(sha256(data))
    }

    /// Returns the raw bytes.
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Builds a digest from raw bytes.
    pub fn from_bytes(bytes: [u8; DIGEST_LEN]) -> Digest {
        Digest(bytes)
    }

    /// Lowercase hex rendering (for logs and ledger dumps).
    pub fn to_hex(&self) -> String {
        Self::hex_of(&self.0)
    }

    /// Short hex prefix for compact display.
    pub fn short_hex(&self) -> String {
        Self::hex_of(&self.0[..4])
    }

    /// One string, one allocation — no per-byte formatting machinery
    /// (trace lines render digests on every simulated notification).
    fn hex_of(bytes: &[u8]) -> String {
        const HEX: &[u8; 16] = b"0123456789abcdef";
        let mut out = String::with_capacity(bytes.len() * 2);
        for b in bytes {
            out.push(HEX[(b >> 4) as usize] as char);
            out.push(HEX[(b & 0xf) as usize] as char);
        }
        out
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", self.short_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.short_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Hashes the concatenation of several fields with length prefixes:
/// `D(len(a) || a || len(b) || b || …)`.
///
/// The length prefixes make the encoding injective, which the paper's
/// collision-resistance assumption implicitly requires.
pub fn digest_concat(parts: &[&[u8]]) -> Digest {
    let mut w = DigestWriter::new();
    for p in parts {
        w.part(p);
    }
    w.finish()
}

/// Streaming form of [`digest_concat`]: feed parts one at a time instead
/// of materializing a `&[&[u8]]` slice. Produces exactly the same digest
/// as `digest_concat` over the same parts in the same order, without any
/// heap allocation (the hash state lives on the stack) — the codec's
/// zero-copy decode path computes batch digests through this.
#[derive(Clone, Default)]
pub struct DigestWriter {
    h: Sha256,
}

impl DigestWriter {
    /// A fresh accumulator.
    pub fn new() -> DigestWriter {
        DigestWriter { h: Sha256::new() }
    }

    /// Appends one length-prefixed part.
    pub fn part(&mut self, p: &[u8]) {
        self.h.update(&(p.len() as u64).to_le_bytes());
        self.h.update(p);
    }

    /// Finishes the hash.
    pub fn finish(self) -> Digest {
        Digest(self.h.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_of_matches_sha256() {
        assert_eq!(Digest::of(b"abc").0, sha256(b"abc"));
    }

    #[test]
    fn concat_is_injective_across_splits() {
        // Without length prefixes these would collide.
        let a = digest_concat(&[b"ab", b"c"]);
        let b = digest_concat(&[b"a", b"bc"]);
        assert_ne!(a, b);
    }

    #[test]
    fn concat_differs_from_plain() {
        assert_ne!(digest_concat(&[b"abc"]), Digest::of(b"abc"));
    }

    #[test]
    fn hex_roundtrip_and_display() {
        let d = Digest::of(b"hello");
        assert_eq!(d.to_hex().len(), 64);
        assert_eq!(d.short_hex().len(), 8);
        assert!(format!("{d:?}").starts_with("Digest("));
    }

    #[test]
    fn ordering_is_stable() {
        let mut v = vec![Digest::of(b"b"), Digest::of(b"a"), Digest::of(b"c")];
        v.sort();
        let mut w = v.clone();
        w.sort();
        assert_eq!(v, w);
    }
}
