//! The byte-sink abstraction shared by every wire encoder in the
//! workspace.
//!
//! Crypto types ([`crate::threshold::SignatureShare`],
//! [`crate::threshold::ThresholdCert`], [`crate::provider::AuthTag`])
//! and the kernel's message codec all write through this one trait, so
//! there is exactly **one** encoder per wire format: the kernel codec
//! streams crypto payloads straight into its output buffer with no
//! intermediate `Vec`, and a counting sink measures encoded sizes
//! without allocating at all (the simulator's bandwidth model relies on
//! that path).

/// Byte sink: either a real buffer or a length counter.
pub trait Sink {
    /// Appends raw bytes.
    fn put(&mut self, bytes: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, b: u8) {
        self.put(&[b]);
    }
}

impl Sink for Vec<u8> {
    fn put(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_appends() {
        let mut v: Vec<u8> = vec![1];
        v.put(&[2, 3]);
        v.put_u8(4);
        assert_eq!(v, vec![1, 2, 3, 4]);
    }
}
