//! Cryptographic cost model for the deterministic simulator.
//!
//! The paper's Figure 8 shows that the choice of signature scheme dominates
//! replica CPU time, and its §IV-I simulation "skips any expensive
//! computations" so that performance is determined purely by message
//! exchange. Our simulator supports both regimes: a [`CostModel`] charges
//! virtual nanoseconds per cryptographic operation, and
//! [`CostModel::free`] reproduces the paper's computation-free simulation.
//!
//! The default numbers are calibrated to the order of magnitude of the
//! paper's era (c2 VMs, 3.8 GHz Cascade Lake; BLS via threshold shares):
//! MACs are tens-to-hundreds of nanoseconds, Ed25519 operations are tens of
//! microseconds, threshold share/aggregate operations are hundreds of
//! microseconds to milliseconds. Absolute values can be recalibrated from
//! the criterion microbenches (`cargo bench -p poe-bench --bench crypto`).

use crate::provider::CryptoMode;

/// Virtual-time cost (nanoseconds) of each cryptographic operation class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Computing or verifying a pairwise MAC (per message).
    pub mac_ns: u64,
    /// Additional MAC cost per payload byte.
    pub mac_per_byte_ns: u64,
    /// Ed25519 signing.
    pub ed_sign_ns: u64,
    /// Ed25519 verification.
    pub ed_verify_ns: u64,
    /// Producing one threshold signature share.
    pub ts_share_ns: u64,
    /// Verifying one threshold signature share.
    pub ts_verify_share_ns: u64,
    /// Aggregating `threshold` shares into a certificate.
    pub ts_aggregate_ns: u64,
    /// Verifying an aggregated certificate.
    pub ts_verify_cert_ns: u64,
    /// Hashing, per byte.
    pub hash_per_byte_ns: u64,
}

impl CostModel {
    /// Calibrated to the paper's hardware era; see module docs.
    pub fn paper_default() -> CostModel {
        CostModel {
            mac_ns: 250,
            mac_per_byte_ns: 2,
            ed_sign_ns: 25_000,
            ed_verify_ns: 60_000,
            ts_share_ns: 280_000,
            ts_verify_share_ns: 400_000,
            ts_aggregate_ns: 900_000,
            ts_verify_cert_ns: 1_200_000,
            hash_per_byte_ns: 3,
        }
    }

    /// All operations free: the regime of the paper's §IV-I simulation,
    /// where throughput is determined only by message delay.
    pub fn free() -> CostModel {
        CostModel {
            mac_ns: 0,
            mac_per_byte_ns: 0,
            ed_sign_ns: 0,
            ed_verify_ns: 0,
            ts_share_ns: 0,
            ts_verify_share_ns: 0,
            ts_aggregate_ns: 0,
            ts_verify_cert_ns: 0,
            hash_per_byte_ns: 0,
        }
    }

    /// Cost of authenticating one outgoing message of `len` bytes under
    /// `mode`.
    pub fn authenticate_ns(&self, mode: CryptoMode, len: usize) -> u64 {
        match mode {
            CryptoMode::None => 0,
            CryptoMode::Hmac | CryptoMode::Cmac => self.mac_ns + self.mac_per_byte_ns * len as u64,
            CryptoMode::Ed25519 => self.ed_sign_ns + self.hash_per_byte_ns * len as u64,
        }
    }

    /// Cost of checking one incoming message of `len` bytes under `mode`.
    pub fn check_ns(&self, mode: CryptoMode, len: usize) -> u64 {
        match mode {
            CryptoMode::None => 0,
            CryptoMode::Hmac | CryptoMode::Cmac => self.mac_ns + self.mac_per_byte_ns * len as u64,
            CryptoMode::Ed25519 => self.ed_verify_ns + self.hash_per_byte_ns * len as u64,
        }
    }

    /// Cost of hashing `len` bytes.
    pub fn hash_ns(&self, len: usize) -> u64 {
        self.hash_per_byte_ns * len as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_model_charges_nothing() {
        let m = CostModel::free();
        assert_eq!(m.authenticate_ns(CryptoMode::Ed25519, 5000), 0);
        assert_eq!(m.check_ns(CryptoMode::Cmac, 5000), 0);
        assert_eq!(m.hash_ns(1 << 20), 0);
    }

    #[test]
    fn signatures_cost_more_than_macs() {
        let m = CostModel::paper_default();
        assert!(
            m.authenticate_ns(CryptoMode::Ed25519, 100) > m.authenticate_ns(CryptoMode::Cmac, 100)
        );
        assert!(m.check_ns(CryptoMode::Ed25519, 100) > m.check_ns(CryptoMode::Hmac, 100));
    }

    #[test]
    fn none_mode_is_free() {
        let m = CostModel::paper_default();
        assert_eq!(m.authenticate_ns(CryptoMode::None, 1000), 0);
        assert_eq!(m.check_ns(CryptoMode::None, 1000), 0);
    }

    #[test]
    fn payload_length_scales_mac_cost() {
        let m = CostModel::paper_default();
        assert!(
            m.authenticate_ns(CryptoMode::Cmac, 5400) > m.authenticate_ns(CryptoMode::Cmac, 250)
        );
    }
}
