//! Threshold certificates: the paper's `⟨v⟩` aggregated signatures.
//!
//! In PoE's threshold-signature mode, each replica sends a *signature share*
//! `s⟨h⟩i` to the primary, which aggregates `nf` shares into a single
//! certificate `⟨h⟩` broadcast in the CERTIFY message. The paper instantiates
//! this with BLS. Pairing-based BLS is out of scope for a from-scratch
//! no-dependency build, so this module offers two schemes with the same
//! quorum semantics (see DESIGN.md §4):
//!
//! * [`CertScheme::MultiSig`] — a *multi-signature certificate*: the share is
//!   a real Ed25519 signature and the certificate is the vector of `nf`
//!   signatures from distinct replicas. Unforgeable with ≤ f byzantine
//!   replicas, publicly verifiable, identical message/phase counts to BLS;
//!   only the certificate is O(n)·64 bytes instead of constant-size (the
//!   simulator's bandwidth model accounts for this).
//! * [`CertScheme::Simulated`] — a dealer-keyed scheme for simulation runs:
//!   shares and certificates are HMAC tags under keys derived from a master
//!   secret known to the (single-process) simulation environment. It has
//!   BLS-like constant-size certificates and a configurable cost model, but
//!   offers no real asymmetric security — byzantine *scripted* behaviour in
//!   the simulator never forges tags, and adversarial unit tests use
//!   `MultiSig`.

use crate::ed25519::{Signature, SigningKey, VerifyingKey, SIGNATURE_LEN};
use crate::hmac::{hmac_sha256, HmacSha256};
use crate::sink::Sink;
use std::fmt;

/// Which certificate scheme a cluster runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CertScheme {
    /// Vector-of-Ed25519-signatures certificate (real cryptography).
    #[default]
    MultiSig,
    /// Dealer-keyed HMAC certificate (simulation only).
    Simulated,
}

/// A signature share `s⟨h⟩i` produced by replica `signer`.
#[derive(Clone, PartialEq, Eq)]
pub struct SignatureShare {
    /// Index of the replica that produced the share.
    pub signer: u32,
    /// Scheme-specific share payload.
    pub payload: SharePayload,
}

/// Scheme-specific share payload.
#[derive(Clone, PartialEq, Eq)]
pub enum SharePayload {
    /// An Ed25519 signature over the message.
    Ed(Signature),
    /// An HMAC tag under the signer's dealer-derived share key.
    Sim([u8; 32]),
}

impl fmt::Debug for SignatureShare {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.payload {
            SharePayload::Ed(_) => write!(f, "Share(ed, signer={})", self.signer),
            SharePayload::Sim(_) => write!(f, "Share(sim, signer={})", self.signer),
        }
    }
}

impl SignatureShare {
    /// Serialized size in bytes.
    pub fn encoded_len(&self) -> usize {
        match &self.payload {
            SharePayload::Ed(_) => 5 + SIGNATURE_LEN,
            SharePayload::Sim(_) => 5 + 32,
        }
    }

    /// Manual wire encoding (tag, signer, payload) into any [`Sink`]
    /// — a buffer, or a counter for allocation-free measurement.
    pub fn encode<S: Sink>(&self, out: &mut S) {
        match &self.payload {
            SharePayload::Ed(sig) => {
                out.put_u8(0);
                out.put(&self.signer.to_le_bytes());
                out.put(sig.as_bytes());
            }
            SharePayload::Sim(tag) => {
                out.put_u8(1);
                out.put(&self.signer.to_le_bytes());
                out.put(tag);
            }
        }
    }

    /// Decodes a share, returning it and the bytes consumed.
    pub fn decode(buf: &[u8]) -> Option<(SignatureShare, usize)> {
        let tag = *buf.first()?;
        let signer = u32::from_le_bytes(buf.get(1..5)?.try_into().ok()?);
        match tag {
            0 => {
                let raw: [u8; SIGNATURE_LEN] = buf.get(5..5 + SIGNATURE_LEN)?.try_into().ok()?;
                Some((
                    SignatureShare {
                        signer,
                        payload: SharePayload::Ed(Signature::from_bytes(raw)),
                    },
                    5 + SIGNATURE_LEN,
                ))
            }
            1 => {
                let raw: [u8; 32] = buf.get(5..37)?.try_into().ok()?;
                Some((SignatureShare { signer, payload: SharePayload::Sim(raw) }, 37))
            }
            _ => None,
        }
    }
}

/// An aggregated threshold certificate `⟨h⟩`.
#[derive(Clone, PartialEq, Eq)]
pub struct ThresholdCert {
    /// Sorted indices of contributing replicas (length = threshold).
    pub signers: Vec<u32>,
    /// Scheme-specific proof.
    pub proof: CertProof,
}

/// Scheme-specific certificate proof.
#[derive(Clone, PartialEq, Eq)]
pub enum CertProof {
    /// One Ed25519 signature per signer, in `signers` order.
    Multi(Vec<Signature>),
    /// A single dealer-keyed HMAC tag binding message and signer set.
    Sim([u8; 32]),
}

impl fmt::Debug for ThresholdCert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ThresholdCert({} signers)", self.signers.len())
    }
}

impl ThresholdCert {
    /// Serialized size in bytes (used by the bandwidth model).
    pub fn encoded_len(&self) -> usize {
        match &self.proof {
            CertProof::Multi(sigs) => 1 + 2 + self.signers.len() * 4 + sigs.len() * SIGNATURE_LEN,
            CertProof::Sim(_) => 1 + 2 + self.signers.len() * 4 + 32,
        }
    }

    /// Manual wire encoding (tag, count, signers, proof) into any
    /// [`Sink`].
    pub fn encode<S: Sink>(&self, out: &mut S) {
        match &self.proof {
            CertProof::Multi(sigs) => {
                out.put_u8(0);
                out.put(&(self.signers.len() as u16).to_le_bytes());
                for s in &self.signers {
                    out.put(&s.to_le_bytes());
                }
                for sig in sigs {
                    out.put(sig.as_bytes());
                }
            }
            CertProof::Sim(tag) => {
                out.put_u8(1);
                out.put(&(self.signers.len() as u16).to_le_bytes());
                for s in &self.signers {
                    out.put(&s.to_le_bytes());
                }
                out.put(tag);
            }
        }
    }

    /// Decodes a certificate, returning it and the bytes consumed.
    pub fn decode(buf: &[u8]) -> Option<(ThresholdCert, usize)> {
        let tag = *buf.first()?;
        if buf.len() < 3 {
            return None;
        }
        let count = u16::from_le_bytes([buf[1], buf[2]]) as usize;
        let mut off = 3;
        let mut signers = Vec::with_capacity(count);
        for _ in 0..count {
            if buf.len() < off + 4 {
                return None;
            }
            signers.push(u32::from_le_bytes(buf[off..off + 4].try_into().ok()?));
            off += 4;
        }
        let proof = match tag {
            0 => {
                let mut sigs = Vec::with_capacity(count);
                for _ in 0..count {
                    if buf.len() < off + SIGNATURE_LEN {
                        return None;
                    }
                    let raw: [u8; SIGNATURE_LEN] = buf[off..off + SIGNATURE_LEN].try_into().ok()?;
                    sigs.push(Signature::from_bytes(raw));
                    off += SIGNATURE_LEN;
                }
                CertProof::Multi(sigs)
            }
            1 => {
                if buf.len() < off + 32 {
                    return None;
                }
                let raw: [u8; 32] = buf[off..off + 32].try_into().ok()?;
                off += 32;
                CertProof::Sim(raw)
            }
            _ => return None,
        };
        Some((ThresholdCert { signers, proof }, off))
    }
}

/// Errors from certificate aggregation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThresholdError {
    /// Fewer than `threshold` distinct valid shares were supplied.
    NotEnoughShares,
    /// A share failed verification.
    InvalidShare(u32),
    /// A share used the wrong scheme.
    SchemeMismatch,
    /// The same signer contributed twice.
    DuplicateSigner(u32),
}

impl fmt::Display for ThresholdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThresholdError::NotEnoughShares => write!(f, "not enough valid signature shares"),
            ThresholdError::InvalidShare(i) => write!(f, "invalid signature share from {i}"),
            ThresholdError::SchemeMismatch => write!(f, "signature share scheme mismatch"),
            ThresholdError::DuplicateSigner(i) => write!(f, "duplicate signature share from {i}"),
        }
    }
}

impl std::error::Error for ThresholdError {}

/// Cluster-wide threshold signing context for one replica.
///
/// Holds whatever key material the selected scheme needs. Constructed by
/// [`crate::provider::KeyMaterial`].
#[derive(Clone)]
pub struct ThresholdSigner {
    scheme: CertScheme,
    threshold: usize,
    my_index: u32,
    /// MultiSig: this replica's Ed25519 key.
    ed_key: Option<SigningKey>,
    /// MultiSig: everyone's verifying keys, indexed by replica.
    ed_public: Vec<VerifyingKey>,
    /// Simulated: dealer master secret (shared by the simulation process).
    sim_master: [u8; 32],
    /// Simulated: precomputed keyed HMAC state per replica (share
    /// creation/verification run on every SUPPORT; re-deriving the share
    /// key — two extra HMAC passes — per call would dominate large
    /// simulation runs).
    sim_share_macs: Vec<HmacSha256>,
}

impl ThresholdSigner {
    /// Builds a signer context.
    pub fn new(
        scheme: CertScheme,
        threshold: usize,
        my_index: u32,
        ed_key: Option<SigningKey>,
        ed_public: Vec<VerifyingKey>,
        sim_master: [u8; 32],
    ) -> Self {
        let sim_share_macs = match scheme {
            CertScheme::Simulated => (0..ed_public.len() as u32)
                .map(|i| {
                    let mut label = [0u8; 8];
                    label[..4].copy_from_slice(&i.to_le_bytes());
                    HmacSha256::new(&hmac_sha256(&sim_master, &label))
                })
                .collect(),
            CertScheme::MultiSig => Vec::new(),
        };
        ThresholdSigner {
            scheme,
            threshold,
            my_index,
            ed_key,
            ed_public,
            sim_master,
            sim_share_macs,
        }
    }

    /// The number of shares required for a certificate (the paper's `nf`).
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// The scheme in use.
    pub fn scheme(&self) -> CertScheme {
        self.scheme
    }

    /// Produces this replica's share `s⟨msg⟩i`.
    pub fn share(&self, msg: &[u8]) -> SignatureShare {
        let payload = match self.scheme {
            CertScheme::MultiSig => {
                let key = self.ed_key.as_ref().expect("multisig signer needs an Ed25519 key");
                SharePayload::Ed(key.sign(msg))
            }
            CertScheme::Simulated => {
                SharePayload::Sim(self.sim_share_macs[self.my_index as usize].tag(msg))
            }
        };
        SignatureShare { signer: self.my_index, payload }
    }

    /// Verifies a share claimed to come from `share.signer` (an index
    /// outside the replica set is rejected).
    pub fn verify_share(&self, msg: &[u8], share: &SignatureShare) -> bool {
        match (&share.payload, self.scheme) {
            (SharePayload::Ed(sig), CertScheme::MultiSig) => {
                self.ed_public.get(share.signer as usize).is_some_and(|pk| pk.verify(msg, sig))
            }
            (SharePayload::Sim(tag), CertScheme::Simulated) => self
                .sim_share_macs
                .get(share.signer as usize)
                .is_some_and(|mac| mac.verify(msg, tag)),
            _ => false,
        }
    }

    /// Aggregates at least `threshold` valid shares from distinct signers
    /// into a certificate.
    ///
    /// All shares cover the **same** message — the ideal batch shape —
    /// so in `MultiSig` mode the whole selected share set is verified in
    /// one [`crate::ed25519::verify_batch`] pass (one shared doubling
    /// chain instead of one per share). Only when that combined check
    /// fails does aggregation fall back to per-share verification, to
    /// attribute blame: the honest-primary hot path never pays the
    /// serial cost, and a byzantine replica that submits a bad share is
    /// still identified (by ascending signer index) so the caller can
    /// discard it and retry with the remaining shares.
    pub fn aggregate(
        &self,
        msg: &[u8],
        shares: &[SignatureShare],
    ) -> Result<ThresholdCert, ThresholdError> {
        // Select up to `threshold` shares from distinct signers, in the
        // order supplied (first-come wins, as the primary collects them).
        let mut seen = std::collections::BTreeMap::new();
        for share in shares {
            if seen.contains_key(&share.signer) {
                return Err(ThresholdError::DuplicateSigner(share.signer));
            }
            seen.insert(share.signer, share.clone());
            if seen.len() == self.threshold {
                break;
            }
        }
        if seen.len() < self.threshold {
            return Err(ThresholdError::NotEnoughShares);
        }
        match self.scheme {
            CertScheme::MultiSig => {
                let mut batch = Vec::with_capacity(seen.len());
                for share in seen.values() {
                    let sig = match &share.payload {
                        SharePayload::Ed(sig) => *sig,
                        SharePayload::Sim(_) => {
                            return Err(ThresholdError::InvalidShare(share.signer))
                        }
                    };
                    match self.ed_public.get(share.signer as usize) {
                        Some(pk) => batch.push((msg, *pk, sig)),
                        None => return Err(ThresholdError::InvalidShare(share.signer)),
                    }
                }
                if !crate::ed25519::verify_batch(&batch) {
                    // Attribute blame serially; report the lowest-index
                    // offender.
                    for share in seen.values() {
                        if !self.verify_share(msg, share) {
                            return Err(ThresholdError::InvalidShare(share.signer));
                        }
                    }
                    // The combined check fails on any invalid signature
                    // except with probability 2⁻¹²⁸; reaching this line
                    // means that event occurred — treat as not enough
                    // *provably* valid shares rather than minting a
                    // certificate we could not re-verify.
                    return Err(ThresholdError::NotEnoughShares);
                }
                let signers: Vec<u32> = seen.keys().copied().collect();
                let sigs = batch.iter().map(|(_, _, sig)| *sig).collect();
                Ok(ThresholdCert { signers, proof: CertProof::Multi(sigs) })
            }
            CertScheme::Simulated => {
                for share in seen.values() {
                    if !self.verify_share(msg, share) {
                        return Err(ThresholdError::InvalidShare(share.signer));
                    }
                }
                let signers: Vec<u32> = seen.keys().copied().collect();
                let proof = CertProof::Sim(self.sim_cert_tag(msg, &signers));
                Ok(ThresholdCert { signers, proof })
            }
        }
    }

    fn sim_cert_tag(&self, msg: &[u8], signers: &[u32]) -> [u8; 32] {
        let mut data = Vec::with_capacity(msg.len() + signers.len() * 4 + 4);
        data.extend_from_slice(b"cert");
        data.extend_from_slice(msg);
        for s in signers {
            data.extend_from_slice(&s.to_le_bytes());
        }
        hmac_sha256(&self.sim_master, &data)
    }

    /// Verifies an aggregated certificate over `msg`.
    pub fn verify_cert(&self, msg: &[u8], cert: &ThresholdCert) -> bool {
        if cert.signers.len() < self.threshold {
            return false;
        }
        // Signers must be distinct (sorted ascending enforces it cheaply).
        if cert.signers.windows(2).any(|w| w[0] >= w[1]) {
            return false;
        }
        match (&cert.proof, self.scheme) {
            (CertProof::Multi(sigs), CertScheme::MultiSig) => {
                if sigs.len() != cert.signers.len() {
                    return false;
                }
                // All nf signatures cover the same message: the ideal
                // batch-verification shape (one shared doubling chain).
                let mut batch = Vec::with_capacity(sigs.len());
                for (signer, sig) in cert.signers.iter().zip(sigs) {
                    match self.ed_public.get(*signer as usize) {
                        Some(pk) => batch.push((msg, *pk, *sig)),
                        None => return false,
                    }
                }
                crate::ed25519::verify_batch(&batch)
            }
            (CertProof::Sim(tag), CertScheme::Simulated) => {
                let expect = self.sim_cert_tag(msg, &cert.signers);
                crate::hmac::ct_eq(&expect, tag)
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(scheme: CertScheme, n: usize, threshold: usize) -> Vec<ThresholdSigner> {
        let keys: Vec<SigningKey> =
            (0..n).map(|i| SigningKey::from_label(format!("replica-{i}").as_bytes())).collect();
        let publics: Vec<VerifyingKey> = keys.iter().map(|k| k.verifying_key()).collect();
        (0..n)
            .map(|i| {
                ThresholdSigner::new(
                    scheme,
                    threshold,
                    i as u32,
                    Some(keys[i].clone()),
                    publics.clone(),
                    [9u8; 32],
                )
            })
            .collect()
    }

    fn roundtrip(scheme: CertScheme) {
        let n = 4;
        let t = 3;
        let signers = cluster(scheme, n, t);
        let msg = b"propose:view=0,k=7";
        let shares: Vec<SignatureShare> = signers.iter().map(|s| s.share(msg)).collect();
        // Every replica can verify every share.
        for s in &signers {
            for share in &shares {
                assert!(s.verify_share(msg, share));
            }
        }
        let cert = signers[0].aggregate(msg, &shares[..t]).expect("aggregate");
        assert_eq!(cert.signers.len(), t);
        for s in &signers {
            assert!(s.verify_cert(msg, &cert));
        }
        // Wrong message rejected.
        assert!(!signers[1].verify_cert(b"other", &cert));
    }

    #[test]
    fn multisig_roundtrip() {
        roundtrip(CertScheme::MultiSig);
    }

    #[test]
    fn simulated_roundtrip() {
        roundtrip(CertScheme::Simulated);
    }

    #[test]
    fn too_few_shares_rejected() {
        let signers = cluster(CertScheme::MultiSig, 4, 3);
        let msg = b"m";
        let shares: Vec<_> = signers.iter().take(2).map(|s| s.share(msg)).collect();
        assert_eq!(signers[0].aggregate(msg, &shares), Err(ThresholdError::NotEnoughShares));
    }

    #[test]
    fn duplicate_signer_rejected() {
        let signers = cluster(CertScheme::MultiSig, 4, 3);
        let msg = b"m";
        let s0 = signers[0].share(msg);
        let shares = vec![s0.clone(), s0, signers[1].share(msg)];
        assert_eq!(signers[0].aggregate(msg, &shares), Err(ThresholdError::DuplicateSigner(0)));
    }

    #[test]
    fn forged_share_rejected() {
        let signers = cluster(CertScheme::MultiSig, 4, 3);
        let msg = b"m";
        // Replica 3 forges a share claiming to be replica 0.
        let mut forged = signers[3].share(msg);
        forged.signer = 0;
        assert!(!signers[1].verify_share(msg, &forged));
        let shares = vec![forged, signers[1].share(msg), signers[2].share(msg)];
        assert_eq!(signers[0].aggregate(msg, &shares), Err(ThresholdError::InvalidShare(0)));
    }

    #[test]
    fn aggregate_blames_offender_and_succeeds_without_it() {
        let signers = cluster(CertScheme::MultiSig, 7, 5);
        let msg = b"m";
        let mut shares: Vec<_> = signers.iter().take(5).map(|s| s.share(msg)).collect();
        // Replica 6 forges a share claiming to be replica 2: the batch
        // check fails and the serial fallback names the offender.
        let mut forged = signers[6].share(msg);
        forged.signer = 2;
        shares[2] = forged;
        assert_eq!(signers[0].aggregate(msg, &shares), Err(ThresholdError::InvalidShare(2)));
        // The caller discards the blamed share and retries with a
        // replacement — the batch path then succeeds.
        shares[2] = signers[5].share(msg);
        let cert = signers[0].aggregate(msg, &shares).expect("aggregate after retry");
        assert!(signers[1].verify_cert(msg, &cert));
    }

    #[test]
    fn aggregate_ignores_shares_beyond_threshold() {
        // A bad share that is never selected (it arrives after the
        // threshold is already met) cannot poison aggregation.
        let signers = cluster(CertScheme::MultiSig, 5, 3);
        let msg = b"m";
        let mut shares: Vec<_> = signers.iter().take(3).map(|s| s.share(msg)).collect();
        let mut forged = signers[4].share(msg);
        forged.payload = SharePayload::Ed(Signature::from_bytes([7u8; 64]));
        shares.push(forged);
        let cert = signers[0].aggregate(msg, &shares).expect("aggregate");
        assert_eq!(cert.signers, vec![0, 1, 2]);
    }

    #[test]
    fn undersized_cert_rejected() {
        let signers = cluster(CertScheme::MultiSig, 4, 3);
        let msg = b"m";
        let shares: Vec<_> = signers.iter().map(|s| s.share(msg)).collect();
        let cert = signers[0].aggregate(msg, &shares).unwrap();
        let small = ThresholdCert {
            signers: cert.signers[..2].to_vec(),
            proof: match &cert.proof {
                CertProof::Multi(sigs) => CertProof::Multi(sigs[..2].to_vec()),
                CertProof::Sim(t) => CertProof::Sim(*t),
            },
        };
        assert!(!signers[1].verify_cert(msg, &small));
    }

    #[test]
    fn unsorted_or_duplicated_signers_rejected() {
        let signers = cluster(CertScheme::Simulated, 4, 3);
        let msg = b"m";
        let shares: Vec<_> = signers.iter().map(|s| s.share(msg)).collect();
        let mut cert = signers[0].aggregate(msg, &shares[..3]).unwrap();
        cert.signers = vec![2, 1, 0];
        assert!(!signers[1].verify_cert(msg, &cert));
        cert.signers = vec![1, 1, 2];
        assert!(!signers[1].verify_cert(msg, &cert));
    }

    #[test]
    fn cert_encode_decode_roundtrip() {
        for scheme in [CertScheme::MultiSig, CertScheme::Simulated] {
            let signers = cluster(scheme, 4, 3);
            let msg = b"roundtrip";
            let shares: Vec<_> = signers.iter().map(|s| s.share(msg)).collect();
            let cert = signers[0].aggregate(msg, &shares[..3]).unwrap();
            let mut buf = Vec::new();
            cert.encode(&mut buf);
            assert_eq!(buf.len(), cert.encoded_len());
            let (decoded, used) = ThresholdCert::decode(&buf).expect("decode");
            assert_eq!(used, buf.len());
            assert_eq!(decoded, cert);
            assert!(signers[2].verify_cert(msg, &decoded));
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let signers = cluster(CertScheme::MultiSig, 4, 3);
        let msg = b"x";
        let shares: Vec<_> = signers.iter().map(|s| s.share(msg)).collect();
        let cert = signers[0].aggregate(msg, &shares[..3]).unwrap();
        let mut buf = Vec::new();
        cert.encode(&mut buf);
        for cut in [0, 1, 2, 5, buf.len() - 1] {
            assert!(ThresholdCert::decode(&buf[..cut]).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn sim_scheme_smaller_cert_than_multisig() {
        let ms = cluster(CertScheme::MultiSig, 4, 3);
        let sim = cluster(CertScheme::Simulated, 4, 3);
        let msg = b"size";
        let ms_cert = ms[0]
            .aggregate(msg, &ms.iter().map(|s| s.share(msg)).collect::<Vec<_>>()[..3])
            .unwrap();
        let sim_cert = sim[0]
            .aggregate(msg, &sim.iter().map(|s| s.share(msg)).collect::<Vec<_>>()[..3])
            .unwrap();
        assert!(sim_cert.encoded_len() < ms_cert.encoded_len());
    }
}
