//! # poe-crypto
//!
//! From-scratch cryptographic toolbox for the Proof-of-Execution (PoE)
//! reproduction. The PoE paper (EDBT 2021) is *signature-scheme agnostic*:
//! replicas may authenticate messages with MACs (symmetric) or with
//! threshold signatures (asymmetric). This crate provides every primitive
//! the paper's evaluation exercises:
//!
//! * [`sha2`] — SHA-256 and SHA-512 (FIPS 180-4), used for message digests
//!   (`D(·)` in the paper) and inside Ed25519.
//! * [`hmac`] — HMAC-SHA256 (RFC 2104), the default pairwise MAC.
//! * [`aes`] / [`cmac`] — AES-128 (FIPS 197) and AES-CMAC (RFC 4493), the
//!   `CMAC+AES` configuration of the paper's Figure 8.
//! * [`ed25519`] — complete RFC 8032 Ed25519 signatures built on a
//!   from-scratch curve25519 field and twisted-Edwards point arithmetic
//!   (the paper's `ED` configuration).
//! * [`threshold`] — threshold certificates with `nf` shares. The paper
//!   uses BLS; pairing-based BLS is replaced by a multi-signature
//!   certificate (a vector of `nf` Ed25519 signatures) with identical
//!   quorum semantics, plus a cheap simulation-oriented scheme. See
//!   `DESIGN.md` §4 for the substitution argument.
//! * [`provider`] — a per-replica [`provider::CryptoProvider`] facade that
//!   bundles keys for a whole cluster and dispatches on a
//!   [`provider::CryptoMode`] (None / MACs / digital signatures), mirroring
//!   the configurations compared in the paper's Figure 8.
//! * [`cost`] — calibrated cost model (ns per operation) consumed by the
//!   deterministic simulator.
//!
//! Everything is implemented without external cryptography dependencies and
//! validated against official test vectors (NIST CAVP, RFC 4231, RFC 4493,
//! RFC 8032) in the unit tests.
//!
//! ## Security note
//!
//! The implementations favour clarity and portability over side-channel
//! resistance: scalar multiplication is not constant time. That is
//! appropriate for a research reproduction and benchmark substrate, not for
//! production secrets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod cmac;
pub mod cost;
pub mod digest;
pub mod ed25519;
pub mod hmac;
pub mod provider;
pub mod sha2;
pub mod sink;
pub mod threshold;

pub use digest::{digest_concat, Digest, DigestWriter, DIGEST_LEN};
pub use provider::{CryptoMode, CryptoProvider, KeyMaterial};
pub use sink::Sink;
pub use threshold::{CertScheme, SignatureShare, ThresholdCert};
