//! Ed25519 signatures (RFC 8032), from scratch.
//!
//! This is the paper's `ED` digital-signature configuration: clients always
//! sign their requests with Ed25519 so byzantine primaries cannot forge
//! transactions, and in the `ED` mode of Figure 8 replicas sign with it too.
//!
//! Layout:
//! * [`Fe`] — field element of GF(2^255 − 19), five 51-bit limbs.
//! * [`Point`] — extended twisted-Edwards coordinates (X : Y : Z : T).
//! * scalar arithmetic modulo the group order `L` via a small
//!   shift-subtract bignum (performance is adequate: reduction is a few
//!   hundred 9-limb subtractions and runs once per hash).
//! * [`SigningKey`] / [`VerifyingKey`] / [`Signature`] — the public API.
//!
//! Validated against the RFC 8032 test vectors in the unit tests.
//! Not constant time; see the crate-level security note.

use crate::sha2::Sha512;
use std::fmt;
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// Field arithmetic: GF(2^255 - 19), 5 limbs x 51 bits.
// ---------------------------------------------------------------------------

const MASK51: u64 = (1u64 << 51) - 1;

/// Field element of GF(2^255 − 19).
#[derive(Clone, Copy)]
pub(crate) struct Fe([u64; 5]);

impl Fe {
    const ZERO: Fe = Fe([0; 5]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |b: &[u8]| -> u64 {
            u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
        };
        let l0 = load(&bytes[0..8]) & MASK51;
        let l1 = (load(&bytes[6..14]) >> 3) & MASK51;
        let l2 = (load(&bytes[12..20]) >> 6) & MASK51;
        let l3 = (load(&bytes[19..27]) >> 1) & MASK51;
        let l4 = (load(&bytes[24..32]) >> 12) & MASK51;
        Fe([l0, l1, l2, l3, l4])
    }

    fn to_bytes(self) -> [u8; 32] {
        let mut h = self.reduce_full();
        let mut out = [0u8; 32];
        let mut acc: u128 = 0;
        let mut bit = 0usize;
        let mut idx = 0usize;
        for limb in h.0.iter_mut() {
            acc |= (*limb as u128) << bit;
            bit += 51;
            while bit >= 8 {
                out[idx] = (acc & 0xff) as u8;
                acc >>= 8;
                bit -= 8;
                idx += 1;
            }
        }
        if idx < 32 {
            out[idx] = (acc & 0xff) as u8;
        }
        out
    }

    /// Fully reduces into [0, p).
    fn reduce_full(self) -> Fe {
        let mut h = self.carry();
        // Now limbs < 2^52; subtract p if >= p, twice to be safe.
        for _ in 0..2 {
            let mut borrow: i128 = 0;
            let p = [MASK51 - 18, MASK51, MASK51, MASK51, MASK51]; // 2^255-19 limbs
            let mut out = [0u64; 5];
            for i in 0..5 {
                let d = h.0[i] as i128 - p[i] as i128 + borrow;
                if d < 0 {
                    out[i] = (d + (1i128 << 51)) as u64;
                    borrow = -1;
                } else {
                    out[i] = d as u64;
                    borrow = 0;
                }
            }
            if borrow == 0 {
                h = Fe(out);
            }
        }
        h
    }

    fn carry(self) -> Fe {
        let mut l = self.0;
        let mut c: u64;
        for _ in 0..2 {
            c = l[0] >> 51;
            l[0] &= MASK51;
            l[1] += c;
            c = l[1] >> 51;
            l[1] &= MASK51;
            l[2] += c;
            c = l[2] >> 51;
            l[2] &= MASK51;
            l[3] += c;
            c = l[3] >> 51;
            l[3] &= MASK51;
            l[4] += c;
            c = l[4] >> 51;
            l[4] &= MASK51;
            l[0] += c * 19;
        }
        Fe(l)
    }

    fn add(self, rhs: Fe) -> Fe {
        Fe([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
            self.0[3] + rhs.0[3],
            self.0[4] + rhs.0[4],
        ])
        .carry()
    }

    fn sub(self, rhs: Fe) -> Fe {
        // Add 2p to avoid underflow.
        Fe([
            self.0[0] + 2 * (MASK51 - 18) - rhs.0[0],
            self.0[1] + 2 * MASK51 - rhs.0[1],
            self.0[2] + 2 * MASK51 - rhs.0[2],
            self.0[3] + 2 * MASK51 - rhs.0[3],
            self.0[4] + 2 * MASK51 - rhs.0[4],
        ])
        .carry()
    }

    fn neg(self) -> Fe {
        Fe::ZERO.sub(self)
    }

    fn mul(self, rhs: Fe) -> Fe {
        let a = &self.0;
        let b = &rhs.0;
        let b1_19 = b[1] * 19;
        let b2_19 = b[2] * 19;
        let b3_19 = b[3] * 19;
        let b4_19 = b[4] * 19;

        let m = |x: u64, y: u64| -> u128 { (x as u128) * (y as u128) };

        let c0 = m(a[0], b[0]) + m(a[1], b4_19) + m(a[2], b3_19) + m(a[3], b2_19) + m(a[4], b1_19);
        let c1 = m(a[0], b[1]) + m(a[1], b[0]) + m(a[2], b4_19) + m(a[3], b3_19) + m(a[4], b2_19);
        let c2 = m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + m(a[3], b4_19) + m(a[4], b3_19);
        let c3 = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + m(a[4], b4_19);
        let c4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);

        Fe::carry_wide([c0, c1, c2, c3, c4])
    }

    fn square(self) -> Fe {
        self.mul(self)
    }

    fn carry_wide(mut c: [u128; 5]) -> Fe {
        let mut out = [0u64; 5];
        // Two rounds of carrying handle all products of reduced inputs.
        for _ in 0..2 {
            for i in 0..4 {
                let carry = c[i] >> 51;
                c[i] &= MASK51 as u128;
                c[i + 1] += carry;
            }
            let carry = c[4] >> 51;
            c[4] &= MASK51 as u128;
            c[0] += carry * 19;
        }
        for i in 0..5 {
            out[i] = c[i] as u64;
        }
        Fe(out).carry()
    }

    /// Raises to the power 2^255 − 21 (i.e. p − 2): the inverse.
    fn invert(self) -> Fe {
        // Addition chain from the curve25519 reference implementation.
        let z2 = self.square();
        let z8 = z2.square().square();
        let z9 = self.mul(z8);
        let z11 = z2.mul(z9);
        let z22 = z11.square();
        let z_5_0 = z9.mul(z22); // 2^5 - 2^0
        let mut t = z_5_0;
        for _ in 0..5 {
            t = t.square();
        }
        let z_10_0 = t.mul(z_5_0);
        t = z_10_0;
        for _ in 0..10 {
            t = t.square();
        }
        let z_20_0 = t.mul(z_10_0);
        t = z_20_0;
        for _ in 0..20 {
            t = t.square();
        }
        let z_40_0 = t.mul(z_20_0);
        t = z_40_0;
        for _ in 0..10 {
            t = t.square();
        }
        let z_50_0 = t.mul(z_10_0);
        t = z_50_0;
        for _ in 0..50 {
            t = t.square();
        }
        let z_100_0 = t.mul(z_50_0);
        t = z_100_0;
        for _ in 0..100 {
            t = t.square();
        }
        let z_200_0 = t.mul(z_100_0);
        t = z_200_0;
        for _ in 0..50 {
            t = t.square();
        }
        let z_250_0 = t.mul(z_50_0);
        t = z_250_0;
        for _ in 0..5 {
            t = t.square();
        }
        t.mul(z11)
    }

    /// Raises to the power (p − 5) / 8 = 2^252 − 3; used for square roots.
    fn pow_p58(self) -> Fe {
        let z2 = self.square();
        let z9 = self.mul(z2.square().square());
        let z11 = z2.mul(z9);
        let z22 = z11.square();
        let z_5_0 = z9.mul(z22);
        let mut t = z_5_0;
        for _ in 0..5 {
            t = t.square();
        }
        let z_10_0 = t.mul(z_5_0);
        t = z_10_0;
        for _ in 0..10 {
            t = t.square();
        }
        let z_20_0 = t.mul(z_10_0);
        t = z_20_0;
        for _ in 0..20 {
            t = t.square();
        }
        let z_40_0 = t.mul(z_20_0);
        t = z_40_0;
        for _ in 0..10 {
            t = t.square();
        }
        let z_50_0 = t.mul(z_10_0);
        t = z_50_0;
        for _ in 0..50 {
            t = t.square();
        }
        let z_100_0 = t.mul(z_50_0);
        t = z_100_0;
        for _ in 0..100 {
            t = t.square();
        }
        let z_200_0 = t.mul(z_100_0);
        t = z_200_0;
        for _ in 0..50 {
            t = t.square();
        }
        let z_250_0 = t.mul(z_50_0);
        t = z_250_0;
        for _ in 0..2 {
            t = t.square();
        }
        t.mul(self)
    }

    fn is_zero(self) -> bool {
        self.to_bytes() == [0u8; 32]
    }

    fn is_negative(self) -> bool {
        self.to_bytes()[0] & 1 == 1
    }

    fn eq(self, other: Fe) -> bool {
        self.to_bytes() == other.to_bytes()
    }
}

fn fe_d() -> Fe {
    // d = -121665/121666 mod p, computed once from the definition.
    static D: OnceLock<Fe> = OnceLock::new();
    *D.get_or_init(|| {
        let mut n = [0u8; 32];
        n[..3].copy_from_slice(&[0x41, 0xdb, 0x01]); // 121665
        let mut m = [0u8; 32];
        m[..3].copy_from_slice(&[0x42, 0xdb, 0x01]); // 121666
        Fe::from_bytes(&n).neg().mul(Fe::from_bytes(&m).invert())
    })
}

fn fe_sqrt_m1() -> Fe {
    // sqrt(-1) = 2^((p-1)/4) mod p
    Fe::from_bytes(&[
        0xb0, 0xa0, 0x0e, 0x4a, 0x27, 0x1b, 0xee, 0xc4, 0x78, 0xe4, 0x2f, 0xad, 0x06, 0x18, 0x43,
        0x2f, 0xa7, 0xd7, 0xfb, 0x3d, 0x99, 0x00, 0x4d, 0x2b, 0x0b, 0xdf, 0xc1, 0x4f, 0x80, 0x24,
        0x83, 0x2b,
    ])
}

// ---------------------------------------------------------------------------
// Point arithmetic: extended twisted Edwards coordinates.
// ---------------------------------------------------------------------------

/// A curve point in extended coordinates (X : Y : Z : T), with x = X/Z,
/// y = Y/Z, and T = XY/Z.
#[derive(Clone, Copy)]
pub(crate) struct Point {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

impl Point {
    fn identity() -> Point {
        Point { x: Fe::ZERO, y: Fe::ONE, z: Fe::ONE, t: Fe::ZERO }
    }

    /// Unified addition for a = −1 twisted Edwards (RFC 8032 §5.1.4).
    fn add(&self, other: &Point) -> Point {
        let a = self.y.sub(self.x).mul(other.y.sub(other.x));
        let b = self.y.add(self.x).mul(other.y.add(other.x));
        let dt = self.t.mul(fe_d()).mul(other.t);
        let c = dt.add(dt); // 2dT1T2
        let zz = self.z.mul(other.z);
        let d = zz.add(zz); // 2Z1Z2
        let e = b.sub(a);
        let f = d.sub(c);
        let g = d.add(c);
        let h = b.add(a);
        Point { x: e.mul(f), y: g.mul(h), z: f.mul(g), t: e.mul(h) }
    }

    fn double(&self) -> Point {
        let a = self.x.square();
        let b = self.y.square();
        let zz = self.z.square();
        let c = zz.add(zz);
        let h = a.add(b);
        let e = h.sub(self.x.add(self.y).square());
        let g = a.sub(b);
        let f = c.add(g);
        Point { x: e.mul(f), y: g.mul(h), z: f.mul(g), t: e.mul(h) }
    }

    fn neg(&self) -> Point {
        Point { x: self.x.neg(), y: self.y, z: self.z, t: self.t.neg() }
    }

    /// Variable-time scalar multiplication with a fixed 4-bit window.
    fn scalar_mul(&self, scalar: &[u8; 32]) -> Point {
        // Precompute 0P..15P.
        let mut table = [Point::identity(); 16];
        table[1] = *self;
        for i in 2..16 {
            table[i] = table[i - 1].add(self);
        }
        let mut acc = Point::identity();
        // Process nibbles most-significant first.
        for i in (0..64).rev() {
            acc = acc.double().double().double().double();
            let byte = scalar[i / 2];
            let nibble = if i % 2 == 1 { byte >> 4 } else { byte & 0x0f };
            if nibble != 0 {
                acc = acc.add(&table[nibble as usize]);
            }
        }
        acc
    }

    fn compress(&self) -> [u8; 32] {
        let zi = self.z.invert();
        let x = self.x.mul(zi);
        let y = self.y.mul(zi);
        let mut out = y.to_bytes();
        if x.is_negative() {
            out[31] |= 0x80;
        }
        out
    }

    /// Decompresses a point encoding; `None` if not on the curve.
    fn decompress(bytes: &[u8; 32]) -> Option<Point> {
        let sign = bytes[31] >> 7;
        let mut y_bytes = *bytes;
        y_bytes[31] &= 0x7f;
        let y = Fe::from_bytes(&y_bytes);
        // x^2 = (y^2 - 1) / (d y^2 + 1)
        let y2 = y.square();
        let u = y2.sub(Fe::ONE);
        let v = y2.mul(fe_d()).add(Fe::ONE);
        // Candidate root: x = u v^3 (u v^7)^((p-5)/8)
        let v3 = v.square().mul(v);
        let v7 = v3.square().mul(v);
        let mut x = u.mul(v3).mul(u.mul(v7).pow_p58());
        let vx2 = v.mul(x.square());
        if !vx2.eq(u) {
            if vx2.eq(u.neg()) {
                x = x.mul(fe_sqrt_m1());
            } else {
                return None;
            }
        }
        if x.is_zero() && sign == 1 {
            // -0 is not a valid encoding.
            return None;
        }
        if x.is_negative() != (sign == 1) {
            x = x.neg();
        }
        Some(Point { x, y, z: Fe::ONE, t: x.mul(y) })
    }

    /// Projective identity test: (X : Y : Z) is the neutral element iff
    /// x = X/Z is 0 and y = Y/Z is 1, i.e. X = 0 and Y = Z. Avoids the
    /// field inversion a `compress()` comparison would cost.
    fn is_identity(&self) -> bool {
        self.x.is_zero() && self.y.eq(self.z)
    }
}

/// Extracts the `i`-th little-endian 4-bit window of a scalar.
#[inline]
fn nibble(s: &[u8; 32], i: usize) -> u8 {
    let byte = s[i / 2];
    if i % 2 == 1 {
        byte >> 4
    } else {
        byte & 0x0f
    }
}

/// Interleaved (Straus) multi-scalar multiplication: computes
/// `Σ scalarᵢ · pointᵢ` with **one shared doubling chain**.
///
/// Each point gets a small table of its 15 nonzero 4-bit
/// multiples (14 additions); the main loop then performs 4 doublings per
/// nibble position — shared across *all* pairs — plus at most one
/// addition per pair per position. For `m` pairs of `b`-bit scalars the
/// cost is `~b` doublings + `m·(b/4 + 14)` additions, versus
/// `m·(b + b/4 + 14)` point operations for `m` independent
/// `scalar_mul` calls: the doublings, the dominant term, are amortized
/// `m`-fold. Leading all-zero nibble positions are skipped, so 128-bit
/// blinding coefficients only pay for 32 positions.
pub(crate) fn multi_scalar_mul(pairs: &[([u8; 32], Point)]) -> Point {
    if pairs.is_empty() {
        return Point::identity();
    }
    // 1P..15P per input point.
    let tables: Vec<[Point; 15]> = pairs
        .iter()
        .map(|(_, p)| {
            let mut t = [*p; 15];
            for i in 1..15 {
                t[i] = t[i - 1].add(p);
            }
            t
        })
        .collect();
    // Highest nibble position that is nonzero in any scalar.
    let top = pairs
        .iter()
        .map(|(s, _)| (0..64).rev().find(|&i| nibble(s, i) != 0).unwrap_or(0))
        .max()
        .expect("non-empty");
    let mut acc = Point::identity();
    for i in (0..=top).rev() {
        acc = acc.double().double().double().double();
        for (j, (s, _)) in pairs.iter().enumerate() {
            let n = nibble(s, i);
            if n != 0 {
                acc = acc.add(&tables[j][n as usize - 1]);
            }
        }
    }
    acc
}

fn base_point() -> &'static Point {
    static B: OnceLock<Point> = OnceLock::new();
    B.get_or_init(|| {
        // Standard compressed encoding of the base point (y = 4/5, x even).
        let mut enc = [0x66u8; 32];
        enc[0] = 0x58;
        Point::decompress(&enc).expect("base point decodes")
    })
}

/// The precomputed wide-window (comb) table for the base point `B`:
/// `table[i][j - 1] = j · 16^i · B` for every 4-bit window position
/// `i < 64` and window value `j ∈ 1..=15`.
///
/// [`Point::scalar_mul`] rebuilds a 16-entry window table and runs a
/// 255-step doubling chain on *every* call; for the fixed, globally known
/// point `B` that work can be hoisted into a static table computed once
/// per process (~150 KiB). [`base_mul`] then needs only one table lookup
/// and at most one point addition per nonzero nibble — no doublings at
/// all — which speeds up every signing operation and the `s·B` half of
/// serial verification.
fn base_table() -> &'static Vec<[Point; 15]> {
    static TABLE: OnceLock<Vec<[Point; 15]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = Vec::with_capacity(64);
        let mut window_base = *base_point(); // 16^i · B
        for _ in 0..64 {
            let mut row = [window_base; 15];
            for j in 1..15 {
                row[j] = row[j - 1].add(&window_base);
            }
            // 16^(i+1) · B = 15·16^i·B + 16^i·B.
            window_base = row[14].add(&window_base);
            table.push(row);
        }
        table
    })
}

/// Fixed-base scalar multiplication `scalar · B` via the static comb
/// table: Σᵢ nibbleᵢ(scalar) · 16ⁱ · B, one addition per nonzero nibble.
pub(crate) fn base_mul(scalar: &[u8; 32]) -> Point {
    let table = base_table();
    let mut acc = Point::identity();
    for (i, row) in table.iter().enumerate() {
        let n = nibble(scalar, i);
        if n != 0 {
            acc = acc.add(&row[n as usize - 1]);
        }
    }
    acc
}

// ---------------------------------------------------------------------------
// Scalar arithmetic mod L = 2^252 + 27742317777372353535851937790883648493.
// ---------------------------------------------------------------------------

/// L as nine little-endian u64 limbs (fits in four; padded for the 512-bit
/// reduction).
const L_LIMBS: [u64; 9] =
    [0x5812631a5cf5d3ed, 0x14def9dea2f79cd6, 0, 0x1000000000000000, 0, 0, 0, 0, 0];

fn limbs_from_le_bytes(bytes: &[u8]) -> [u64; 9] {
    let mut limbs = [0u64; 9];
    for (i, b) in bytes.iter().enumerate() {
        limbs[i / 8] |= (*b as u64) << ((i % 8) * 8);
    }
    limbs
}

fn limbs_cmp(a: &[u64; 9], b: &[u64; 9]) -> std::cmp::Ordering {
    for i in (0..9).rev() {
        match a[i].cmp(&b[i]) {
            std::cmp::Ordering::Equal => continue,
            ord => return ord,
        }
    }
    std::cmp::Ordering::Equal
}

fn limbs_sub(a: &mut [u64; 9], b: &[u64; 9]) {
    let mut borrow = 0u64;
    for i in 0..9 {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 | b2) as u64;
    }
}

fn limbs_shl(a: &[u64; 9], shift: usize) -> [u64; 9] {
    let word = shift / 64;
    let bit = shift % 64;
    let mut out = [0u64; 9];
    for i in (0..9).rev() {
        if i >= word {
            let mut v = a[i - word] << bit;
            if bit > 0 && i > word {
                v |= a[i - word - 1] >> (64 - bit);
            }
            out[i] = v;
        }
    }
    out
}

/// Reduces a little-endian value (up to 512 bits) modulo L via
/// shift-subtract division.
fn reduce_mod_l(bytes: &[u8]) -> [u8; 32] {
    debug_assert!(bytes.len() <= 64);
    let mut x = limbs_from_le_bytes(bytes);
    // L has 253 bits; input has at most 512 bits.
    for shift in (0..=(512 - 253)).rev() {
        let shifted = limbs_shl(&L_LIMBS, shift);
        if limbs_cmp(&x, &shifted) != std::cmp::Ordering::Less {
            limbs_sub(&mut x, &shifted);
        }
    }
    let mut out = [0u8; 32];
    for i in 0..32 {
        out[i] = (x[i / 8] >> ((i % 8) * 8)) as u8;
    }
    out
}

/// Computes (a * b + c) mod L. Inputs are little-endian 32-byte scalars.
fn sc_muladd(a: &[u8; 32], b: &[u8; 32], c: &[u8; 32]) -> [u8; 32] {
    // Schoolbook 32x32-byte multiply into 64 bytes, then add c, then reduce.
    let mut prod = [0u64; 9]; // 512-bit accumulate as 8 limbs + carry room
    let al = limbs_from_le_bytes(a);
    let bl = limbs_from_le_bytes(b);
    // 4x4 limb multiply (only the first four limbs are nonzero).
    let mut wide = [0u128; 9];
    for (i, &ai) in al.iter().take(4).enumerate() {
        for (j, &bj) in bl.iter().take(4).enumerate() {
            let idx = i + j;
            let p = (ai as u128) * (bj as u128);
            wide[idx] += p & 0xffff_ffff_ffff_ffff;
            wide[idx + 1] += p >> 64;
        }
    }
    // Propagate.
    let mut carry: u128 = 0;
    for i in 0..9 {
        let v = wide[i] + carry;
        prod[i] = v as u64;
        carry = v >> 64;
    }
    // Add c.
    let cl = limbs_from_le_bytes(c);
    let mut carry2 = 0u64;
    for i in 0..9 {
        let (s1, o1) = prod[i].overflowing_add(cl[i]);
        let (s2, o2) = s1.overflowing_add(carry2);
        prod[i] = s2;
        carry2 = (o1 | o2) as u64;
    }
    let mut bytes = [0u8; 72];
    for i in 0..72 {
        bytes[i] = (prod[i / 8] >> ((i % 8) * 8)) as u8;
    }
    reduce_mod_l(&bytes[..64])
}

/// True if `s` (little-endian) is in canonical range [0, L).
fn scalar_is_canonical(s: &[u8; 32]) -> bool {
    let sl = limbs_from_le_bytes(s);
    limbs_cmp(&sl, &L_LIMBS) == std::cmp::Ordering::Less
}

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

/// Length of a public key in bytes.
pub const PUBLIC_KEY_LEN: usize = 32;
/// Length of a signature in bytes.
pub const SIGNATURE_LEN: usize = 64;
/// Length of a secret seed in bytes.
pub const SEED_LEN: usize = 32;

/// An Ed25519 signature (R ‖ S).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(pub [u8; SIGNATURE_LEN]);

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Signature({}…)",
            self.0[..4].iter().map(|b| format!("{b:02x}")).collect::<String>()
        )
    }
}

impl Signature {
    /// Builds a signature from raw bytes.
    pub fn from_bytes(bytes: [u8; SIGNATURE_LEN]) -> Signature {
        Signature(bytes)
    }

    /// Raw byte view.
    pub fn as_bytes(&self) -> &[u8; SIGNATURE_LEN] {
        &self.0
    }
}

/// An Ed25519 verifying (public) key.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerifyingKey(pub [u8; PUBLIC_KEY_LEN]);

impl fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "VerifyingKey({}…)",
            self.0[..4].iter().map(|b| format!("{b:02x}")).collect::<String>()
        )
    }
}

impl VerifyingKey {
    /// Builds a key from raw bytes.
    pub fn from_bytes(bytes: [u8; PUBLIC_KEY_LEN]) -> VerifyingKey {
        VerifyingKey(bytes)
    }

    /// Raw byte view.
    pub fn as_bytes(&self) -> &[u8; PUBLIC_KEY_LEN] {
        &self.0
    }

    /// Verifies `sig` over `msg`.
    ///
    /// Uses the **cofactored** equation `8·S·B = 8·R + 8·k·A` with
    /// canonical-S rejection (malleability defence). Cofactored
    /// verification is the consensus-safe choice (the ZIP-215
    /// direction): it accepts exactly the same signature set as
    /// [`verify_batch`] — except with probability 2⁻¹²⁸ — so every
    /// replica reaches the same verdict on every signature regardless of
    /// which path checked it. A cofactor*less* serial check would
    /// disagree with any batch verifier on adversarial signatures whose
    /// error term is a small-order point, making e.g. certificate
    /// validity nondeterministic across replicas. All honestly generated
    /// signatures verify identically under both conventions.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        let r_bytes: [u8; 32] = sig.0[..32].try_into().expect("split");
        let s_bytes: [u8; 32] = sig.0[32..].try_into().expect("split");
        if !scalar_is_canonical(&s_bytes) {
            return false;
        }
        let a = match Point::decompress(&self.0) {
            Some(p) => p,
            None => return false,
        };
        let r = match Point::decompress(&r_bytes) {
            Some(p) => p,
            None => return false,
        };
        let mut h = Sha512::new();
        h.update(&r_bytes);
        h.update(&self.0);
        h.update(msg);
        let k = reduce_mod_l(&h.finalize());

        let lhs = base_mul(&s_bytes);
        let rhs = r.add(&a.scalar_mul(&k));
        // Multiply both sides by the cofactor 8 (three doublings) before
        // comparing, killing any small-order component of the error.
        mul_by_cofactor(&lhs).compress() == mul_by_cofactor(&rhs).compress()
    }
}

/// Multiplies a point by the curve cofactor 8 (three doublings).
fn mul_by_cofactor(p: &Point) -> Point {
    p.double().double().double()
}

// ---------------------------------------------------------------------------
// Batched verification.
// ---------------------------------------------------------------------------

/// One entry of a verification batch: message, alleged signer, signature.
pub type BatchItem<'a> = (&'a [u8], VerifyingKey, Signature);

/// Derives the 128-bit random blinding coefficients `zᵢ` for one batch.
///
/// The coefficients must be unpredictable to whoever chose the
/// signatures, otherwise a forger could craft two invalid signatures
/// whose errors cancel in the linear combination. They are derived by
/// hashing (a) a per-process secret nonce, (b) a monotonically increasing
/// call counter, and (c) a transcript digest binding every `(A, R, S, k)`
/// in the batch — so no caller-visible input determines them. This is the
/// deterministic-RNG construction used by several production Ed25519
/// batch verifiers; see the crate-level security note for the
/// side-channel caveats that apply to this whole crate.
fn batch_coefficients(transcript: &[u8; 64], n: usize) -> Vec<[u8; 32]> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static CALL_COUNTER: AtomicU64 = AtomicU64::new(0);
    static PROCESS_NONCE: OnceLock<[u8; 64]> = OnceLock::new();
    let nonce = PROCESS_NONCE.get_or_init(|| {
        let mut h = Sha512::new();
        h.update(b"poe-ed25519-batch-nonce/");
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        h.update(&t.to_le_bytes());
        // ASLR juice: the address of a static differs across runs.
        h.update(&(&CALL_COUNTER as *const _ as usize).to_le_bytes());
        h.finalize()
    });
    let call = CALL_COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut h = Sha512::new();
        h.update(nonce);
        h.update(&call.to_le_bytes());
        h.update(&(i as u64).to_le_bytes());
        h.update(transcript);
        let d = h.finalize();
        let mut z = [0u8; 32];
        z[..16].copy_from_slice(&d[..16]);
        if z.iter().all(|&b| b == 0) {
            z[0] = 1; // P[z = 0] = 2⁻¹²⁸; keep the term from vanishing.
        }
        out.push(z);
    }
    out
}

/// Verifies a batch of Ed25519 signatures at once, sharing the expensive
/// doubling chain across the whole batch.
///
/// Checks the **cofactored** random linear combination
/// `8·[(Σ zᵢ·Sᵢ)·B  −  Σ zᵢ·Rᵢ  −  Σ (zᵢ·kᵢ)·Aᵢ]  =  𝒪`
/// with independent 128-bit blinding coefficients `zᵢ`, evaluated as a
/// single interleaved multi-scalar multiplication
/// ([`multi_scalar_mul`]). Since each honest signature satisfies
/// `Sᵢ·B = Rᵢ + kᵢ·Aᵢ`, an all-valid batch always passes; a batch
/// containing any invalid signature fails except with probability 2⁻¹²⁸
/// over the choice of `zᵢ`.
///
/// **Complexity.** Serial verification costs two scalar multiplications
/// (≈ 2·255 doublings) per signature. The batch pays the ~255 doublings
/// *once* plus per-signature table setup and additions, so asymptotic
/// point-additions per signature drop roughly 4×; measured speedup at
/// batch size 64 is >2× end-to-end (point decompression, which cannot be
/// amortized, is the remaining per-item cost — see
/// `crates/bench/benches/crypto.rs`).
///
/// Returns `true` for the empty batch. On `false`, callers that need to
/// attribute blame should fall back to per-item [`VerifyingKey::verify`].
///
/// **Agreement with serial verification.** Both this function and
/// [`VerifyingKey::verify`] use the cofactored equation, so they accept
/// the same signature set (up to the 2⁻¹²⁸ blinding failure) even for
/// adversarial signatures whose error term is a small-order point. That
/// determinism matters: certificate validity must be objective across
/// replicas, and a cofactorless serial check would disagree with any
/// batch verifier on such inputs with probability ~1/2 per call.
pub fn verify_batch(items: &[BatchItem<'_>]) -> bool {
    match items.len() {
        0 => return true,
        1 => {
            let (msg, key, sig) = &items[0];
            return key.verify(msg, sig);
        }
        _ => {}
    }
    // Parse and decompress everything first; reject malformed input.
    let mut s_scalars = Vec::with_capacity(items.len());
    let mut r_points = Vec::with_capacity(items.len());
    let mut a_points = Vec::with_capacity(items.len());
    let mut k_scalars = Vec::with_capacity(items.len());
    let mut transcript = Sha512::new();
    for (msg, key, sig) in items {
        let r_bytes: [u8; 32] = sig.0[..32].try_into().expect("split");
        let s_bytes: [u8; 32] = sig.0[32..].try_into().expect("split");
        if !scalar_is_canonical(&s_bytes) {
            return false;
        }
        let a = match Point::decompress(&key.0) {
            Some(p) => p,
            None => return false,
        };
        let r = match Point::decompress(&r_bytes) {
            Some(p) => p,
            None => return false,
        };
        let mut h = Sha512::new();
        h.update(&r_bytes);
        h.update(&key.0);
        h.update(msg);
        let k = reduce_mod_l(&h.finalize());
        transcript.update(&r_bytes);
        transcript.update(&key.0);
        transcript.update(&s_bytes);
        transcript.update(&k);
        s_scalars.push(s_bytes);
        r_points.push(r);
        a_points.push(a);
        k_scalars.push(k);
    }
    let zs = batch_coefficients(&transcript.finalize(), items.len());

    // Assemble the combination with every term negated except B's:
    // pairs = [(zᵢ, −Rᵢ), (zᵢ·kᵢ mod L, −Aᵢ)], plus (Σ zᵢ·sᵢ mod L, B).
    let zero = [0u8; 32];
    let mut s_total = [0u8; 32];
    let mut pairs = Vec::with_capacity(2 * items.len() + 1);
    for i in 0..items.len() {
        s_total = sc_muladd(&zs[i], &s_scalars[i], &s_total);
        let zk = sc_muladd(&zs[i], &k_scalars[i], &zero);
        pairs.push((zs[i], r_points[i].neg()));
        pairs.push((zk, a_points[i].neg()));
    }
    pairs.push((s_total, *base_point()));
    mul_by_cofactor(&multi_scalar_mul(&pairs)).is_identity()
}

/// An Ed25519 signing (secret) key, expanded from a 32-byte seed.
#[derive(Clone)]
pub struct SigningKey {
    seed: [u8; SEED_LEN],
    scalar: [u8; 32],
    prefix: [u8; 32],
    public: VerifyingKey,
}

impl fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SigningKey(pub={:?})", self.public)
    }
}

impl SigningKey {
    /// Derives the key pair from a 32-byte seed (RFC 8032 §5.1.5).
    pub fn from_seed(seed: &[u8; SEED_LEN]) -> SigningKey {
        let h = {
            let mut hh = Sha512::new();
            hh.update(seed);
            hh.finalize()
        };
        let mut scalar: [u8; 32] = h[..32].try_into().expect("split");
        scalar[0] &= 248;
        scalar[31] &= 127;
        scalar[31] |= 64;
        let prefix: [u8; 32] = h[32..].try_into().expect("split");
        let a = base_mul(&scalar);
        let public = VerifyingKey(a.compress());
        SigningKey { seed: *seed, scalar, prefix, public }
    }

    /// Deterministically derives a signing key from an arbitrary label
    /// (used by test/cluster setup to give each replica a key).
    pub fn from_label(label: &[u8]) -> SigningKey {
        let mut h = Sha512::new();
        h.update(b"poe-ed25519-keygen/");
        h.update(label);
        let d = h.finalize();
        let seed: [u8; 32] = d[..32].try_into().expect("split");
        SigningKey::from_seed(&seed)
    }

    /// The public half.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.public
    }

    /// The original seed.
    pub fn seed(&self) -> &[u8; SEED_LEN] {
        &self.seed
    }

    /// Signs `msg` (RFC 8032 §5.1.6).
    pub fn sign(&self, msg: &[u8]) -> Signature {
        let r_scalar = {
            let mut h = Sha512::new();
            h.update(&self.prefix);
            h.update(msg);
            reduce_mod_l(&h.finalize())
        };
        let r_point = base_mul(&r_scalar);
        let r_bytes = r_point.compress();
        let k = {
            let mut h = Sha512::new();
            h.update(&r_bytes);
            h.update(&self.public.0);
            h.update(msg);
            reduce_mod_l(&h.finalize())
        };
        let s = sc_muladd(&k, &self.scalar, &r_scalar);
        let mut sig = [0u8; SIGNATURE_LEN];
        sig[..32].copy_from_slice(&r_bytes);
        sig[32..].copy_from_slice(&s);
        Signature(sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    fn seed(hex: &str) -> [u8; 32] {
        from_hex(hex).try_into().unwrap()
    }

    // RFC 8032 §7.1 TEST 1.
    #[test]
    fn rfc8032_test1_empty_message() {
        let sk = SigningKey::from_seed(&seed(
            "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        ));
        assert_eq!(
            sk.verifying_key().as_bytes().to_vec(),
            from_hex("d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a")
        );
        let sig = sk.sign(b"");
        assert_eq!(
            sig.as_bytes().to_vec(),
            from_hex(
                "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155\
                 5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
            )
        );
        assert!(sk.verifying_key().verify(b"", &sig));
    }

    // RFC 8032 §7.1 TEST 2.
    #[test]
    fn rfc8032_test2_one_byte() {
        let sk = SigningKey::from_seed(&seed(
            "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        ));
        assert_eq!(
            sk.verifying_key().as_bytes().to_vec(),
            from_hex("3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c")
        );
        let msg = [0x72u8];
        let sig = sk.sign(&msg);
        assert_eq!(
            sig.as_bytes().to_vec(),
            from_hex(
                "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da\
                 085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
            )
        );
        assert!(sk.verifying_key().verify(&msg, &sig));
    }

    // RFC 8032 §7.1 TEST 3.
    #[test]
    fn rfc8032_test3_two_bytes() {
        let sk = SigningKey::from_seed(&seed(
            "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
        ));
        assert_eq!(
            sk.verifying_key().as_bytes().to_vec(),
            from_hex("fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025")
        );
        let msg = from_hex("af82");
        let sig = sk.sign(&msg);
        assert_eq!(
            sig.as_bytes().to_vec(),
            from_hex(
                "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac\
                 18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"
            )
        );
        assert!(sk.verifying_key().verify(&msg, &sig));
    }

    // RFC 8032 §7.1 TEST 1024 (long message).
    #[test]
    fn rfc8032_test_1024_byte_message() {
        let sk = SigningKey::from_seed(&seed(
            "f5e5767cf153319517630f226876b86c8160cc583bc013744c6bf255f5cc0ee5",
        ));
        assert_eq!(
            sk.verifying_key().as_bytes().to_vec(),
            from_hex("278117fc144c72340f67d0f2316e8386ceffbf2b2428c9c51fef7c597f1d426e")
        );
        // The 1023-byte message from the RFC, constructed deterministically
        // is long; use a shortened self-consistency check instead plus the
        // known-signature prefix check for the first 64 bytes of the message.
        let msg: Vec<u8> = from_hex(
            "08b8b2b733424243760fe426a4b54908632110a66c2f6591eabd3345e3e4eb98\
             fa6e264bf09efe12ee50f8f54e9f77b1e355f6c50544e23fb1433ddf73be84d8\
             79de7c0046dc4996d9e773f4bc9efe5738829adb26c81b37c93a1b270b20329d\
             658675fc6ea534e0810a4432826bf58c941efb65d57a338bbd2e26640f89ffbc\
             1a858efcb8550ee3a5e1998bd177e93a7363c344fe6b199ee5d02e82d522c4fe\
             ba15452f80288a821a579116ec6dad2b3b310da903401aa62100ab5d1a36553e\
             06203b33890cc9b832f79ef80560ccb9a39ce767967ed628c6ad573cb116dbef\
             efd75499da96bd68a8a97b928a8bbc103b6621fcde2beca1231d206be6cd9ec7\
             aff6f6c94fcd7204ed3455c68c83f4a41da4af2b74ef5c53f1d8ac70bdcb7ed1\
             85ce81bd84359d44254d95629e9855a94a7c1958d1f8ada5d0532ed8a5aa3fb2\
             d17ba70eb6248e594e1a2297acbbb39d502f1a8c6eb6f1ce22b3de1a1f40cc24\
             554119a831a9aad6079cad88425de6bde1a9187ebb6092cf67bf2b13fd65f270\
             88d78b7e883c8759d2c4f5c65adb7553878ad575f9fad878e80a0c9ba63bcbcc\
             2732e69485bbc9c90bfbd62481d9089beccf80cfe2df16a2cf65bd92dd597b07\
             07e0917af48bbb75fed413d238f5555a7a569d80c3414a8d0859dc65a46128ba\
             b27af87a71314f318c782b23ebfe808b82b0ce26401d2e22f04d83d1255dc51a\
             ddd3b75a2b1ae0784504df543af8969be3ea7082ff7fc9888c144da2af58429e\
             c96031dbcad3dad9af0dcbaaaf268cb8fcffead94f3c7ca495e056a9b47acdb7\
             51fb73e666c6c655ade8297297d07ad1ba5e43f1bca32301651339e22904cc8c\
             42f58c30c04aafdb038dda0847dd988dcda6f3bfd15c4b4c4525004aa06eeff8\
             ca61783aacec57fb3d1f92b0fe2fd1a85f6724517b65e614ad6808d6f6ee34df\
             f7310fdc82aebfd904b01e1dc54b2927094b2db68d6f903b68401adebf5a7e08\
             d78ff4ef5d63653a65040cf9bfd4aca7984a74d37145986780fc0b16ac451649\
             de6188a7dbdf191f64b5fc5e2ab47b57f7f7276cd419c17a3ca8e1b939ae49e4\
             88acba6b965610b5480109c8b17b80e1b7b750dfc7598d5d5011fd2dcc5600a3\
             2ef5b52a1ecc820e308aa342721aac0943bf6686b64b2579376504ccc493d97e\
             6aed3fb0f9cd71a43dd497f01f17c0e2cb3797aa2a2f256656168e6c496afc5f\
             b93246f6b1116398a346f1a641f3b041e989f7914f90cc2c7fff357876e506b5\
             0d334ba77c225bc307ba537152f3f1610e4eafe595f6d9d90d11faa933a15ef1\
             369546868a7f3a45a96768d40fd9d03412c091c6315cf4fde7cb68606937380d\
             b2eaaa707b4c4185c32eddcdd306705e4dc1ffc872eeee475a64dfac86aba41c\
             0618983f8741c5ef68d3a101e8a3b8cac60c905c15fc910840b94c00a0b9d0",
        );
        let expect_sig = from_hex(
            "0aab4c900501b3e24d7cdf4663326a3a87df5e4843b2cbdb67cbf6e460fec350\
             aa5371b1508f9f4528ecea23c436d94b5e8fcd4f681e30a6ac00a9704a188a03",
        );
        let sig = sk.sign(&msg);
        assert_eq!(sig.as_bytes().to_vec(), expect_sig);
        assert!(sk.verifying_key().verify(&msg, &sig));
    }

    #[test]
    fn tampered_message_rejected() {
        let sk = SigningKey::from_label(b"replica-0");
        let sig = sk.sign(b"hello");
        assert!(sk.verifying_key().verify(b"hello", &sig));
        assert!(!sk.verifying_key().verify(b"hellp", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let sk = SigningKey::from_label(b"replica-1");
        let sig = sk.sign(b"payload");
        for i in [0usize, 31, 32, 63] {
            let mut bad = *sig.as_bytes();
            bad[i] ^= 0x01;
            assert!(
                !sk.verifying_key().verify(b"payload", &Signature::from_bytes(bad)),
                "flip at {i} accepted"
            );
        }
    }

    #[test]
    fn wrong_key_rejected() {
        let sk1 = SigningKey::from_label(b"a");
        let sk2 = SigningKey::from_label(b"b");
        let sig = sk1.sign(b"msg");
        assert!(!sk2.verifying_key().verify(b"msg", &sig));
    }

    #[test]
    fn non_canonical_s_rejected() {
        // Construct S = L (non-canonical encoding of 0 + L).
        let sk = SigningKey::from_label(b"c");
        let sig = sk.sign(b"msg");
        let mut forged = *sig.as_bytes();
        // Overwrite S with L itself (little endian).
        let l_bytes: [u8; 32] = {
            let mut b = [0u8; 32];
            for i in 0..32 {
                b[i] = (L_LIMBS[i / 8] >> ((i % 8) * 8)) as u8;
            }
            b
        };
        forged[32..].copy_from_slice(&l_bytes);
        assert!(!sk.verifying_key().verify(b"msg", &Signature::from_bytes(forged)));
    }

    #[test]
    fn from_label_is_deterministic_and_distinct() {
        let a1 = SigningKey::from_label(b"x");
        let a2 = SigningKey::from_label(b"x");
        let b = SigningKey::from_label(b"y");
        assert_eq!(a1.verifying_key(), a2.verifying_key());
        assert_ne!(a1.verifying_key(), b.verifying_key());
    }

    #[test]
    fn fe_d_matches_canonical_hex() {
        // d = 0x52036cee2b6ffe738cc740797779e89800700a4d4141d8ab75eb4dca135978a3
        let expect: Vec<u8> =
            from_hex("52036cee2b6ffe738cc740797779e89800700a4d4141d8ab75eb4dca135978a3")
                .into_iter()
                .rev()
                .collect();
        assert_eq!(fe_d().to_bytes().to_vec(), expect);
    }

    #[test]
    fn base_point_x_matches_canonical() {
        let b = base_point();
        let zi = b.z.invert();
        let x = b.x.mul(zi);
        let expect: [u8; 32] = [
            0x1a, 0xd5, 0x25, 0x8f, 0x60, 0x2d, 0x56, 0xc9, 0xb2, 0xa7, 0x25, 0x95, 0x60, 0xc7,
            0x2c, 0x69, 0x5c, 0xdc, 0xd6, 0xfd, 0x31, 0xe2, 0xa4, 0xc0, 0xfe, 0x53, 0x6e, 0xcd,
            0xd3, 0x36, 0x69, 0x21,
        ];
        assert_eq!(x.to_bytes(), expect);
    }

    #[test]
    fn double_matches_add() {
        let b = base_point();
        assert_eq!(b.double().compress(), b.add(b).compress());
    }

    #[test]
    fn field_invert_roundtrip() {
        let x = Fe::from_bytes(&[7u8; 32]);
        let xi = x.invert();
        assert!(x.mul(xi).eq(Fe::ONE));
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = fe_sqrt_m1();
        assert!(i.square().eq(Fe::ONE.neg()));
    }

    #[test]
    fn base_point_has_order_l() {
        // L * B = identity.
        let mut l_bytes = [0u8; 32];
        for i in 0..32 {
            l_bytes[i] = (L_LIMBS[i / 8] >> ((i % 8) * 8)) as u8;
        }
        let p = base_point().scalar_mul(&l_bytes);
        assert_eq!(p.compress(), Point::identity().compress());
    }

    #[test]
    fn point_add_neg_is_identity() {
        let b = base_point();
        let sum = b.add(&b.neg());
        assert_eq!(sum.compress(), Point::identity().compress());
    }

    #[test]
    fn scalar_mul_matches_repeated_add() {
        let b = base_point();
        let mut acc = Point::identity();
        for _ in 0..17 {
            acc = acc.add(b);
        }
        let mut k = [0u8; 32];
        k[0] = 17;
        assert_eq!(b.scalar_mul(&k).compress(), acc.compress());
    }

    #[test]
    fn reduce_mod_l_small_values_unchanged() {
        let mut v = [0u8; 64];
        v[0] = 42;
        let r = reduce_mod_l(&v);
        assert_eq!(r[0], 42);
        assert!(r[1..].iter().all(|&b| b == 0));
    }

    #[test]
    fn reduce_mod_l_l_is_zero() {
        let mut v = [0u8; 64];
        for i in 0..32 {
            v[i] = (L_LIMBS[i / 8] >> ((i % 8) * 8)) as u8;
        }
        let r = reduce_mod_l(&v);
        assert_eq!(r, [0u8; 32]);
    }

    // ------------------------------------------------------ batch verify

    /// Deterministic pseudo-random byte strings for batch tests.
    fn prng_bytes(seed: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        while out.len() < len {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            out.extend_from_slice(&x.to_le_bytes());
        }
        out.truncate(len);
        out
    }

    fn sample_batch(n: usize, seed: u64) -> (Vec<Vec<u8>>, Vec<(VerifyingKey, Signature)>) {
        let msgs: Vec<Vec<u8>> =
            (0..n).map(|i| prng_bytes(seed ^ i as u64, 32 + (i % 64))).collect();
        let sigs = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let sk = SigningKey::from_label(format!("batch-{seed}-{i}").as_bytes());
                (sk.verifying_key(), sk.sign(m))
            })
            .collect();
        (msgs, sigs)
    }

    fn as_items<'a>(msgs: &'a [Vec<u8>], sigs: &[(VerifyingKey, Signature)]) -> Vec<BatchItem<'a>> {
        msgs.iter().zip(sigs).map(|(m, (pk, sig))| (m.as_slice(), *pk, *sig)).collect()
    }

    #[test]
    fn batch_accepts_all_valid() {
        for n in [0usize, 1, 2, 3, 16, 64] {
            let (msgs, sigs) = sample_batch(n, 100 + n as u64);
            assert!(verify_batch(&as_items(&msgs, &sigs)), "n={n}");
        }
    }

    #[test]
    fn batch_rejects_single_forgery_at_any_position() {
        let n = 8;
        for bad in 0..n {
            let (msgs, mut sigs) = sample_batch(n, 7);
            let mut raw = *sigs[bad].1.as_bytes();
            raw[5] ^= 0x40; // corrupt R
            sigs[bad].1 = Signature::from_bytes(raw);
            assert!(!verify_batch(&as_items(&msgs, &sigs)), "forgery at {bad} accepted");
        }
    }

    #[test]
    fn batch_rejects_corrupted_s() {
        let (msgs, mut sigs) = sample_batch(16, 21);
        let mut raw = *sigs[9].1.as_bytes();
        raw[40] ^= 0x01; // corrupt S
        sigs[9].1 = Signature::from_bytes(raw);
        assert!(!verify_batch(&as_items(&msgs, &sigs)));
    }

    #[test]
    fn batch_rejects_swapped_messages() {
        let (mut msgs, sigs) = sample_batch(4, 3);
        msgs.swap(0, 3);
        assert!(!verify_batch(&as_items(&msgs, &sigs)));
    }

    #[test]
    fn batch_rejects_wrong_key() {
        let (msgs, mut sigs) = sample_batch(4, 11);
        sigs[2].0 = SigningKey::from_label(b"someone else").verifying_key();
        assert!(!verify_batch(&as_items(&msgs, &sigs)));
    }

    #[test]
    fn batch_rejects_non_canonical_s() {
        let (msgs, mut sigs) = sample_batch(3, 5);
        let mut raw = *sigs[1].1.as_bytes();
        for i in 0..32 {
            raw[32 + i] = (L_LIMBS[i / 8] >> ((i % 8) * 8)) as u8;
        }
        sigs[1].1 = Signature::from_bytes(raw);
        assert!(!verify_batch(&as_items(&msgs, &sigs)));
    }

    #[test]
    fn batch_rejects_invalid_point_encoding() {
        let (msgs, mut sigs) = sample_batch(3, 6);
        // A y-coordinate ≥ p with no valid x: all-ones is not on the curve.
        sigs[0].0 = VerifyingKey::from_bytes([0xffu8; 32]);
        assert!(!verify_batch(&as_items(&msgs, &sigs)));
    }

    #[test]
    fn batch_agrees_with_serial_on_randomized_inputs() {
        // Mix of valid and (sometimes) corrupted batches: the batch
        // verdict must match "all serial verifications pass".
        for trial in 0..12u64 {
            let n = 2 + (trial as usize % 6);
            let (msgs, mut sigs) = sample_batch(n, 1000 + trial);
            let corrupt = trial % 3 == 0;
            if corrupt {
                let victim = (trial as usize / 3) % n;
                let mut raw = *sigs[victim].1.as_bytes();
                raw[(trial as usize) % 64] ^= 1 << (trial % 8);
                sigs[victim].1 = Signature::from_bytes(raw);
            }
            let items = as_items(&msgs, &sigs);
            let serial_all = items.iter().all(|(m, pk, s)| pk.verify(m, s));
            assert_eq!(verify_batch(&items), serial_all, "trial {trial}");
        }
    }

    /// The order-2 torsion point (0, −1): its encoding is y = p − 1 with
    /// sign bit 0.
    fn order_two_point() -> Point {
        let mut enc = [0xffu8; 32];
        enc[0] = 0xec; // (2^255 - 19) - 1, little endian
        enc[31] = 0x7f;
        let t = Point::decompress(&enc).expect("order-2 point decodes");
        assert!(t.double().is_identity(), "sanity: T has order 2");
        t
    }

    /// Crafts a signature whose verification error is exactly the
    /// order-2 torsion point T: R' = rB + T, S = r + k·a. Cofactorless
    /// verification rejects it; cofactored accepts it. What matters for
    /// consensus is that serial and batch verification give the SAME
    /// verdict deterministically — under the pre-cofactored code, batch
    /// acceptance flipped per call with the random blinding coefficient.
    #[test]
    fn torsion_error_signature_serial_and_batch_agree_deterministically() {
        let sk = SigningKey::from_label(b"torsion");
        let msg = b"consensus-critical message";
        let t = order_two_point();
        // r from the usual nonce derivation (any scalar works).
        let r_scalar = {
            let mut h = Sha512::new();
            h.update(&sk.prefix);
            h.update(msg);
            reduce_mod_l(&h.finalize())
        };
        let r_bytes = base_point().scalar_mul(&r_scalar).add(&t).compress();
        let k = {
            let mut h = Sha512::new();
            h.update(&r_bytes);
            h.update(&sk.public.0);
            h.update(msg);
            reduce_mod_l(&h.finalize())
        };
        let s = sc_muladd(&k, &sk.scalar, &r_scalar);
        let mut raw = [0u8; SIGNATURE_LEN];
        raw[..32].copy_from_slice(&r_bytes);
        raw[32..].copy_from_slice(&s);
        let sig = Signature::from_bytes(raw);

        let serial = sk.public.verify(msg, &sig);
        assert!(serial, "cofactored serial verification accepts a pure-torsion error");
        // Batch verdict must equal the serial verdict on EVERY call
        // (fresh random blinding each time), alone and mixed into an
        // honest batch.
        let honest = SigningKey::from_label(b"honest");
        let honest_sig = honest.sign(msg);
        for _ in 0..20 {
            assert_eq!(verify_batch(&[(msg, sk.public, sig)]), serial);
            assert_eq!(
                verify_batch(&[(msg, honest.verifying_key(), honest_sig), (msg, sk.public, sig),]),
                serial,
                "mixed batch verdict must match serial"
            );
        }
    }

    #[test]
    fn base_mul_matches_generic_scalar_mul() {
        // Edge scalars plus pseudo-random ones: the static comb table
        // must agree with the generic windowed ladder everywhere.
        let mut scalars: Vec<[u8; 32]> = vec![[0u8; 32], [0xffu8; 32]];
        let mut one = [0u8; 32];
        one[0] = 1;
        scalars.push(one);
        let mut top = [0u8; 32];
        top[31] = 0xf0;
        scalars.push(top);
        for seed in 0..8u64 {
            let bytes = prng_bytes(seed.wrapping_mul(0x9e37), 32);
            scalars.push(bytes.try_into().unwrap());
        }
        for s in scalars {
            assert_eq!(
                base_mul(&s).compress(),
                base_point().scalar_mul(&s).compress(),
                "scalar {s:02x?}"
            );
        }
    }

    #[test]
    fn msm_matches_sum_of_scalar_muls() {
        let b = base_point();
        let p2 = b.double();
        let p3 = p2.add(b);
        let mut k1 = [0u8; 32];
        k1[0] = 200;
        k1[20] = 9;
        let mut k2 = [0u8; 32];
        k2[0] = 77;
        k2[31] = 3;
        let expect = p2.scalar_mul(&k1).add(&p3.scalar_mul(&k2));
        let got = multi_scalar_mul(&[(k1, p2), (k2, p3)]);
        assert_eq!(got.compress(), expect.compress());
    }

    #[test]
    fn msm_empty_and_zero_scalars() {
        assert!(multi_scalar_mul(&[]).is_identity());
        let z = [0u8; 32];
        assert!(multi_scalar_mul(&[(z, *base_point())]).is_identity());
    }

    #[test]
    fn is_identity_matches_compress() {
        assert!(Point::identity().is_identity());
        assert!(!base_point().is_identity());
        let sum = base_point().add(&base_point().neg());
        assert!(sum.is_identity());
    }

    #[test]
    fn sc_muladd_small() {
        // 3 * 4 + 5 = 17
        let mut a = [0u8; 32];
        a[0] = 3;
        let mut b = [0u8; 32];
        b[0] = 4;
        let mut c = [0u8; 32];
        c[0] = 5;
        let r = sc_muladd(&a, &b, &c);
        assert_eq!(r[0], 17);
        assert!(r[1..].iter().all(|&x| x == 0));
    }
}
