//! AES-CMAC (RFC 4493 / NIST SP 800-38B).
//!
//! The paper's best-performing replica-to-replica authentication scheme in
//! Figure 8 is `CMAC+AES` (clients keep signing with Ed25519). CMAC is a
//! block-cipher based MAC: subkeys K1/K2 are derived from `AES_K(0^128)` by
//! GF(2^128) doubling, the message is CBC-MAC'd, and the final block is
//! masked with K1 (complete block) or padded and masked with K2.

use crate::aes::{Aes128, BLOCK_LEN};
use crate::hmac::ct_eq;

/// Length of an AES-CMAC tag in bytes.
pub const CMAC_LEN: usize = BLOCK_LEN;

/// A reusable AES-CMAC keyed instance.
#[derive(Clone)]
pub struct AesCmac {
    cipher: Aes128,
    k1: [u8; 16],
    k2: [u8; 16],
}

/// Left-shift a 128-bit value by one bit.
fn shl_one(block: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    let mut carry = 0u8;
    for i in (0..16).rev() {
        out[i] = (block[i] << 1) | carry;
        carry = block[i] >> 7;
    }
    out
}

/// GF(2^128) doubling with the CMAC reduction polynomial (0x87).
fn dbl(block: &[u8; 16]) -> [u8; 16] {
    let msb = block[0] & 0x80;
    let mut out = shl_one(block);
    if msb != 0 {
        out[15] ^= 0x87;
    }
    out
}

impl AesCmac {
    /// Derives subkeys for `key`.
    pub fn new(key: &[u8; 16]) -> Self {
        let cipher = Aes128::new(key);
        let l = cipher.encrypt(&[0u8; 16]);
        let k1 = dbl(&l);
        let k2 = dbl(&k1);
        AesCmac { cipher, k1, k2 }
    }

    /// Computes the 16-byte tag over `msg`.
    pub fn tag(&self, msg: &[u8]) -> [u8; CMAC_LEN] {
        let n_blocks = msg.len().div_ceil(16).max(1);
        let complete_last = !msg.is_empty() && msg.len().is_multiple_of(16);

        let mut x = [0u8; 16];
        // All blocks but the last.
        for i in 0..n_blocks - 1 {
            for j in 0..16 {
                x[j] ^= msg[i * 16 + j];
            }
            self.cipher.encrypt_block(&mut x);
        }
        // Last block: mask with K1 (complete) or pad 10* and mask with K2.
        let mut last = [0u8; 16];
        let tail = &msg[(n_blocks - 1) * 16..];
        if complete_last {
            last.copy_from_slice(tail);
            for (l, k) in last.iter_mut().zip(&self.k1) {
                *l ^= k;
            }
        } else {
            last[..tail.len()].copy_from_slice(tail);
            last[tail.len()] = 0x80;
            for (l, k) in last.iter_mut().zip(&self.k2) {
                *l ^= k;
            }
        }
        for j in 0..16 {
            x[j] ^= last[j];
        }
        self.cipher.encrypt_block(&mut x);
        x
    }

    /// Verifies `tag` over `msg`.
    pub fn verify(&self, msg: &[u8], tag: &[u8]) -> bool {
        ct_eq(&self.tag(msg), tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    fn rfc_key() -> [u8; 16] {
        from_hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap()
    }

    // RFC 4493 test vectors.
    #[test]
    fn rfc4493_example1_empty() {
        let mac = AesCmac::new(&rfc_key());
        assert_eq!(mac.tag(b"").to_vec(), from_hex("bb1d6929e95937287fa37d129b756746"));
    }

    #[test]
    fn rfc4493_example2_16_bytes() {
        let mac = AesCmac::new(&rfc_key());
        let msg = from_hex("6bc1bee22e409f96e93d7e117393172a");
        assert_eq!(mac.tag(&msg).to_vec(), from_hex("070a16b46b4d4144f79bdd9dd04a287c"));
    }

    #[test]
    fn rfc4493_example3_40_bytes() {
        let mac = AesCmac::new(&rfc_key());
        let msg = from_hex(
            "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411",
        );
        assert_eq!(mac.tag(&msg).to_vec(), from_hex("dfa66747de9ae63030ca32611497c827"));
    }

    #[test]
    fn rfc4493_example4_64_bytes() {
        let mac = AesCmac::new(&rfc_key());
        let msg = from_hex(
            "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710",
        );
        assert_eq!(mac.tag(&msg).to_vec(), from_hex("51f0bebf7e3b9d92fc49741779363cfe"));
    }

    #[test]
    fn subkey_generation_vectors() {
        // RFC 4493 §4: K1/K2 for the example key.
        let mac = AesCmac::new(&rfc_key());
        assert_eq!(mac.k1.to_vec(), from_hex("fbeed618357133667c85e08f7236a8de"));
        assert_eq!(mac.k2.to_vec(), from_hex("f7ddac306ae266ccf90bc11ee46d513b"));
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let mac = AesCmac::new(&[3u8; 16]);
        let tag = mac.tag(b"hello world");
        assert!(mac.verify(b"hello world", &tag));
        assert!(!mac.verify(b"hello worle", &tag));
        let mut bad = tag;
        bad[5] ^= 0x40;
        assert!(!mac.verify(b"hello world", &bad));
    }

    #[test]
    fn distinct_lengths_distinct_tags() {
        let mac = AesCmac::new(&[9u8; 16]);
        let t15 = mac.tag(&[0u8; 15]);
        let t16 = mac.tag(&[0u8; 16]);
        let t17 = mac.tag(&[0u8; 17]);
        assert_ne!(t15, t16);
        assert_ne!(t16, t17);
    }
}
