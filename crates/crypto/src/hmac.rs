//! HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//!
//! HMAC is the default pairwise message-authentication code between
//! replicas: the paper's "MAC" configuration authenticates every
//! non-forwarded message (PROPOSE, SUPPORT, INFORM, NV-PROPOSE) with
//! symmetric cryptography.

use crate::sha2::{Sha256, SHA256_LEN};

/// Length of an HMAC-SHA256 tag in bytes.
pub const HMAC_LEN: usize = SHA256_LEN;

const BLOCK: usize = 64;

/// A reusable HMAC-SHA256 keyed instance.
///
/// Precomputes the inner/outer padded keys so repeated tagging with the same
/// key only costs the message hashing.
#[derive(Clone)]
pub struct HmacSha256 {
    ipad_state: Sha256,
    opad_key: [u8; BLOCK],
}

impl HmacSha256 {
    /// Creates an instance for `key` (any length; longer keys are hashed
    /// first, per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK];
        if key.len() > BLOCK {
            let d = crate::sha2::sha256(key);
            k[..SHA256_LEN].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK];
        let mut opad = [0u8; BLOCK];
        for i in 0..BLOCK {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut ipad_state = Sha256::new();
        ipad_state.update(&ipad);
        HmacSha256 { ipad_state, opad_key: opad }
    }

    /// Computes the tag over `msg`.
    pub fn tag(&self, msg: &[u8]) -> [u8; HMAC_LEN] {
        let mut inner = self.ipad_state.clone();
        inner.update(msg);
        let inner_hash = inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_hash);
        outer.finalize()
    }

    /// Verifies `tag` over `msg` in constant time with respect to the tag
    /// contents.
    pub fn verify(&self, msg: &[u8], tag: &[u8]) -> bool {
        let expect = self.tag(msg);
        ct_eq(&expect, tag)
    }
}

/// One-shot HMAC-SHA256.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; HMAC_LEN] {
    HmacSha256::new(key).tag(msg)
}

/// Constant-time byte-slice equality (length leak is fine).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(hex(&tag), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
    }

    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&tag), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(hex(&tag), "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(hex(&tag), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let mac = HmacSha256::new(b"secret");
        let tag = mac.tag(b"message");
        assert!(mac.verify(b"message", &tag));
        assert!(!mac.verify(b"message2", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!mac.verify(b"message", &bad));
        assert!(!mac.verify(b"message", &tag[..16]));
    }

    #[test]
    fn reusable_instance_matches_oneshot() {
        let mac = HmacSha256::new(b"k");
        for msg in [&b"a"[..], b"bb", b"ccc", &[0u8; 1000]] {
            assert_eq!(mac.tag(msg), hmac_sha256(b"k", msg));
        }
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }
}
