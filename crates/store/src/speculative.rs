//! The speculative state machine: execute now, maybe revert later.
//!
//! PoE replicas execute a batch as soon as it view-commits (Figure 3,
//! Line 20) — before global consensus is certain. If a view change later
//! installs a different history, replicas "rollback any executed
//! transactions not in NV-PROPOSE" (Figure 5, Line 14). This module
//! provides exactly that: each applied batch records an undo log; rollback
//! unwinds logs above the surviving sequence number in reverse order.
//!
//! Undo information for a prefix is discarded once a checkpoint makes it
//! stable — mirroring the paper's use of checkpoints to bound view-change
//! message size and state kept for recovery.

use crate::op::{Op, Transaction};
use crate::table::KvTable;
use poe_crypto::Digest;
use poe_kernel::ids::SeqNum;
use poe_kernel::request::Batch;
use poe_kernel::statemachine::{ExecOutcome, StateMachine};

/// One reversible effect of an executed operation.
#[derive(Clone, Debug)]
enum UndoRecord {
    /// Key had this previous value (Some) or was absent (None).
    Restore { key: Vec<u8>, prior: Option<Vec<u8>> },
}

/// A key-value state machine with per-batch undo logs.
pub struct SpeculativeStore {
    table: KvTable,
    /// Undo logs of applied-but-not-stable batches, in apply order.
    undo: Vec<(SeqNum, Vec<UndoRecord>)>,
    /// Highest applied sequence number.
    frontier: Option<SeqNum>,
    /// Highest sequence number declared stable (no longer revertible).
    stable: Option<SeqNum>,
    /// Count of malformed transactions rejected (kept deterministic:
    /// malformed input yields an error result, not divergence).
    rejected: u64,
}

impl SpeculativeStore {
    /// An empty store.
    pub fn new() -> SpeculativeStore {
        SpeculativeStore {
            table: KvTable::new(),
            undo: Vec::new(),
            frontier: None,
            stable: None,
            rejected: 0,
        }
    }

    /// A store pre-populated with the paper's YCSB-style table.
    pub fn with_ycsb_table(records: usize, value_size: usize) -> SpeculativeStore {
        SpeculativeStore { table: KvTable::populate_ycsb(records, value_size), ..Self::new() }
    }

    /// Read-only access to the underlying table.
    pub fn table(&self) -> &KvTable {
        &self.table
    }

    /// Number of batches whose undo logs are still held.
    pub fn revertible_batches(&self) -> usize {
        self.undo.len()
    }

    /// Count of malformed transactions seen.
    pub fn rejected_txns(&self) -> u64 {
        self.rejected
    }

    /// Applies one operation, consuming it: keys and values move into
    /// the table and the undo log instead of being re-cloned (the one
    /// remaining clone is the key needed by both).
    fn apply_op(&mut self, op: Op, log: &mut Vec<UndoRecord>) -> Vec<u8> {
        match op {
            Op::Get { key } => self.table.get(&key).cloned().unwrap_or_default(),
            Op::Put { key, value } => {
                let prior = self.table.put(key.clone(), value);
                log.push(UndoRecord::Restore { key, prior });
                Vec::new()
            }
            Op::Delete { key } => {
                let prior = self.table.delete(&key);
                log.push(UndoRecord::Restore { key, prior });
                Vec::new()
            }
            Op::ReadModifyWrite { key, value } => {
                let prior = self.table.put(key.clone(), value);
                let result = prior.clone().unwrap_or_default();
                log.push(UndoRecord::Restore { key, prior });
                result
            }
        }
    }

    fn unwind(table: &mut KvTable, log: Vec<UndoRecord>) {
        for record in log.into_iter().rev() {
            match record {
                UndoRecord::Restore { key, prior: Some(v) } => {
                    table.put(key, v);
                }
                UndoRecord::Restore { key, prior: None } => {
                    table.delete(&key);
                }
            }
        }
    }

    /// The table as it stood at the last stabilized sequence number:
    /// a clone of the live table with every still-revertible batch
    /// unwound (newest first).
    fn table_at_stable(&self) -> KvTable {
        let mut table = self.table.clone();
        for (_, log) in self.undo.iter().rev() {
            Self::unwind(&mut table, log.clone());
        }
        table
    }

    /// The application-state digest at the last stabilized sequence
    /// number (what a freshly installed checkpoint of this store would
    /// report as its [`StateMachine::state_digest`]).
    pub fn stable_state_digest(&self) -> Digest {
        self.table_at_stable().content_digest()
    }
}

impl Default for SpeculativeStore {
    fn default() -> Self {
        SpeculativeStore::new()
    }
}

impl StateMachine for SpeculativeStore {
    fn apply(&mut self, seq: SeqNum, batch: &Batch) -> ExecOutcome {
        debug_assert!(
            self.frontier.is_none_or(|f| seq > f),
            "batches must be applied in increasing sequence order"
        );
        let mut log = Vec::new();
        let mut results = Vec::with_capacity(batch.len());
        for req in &batch.requests {
            match Transaction::decode(&req.op) {
                Ok(txn) if txn.ops.len() == 1 => {
                    // Single-op transactions (the whole YCSB workload)
                    // skip the concatenation buffer.
                    let op = txn.ops.into_iter().next().expect("len checked");
                    results.push(self.apply_op(op, &mut log).into());
                }
                Ok(txn) => {
                    // Result of a transaction: concatenated op results,
                    // materialized once into a shared view every INFORM
                    // clones for free.
                    let mut result = Vec::new();
                    for op in txn.ops {
                        result.extend_from_slice(&self.apply_op(op, &mut log));
                    }
                    results.push(result.into());
                }
                Err(_) => {
                    self.rejected += 1;
                    results.push(b"ERR:malformed"[..].into());
                }
            }
        }
        self.undo.push((seq, log));
        self.frontier = Some(seq);
        ExecOutcome { results }
    }

    fn rollback_to(&mut self, keep_up_to: Option<SeqNum>) {
        while let Some((applied_seq, _)) = self.undo.last() {
            if keep_up_to.is_some_and(|keep| *applied_seq <= keep) {
                break;
            }
            let (_, log) = self.undo.pop().expect("checked non-empty");
            Self::unwind(&mut self.table, log);
        }
        // After unwinding, the applied frontier is the newest surviving
        // batch: either the top of the undo stack or the stable prefix.
        self.frontier = self.undo.last().map(|(s, _)| *s).or(self.stable);
    }

    fn state_digest(&self) -> Digest {
        self.table.content_digest()
    }

    fn stabilize(&mut self, seq: SeqNum) {
        let effective = match self.frontier {
            Some(f) => SeqNum(seq.0.min(f.0)),
            None => return,
        };
        self.undo.retain(|(s, _)| *s > effective);
        self.stable = Some(match self.stable {
            Some(st) => SeqNum(st.0.max(effective.0)),
            None => effective,
        });
    }

    fn applied_up_to(&self) -> Option<SeqNum> {
        self.frontier
    }

    fn stable_state_digest(&self) -> Digest {
        SpeculativeStore::stable_state_digest(self)
    }

    /// Canonical image: `u64` entry count, then `(u32 key_len, key,
    /// u32 value_len, value)` per entry in ascending key order. Sorting
    /// makes the bytes identical across replicas even though the backing
    /// map iterates in arbitrary order.
    fn checkpoint_image(&self) -> Option<Vec<u8>> {
        let table = self.table_at_stable();
        let entries = table.sorted_entries();
        let payload: usize = entries.iter().map(|(k, v)| 8 + k.len() + v.len()).sum();
        let mut out = Vec::with_capacity(8 + payload);
        out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        for (k, v) in entries {
            out.extend_from_slice(&(k.len() as u32).to_le_bytes());
            out.extend_from_slice(k);
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v);
        }
        Some(out)
    }

    fn install_checkpoint(&mut self, seq: SeqNum, image: &[u8]) -> bool {
        fn take<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
            if buf.len() < n {
                return None;
            }
            let (head, rest) = buf.split_at(n);
            *buf = rest;
            Some(head)
        }
        let mut buf = image;
        let Some(count) = take(&mut buf, 8) else { return false };
        let count = u64::from_le_bytes(count.try_into().expect("8 bytes"));
        let mut table = KvTable::new();
        for _ in 0..count {
            let Some(klen) = take(&mut buf, 4) else { return false };
            let klen = u32::from_le_bytes(klen.try_into().expect("4 bytes")) as usize;
            let Some(key) = take(&mut buf, klen) else { return false };
            let key = key.to_vec();
            let Some(vlen) = take(&mut buf, 4) else { return false };
            let vlen = u32::from_le_bytes(vlen.try_into().expect("4 bytes")) as usize;
            let Some(value) = take(&mut buf, vlen) else { return false };
            table.put(key, value.to_vec());
        }
        if !buf.is_empty() {
            return false;
        }
        self.table = table;
        self.undo.clear();
        self.frontier = Some(seq);
        self.stable = Some(seq);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_kernel::ids::ClientId;
    use poe_kernel::request::ClientRequest;
    use std::sync::Arc;

    fn batch_of(seq_tag: u64, txns: Vec<Transaction>) -> Arc<Batch> {
        let requests = txns
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                ClientRequest::new(ClientId(0), seq_tag * 1000 + i as u64, t.encode(), None)
            })
            .collect();
        Batch::new(requests)
    }

    #[test]
    fn apply_returns_results() {
        let mut s = SpeculativeStore::new();
        let out = s.apply(
            SeqNum(0),
            &batch_of(0, vec![Transaction::put("k", "v1"), Transaction::get("k")]),
        );
        assert_eq!(&out.results[0][..], b"");
        assert_eq!(&out.results[1][..], b"v1");
        assert_eq!(s.applied_up_to(), Some(SeqNum(0)));
    }

    #[test]
    fn rmw_returns_prior() {
        let mut s = SpeculativeStore::new();
        s.apply(SeqNum(0), &batch_of(0, vec![Transaction::put("k", "old")]));
        let out = s.apply(
            SeqNum(1),
            &batch_of(
                1,
                vec![Transaction::single(Op::ReadModifyWrite {
                    key: b"k".to_vec(),
                    value: b"new".to_vec(),
                })],
            ),
        );
        assert_eq!(&out.results[0][..], b"old");
        assert_eq!(s.table().get(b"k"), Some(&b"new".to_vec()));
    }

    #[test]
    fn rollback_restores_exact_state() {
        let mut s = SpeculativeStore::new();
        s.apply(SeqNum(0), &batch_of(0, vec![Transaction::put("a", "1")]));
        let digest_after_0 = s.state_digest();

        s.apply(
            SeqNum(1),
            &batch_of(1, vec![Transaction::put("a", "2"), Transaction::put("b", "x")]),
        );
        s.apply(
            SeqNum(2),
            &batch_of(2, vec![Transaction::single(Op::Delete { key: b"a".to_vec() })]),
        );
        assert_ne!(s.state_digest(), digest_after_0);

        s.rollback_to(Some(SeqNum(0)));
        assert_eq!(s.state_digest(), digest_after_0);
        assert_eq!(s.table().get(b"a"), Some(&b"1".to_vec()));
        assert_eq!(s.table().get(b"b"), None);
        assert_eq!(s.applied_up_to(), Some(SeqNum(0)));
    }

    #[test]
    fn rollback_is_noop_for_future_seq() {
        let mut s = SpeculativeStore::new();
        s.apply(SeqNum(0), &batch_of(0, vec![Transaction::put("a", "1")]));
        let d = s.state_digest();
        s.rollback_to(Some(SeqNum(10)));
        assert_eq!(s.state_digest(), d);
        assert_eq!(s.applied_up_to(), Some(SeqNum(0)));
    }

    #[test]
    fn execute_then_rollback_all_is_identity() {
        let mut s = SpeculativeStore::with_ycsb_table(100, 16);
        let base = s.state_digest();
        for round in 0..5u64 {
            s.apply(
                SeqNum(round),
                &batch_of(
                    round,
                    vec![
                        Transaction::put(crate::table::ycsb_key(7), format!("v{round}")),
                        Transaction::single(Op::Delete { key: crate::table::ycsb_key(8) }),
                    ],
                ),
            );
        }
        s.rollback_to(None);
        assert_eq!(s.state_digest(), base);
        assert_eq!(s.applied_up_to(), None);
        assert_eq!(s.revertible_batches(), 0);
    }

    #[test]
    fn stabilize_prevents_rollback_below() {
        let mut s = SpeculativeStore::new();
        s.apply(SeqNum(0), &batch_of(0, vec![Transaction::put("a", "1")]));
        s.apply(SeqNum(1), &batch_of(1, vec![Transaction::put("a", "2")]));
        s.stabilize(SeqNum(1));
        assert_eq!(s.revertible_batches(), 0);
        // Rollback below the stable point has no effect on state.
        s.rollback_to(Some(SeqNum(0)));
        assert_eq!(s.table().get(b"a"), Some(&b"2".to_vec()));
        s.rollback_to(None);
        assert_eq!(s.table().get(b"a"), Some(&b"2".to_vec()));
        assert_eq!(s.applied_up_to(), Some(SeqNum(1)));
    }

    #[test]
    fn malformed_txn_yields_error_result() {
        let mut s = SpeculativeStore::new();
        let bad =
            Batch::new(vec![ClientRequest::new(ClientId(0), 1, vec![0xffu8, 0xff, 0xff], None)]);
        let out = s.apply(SeqNum(0), &bad);
        assert_eq!(&out.results[0][..], b"ERR:malformed");
        assert_eq!(s.rejected_txns(), 1);
    }

    #[test]
    fn checkpoint_image_roundtrip_excludes_speculative_suffix() {
        let mut a = SpeculativeStore::with_ycsb_table(20, 8);
        a.apply(SeqNum(0), &batch_of(0, vec![Transaction::put("a", "1")]));
        a.apply(SeqNum(1), &batch_of(1, vec![Transaction::put("b", "2")]));
        a.stabilize(SeqNum(1));
        let stable_digest = a.state_digest();
        // A speculative batch above the stable point must not leak into
        // the image.
        a.apply(SeqNum(2), &batch_of(2, vec![Transaction::put("a", "dirty")]));
        assert_ne!(a.state_digest(), stable_digest);
        assert_eq!(a.stable_state_digest(), stable_digest);

        let img = a.checkpoint_image().expect("supported");
        let mut b = SpeculativeStore::new();
        assert!(b.install_checkpoint(SeqNum(1), &img));
        assert_eq!(b.state_digest(), stable_digest);
        assert_eq!(b.applied_up_to(), Some(SeqNum(1)));
        assert_eq!(b.table().get(b"a"), Some(&b"1".to_vec()));
        // Installed state is stable: nothing above it can be reverted.
        b.rollback_to(None);
        assert_eq!(b.state_digest(), stable_digest);
    }

    #[test]
    fn checkpoint_images_are_byte_identical_across_replicas() {
        let mk = || {
            let mut s = SpeculativeStore::with_ycsb_table(30, 8);
            for round in 0..6u64 {
                s.apply(
                    SeqNum(round),
                    &batch_of(
                        round,
                        vec![Transaction::put(crate::table::ycsb_key(round as usize % 30), "w")],
                    ),
                );
            }
            s.stabilize(SeqNum(3));
            s
        };
        assert_eq!(mk().checkpoint_image(), mk().checkpoint_image());
    }

    #[test]
    fn malformed_checkpoint_image_rejected() {
        let mut s = SpeculativeStore::new();
        assert!(!s.install_checkpoint(SeqNum(0), &[1, 2, 3]));
        // Truncated entry after a valid count.
        let mut img = 1u64.to_le_bytes().to_vec();
        img.extend_from_slice(&100u32.to_le_bytes());
        assert!(!s.install_checkpoint(SeqNum(0), &img));
        // Trailing garbage after a well-formed image.
        let mut ok = SpeculativeStore::new().checkpoint_image().expect("supported");
        ok.push(0);
        assert!(!s.install_checkpoint(SeqNum(0), &ok));
    }

    #[test]
    fn deterministic_across_replicas() {
        let mk = || {
            let mut s = SpeculativeStore::with_ycsb_table(50, 8);
            for round in 0..10u64 {
                s.apply(
                    SeqNum(round),
                    &batch_of(
                        round,
                        vec![
                            Transaction::put(crate::table::ycsb_key((round as usize) % 50), "w"),
                            Transaction::get(crate::table::ycsb_key(((round + 3) as usize) % 50)),
                        ],
                    ),
                );
            }
            s
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.state_digest(), b.state_digest());
    }
}
