//! The transaction language and its wire encoding.
//!
//! Client requests carry a serialized [`Transaction`]: a short sequence of
//! key-value operations. The YCSB workload of the paper issues
//! single-operation transactions (90% writes, Zipfian-skewed keys); the
//! richer multi-op form is exercised by the banking example and tests.

use std::fmt;

/// One key-value operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Op {
    /// Read a key; result is the value (empty if absent).
    Get {
        /// Key to read.
        key: Vec<u8>,
    },
    /// Write a key; result is empty.
    Put {
        /// Key to write.
        key: Vec<u8>,
        /// New value.
        value: Vec<u8>,
    },
    /// Remove a key; result is empty.
    Delete {
        /// Key to remove.
        key: Vec<u8>,
    },
    /// Read a key and overwrite it; result is the *previous* value.
    ReadModifyWrite {
        /// Key to update.
        key: Vec<u8>,
        /// New value.
        value: Vec<u8>,
    },
}

impl Op {
    /// The key this operation touches.
    pub fn key(&self) -> &[u8] {
        match self {
            Op::Get { key }
            | Op::Put { key, .. }
            | Op::Delete { key }
            | Op::ReadModifyWrite { key, .. } => key,
        }
    }

    /// Whether the operation mutates state.
    pub fn is_write(&self) -> bool {
        !matches!(self, Op::Get { .. })
    }
}

/// A transaction `T`: an ordered list of operations executed atomically.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Transaction {
    /// The operations, applied in order.
    pub ops: Vec<Op>,
}

/// Error decoding a transaction from request bytes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TxnDecodeError;

impl fmt::Display for TxnDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed transaction bytes")
    }
}

impl std::error::Error for TxnDecodeError {}

impl Transaction {
    /// A transaction of a single operation.
    pub fn single(op: Op) -> Transaction {
        Transaction { ops: vec![op] }
    }

    /// Convenience: `GET key`.
    pub fn get(key: impl Into<Vec<u8>>) -> Transaction {
        Transaction::single(Op::Get { key: key.into() })
    }

    /// Convenience: `PUT key value`.
    pub fn put(key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) -> Transaction {
        Transaction::single(Op::Put { key: key.into(), value: value.into() })
    }

    /// Serializes to the byte form carried in [`poe_kernel::ClientRequest`].
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.ops.len() * 24);
        out.extend_from_slice(&(self.ops.len() as u16).to_le_bytes());
        for op in &self.ops {
            match op {
                Op::Get { key } => {
                    out.push(0);
                    put_slice16(&mut out, key);
                }
                Op::Put { key, value } => {
                    out.push(1);
                    put_slice16(&mut out, key);
                    put_slice32(&mut out, value);
                }
                Op::Delete { key } => {
                    out.push(2);
                    put_slice16(&mut out, key);
                }
                Op::ReadModifyWrite { key, value } => {
                    out.push(3);
                    put_slice16(&mut out, key);
                    put_slice32(&mut out, value);
                }
            }
        }
        out
    }

    /// Parses the byte form.
    pub fn decode(buf: &[u8]) -> Result<Transaction, TxnDecodeError> {
        let mut pos = 0usize;
        let count = take(buf, &mut pos, 2).map(|s| u16::from_le_bytes([s[0], s[1]]))? as usize;
        let mut ops = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let tag = take(buf, &mut pos, 1)?[0];
            let op = match tag {
                0 => Op::Get { key: get_slice16(buf, &mut pos)? },
                1 => {
                    Op::Put { key: get_slice16(buf, &mut pos)?, value: get_slice32(buf, &mut pos)? }
                }
                2 => Op::Delete { key: get_slice16(buf, &mut pos)? },
                3 => Op::ReadModifyWrite {
                    key: get_slice16(buf, &mut pos)?,
                    value: get_slice32(buf, &mut pos)?,
                },
                _ => return Err(TxnDecodeError),
            };
            ops.push(op);
        }
        if pos != buf.len() {
            return Err(TxnDecodeError);
        }
        Ok(Transaction { ops })
    }
}

fn put_slice16(out: &mut Vec<u8>, s: &[u8]) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s);
}

fn put_slice32(out: &mut Vec<u8>, s: &[u8]) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s);
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], TxnDecodeError> {
    let slice = buf.get(*pos..*pos + n).ok_or(TxnDecodeError)?;
    *pos += n;
    Ok(slice)
}

fn get_slice16(buf: &[u8], pos: &mut usize) -> Result<Vec<u8>, TxnDecodeError> {
    let len = take(buf, pos, 2).map(|s| u16::from_le_bytes([s[0], s[1]]))? as usize;
    take(buf, pos, len).map(|s| s.to_vec())
}

fn get_slice32(buf: &[u8], pos: &mut usize) -> Result<Vec<u8>, TxnDecodeError> {
    let len = take(buf, pos, 4).map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))? as usize;
    take(buf, pos, len).map(|s| s.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Transaction {
        Transaction {
            ops: vec![
                Op::Get { key: b"user1".to_vec() },
                Op::Put { key: b"user2".to_vec(), value: vec![9; 100] },
                Op::Delete { key: b"user3".to_vec() },
                Op::ReadModifyWrite { key: b"user4".to_vec(), value: b"new".to_vec() },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let txn = sample();
        let bytes = txn.encode();
        assert_eq!(Transaction::decode(&bytes).unwrap(), txn);
    }

    #[test]
    fn empty_transaction_roundtrip() {
        let txn = Transaction::default();
        assert_eq!(Transaction::decode(&txn.encode()).unwrap(), txn);
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(Transaction::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert!(Transaction::decode(&bytes).is_err());
    }

    #[test]
    fn bad_tag_rejected() {
        let mut bytes = Transaction::get("k").encode();
        bytes[2] = 42; // op tag
        assert!(Transaction::decode(&bytes).is_err());
    }

    #[test]
    fn helpers() {
        let g = Transaction::get("k");
        assert_eq!(g.ops.len(), 1);
        assert!(!g.ops[0].is_write());
        assert_eq!(g.ops[0].key(), b"k");
        let p = Transaction::put("k", "v");
        assert!(p.ops[0].is_write());
    }
}
