//! The in-memory record table with an incremental state digest.
//!
//! Replicas compare application state via digests (checkpoint messages,
//! view-change validation). Rehashing a 500 k-record YCSB table per
//! checkpoint would dwarf consensus costs, so the table maintains a
//! *set hash*: the XOR of `H(key ‖ value)` over all live entries. XOR is
//! self-inverse and commutative, so inserts, overwrites, and deletes each
//! update the digest in O(1), and two replicas with equal contents agree
//! on the digest regardless of insertion order.

use poe_crypto::digest::{digest_concat, Digest, DIGEST_LEN};
use std::collections::HashMap;

fn entry_hash(key: &[u8], value: &[u8]) -> [u8; DIGEST_LEN] {
    digest_concat(&[b"entry", key, value]).0
}

fn xor_into(acc: &mut [u8; DIGEST_LEN], h: &[u8; DIGEST_LEN]) {
    for (a, b) in acc.iter_mut().zip(h.iter()) {
        *a ^= b;
    }
}

/// A key-value table with O(1) incremental state digest.
#[derive(Clone, Debug, Default)]
pub struct KvTable {
    entries: HashMap<Vec<u8>, Vec<u8>>,
    set_hash: [u8; DIGEST_LEN],
}

impl KvTable {
    /// An empty table.
    pub fn new() -> KvTable {
        KvTable::default()
    }

    /// A table pre-populated like the paper's YCSB setup: `records`
    /// sequentially named keys (`user0000001`…) with `value_size`-byte
    /// deterministic values. All replicas call this with the same
    /// arguments and obtain identical state.
    pub fn populate_ycsb(records: usize, value_size: usize) -> KvTable {
        let mut t = KvTable::new();
        for i in 0..records {
            let key = ycsb_key(i);
            let mut value = vec![0u8; value_size];
            // Deterministic, record-dependent fill.
            for (j, b) in value.iter_mut().enumerate() {
                *b = ((i.wrapping_mul(31).wrapping_add(j)) % 251) as u8;
            }
            t.put(key, value);
        }
        t
    }

    /// Reads a key.
    pub fn get(&self, key: &[u8]) -> Option<&Vec<u8>> {
        self.entries.get(key)
    }

    /// Writes a key, returning the previous value.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) -> Option<Vec<u8>> {
        let new_hash = entry_hash(&key, &value);
        let old = self.entries.insert(key.clone(), value);
        if let Some(old_value) = &old {
            let old_hash = entry_hash(&key, old_value);
            xor_into(&mut self.set_hash, &old_hash);
        }
        xor_into(&mut self.set_hash, &new_hash);
        old
    }

    /// Deletes a key, returning the previous value.
    pub fn delete(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let old = self.entries.remove(key);
        if let Some(old_value) = &old {
            let old_hash = entry_hash(key, old_value);
            xor_into(&mut self.set_hash, &old_hash);
        }
        old
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The incremental content digest.
    pub fn content_digest(&self) -> Digest {
        Digest::from_bytes(self.set_hash)
    }

    /// All live entries sorted by key. The backing map iterates in
    /// nondeterministic order, so anything serializing table contents
    /// (checkpoint images compared byte-for-byte across replicas) must
    /// go through this.
    pub fn sorted_entries(&self) -> Vec<(&Vec<u8>, &Vec<u8>)> {
        let mut entries: Vec<_> = self.entries.iter().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
        entries
    }

    /// Recomputes the digest from scratch (test oracle for the
    /// incremental maintenance).
    pub fn recompute_digest(&self) -> Digest {
        let mut acc = [0u8; DIGEST_LEN];
        for (k, v) in &self.entries {
            xor_into(&mut acc, &entry_hash(k, v));
        }
        Digest::from_bytes(acc)
    }
}

/// The YCSB-style key for record `i`.
pub fn ycsb_key(i: usize) -> Vec<u8> {
    format!("user{i:010}").into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut t = KvTable::new();
        assert!(t.is_empty());
        assert_eq!(t.put(b"a".to_vec(), b"1".to_vec()), None);
        assert_eq!(t.get(b"a"), Some(&b"1".to_vec()));
        assert_eq!(t.put(b"a".to_vec(), b"2".to_vec()), Some(b"1".to_vec()));
        assert_eq!(t.delete(b"a"), Some(b"2".to_vec()));
        assert_eq!(t.get(b"a"), None);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn digest_matches_recompute_through_mutations() {
        let mut t = KvTable::new();
        for i in 0..50usize {
            t.put(format!("k{i}").into_bytes(), vec![i as u8; 8]);
            assert_eq!(t.content_digest(), t.recompute_digest(), "after put {i}");
        }
        for i in (0..50usize).step_by(3) {
            t.delete(format!("k{i}").as_bytes());
            assert_eq!(t.content_digest(), t.recompute_digest(), "after delete {i}");
        }
        for i in (0..50usize).step_by(7) {
            t.put(format!("k{i}").into_bytes(), vec![99; 4]);
            assert_eq!(t.content_digest(), t.recompute_digest(), "after overwrite {i}");
        }
    }

    #[test]
    fn digest_is_order_independent() {
        let mut a = KvTable::new();
        a.put(b"x".to_vec(), b"1".to_vec());
        a.put(b"y".to_vec(), b"2".to_vec());
        let mut b = KvTable::new();
        b.put(b"y".to_vec(), b"2".to_vec());
        b.put(b"x".to_vec(), b"1".to_vec());
        assert_eq!(a.content_digest(), b.content_digest());
    }

    #[test]
    fn digest_detects_content_difference() {
        let mut a = KvTable::new();
        a.put(b"x".to_vec(), b"1".to_vec());
        let mut b = KvTable::new();
        b.put(b"x".to_vec(), b"2".to_vec());
        assert_ne!(a.content_digest(), b.content_digest());
    }

    #[test]
    fn empty_digest_after_put_delete_roundtrip() {
        let mut t = KvTable::new();
        let empty = t.content_digest();
        t.put(b"k".to_vec(), b"v".to_vec());
        assert_ne!(t.content_digest(), empty);
        t.delete(b"k");
        assert_eq!(t.content_digest(), empty);
    }

    #[test]
    fn populate_is_deterministic() {
        let a = KvTable::populate_ycsb(100, 32);
        let b = KvTable::populate_ycsb(100, 32);
        assert_eq!(a.len(), 100);
        assert_eq!(a.content_digest(), b.content_digest());
        assert!(a.get(&ycsb_key(0)).is_some());
        assert!(a.get(&ycsb_key(99)).is_some());
        assert!(a.get(&ycsb_key(100)).is_none());
    }

    #[test]
    fn ycsb_keys_are_distinct_and_sorted_width() {
        assert_eq!(ycsb_key(1), b"user0000000001".to_vec());
        assert_ne!(ycsb_key(1), ycsb_key(10));
    }
}
