//! # poe-store
//!
//! The replicated application substrate: a YCSB-style in-memory key-value
//! table with **speculative execution support**.
//!
//! PoE executes batches *before* consensus finishes (ingredient I1 of the
//! paper) and must be able to revert them if a view change shows they did
//! not survive (ingredient I2). [`SpeculativeStore`] therefore keeps an
//! undo log per applied batch and implements
//! [`poe_kernel::StateMachine::rollback_to`] exactly; undo information is
//! garbage-collected when checkpoints declare prefixes stable.
//!
//! * [`op`] — the transaction language (GET/PUT/DELETE/READ-MODIFY-WRITE)
//!   and its byte encoding (client requests carry serialized
//!   [`op::Transaction`]s).
//! * [`table`] — the hash table with an incrementally maintained set-hash
//!   state digest (O(1) per write, deterministic across replicas).
//! * [`speculative`] — the [`SpeculativeStore`] state machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod op;
pub mod speculative;
pub mod table;

pub use op::{Op, Transaction};
pub use speculative::SpeculativeStore;
pub use table::KvTable;
