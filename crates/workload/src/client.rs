//! The client automaton.
//!
//! Clients submit signed requests to the primary, keep a bounded number in
//! flight (closed loop), collect replies under a per-protocol
//! [`ReplyPolicy`], and retransmit by broadcasting to all replicas when a
//! timeout expires — the fallback path of paper §II-B: "If client c does
//! not know the current primary or does not get any timely response … it
//! can broadcast its request to all replicas".
//!
//! Zyzzyva's client is special: it *participates* in consensus. It waits
//! for speculative responses from **all n** replicas; if only `2f+1..n`
//! matching responses arrive within the fast-path window, it assembles a
//! commit certificate, broadcasts it, and waits for `f+1` local-commits.
//! This client-side burden is exactly why a single crashed backup
//! devastates Zyzzyva in Figure 9(a).

use poe_crypto::provider::CryptoProvider;
use poe_crypto::Digest;
use poe_kernel::automaton::{ClientAutomaton, Event, Notification, Outbox, RequestSource};
use poe_kernel::ids::{ClientId, SeqNum, View};
use poe_kernel::messages::{ClientReply, ProtocolMsg, ReplyKind, ZyzCommitCert};
use poe_kernel::quorum::MatchingVotes;
use poe_kernel::request::ClientRequest;
use poe_kernel::time::{Duration, Time};
use poe_kernel::timer::TimerKind;
use poe_kernel::wire::WireBytes;
use std::collections::HashMap;

/// How many replies complete a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplyPolicy {
    /// Complete after `quorum` identical replies from distinct replicas
    /// (PoE: `nf`; PBFT/HotStuff: `f+1`; SBFT: 1 certificate-bearing ack).
    Matching {
        /// Number of identical replies required.
        quorum: usize,
    },
    /// The Zyzzyva twin-path client.
    Zyzzyva,
}

/// Client configuration.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// This client's id.
    pub id: ClientId,
    /// Number of replicas.
    pub n: usize,
    /// Fault bound `f`.
    pub f: usize,
    /// Reply collection policy.
    pub policy: ReplyPolicy,
    /// Maximum requests in flight (1 = fully closed loop, the Fig. 9(k,l)
    /// configuration).
    pub outstanding: usize,
    /// Stop after this many completions (`None` = unbounded).
    pub max_requests: Option<u64>,
    /// Retransmission timeout (paper uses 3 s).
    pub retry: Duration,
    /// Zyzzyva fast-path window before falling back to the commit path.
    pub zyz_fast_window: Duration,
    /// Whether requests are signed (false only in `CryptoMode::None`).
    pub sign: bool,
}

impl ClientConfig {
    /// Defaults for a protocol needing `quorum` matching replies.
    pub fn matching(id: ClientId, n: usize, f: usize, quorum: usize) -> ClientConfig {
        ClientConfig {
            id,
            n,
            f,
            policy: ReplyPolicy::Matching { quorum },
            outstanding: 1,
            max_requests: None,
            retry: Duration::from_secs(3),
            zyz_fast_window: Duration::from_secs(3),
            sign: true,
        }
    }

    /// Defaults for a Zyzzyva client.
    pub fn zyzzyva(id: ClientId, n: usize, f: usize) -> ClientConfig {
        ClientConfig { policy: ReplyPolicy::Zyzzyva, ..Self::matching(id, n, f, n) }
    }

    /// Sets the in-flight window.
    pub fn with_outstanding(mut self, outstanding: usize) -> Self {
        assert!(outstanding >= 1);
        self.outstanding = outstanding;
        self
    }

    /// Bounds the number of requests.
    pub fn with_max_requests(mut self, max: u64) -> Self {
        self.max_requests = Some(max);
        self
    }

    /// Sets the retransmission timeout.
    pub fn with_retry(mut self, retry: Duration) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the Zyzzyva fast-path window.
    pub fn with_zyz_window(mut self, w: Duration) -> Self {
        self.zyz_fast_window = w;
        self
    }
}

/// Reply-matching key: identical means same (view, seq, result) — and,
/// for Zyzzyva speculative responses, the same history digest. Replies
/// are matched by *value* (the result is a cheap shared view), not by
/// hashing: reply collection runs once per reply per request, and a
/// tuple compare beats a digest there.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
struct ReplyKey {
    view: View,
    seq: SeqNum,
    /// `None` outside Zyzzyva's speculative fast path.
    history: Option<Digest>,
    result: WireBytes,
}

struct InFlight {
    request: ClientRequest,
    submitted_at: Time,
    votes: MatchingVotes<ReplyKey>,
    commit_sent: bool,
    local_commits: MatchingVotes<ReplyKey>,
    retries: u32,
}

/// The workload-driven client automaton.
pub struct WorkloadClient {
    cfg: ClientConfig,
    crypto: CryptoProvider,
    source: Box<dyn RequestSource>,
    next_req_id: u64,
    inflight: HashMap<u64, InFlight>,
    completed: u64,
    view_hint: View,
    exhausted: bool,
}

impl WorkloadClient {
    /// Creates a client driving `source` under `cfg`, signing with
    /// `crypto`.
    pub fn new(
        cfg: ClientConfig,
        crypto: CryptoProvider,
        source: Box<dyn RequestSource>,
    ) -> WorkloadClient {
        WorkloadClient {
            cfg,
            crypto,
            source,
            next_req_id: 0,
            inflight: HashMap::new(),
            completed: 0,
            view_hint: View::ZERO,
            exhausted: false,
        }
    }

    /// The client's view of who is primary.
    pub fn view_hint(&self) -> View {
        self.view_hint
    }

    /// True once this client has nothing left to do: the workload budget
    /// *or* the request source is exhausted (whichever comes first) and
    /// no request is in flight. Wall-clock runtimes use this as the
    /// client thread's exit condition.
    pub fn is_done(&self) -> bool {
        let budget_spent =
            self.exhausted || self.cfg.max_requests.is_some_and(|max| self.completed >= max);
        budget_spent && self.inflight.is_empty()
    }

    fn budget_left(&self) -> bool {
        match self.cfg.max_requests {
            Some(max) => self.completed + self.inflight.len() as u64 > max,
            None => false,
        }
    }

    fn may_submit(&self) -> bool {
        if self.exhausted {
            return false;
        }
        if let Some(max) = self.cfg.max_requests {
            if self.completed + self.inflight.len() as u64 >= max {
                return false;
            }
        }
        self.inflight.len() < self.cfg.outstanding
    }

    fn submit_up_to_window(&mut self, now: Time, out: &mut Outbox) {
        while self.may_submit() {
            let Some(op) = self.source.next_op(self.cfg.id) else {
                self.exhausted = true;
                break;
            };
            let req_id = self.next_req_id;
            self.next_req_id += 1;
            let signature = self.cfg.sign.then(|| {
                let bytes = ClientRequest::signing_bytes(self.cfg.id, req_id, &op);
                self.crypto.sign(&bytes)
            });
            let request = ClientRequest::new(self.cfg.id, req_id, op, signature);
            let primary = self.view_hint.primary(self.cfg.n);
            out.send(primary, ProtocolMsg::Request(request.clone()));
            out.set_timer(TimerKind::ClientRetry(req_id), self.cfg.retry);
            if self.cfg.policy == ReplyPolicy::Zyzzyva {
                out.set_timer(TimerKind::ZyzFastPath(req_id), self.cfg.zyz_fast_window);
            }
            self.inflight.insert(
                req_id,
                InFlight {
                    request,
                    submitted_at: now,
                    votes: MatchingVotes::new(),
                    commit_sent: false,
                    local_commits: MatchingVotes::new(),
                    retries: 0,
                },
            );
        }
    }

    fn complete(&mut self, req_id: u64, now: Time, out: &mut Outbox) {
        let Some(entry) = self.inflight.remove(&req_id) else {
            return;
        };
        out.cancel_timer(TimerKind::ClientRetry(req_id));
        if self.cfg.policy == ReplyPolicy::Zyzzyva {
            out.cancel_timer(TimerKind::ZyzFastPath(req_id));
        }
        self.completed += 1;
        out.notify(Notification::RequestComplete {
            client: self.cfg.id,
            req_id,
            submitted_at: entry.submitted_at,
        });
        self.submit_up_to_window(now, out);
    }

    fn on_reply(&mut self, reply: ClientReply, now: Time, out: &mut Outbox) {
        if reply.view > self.view_hint {
            self.view_hint = reply.view;
        }
        let req_id = reply.req_id;
        let Some(entry) = self.inflight.get_mut(&req_id) else {
            return; // Stale or duplicate reply for a finished request.
        };
        if reply.req_digest != entry.request.digest() {
            return; // Reply for a different incarnation of this id.
        }
        match (self.cfg.policy, reply.kind) {
            (
                ReplyPolicy::Matching { quorum },
                ReplyKind::PoeInform
                | ReplyKind::PbftReply
                | ReplyKind::SbftExecuteAck
                | ReplyKind::HsReply,
            ) => {
                let key = ReplyKey {
                    view: reply.view,
                    seq: reply.seq,
                    history: None,
                    result: reply.result,
                };
                entry.votes.insert(reply.replica, key.clone());
                if entry.votes.count_for(&key) >= quorum {
                    self.complete(req_id, now, out);
                }
            }
            (ReplyPolicy::Zyzzyva, ReplyKind::ZyzSpecResponse) => {
                let history = reply.history.unwrap_or(Digest::EMPTY);
                let key = ReplyKey {
                    view: reply.view,
                    seq: reply.seq,
                    history: Some(history),
                    result: reply.result,
                };
                entry.votes.insert(reply.replica, key.clone());
                // Fast path: all n replicas agree.
                if entry.votes.count_for(&key) >= self.cfg.n {
                    self.complete(req_id, now, out);
                }
            }
            (ReplyPolicy::Zyzzyva, ReplyKind::ZyzLocalCommit) => {
                let key = ReplyKey {
                    view: reply.view,
                    seq: reply.seq,
                    history: None,
                    result: reply.result,
                };
                entry.local_commits.insert(reply.replica, key.clone());
                if entry.local_commits.count_for(&key) > self.cfg.f {
                    self.complete(req_id, now, out);
                }
            }
            _ => {}
        }
    }

    fn on_retry(&mut self, req_id: u64, out: &mut Outbox) {
        let Some(entry) = self.inflight.get_mut(&req_id) else {
            return;
        };
        entry.retries += 1;
        // Fall back to broadcasting to all replicas; they forward to the
        // primary and start failure-detection timers.
        out.broadcast(ProtocolMsg::RequestBroadcast(entry.request.clone()));
        out.set_timer(TimerKind::ClientRetry(req_id), self.cfg.retry);
    }

    fn on_zyz_window(&mut self, req_id: u64, out: &mut Outbox) {
        let commit_quorum = 2 * self.cfg.f + 1;
        let Some(entry) = self.inflight.get_mut(&req_id) else {
            return;
        };
        if entry.commit_sent {
            return;
        }
        // Find a spec-response value with >= 2f+1 matches; everything
        // the commit certificate needs lives in the matching key itself.
        let candidate = entry.votes.quorum_value(commit_quorum).cloned();
        if let Some(key) = candidate {
            let replicas: Vec<_> = entry.votes.voters_for(&key).collect();
            entry.commit_sent = true;
            out.broadcast(ProtocolMsg::ZyzCommit(ZyzCommitCert {
                view: key.view,
                seq: key.seq,
                history: key.history.unwrap_or(Digest::EMPTY),
                replicas,
            }));
            // Await f+1 local commits; the retry timer still guards us.
        } else {
            // Not enough matching responses: re-arm and keep waiting; the
            // retry timer will rebroadcast the request.
            out.set_timer(TimerKind::ZyzFastPath(req_id), self.cfg.zyz_fast_window);
        }
    }
}

impl ClientAutomaton for WorkloadClient {
    fn id(&self) -> ClientId {
        self.cfg.id
    }

    fn on_event(&mut self, now: Time, event: Event, out: &mut Outbox) {
        match event {
            Event::Init => self.submit_up_to_window(now, out),
            Event::Deliver { from: _, msg: ProtocolMsg::Reply(reply) } => {
                self.on_reply(reply, now, out)
            }
            Event::Deliver { .. } => {}
            Event::Timeout(TimerKind::ClientRetry(req_id)) => self.on_retry(req_id, out),
            Event::Timeout(TimerKind::ZyzFastPath(req_id)) => self.on_zyz_window(req_id, out),
            Event::Timeout(_) => {}
        }
        // Defensive: budget accounting should never go negative.
        debug_assert!(!self.budget_left() || self.cfg.max_requests.is_none());
    }

    fn completed(&self) -> u64 {
        self.completed
    }

    fn in_flight(&self) -> usize {
        self.inflight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_crypto::{CertScheme, CryptoMode, KeyMaterial};
    use poe_kernel::automaton::{Action, FixedPayloadSource};
    use poe_kernel::ids::{NodeId, ReplicaId};

    fn client(policy: ReplyPolicy, outstanding: usize) -> WorkloadClient {
        let km = KeyMaterial::generate(4, 1, 3, CryptoMode::Cmac, CertScheme::MultiSig, 3);
        let cfg = ClientConfig {
            id: ClientId(0),
            n: 4,
            f: 1,
            policy,
            outstanding,
            max_requests: None,
            retry: Duration::from_secs(3),
            zyz_fast_window: Duration::from_secs(1),
            sign: true,
        };
        WorkloadClient::new(cfg, km.client(0), Box::new(FixedPayloadSource::unbounded(vec![1])))
    }

    fn reply(
        c: &WorkloadClient,
        replica: u32,
        req_id: u64,
        kind: ReplyKind,
        result: &[u8],
        history: Option<Digest>,
    ) -> ClientReply {
        // Build a reply matching the client's in-flight request digest.
        let entry = c.inflight.get(&req_id).expect("in flight");
        ClientReply {
            kind,
            view: View(0),
            seq: SeqNum(0),
            req_digest: entry.request.digest(),
            req_id,
            result: result.to_vec().into(),
            replica: ReplicaId(replica),
            history,
        }
    }

    fn deliver_raw(c: &mut WorkloadClient, r: ClientReply, now: Time) -> Vec<Action> {
        let mut out = Outbox::new();
        c.on_event(
            now,
            Event::Deliver { from: NodeId::Replica(r.replica), msg: ProtocolMsg::Reply(r) },
            &mut out,
        );
        out.drain()
    }

    fn deliver(
        c: &mut WorkloadClient,
        replica: u32,
        req_id: u64,
        kind: ReplyKind,
        result: &[u8],
        history: Option<Digest>,
        now: Time,
    ) -> Vec<Action> {
        let r = reply(c, replica, req_id, kind, result, history);
        deliver_raw(c, r, now)
    }

    #[test]
    fn init_submits_window() {
        let mut c = client(ReplyPolicy::Matching { quorum: 3 }, 2);
        let mut out = Outbox::new();
        c.on_event(Time::ZERO, Event::Init, &mut out);
        let sends = out
            .actions()
            .iter()
            .filter(|a| matches!(a, Action::Send { msg: ProtocolMsg::Request(_), .. }))
            .count();
        assert_eq!(sends, 2);
        assert_eq!(c.in_flight(), 2);
    }

    #[test]
    fn quorum_of_identical_replies_completes() {
        let mut c = client(ReplyPolicy::Matching { quorum: 3 }, 1);
        let mut out = Outbox::new();
        c.on_event(Time::ZERO, Event::Init, &mut out);
        for r in 0..2 {
            deliver(&mut c, r, 0, ReplyKind::PoeInform, b"ok", None, Time(1));
            assert_eq!(c.completed(), 0);
        }
        let actions = deliver(&mut c, 2, 0, ReplyKind::PoeInform, b"ok", None, Time(2));
        assert_eq!(c.completed(), 1);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Notify(Notification::RequestComplete { .. }))));
        // Closed loop: next request submitted.
        assert_eq!(c.in_flight(), 1);
    }

    #[test]
    fn divergent_replies_do_not_complete() {
        let mut c = client(ReplyPolicy::Matching { quorum: 3 }, 1);
        let mut out = Outbox::new();
        c.on_event(Time::ZERO, Event::Init, &mut out);
        deliver(&mut c, 0, 0, ReplyKind::PoeInform, b"a", None, Time(1));
        deliver(&mut c, 1, 0, ReplyKind::PoeInform, b"b", None, Time(1));
        deliver(&mut c, 2, 0, ReplyKind::PoeInform, b"c", None, Time(1));
        assert_eq!(c.completed(), 0);
    }

    #[test]
    fn duplicate_replica_does_not_count_twice() {
        let mut c = client(ReplyPolicy::Matching { quorum: 2 }, 1);
        let mut out = Outbox::new();
        c.on_event(Time::ZERO, Event::Init, &mut out);
        deliver(&mut c, 0, 0, ReplyKind::PoeInform, b"ok", None, Time(1));
        deliver(&mut c, 0, 0, ReplyKind::PoeInform, b"ok", None, Time(1));
        assert_eq!(c.completed(), 0);
        deliver(&mut c, 1, 0, ReplyKind::PoeInform, b"ok", None, Time(1));
        assert_eq!(c.completed(), 1);
    }

    #[test]
    fn retry_broadcasts_request() {
        let mut c = client(ReplyPolicy::Matching { quorum: 3 }, 1);
        let mut out = Outbox::new();
        c.on_event(Time::ZERO, Event::Init, &mut out);
        let mut out2 = Outbox::new();
        c.on_event(Time(1), Event::Timeout(TimerKind::ClientRetry(0)), &mut out2);
        assert!(out2
            .actions()
            .iter()
            .any(|a| matches!(a, Action::Broadcast { msg: ProtocolMsg::RequestBroadcast(_) })));
    }

    #[test]
    fn zyzzyva_fast_path_needs_all_n() {
        let mut c = client(ReplyPolicy::Zyzzyva, 1);
        let mut out = Outbox::new();
        c.on_event(Time::ZERO, Event::Init, &mut out);
        let h = Some(Digest::of(b"hist"));
        for r in 0..3 {
            deliver(&mut c, r, 0, ReplyKind::ZyzSpecResponse, b"ok", h, Time(1));
        }
        assert_eq!(c.completed(), 0, "3 of 4 is not enough for the fast path");
        deliver(&mut c, 3, 0, ReplyKind::ZyzSpecResponse, b"ok", h, Time(1));
        assert_eq!(c.completed(), 1);
    }

    #[test]
    fn zyzzyva_commit_path_after_window() {
        let mut c = client(ReplyPolicy::Zyzzyva, 1);
        let mut out = Outbox::new();
        c.on_event(Time::ZERO, Event::Init, &mut out);
        let h = Some(Digest::of(b"hist"));
        // Only 3 of 4 replicas respond (one crashed).
        for r in 0..3 {
            deliver(&mut c, r, 0, ReplyKind::ZyzSpecResponse, b"ok", h, Time(1));
        }
        // Fast-path window expires: client must broadcast a commit cert.
        let mut out2 = Outbox::new();
        c.on_event(Time(2), Event::Timeout(TimerKind::ZyzFastPath(0)), &mut out2);
        let commit = out2.actions().iter().find_map(|a| match a {
            Action::Broadcast { msg: ProtocolMsg::ZyzCommit(cc) } => Some(cc.clone()),
            _ => None,
        });
        let cc = commit.expect("commit certificate broadcast");
        assert_eq!(cc.replicas.len(), 3);
        // f+1 local commits complete the request.
        deliver(&mut c, 0, 0, ReplyKind::ZyzLocalCommit, b"ok", None, Time(3));
        assert_eq!(c.completed(), 0);
        deliver(&mut c, 1, 0, ReplyKind::ZyzLocalCommit, b"ok", None, Time(3));
        assert_eq!(c.completed(), 1);
    }

    #[test]
    fn zyzzyva_window_rearms_without_quorum() {
        let mut c = client(ReplyPolicy::Zyzzyva, 1);
        let mut out = Outbox::new();
        c.on_event(Time::ZERO, Event::Init, &mut out);
        let h = Some(Digest::of(b"hist"));
        deliver(&mut c, 0, 0, ReplyKind::ZyzSpecResponse, b"ok", h, Time(1));
        let mut out2 = Outbox::new();
        c.on_event(Time(2), Event::Timeout(TimerKind::ZyzFastPath(0)), &mut out2);
        assert!(out2
            .actions()
            .iter()
            .any(|a| matches!(a, Action::SetTimer { kind: TimerKind::ZyzFastPath(0), .. })));
        assert!(!out2
            .actions()
            .iter()
            .any(|a| matches!(a, Action::Broadcast { msg: ProtocolMsg::ZyzCommit(_) })));
    }

    #[test]
    fn max_requests_bounds_submission() {
        let km = KeyMaterial::generate(4, 1, 3, CryptoMode::Cmac, CertScheme::MultiSig, 3);
        let cfg = ClientConfig::matching(ClientId(0), 4, 1, 1).with_max_requests(2);
        let mut c = WorkloadClient::new(
            cfg,
            km.client(0),
            Box::new(FixedPayloadSource::unbounded(vec![1])),
        );
        let mut out = Outbox::new();
        c.on_event(Time::ZERO, Event::Init, &mut out);
        assert_eq!(c.in_flight(), 1);
        deliver(&mut c, 0, 0, ReplyKind::PbftReply, b"ok", None, Time(1));
        assert_eq!(c.completed(), 1);
        assert_eq!(c.in_flight(), 1);
        deliver(&mut c, 0, 1, ReplyKind::PbftReply, b"ok", None, Time(2));
        assert_eq!(c.completed(), 2);
        assert_eq!(c.in_flight(), 0, "budget exhausted: no further submissions");
    }

    #[test]
    fn is_done_when_source_exhausts_before_budget() {
        let km = KeyMaterial::generate(4, 1, 3, CryptoMode::Cmac, CertScheme::MultiSig, 3);
        // Budget allows 5 requests, but the source dries up after 2:
        // the client must still report done (a wall-clock runtime would
        // otherwise spin on it until its deadline).
        let cfg = ClientConfig::matching(ClientId(0), 4, 1, 1).with_max_requests(5);
        let mut c = WorkloadClient::new(
            cfg,
            km.client(0),
            Box::new(FixedPayloadSource::bounded(vec![1], 2)),
        );
        let mut out = Outbox::new();
        c.on_event(Time::ZERO, Event::Init, &mut out);
        assert!(!c.is_done());
        deliver(&mut c, 0, 0, ReplyKind::PoeInform, b"ok", None, Time(1));
        assert!(!c.is_done(), "one request left in the source");
        deliver(&mut c, 0, 1, ReplyKind::PoeInform, b"ok", None, Time(2));
        assert_eq!(c.completed(), 2);
        assert!(c.is_done(), "source exhausted + nothing in flight = done");
    }

    #[test]
    fn is_done_when_budget_spent() {
        let mut c = client(ReplyPolicy::Matching { quorum: 1 }, 1);
        assert!(!c.is_done(), "unbounded budget, infinite source");
        let mut out = Outbox::new();
        c.on_event(Time::ZERO, Event::Init, &mut out);
        c.cfg.max_requests = Some(1);
        deliver(&mut c, 0, 0, ReplyKind::PoeInform, b"ok", None, Time(1));
        assert!(c.is_done());
    }

    #[test]
    fn view_hint_tracks_replies() {
        let mut c = client(ReplyPolicy::Matching { quorum: 3 }, 1);
        let mut out = Outbox::new();
        c.on_event(Time::ZERO, Event::Init, &mut out);
        let mut r = reply(&c, 0, 0, ReplyKind::PoeInform, b"ok", None);
        r.view = View(5);
        deliver_raw(&mut c, r, Time(1));
        assert_eq!(c.view_hint(), View(5));
    }

    #[test]
    fn stale_reply_ignored() {
        let mut c = client(ReplyPolicy::Matching { quorum: 1 }, 1);
        let mut out = Outbox::new();
        c.on_event(Time::ZERO, Event::Init, &mut out);
        // Complete request 0.
        deliver(&mut c, 0, 0, ReplyKind::PoeInform, b"ok", None, Time(1));
        assert_eq!(c.completed(), 1);
        // A late duplicate for request 0 must not disturb request 1.
        let stale = ClientReply {
            kind: ReplyKind::PoeInform,
            view: View(0),
            seq: SeqNum(0),
            req_digest: Digest::of(b"whatever"),
            req_id: 0,
            result: b"ok".to_vec().into(),
            replica: ReplicaId(2),
            history: None,
        };
        deliver_raw(&mut c, stale, Time(2));
        assert_eq!(c.completed(), 1);
        assert_eq!(c.in_flight(), 1);
    }
}
