//! # poe-workload
//!
//! Workload generation matching the paper's evaluation setup (§IV):
//! YCSB-style requests from Blockbench's macro benchmarks — a table of
//! records, 90% write queries, Zipfian-distributed keys with skew 0.9 —
//! plus the zero-payload mode and the client automatons that submit
//! requests and collect replies.
//!
//! * [`zipf`] — the YCSB Zipfian generator (Gray et al.), with optional
//!   scrambling so hot keys spread over the table.
//! * [`ycsb`] — a [`poe_kernel::automaton::RequestSource`] producing
//!   serialized `poe-store` transactions.
//! * [`client`] — the client automaton: open/closed-loop submission,
//!   reply-quorum collection (per-protocol policies), retransmission with
//!   primary discovery, and Zyzzyva's client-side commit path.
//! * [`openloop`] — the open-loop load engine: fixed-rate/Poisson
//!   arrival schedules and the session multiplexer that drives 10⁵–10⁶
//!   simulated client sessions from a few driver threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod openloop;
pub mod ycsb;
pub mod zipf;

pub use client::{ClientConfig, ReplyPolicy, WorkloadClient};
pub use openloop::{ArrivalGen, ArrivalProcess, MuxStats, OpSource, SessionMux, Signer};
pub use ycsb::{YcsbConfig, YcsbWorkload};
pub use zipf::Zipfian;
