//! Open-loop load generation: arrival processes and client-session
//! multiplexing.
//!
//! The closed-loop clients in [`crate::client`] measure *latency*: each
//! keeps a bounded window in flight, so offered load collapses to
//! whatever the cluster acknowledges and the system never saturates. An
//! open-loop engine severs that feedback: requests arrive on a clock
//! (fixed-rate or Poisson), regardless of how the cluster is doing —
//! the only honest way to measure throughput and to drive a system into
//! (and past) saturation.
//!
//! Two pieces, both runtime-agnostic and deterministic per seed:
//!
//! * [`ArrivalGen`] — turns a target rate into a monotone schedule of
//!   arrival instants (constant spacing, or exponential inter-arrivals
//!   for a Poisson process).
//! * [`SessionMux`] — multiplexes a shard of 10⁵–10⁶ simulated client
//!   sessions over one driver thread: per-session request ids, ≤ 1
//!   request in flight per session (so fabric-side session tables see
//!   realistic per-client ordering), reply-quorum counting, and
//!   bounded-memory accounting for arrivals that found every session
//!   busy or requests the cluster never answered.
//!
//! Replies lose their destination when 10⁵ client endpoints multiplex
//! onto one driver channel, so the mux encodes the session offset in
//! the high bits of `req_id` (per-session ids stay strictly monotone —
//! exactly what fabric session tables key their eviction on) and
//! recovers it from the reply without decoding anything else.

use poe_crypto::ed25519::Signature;
use poe_crypto::Digest;
use poe_kernel::ids::{ClientId, SeqNum, View};
use poe_kernel::messages::{ClientReply, ReplyKind};
use poe_kernel::quorum::MatchingVotes;
use poe_kernel::request::ClientRequest;
use poe_kernel::time::{Duration, Time};
use poe_kernel::wire::WireBytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The inter-arrival distribution of the open-loop clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Constant spacing `1/rate` (deterministic pacing).
    Fixed,
    /// Exponential inter-arrivals (a Poisson process at `rate`): the
    /// standard model for independent client populations, and the one
    /// that exposes queueing behavior near saturation — bursts arrive
    /// even when the *mean* rate is below capacity.
    Poisson,
}

/// A monotone schedule of arrival instants at a target rate.
#[derive(Clone, Debug)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    /// Mean inter-arrival gap in nanoseconds.
    mean_gap_ns: f64,
    rng: StdRng,
    next_at_ns: f64,
}

impl ArrivalGen {
    /// A generator producing arrivals at `rate_rps` requests/second,
    /// starting at instant 0. Deterministic per `seed`.
    pub fn new(process: ArrivalProcess, rate_rps: f64, seed: u64) -> ArrivalGen {
        assert!(rate_rps > 0.0, "arrival rate must be positive");
        ArrivalGen {
            process,
            mean_gap_ns: 1e9 / rate_rps,
            rng: StdRng::seed_from_u64(seed),
            next_at_ns: 0.0,
        }
    }

    /// The next arrival instant, in nanoseconds since the schedule
    /// epoch. Monotone non-decreasing.
    pub fn next_arrival_ns(&mut self) -> u64 {
        let at = self.next_at_ns;
        let gap = match self.process {
            ArrivalProcess::Fixed => self.mean_gap_ns,
            ArrivalProcess::Poisson => {
                // Inverse-CDF sampling; 1 - u ∈ (0, 1] avoids ln(0).
                let u: f64 = self.rng.gen();
                -(1.0 - u).ln() * self.mean_gap_ns
            }
        };
        self.next_at_ns = at + gap;
        at as u64
    }

    /// All arrivals due at or before `now_ns`, bounded by `max` (the
    /// driver's per-wake burst cap, so a stalled driver cannot build an
    /// unbounded catch-up burst).
    pub fn due_by(&mut self, now_ns: u64, max: usize) -> usize {
        let mut due = 0;
        while due < max && self.next_at_ns as u64 <= now_ns {
            self.next_arrival_ns();
            due += 1;
        }
        due
    }

    /// Nanoseconds from `now_ns` until the next arrival (0 if overdue).
    pub fn ns_until_next(&self, now_ns: u64) -> u64 {
        (self.next_at_ns as u64).saturating_sub(now_ns)
    }
}

/// Produces the serialized operation for a session's next request.
/// (Mirrors [`poe_kernel::automaton::RequestSource`] but without the
/// per-client shape — one source feeds a whole mux shard.)
pub trait OpSource: Send {
    /// The next operation payload, or `None` when the source dries up.
    fn next_op(&mut self) -> Option<Vec<u8>>;
}

impl OpSource for crate::ycsb::YcsbWorkload {
    fn next_op(&mut self) -> Option<Vec<u8>> {
        Some(self.next_transaction().encode())
    }
}

/// Reply-matching key: a request is complete once `quorum` distinct
/// replicas agree on (view, seq, result).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
struct CompletionKey {
    view: View,
    seq: SeqNum,
    result: WireBytes,
}

struct InFlightSession {
    req_id: u64,
    req_digest: Digest,
    submitted_at: Time,
    votes: MatchingVotes<CompletionKey>,
}

/// `req_id` layout: session offset in the high 32 bits, the session's
/// own monotone counter in the low 32. Per client the id is strictly
/// increasing (the offset is fixed per session), and the driver
/// recovers the session from any reply in O(1).
fn req_id_for(offset: u32, local: u32) -> u64 {
    (offset as u64) << 32 | local as u64
}

/// Inverse of [`req_id_for`]: the session offset.
fn offset_of(req_id: u64) -> u32 {
    (req_id >> 32) as u32
}

/// Signs a request on behalf of a session (client id, req id, op bytes)
/// when the cluster authenticates clients.
pub type Signer<'a> = &'a dyn Fn(ClientId, u64, &[u8]) -> Signature;

/// Counters a driver reports after its run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MuxStats {
    /// Requests handed to the wire.
    pub submitted: u64,
    /// Requests that reached their reply quorum.
    pub completed: u64,
    /// Arrivals dropped because every session in the shard was busy —
    /// the session population itself saturated (undersized `sessions`
    /// for the offered rate × latency product, by Little's law).
    pub no_idle_session: u64,
    /// In-flight requests abandoned by [`SessionMux::reap`]: the
    /// cluster shed or lost them and the session was reclaimed.
    pub abandoned: u64,
}

/// One driver thread's shard of the simulated client population.
pub struct SessionMux {
    /// First client id of the shard.
    base: u32,
    /// Replies needed to complete a request (PoE: `n − f`).
    quorum: usize,
    /// Per-session next local request counter (index = session − base).
    next_local: Vec<u32>,
    /// Stack of idle session offsets.
    idle: Vec<u32>,
    /// Session offset → in-flight bookkeeping. Bounded by the shard
    /// size (≤ 1 in flight per session).
    inflight: HashMap<u32, InFlightSession>,
    /// Highest view observed in replies (primary routing hint).
    view_hint: View,
    stats: MuxStats,
}

impl SessionMux {
    /// A shard of `count` sessions with client ids `base .. base+count`.
    pub fn new(base: u32, count: u32, quorum: usize) -> SessionMux {
        assert!(count >= 1, "empty session shard");
        assert!(quorum >= 1, "quorum must be positive");
        SessionMux {
            base,
            quorum,
            next_local: vec![0; count as usize],
            // Pop order: lowest ids first (purely cosmetic, but it makes
            // small runs readable).
            idle: (0..count).rev().collect(),
            inflight: HashMap::new(),
            view_hint: View::ZERO,
            stats: MuxStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> MuxStats {
        self.stats
    }

    /// Requests currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// The mux's view of who is primary (from replies).
    pub fn view_hint(&self) -> View {
        self.view_hint
    }

    /// Begins one arrival: claims an idle session, draws its next
    /// operation, and returns the request to put on the wire (signed
    /// via `signer` when the cluster authenticates clients). `None`
    /// when every session is busy (counted) or the source dried up.
    pub fn begin(
        &mut self,
        now: Time,
        source: &mut dyn OpSource,
        signer: Option<Signer<'_>>,
    ) -> Option<ClientRequest> {
        let Some(offset) = self.idle.pop() else {
            self.stats.no_idle_session += 1;
            return None;
        };
        let Some(op) = source.next_op() else {
            self.idle.push(offset);
            return None;
        };
        let client = ClientId(self.base + offset);
        let req_id = req_id_for(offset, self.next_local[offset as usize]);
        self.next_local[offset as usize] += 1;
        let signature = signer.map(|sign| sign(client, req_id, &op));
        let request = ClientRequest::new(client, req_id, op, signature);
        self.inflight.insert(
            offset,
            InFlightSession {
                req_id,
                req_digest: request.digest(),
                submitted_at: now,
                votes: MatchingVotes::new(),
            },
        );
        self.stats.submitted += 1;
        Some(request)
    }

    /// Feeds one reply to the shard. Returns the request's submission
    /// instant when this reply completed its quorum (the caller records
    /// `now − submitted_at` as the latency sample).
    pub fn on_reply(&mut self, reply: &ClientReply) -> Option<Time> {
        if reply.view > self.view_hint {
            self.view_hint = reply.view;
        }
        if reply.kind != ReplyKind::PoeInform {
            return None;
        }
        let offset = offset_of(reply.req_id);
        let entry = self.inflight.get_mut(&offset)?;
        if entry.req_id != reply.req_id || entry.req_digest != reply.req_digest {
            return None; // Stale reply for an earlier incarnation.
        }
        let key = CompletionKey { view: reply.view, seq: reply.seq, result: reply.result.clone() };
        entry.votes.insert(reply.replica, key.clone());
        if entry.votes.count_for(&key) < self.quorum {
            return None;
        }
        let done = self.inflight.remove(&offset).expect("checked");
        self.idle.push(offset);
        self.stats.completed += 1;
        Some(done.submitted_at)
    }

    /// Reclaims sessions whose request has been in flight longer than
    /// `older_than` — the cluster shed it (backpressure) or lost it.
    /// Open-loop semantics: the arrival is *dropped*, not retried; the
    /// session returns to the idle pool so the offered rate is
    /// sustained with bounded memory. Returns how many were reaped.
    pub fn reap(&mut self, now: Time, older_than: Duration) -> usize {
        let cutoff = now.0.saturating_sub(older_than.as_nanos());
        let stale: Vec<u32> = self
            .inflight
            .iter()
            .filter(|(_, s)| s.submitted_at.0 <= cutoff)
            .map(|(k, _)| *k)
            .collect();
        let reaped = stale.len();
        for offset in stale {
            self.inflight.remove(&offset);
            self.idle.push(offset);
            self.stats.abandoned += 1;
        }
        reaped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_kernel::ids::ReplicaId;

    struct CountingSource(u64);

    impl OpSource for CountingSource {
        fn next_op(&mut self) -> Option<Vec<u8>> {
            self.0 += 1;
            Some(self.0.to_le_bytes().to_vec())
        }
    }

    fn inform(req: &ClientRequest, replica: u32, result: &[u8]) -> ClientReply {
        ClientReply {
            kind: ReplyKind::PoeInform,
            view: View(0),
            seq: SeqNum(0),
            req_digest: req.digest(),
            req_id: req.req_id,
            result: result.to_vec().into(),
            replica: ReplicaId(replica),
            history: None,
        }
    }

    #[test]
    fn fixed_arrivals_are_evenly_spaced() {
        let mut g = ArrivalGen::new(ArrivalProcess::Fixed, 1000.0, 1);
        let times: Vec<u64> = (0..5).map(|_| g.next_arrival_ns()).collect();
        assert_eq!(times, vec![0, 1_000_000, 2_000_000, 3_000_000, 4_000_000]);
    }

    #[test]
    fn poisson_mean_matches_rate_and_is_deterministic() {
        let draw = |seed| {
            let mut g = ArrivalGen::new(ArrivalProcess::Poisson, 10_000.0, seed);
            let mut last = 0;
            let mut gaps = Vec::new();
            for _ in 0..20_000 {
                let at = g.next_arrival_ns();
                gaps.push(at - last);
                last = at;
            }
            gaps
        };
        let gaps = draw(7);
        assert_eq!(gaps, draw(7), "same seed must replay the schedule");
        let mean = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        // Expected gap 100 µs; 20 k samples keep the estimate tight.
        assert!((95_000.0..105_000.0).contains(&mean), "mean gap {mean}");
        // Exponential gaps: the variance is visibly non-zero.
        assert!(gaps.iter().any(|g| *g > 200_000), "no long gaps at all?");
    }

    #[test]
    fn due_by_caps_catchup_bursts() {
        let mut g = ArrivalGen::new(ArrivalProcess::Fixed, 1_000_000.0, 1);
        // 1 ms of backlog at 1 M rps = 1000 arrivals; the cap wins.
        assert_eq!(g.due_by(1_000_000, 64), 64);
        assert!(g.ns_until_next(1_000_000) == 0, "still overdue after the cap");
    }

    #[test]
    fn session_ids_are_monotone_per_client() {
        let mut mux = SessionMux::new(0, 2, 3);
        let mut src = CountingSource(0);
        let a = mux.begin(Time(1), &mut src, None).expect("session");
        let b = mux.begin(Time(1), &mut src, None).expect("session");
        assert_ne!(a.client, b.client);
        // Complete a's request; its next request id must increase.
        for r in 0..3 {
            mux.on_reply(&inform(&a, r, b"ok"));
        }
        let a2 = mux.begin(Time(2), &mut src, None).expect("session");
        assert_eq!(a2.client, a.client);
        assert!(a2.req_id > a.req_id, "per-session ids must grow");
    }

    #[test]
    fn quorum_completes_and_frees_the_session() {
        let mut mux = SessionMux::new(0, 1, 3);
        let mut src = CountingSource(0);
        let req = mux.begin(Time(5), &mut src, None).expect("session");
        assert!(mux.begin(Time(5), &mut src, None).is_none(), "population busy");
        assert_eq!(mux.stats().no_idle_session, 1);
        assert!(mux.on_reply(&inform(&req, 0, b"ok")).is_none());
        assert!(mux.on_reply(&inform(&req, 0, b"ok")).is_none(), "dup replica");
        assert!(mux.on_reply(&inform(&req, 1, b"ok")).is_none());
        let submitted_at = mux.on_reply(&inform(&req, 2, b"ok")).expect("quorum");
        assert_eq!(submitted_at, Time(5));
        assert_eq!(mux.stats().completed, 1);
        assert_eq!(mux.in_flight(), 0);
        assert!(mux.begin(Time(6), &mut src, None).is_some(), "session freed");
    }

    #[test]
    fn divergent_results_do_not_complete() {
        let mut mux = SessionMux::new(0, 1, 2);
        let mut src = CountingSource(0);
        let req = mux.begin(Time(0), &mut src, None).expect("session");
        assert!(mux.on_reply(&inform(&req, 0, b"a")).is_none());
        assert!(mux.on_reply(&inform(&req, 1, b"b")).is_none());
        assert_eq!(mux.stats().completed, 0);
    }

    #[test]
    fn stale_reply_for_earlier_incarnation_ignored() {
        let mut mux = SessionMux::new(0, 1, 1);
        let mut src = CountingSource(0);
        let first = mux.begin(Time(0), &mut src, None).expect("session");
        mux.on_reply(&inform(&first, 0, b"ok")).expect("done");
        let second = mux.begin(Time(1), &mut src, None).expect("session");
        // A late duplicate reply for the *first* request must not
        // complete the second.
        assert!(mux.on_reply(&inform(&first, 1, b"ok")).is_none());
        assert_eq!(mux.stats().completed, 1);
        mux.on_reply(&inform(&second, 2, b"ok")).expect("done");
    }

    #[test]
    fn reap_reclaims_abandoned_sessions() {
        let mut mux = SessionMux::new(0, 2, 3);
        let mut src = CountingSource(0);
        mux.begin(Time(0), &mut src, None).expect("session");
        mux.begin(Time(Duration::from_secs(2).as_nanos()), &mut src, None).expect("session");
        let now = Time(Duration::from_secs(3).as_nanos());
        assert_eq!(mux.reap(now, Duration::from_secs(2)), 1, "only the old one");
        assert_eq!(mux.stats().abandoned, 1);
        assert_eq!(mux.in_flight(), 1);
    }

    #[test]
    fn view_hint_tracks_replies() {
        let mut mux = SessionMux::new(0, 1, 3);
        let mut src = CountingSource(0);
        let req = mux.begin(Time(0), &mut src, None).expect("session");
        let mut r = inform(&req, 0, b"ok");
        r.view = View(4);
        mux.on_reply(&r);
        assert_eq!(mux.view_hint(), View(4));
    }

    #[test]
    fn shard_base_offsets_client_ids() {
        let mut mux = SessionMux::new(1000, 4, 1);
        let mut src = CountingSource(0);
        let req = mux.begin(Time(0), &mut src, None).expect("session");
        assert_eq!(req.client, ClientId(1000));
        assert_eq!(offset_of(req.req_id), 0, "offset is shard-relative");
    }
}
