//! The YCSB-style request source.
//!
//! Matches the paper's configuration (§IV "Configuration and
//! Benchmarking"): a table of records (500 k in the paper), 90% write
//! queries, Zipfian key selection with skew 0.9. Each request is a
//! single-operation `poe-store` transaction. The zero-payload mode emits
//! empty transactions — replicas then execute dummy instructions, so the
//! PROPOSE message stops being the bandwidth bottleneck (§IV-E).

use crate::zipf::Zipfian;
use poe_kernel::automaton::RequestSource;
use poe_kernel::ids::ClientId;
use poe_store::op::{Op, Transaction};
use poe_store::table::ycsb_key;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct YcsbConfig {
    /// Number of records in the table (paper: 500 000).
    pub records: usize,
    /// Fraction of writes (paper: 0.9).
    pub write_fraction: f64,
    /// Zipfian skew (paper: 0.9).
    pub skew: f64,
    /// Value size in bytes for writes (sized so a 100-request batch is
    /// ~5400 B like the paper's PROPOSE).
    pub value_size: usize,
    /// Zero-payload mode: requests carry empty transactions.
    pub zero_payload: bool,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig {
            records: 500_000,
            write_fraction: 0.9,
            skew: 0.9,
            value_size: 32,
            zero_payload: false,
            seed: 7,
        }
    }
}

impl YcsbConfig {
    /// A laptop-scale variant (small table) for tests and simulations.
    pub fn small() -> YcsbConfig {
        YcsbConfig { records: 1_000, ..Default::default() }
    }
}

/// Generates YCSB-style transactions; one instance can serve many clients
/// (each draw is independent).
#[derive(Clone, Debug)]
pub struct YcsbWorkload {
    cfg: YcsbConfig,
    zipf: Arc<Zipfian>,
    rng: StdRng,
    issued: u64,
}

impl YcsbWorkload {
    /// Builds the workload from its configuration. The Zipfian table
    /// is shared process-wide across instances with the same keyspace,
    /// so fanning out 10⁵–10⁶ client sessions pays setup once.
    pub fn new(cfg: YcsbConfig) -> YcsbWorkload {
        let zipf = Zipfian::shared(cfg.records, cfg.skew, true);
        let rng = StdRng::seed_from_u64(cfg.seed);
        YcsbWorkload { cfg, zipf, rng, issued: 0 }
    }

    /// The shared key generator (for sharing assertions in tests).
    pub fn key_generator(&self) -> &Arc<Zipfian> {
        &self.zipf
    }

    /// The configuration in use.
    pub fn config(&self) -> &YcsbConfig {
        &self.cfg
    }

    /// Number of operations issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Draws the next transaction.
    pub fn next_transaction(&mut self) -> Transaction {
        self.issued += 1;
        if self.cfg.zero_payload {
            return Transaction::default();
        }
        let key = ycsb_key(self.zipf.sample(&mut self.rng));
        if self.rng.gen::<f64>() < self.cfg.write_fraction {
            let mut value = vec![0u8; self.cfg.value_size];
            self.rng.fill(&mut value[..]);
            Transaction::single(Op::Put { key, value })
        } else {
            Transaction::single(Op::Get { key })
        }
    }
}

impl RequestSource for YcsbWorkload {
    fn next_op(&mut self, _client: ClientId) -> Option<Vec<u8>> {
        Some(self.next_transaction().encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_fraction_respected() {
        let mut w = YcsbWorkload::new(YcsbConfig {
            records: 100,
            write_fraction: 0.9,
            skew: 0.9,
            value_size: 8,
            zero_payload: false,
            seed: 1,
        });
        let mut writes = 0;
        let total = 10_000;
        for _ in 0..total {
            let txn = w.next_transaction();
            if txn.ops[0].is_write() {
                writes += 1;
            }
        }
        let frac = writes as f64 / total as f64;
        assert!((0.88..0.92).contains(&frac), "write fraction {frac}");
    }

    #[test]
    fn zero_payload_is_empty() {
        let mut w =
            YcsbWorkload::new(YcsbConfig { zero_payload: true, records: 10, ..Default::default() });
        let txn = w.next_transaction();
        assert!(txn.ops.is_empty());
        // Encoded form is tiny (just the op count).
        assert_eq!(txn.encode().len(), 2);
    }

    #[test]
    fn keys_come_from_table() {
        let mut w = YcsbWorkload::new(YcsbConfig {
            records: 50,
            write_fraction: 1.0,
            skew: 0.9,
            value_size: 4,
            zero_payload: false,
            seed: 2,
        });
        for _ in 0..1000 {
            let txn = w.next_transaction();
            let key = txn.ops[0].key().to_vec();
            let key_str = String::from_utf8(key).unwrap();
            let idx: usize = key_str.strip_prefix("user").unwrap().parse().unwrap();
            assert!(idx < 50);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = YcsbConfig { records: 100, seed: 9, ..Default::default() };
        let mut a = YcsbWorkload::new(cfg.clone());
        let mut b = YcsbWorkload::new(cfg);
        for _ in 0..100 {
            assert_eq!(a.next_transaction(), b.next_transaction());
        }
    }

    #[test]
    fn request_source_yields_decodable_ops() {
        let mut w = YcsbWorkload::new(YcsbConfig::small());
        let bytes = w.next_op(ClientId(0)).expect("op");
        assert!(Transaction::decode(&bytes).is_ok());
        assert_eq!(w.issued(), 1);
    }
}
