//! Zipfian key selection (the YCSB generator of Gray et al.).
//!
//! The paper's workload is "heavily skewed (skew factor 0.9)". This is the
//! standard YCSB `ZipfianGenerator`: item ranks follow a Zipf distribution
//! with exponent `theta`; rank 0 is the hottest. The optional *scrambled*
//! mode hashes ranks onto the key space so the hot set is spread across
//! the table (YCSB's `ScrambledZipfianGenerator`), which avoids artificial
//! locality in table scans.

use rand::Rng;

/// A Zipfian distribution over `0..n`.
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: usize,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
    scrambled: bool,
}

impl Zipfian {
    /// A generator over `0..n` with skew `theta` (0 < theta < 1;
    /// the paper uses 0.9).
    pub fn new(n: usize, theta: f64) -> Zipfian {
        assert!(n >= 1, "empty key space");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zeta_n = Self::zeta(n, theta);
        let zeta_2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_2 / zeta_n);
        Zipfian { n, theta, alpha, zeta_n, eta, scrambled: false }
    }

    /// Spreads ranks over the key space by hashing (YCSB scrambled mode).
    pub fn scrambled(mut self) -> Zipfian {
        self.scrambled = true;
        self
    }

    /// A process-wide shared generator over `0..n`: every caller with
    /// the same `(n, theta, scrambled)` gets the *same* `Arc`, so a
    /// 10⁵–10⁶-session open-loop fan-out pays the table setup once
    /// (zeta is already memoized, but at a million records even the
    /// per-instance constant work and per-session copies add up).
    pub fn shared(n: usize, theta: f64, scrambled: bool) -> std::sync::Arc<Zipfian> {
        use std::collections::HashMap;
        use std::sync::{Arc, Mutex, OnceLock};
        type Cache = Mutex<HashMap<(usize, u64, bool), Arc<Zipfian>>>;
        static CACHE: OnceLock<Cache> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(z) = cache.lock().expect("zipf cache").get(&(n, theta.to_bits(), scrambled)) {
            return Arc::clone(z);
        }
        // Build outside the lock: zeta at 10⁶ records is O(n) powf
        // calls and must not stall other keyspaces' lookups.
        let built =
            if scrambled { Zipfian::new(n, theta).scrambled() } else { Zipfian::new(n, theta) };
        Arc::clone(
            cache
                .lock()
                .expect("zipf cache")
                .entry((n, theta.to_bits(), scrambled))
                .or_insert_with(|| Arc::new(built)),
        )
    }

    /// The key-space size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The skew factor.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// `ζ(n, θ)`, memoized process-wide: the sum is O(n) `powf` calls
    /// (500 k terms at the paper's table size) and every simulated
    /// client constructs its own generator over the same table.
    fn zeta(n: usize, theta: f64) -> f64 {
        use std::collections::HashMap;
        use std::sync::{Mutex, OnceLock};
        static CACHE: OnceLock<Mutex<HashMap<(usize, u64), f64>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let key = (n, theta.to_bits());
        if let Some(z) = cache.lock().expect("zeta cache").get(&key) {
            return *z;
        }
        let z = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        cache.lock().expect("zeta cache").insert(key, z);
        z
    }

    /// Draws the next key index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let uz = u * self.zeta_n;
        let rank = if uz < 1.0 {
            0
        } else if uz < 1.0 + 0.5f64.powf(self.theta) {
            1
        } else {
            ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as usize
        };
        let rank = rank.min(self.n - 1);
        if self.scrambled {
            (fnv1a(rank as u64) % self.n as u64) as usize
        } else {
            rank
        }
    }
}

/// FNV-1a 64-bit hash (for rank scrambling).
fn fnv1a(x: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for byte in x.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(z: &Zipfian, draws: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; z.n()];
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipfian::new(100, 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn rank_zero_is_hottest() {
        let z = Zipfian::new(1000, 0.9);
        let counts = histogram(&z, 100_000, 2);
        let max = counts.iter().copied().max().unwrap();
        assert_eq!(counts[0], max, "rank 0 should be the mode");
        // Zipf(0.9): rank 0 should dominate clearly.
        assert!(counts[0] > counts[10] * 2);
    }

    #[test]
    fn higher_theta_is_more_skewed() {
        let mild = Zipfian::new(1000, 0.5);
        let heavy = Zipfian::new(1000, 0.99);
        let mild_counts = histogram(&mild, 100_000, 3);
        let heavy_counts = histogram(&heavy, 100_000, 3);
        assert!(heavy_counts[0] > mild_counts[0]);
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let z = Zipfian::new(10, 0.0);
        let counts = histogram(&z, 100_000, 4);
        for &c in &counts {
            // Each bucket should be near 10_000; allow generous slack.
            assert!((5_000..20_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn scrambled_spreads_hot_key() {
        let plain = Zipfian::new(1000, 0.9);
        let scrambled = Zipfian::new(1000, 0.9).scrambled();
        let pc = histogram(&plain, 50_000, 5);
        let sc = histogram(&scrambled, 50_000, 5);
        // Plain: hottest is index 0. Scrambled: hottest is elsewhere but
        // the distribution is equally skewed (same max frequency).
        let plain_max_idx = pc.iter().enumerate().max_by_key(|(_, c)| **c).unwrap().0;
        let scr_max_idx = sc.iter().enumerate().max_by_key(|(_, c)| **c).unwrap().0;
        assert_eq!(plain_max_idx, 0);
        assert_ne!(scr_max_idx, 0);
        let pm: usize = *pc.iter().max().unwrap();
        let sm: usize = *sc.iter().max().unwrap();
        let diff = pm.abs_diff(sm) as f64 / pm as f64;
        assert!(diff < 0.1, "scrambling changed skew: {pm} vs {sm}");
    }

    #[test]
    fn deterministic_for_seed() {
        let z = Zipfian::new(500, 0.9);
        let a = histogram(&z, 1000, 42);
        let b = histogram(&z, 1000, 42);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty key space")]
    fn zero_keys_rejected() {
        let _ = Zipfian::new(0, 0.9);
    }

    #[test]
    fn singleton_keyspace() {
        let z = Zipfian::new(1, 0.5);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn shared_instances_are_the_same_table() {
        // Two sessions over the same keyspace share one generator …
        let a = Zipfian::shared(4096, 0.9, true);
        let b = Zipfian::shared(4096, 0.9, true);
        assert!(std::sync::Arc::ptr_eq(&a, &b), "same keyspace must share the table");
        // … and draw identically to a privately built one.
        let fresh = Zipfian::new(4096, 0.9).scrambled();
        let mut r1 = StdRng::seed_from_u64(11);
        let mut r2 = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            assert_eq!(a.sample(&mut r1), fresh.sample(&mut r2));
        }
        // Different keyspace or mode ⇒ different table.
        let c = Zipfian::shared(4097, 0.9, true);
        let d = Zipfian::shared(4096, 0.9, false);
        assert!(!std::sync::Arc::ptr_eq(&a, &c));
        assert!(!std::sync::Arc::ptr_eq(&a, &d));
    }
}
