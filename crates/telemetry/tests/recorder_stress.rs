//! Satellite: flight-recorder ring semantics under pressure.
//!
//! - Overflow keeps the *newest* events and counts every drop.
//! - Concurrent writers never tear an event: each recorded event
//!   carries a self-consistent (writer, payload) pair, and the ring
//!   retains exactly `capacity` of the most recent writes with the
//!   drop counter accounting for the rest.

use poe_telemetry::{FlightRecorder, ProtoEvent, TimeBase};
use std::sync::Arc;

#[test]
fn overflow_keeps_newest_and_counts_every_drop() {
    let cap = 64;
    let rec = FlightRecorder::new(TimeBase::Wall, cap);
    let total = 1000u64;
    for i in 0..total {
        rec.record(i, ProtoEvent::Executed { view: i / 10, seq: i });
    }
    let events = rec.events();
    assert_eq!(events.len(), cap);
    assert_eq!(rec.dropped(), total - cap as u64);
    // Oldest-first, contiguous, ending at the last write.
    for (k, ev) in events.iter().enumerate() {
        let expect = total - cap as u64 + k as u64;
        assert_eq!(ev.t_ns, expect);
        assert_eq!(ev.event, ProtoEvent::Executed { view: expect / 10, seq: expect });
    }
}

#[test]
fn concurrent_writers_never_tear_an_event() {
    const WRITERS: u64 = 8;
    const PER_WRITER: u64 = 5_000;
    let cap = 256;
    let rec = Arc::new(FlightRecorder::new(TimeBase::Wall, cap));

    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let rec = Arc::clone(&rec);
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    // Encode (writer, i) redundantly across the fields:
                    // `t_ns` and the event payload must stay consistent
                    // or the event was torn.
                    let tag = w * PER_WRITER + i;
                    rec.record(tag, ProtoEvent::FellBehind { stable: w, exec: i });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread");
    }

    let events = rec.events();
    assert_eq!(events.len(), cap);
    assert_eq!(rec.dropped(), WRITERS * PER_WRITER - cap as u64);
    for ev in &events {
        match ev.event {
            ProtoEvent::FellBehind { stable: w, exec: i } => {
                assert!(w < WRITERS && i < PER_WRITER, "impossible payload {:?}", ev.event);
                assert_eq!(ev.t_ns, w * PER_WRITER + i, "torn event: {ev:?}");
            }
            other => panic!("foreign event appeared: {other:?}"),
        }
    }
    // Every writer's final event is "recent"; at least the single very
    // last write in global mutex order must be retained. Weaker but
    // deterministic: every retained tag must be unique.
    let mut tags: Vec<u64> = events.iter().map(|e| e.t_ns).collect();
    tags.sort_unstable();
    tags.dedup();
    assert_eq!(tags.len(), cap, "duplicate retained events");
}
