//! Satellite: counting-allocator proof that steady-state hot-path
//! metric updates are allocation-free, alongside the fabric's ingress
//! proof. A counter bump, a gauge move, a histogram record (plain and
//! atomic), and a flight-recorder write (after the ring is warm) must
//! not allocate — these run on the per-frame and per-batch paths of
//! every fabric stage.

use poe_telemetry::{AtomicHistogram, FlightRecorder, Histogram, ProtoEvent, Registry, TimeBase};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOC_EVENTS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Minimum allocation count of `f` across a few runs (the minimum
/// filters out one-off interference from the test harness).
fn min_allocs(mut f: impl FnMut()) -> usize {
    (0..5)
        .map(|_| {
            let before = ALLOC_EVENTS.load(Ordering::Relaxed);
            f();
            ALLOC_EVENTS.load(Ordering::Relaxed) - before
        })
        .min()
        .expect("non-empty")
}

#[test]
fn hot_path_metric_updates_are_allocation_free() {
    let reg = Registry::new();
    let counter = reg.counter("poe_test_frames_total", "frames");
    let gauge = reg.gauge("poe_test_depth", "depth");
    let atomic_hist = reg.histogram("poe_test_latency_ns", "latency");
    let mut hist = Histogram::new();

    let allocs = min_allocs(|| {
        for i in 0..1000u64 {
            counter.inc();
            gauge.add(1);
            gauge.sub(1);
            atomic_hist.record(i * 977 + 13);
            hist.record(i * 977 + 13);
        }
        std::hint::black_box(counter.get());
        std::hint::black_box(gauge.get());
    });
    assert_eq!(allocs, 0, "steady-state metric updates allocated");
}

#[test]
fn warm_flight_recorder_writes_are_allocation_free() {
    let rec = FlightRecorder::new(TimeBase::Wall, 128);
    // Warm-up: Vec::push up to the pre-reserved capacity must not
    // allocate either, but fill the ring first so the loop below
    // exercises the overwrite path too.
    for i in 0..128u64 {
        rec.record(i, ProtoEvent::Decided { seq: i });
    }
    let allocs = min_allocs(|| {
        for i in 0..1000u64 {
            rec.record(i, ProtoEvent::BatchCut { len: i as u32 });
        }
    });
    assert_eq!(allocs, 0, "warm flight-recorder writes allocated");
}

#[test]
fn standalone_atomic_histogram_record_is_allocation_free() {
    let h = AtomicHistogram::new();
    h.record(1); // warm nothing in particular; record is always 0-alloc
    let allocs = min_allocs(|| {
        for i in 0..10_000u64 {
            h.record(i.wrapping_mul(2_654_435_761));
        }
    });
    assert_eq!(allocs, 0, "atomic histogram record allocated");
}
