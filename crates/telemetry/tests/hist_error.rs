//! Satellite regression: the histogram that replaced the open-loop
//! latency sample vector must keep quantile error ≤ 1 % on a
//! 10⁶-sample synthetic stream while holding memory constant (a fixed
//! bucket table instead of 8 MB of raw `u64`s per measured minute).
//!
//! The stream mixes the regimes the open-loop engine actually sees:
//! a tight fast-path mode (~200 µs), a heavy tail past the batch-cut
//! delay (~2–60 ms), and occasional repair-scale outliers (~1 s), all
//! in nanoseconds. Exact quantiles are computed from the sorted raw
//! stream and compared against the histogram's answers.

use poe_telemetry::{AtomicHistogram, Histogram};

/// Deterministic splitmix64 so the stream is reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// One latency-like sample in nanoseconds: 70 % fast path, 29 % batch
/// tail, 1 % repair-scale outlier.
fn sample(rng: &mut Rng) -> u64 {
    let pick = rng.next() % 100;
    if pick < 70 {
        150_000 + rng.next() % 100_000 // 150–250 µs
    } else if pick < 99 {
        2_000_000 + rng.next() % 58_000_000 // 2–60 ms
    } else {
        800_000_000 + rng.next() % 400_000_000 // 0.8–1.2 s
    }
}

fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[test]
fn million_sample_stream_quantile_error_within_one_percent() {
    const N: usize = 1_000_000;
    let mut rng = Rng(0x5eed_1234);
    let mut hist = Histogram::new();
    let mut raw = Vec::with_capacity(N);
    for _ in 0..N {
        let v = sample(&mut rng);
        hist.record(v);
        raw.push(v);
    }
    raw.sort_unstable();

    assert_eq!(hist.count(), N as u64);
    for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 0.9999] {
        let exact = exact_quantile(&raw, q);
        let approx = hist.quantile(q);
        let err = (approx as f64 - exact as f64).abs() / exact as f64;
        assert!(err <= 0.01, "q={q}: exact={exact} approx={approx} err={:.4} exceeds 1%", err);
    }
    // Endpoints are exact, not just within-1%.
    assert_eq!(hist.quantile(0.0), raw[0]);
    assert_eq!(hist.quantile(1.0), raw[N - 1]);
}

#[test]
fn interval_delta_quantiles_hold_the_same_bound() {
    // The open-loop sampler computes per-tick quantiles by subtracting
    // successive snapshots of one cumulative histogram; the interval
    // answers must obey the same error budget.
    const N: usize = 200_000;
    let mut rng = Rng(0xfeed_beef);
    let cum = AtomicHistogram::new();
    // First "tick".
    for _ in 0..N {
        cum.record(sample(&mut rng));
    }
    let snap1 = cum.snapshot();
    // Second tick draws from a shifted distribution so the interval
    // answer differs measurably from the cumulative one.
    let mut raw2 = Vec::with_capacity(N);
    for _ in 0..N {
        let v = sample(&mut rng) * 3;
        cum.record(v);
        raw2.push(v);
    }
    let delta = cum.snapshot().delta_since(&snap1);
    raw2.sort_unstable();

    assert_eq!(delta.count(), N as u64);
    for q in [0.5, 0.9, 0.99] {
        let exact = exact_quantile(&raw2, q);
        let approx = delta.quantile(q);
        let err = (approx as f64 - exact as f64).abs() / exact as f64;
        assert!(err <= 0.01, "q={q}: exact={exact} approx={approx} err={err:.4}");
    }
}
