//! Prometheus text exposition.
//!
//! Renders every series registered in a [`Registry`] in the
//! [Prometheus text format]: counters and gauges as single sample
//! lines, histograms as summaries (`{quantile="…"}` samples plus
//! `_sum`/`_count`/`_min`/`_max`). `# HELP`/`# TYPE` headers are
//! emitted once per metric name, in first-registration order, with all
//! label variants grouped under them.
//!
//! [Prometheus text format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::metrics::{MetricKind, Registry};
use std::fmt::Write;

/// Quantiles rendered for every histogram series.
const QUANTILES: [(f64, &str); 4] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (1.0, "1")];

fn label_str(labels: &[(&'static str, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

impl Registry {
    /// Renders every registered series as Prometheus text.
    pub fn render(&self) -> String {
        let entries = self.entries.lock().expect("registry poisoned");
        let mut out = String::new();
        let mut seen: Vec<&str> = Vec::new();
        for e in entries.iter() {
            if !seen.contains(&e.name) {
                seen.push(e.name);
                let ty = match e.kind {
                    MetricKind::Counter(_) => "counter",
                    MetricKind::Gauge(_) => "gauge",
                    MetricKind::Histogram(_) => "summary",
                };
                let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
                let _ = writeln!(out, "# TYPE {} {}", e.name, ty);
                // Group every same-named entry under one header.
                for v in entries.iter().filter(|v| v.name == e.name) {
                    render_one(&mut out, v);
                }
            }
        }
        out
    }
}

fn render_one(out: &mut String, e: &crate::metrics::Entry) {
    match &e.kind {
        MetricKind::Counter(c) => {
            let _ = writeln!(out, "{}{} {}", e.name, label_str(&e.labels, None), c.get());
        }
        MetricKind::Gauge(g) => {
            let _ = writeln!(out, "{}{} {}", e.name, label_str(&e.labels, None), g.get());
        }
        MetricKind::Histogram(h) => {
            let snap = h.snapshot();
            for (q, qs) in QUANTILES {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    e.name,
                    label_str(&e.labels, Some(("quantile", qs))),
                    snap.quantile(q)
                );
            }
            let ls = label_str(&e.labels, None);
            let _ = writeln!(out, "{}_sum{} {}", e.name, ls, snap.sum());
            let _ = writeln!(out, "{}_count{} {}", e.name, ls, snap.count());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_gauges_and_summaries() {
        let reg = Registry::new();
        let c = reg.counter("poe_frames_total", "Frames decoded");
        let g =
            reg.gauge_with("poe_queue_depth", "Queue depth", vec![("stage", "batch".to_string())]);
        let h = reg.histogram("poe_latency_ns", "Request latency");
        c.add(7);
        g.set(3);
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        let text = reg.render();
        assert!(text.contains("# TYPE poe_frames_total counter"), "{text}");
        assert!(text.contains("poe_frames_total 7"), "{text}");
        assert!(text.contains("poe_queue_depth{stage=\"batch\"} 3"), "{text}");
        assert!(text.contains("# TYPE poe_latency_ns summary"), "{text}");
        assert!(text.contains("poe_latency_ns{quantile=\"0.5\"} 200"), "{text}");
        assert!(text.contains("poe_latency_ns_count 3"), "{text}");
        assert!(text.contains("poe_latency_ns_sum 600"), "{text}");
    }

    #[test]
    fn type_header_emitted_once_per_name() {
        let reg = Registry::new();
        for stage in ["ingress", "batching", "consensus"] {
            reg.counter_with(
                "poe_stage_events_total",
                "Stage events",
                vec![("stage", stage.to_string())],
            );
        }
        let text = reg.render();
        assert_eq!(text.matches("# TYPE poe_stage_events_total").count(), 1, "{text}");
        assert_eq!(text.matches("stage=\"").count(), 3, "{text}");
    }
}
