//! Log-linear (HDR-style) bounded-error histograms.
//!
//! Values are `u64` (typically nanoseconds or queue depths). The bucket
//! grid is *log-linear*: each power-of-two octave is split into
//! `2^GRID_BITS` equal-width sub-buckets, so the relative width of any
//! bucket is at most `2^-GRID_BITS` and the midpoint representative is
//! within `2^-(GRID_BITS+1)` of every value the bucket holds. With
//! `GRID_BITS = 7` that is a guaranteed quantile error ≤ 0.4 % — well
//! inside the 1 % budget — from a fixed ~58 KiB table, independent of
//! how many samples are recorded. Values below `2 * 2^GRID_BITS` are
//! counted exactly.
//!
//! Two flavours share the grid:
//!
//! - [`Histogram`]: plain `u64` counts for single-writer use and as the
//!   snapshot/merge/interval-delta currency.
//! - [`AtomicHistogram`]: relaxed `AtomicU64` counts so many threads
//!   can [`record`](AtomicHistogram::record) concurrently without locks
//!   or allocation; [`snapshot`](AtomicHistogram::snapshot) yields a
//!   [`Histogram`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each octave is split into `2^GRID_BITS`
/// equal-width buckets, bounding relative bucket width by
/// `2^-GRID_BITS` (= 1/128 ≈ 0.78 %).
pub const GRID_BITS: u32 = 7;

/// Sub-buckets per octave.
const SUB: u64 = 1 << GRID_BITS;

/// Values in `[0, 2*SUB)` are held exactly, one value per bucket.
const EXACT_LIMIT: u64 = 2 * SUB;

/// Pages: the exact region occupies pages 0 and 1; each further page
/// covers one octave `[2^(m), 2^(m+1))` for `m = GRID_BITS+1 ..= 63`,
/// i.e. `63 - GRID_BITS` log-linear pages.
const PAGES: usize = 2 + (63 - GRID_BITS) as usize;

/// Total bucket count of the fixed grid (7 424 for `GRID_BITS = 7`).
pub const NUM_BUCKETS: usize = PAGES * SUB as usize;

/// Maps a value onto the log-linear grid. Total and order-preserving:
/// `bucket_index` is monotone in `v` and always `< NUM_BUCKETS`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < EXACT_LIMIT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= GRID_BITS + 1
    let shift = msb - GRID_BITS;
    let sub = (v >> shift) - SUB; // in [0, SUB)
    ((shift as u64 + 1) * SUB + sub) as usize
}

/// Inclusive lower bound of bucket `idx`.
#[inline]
fn bucket_low(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < EXACT_LIMIT {
        return idx;
    }
    let shift = (idx >> GRID_BITS) - 1;
    let sub = idx & (SUB - 1);
    (SUB + sub) << shift
}

/// Midpoint representative of bucket `idx` — the value reported for
/// any sample that landed in the bucket.
#[inline]
fn bucket_mid(idx: usize) -> u64 {
    let low = bucket_low(idx);
    if (idx as u64) < EXACT_LIMIT {
        return low; // exact buckets have width 1
    }
    let shift = ((idx as u64) >> GRID_BITS) - 1;
    low + (1u64 << shift) / 2
}

/// A fixed-size log-linear histogram with plain `u64` counts.
///
/// Cheap to merge (`merge`), subtract (`delta_since`, for interval
/// quantiles out of a cumulative series), and query (`quantile`).
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram (one fixed ~58 KiB table).
    pub fn new() -> Histogram {
        Histogram { counts: vec![0; NUM_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample. Never allocates.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (wrapping at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Whether any samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `q`-quantile (`q` in `[0, 1]`) of the recorded samples, with
    /// relative error bounded by `2^-(GRID_BITS+1)`. Returns 0 when
    /// empty. `quantile(0.0)` is the recorded minimum and
    /// `quantile(1.0)` the recorded maximum, exactly.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Clamp the midpoint into the recorded range so extreme
                // quantiles report real observed bounds.
                return bucket_mid(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The samples recorded since `prev` was captured, assuming `prev`
    /// is an earlier snapshot of the same cumulative series. The
    /// interval min/max are reconstructed from the surviving buckets
    /// (bounded by one bucket width, like every other query).
    pub fn delta_since(&self, prev: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (idx, (a, b)) in self.counts.iter().zip(&prev.counts).enumerate() {
            let d = a.saturating_sub(*b);
            if d > 0 {
                out.counts[idx] = d;
                out.count += d;
                out.min = out.min.min(bucket_low(idx));
                out.max = out.max.max(bucket_mid(idx));
            }
        }
        out.sum = self.sum.wrapping_sub(prev.sum);
        out
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .field("max", &self.max)
            .finish()
    }
}

/// A log-linear histogram with relaxed atomic counts: any number of
/// threads may `record` concurrently, and `snapshot` produces a
/// [`Histogram`] for querying/merging without stopping writers.
pub struct AtomicHistogram {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty atomic histogram.
    pub fn new() -> AtomicHistogram {
        let mut counts = Vec::with_capacity(NUM_BUCKETS);
        counts.resize_with(NUM_BUCKETS, || AtomicU64::new(0));
        AtomicHistogram {
            counts,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample: five relaxed atomic RMWs, no locks, no
    /// allocation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current counts into a plain [`Histogram`]. Writers
    /// may race with the copy; each sample is either in or out (no
    /// tearing of individual buckets), which is the usual monitoring
    /// contract.
    pub fn snapshot(&self) -> Histogram {
        let mut out = Histogram::new();
        for (a, b) in out.counts.iter_mut().zip(&self.counts) {
            *a = b.load(Ordering::Relaxed);
        }
        out.count = out.counts.iter().sum();
        out.sum = self.sum.load(Ordering::Relaxed);
        out.min = self.min.load(Ordering::Relaxed);
        out.max = self.max.load(Ordering::Relaxed);
        // A racing writer may have bumped `sum`/`min`/`max` for a
        // sample whose bucket increment we missed (or vice versa);
        // clamp to keep the snapshot self-consistent.
        if out.count == 0 {
            out.sum = 0;
            out.min = u64::MAX;
            out.max = 0;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_region_is_exact() {
        for v in 0..EXACT_LIMIT {
            let idx = bucket_index(v);
            assert_eq!(bucket_low(idx), v);
            assert_eq!(bucket_mid(idx), v);
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut prev = 0usize;
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let idx = bucket_index(v);
            assert!(idx < NUM_BUCKETS, "v={v} idx={idx}");
            assert!(idx >= prev, "v={v}");
            prev = idx;
            v = v * 3 / 2 + 1;
        }
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn representative_error_is_bounded() {
        let bound = 1.0 / f64::from(1u32 << (GRID_BITS + 1));
        let mut v = 1u64;
        while v < 1 << 62 {
            let mid = bucket_mid(bucket_index(v));
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err <= bound, "v={v} mid={mid} err={err}");
            v = (v / 4).max(1) * 7 + 3;
        }
    }

    #[test]
    fn quantile_endpoints_are_exact() {
        let mut h = Histogram::new();
        for v in [17u64, 1_000_003, 42, 9_999_999_999] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 17);
        assert_eq!(h.quantile(1.0), 9_999_999_999);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn merge_equals_recording_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for i in 0..10_000u64 {
            let v = i * i % 777_777;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
    }

    #[test]
    fn delta_since_isolates_the_interval() {
        let mut cum = Histogram::new();
        for v in 0..1000u64 {
            cum.record(v);
        }
        let snap = cum.clone();
        for v in 100_000..101_000u64 {
            cum.record(v);
        }
        let delta = cum.delta_since(&snap);
        assert_eq!(delta.count(), 1000);
        let p50 = delta.quantile(0.5);
        assert!((p50 as f64 - 100_500.0).abs() / 100_500.0 < 0.01, "p50={p50}");
    }

    #[test]
    fn atomic_snapshot_matches_plain() {
        let ah = AtomicHistogram::new();
        let mut h = Histogram::new();
        for i in 0..50_000u64 {
            let v = (i * 2_654_435_761) % 10_000_000;
            ah.record(v);
            h.record(v);
        }
        let snap = ah.snapshot();
        assert_eq!(snap.count(), h.count());
        assert_eq!(snap.sum(), h.sum());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(snap.quantile(q), h.quantile(q));
        }
    }
}
