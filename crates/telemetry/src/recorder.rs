//! The flight recorder: a fixed-capacity ring buffer of structured
//! protocol events.
//!
//! Each replica owns one [`FlightRecorder`]. Protocol-significant
//! transitions (batch cuts, view changes, checkpoint stabilization,
//! `FellBehind` → repair → `CaughtUp`, shed/deferral episodes, link
//! drops and reconnects, injected faults) are recorded as compact
//! [`ProtoEvent`] values stamped with a timestamp — wall time in the
//! fabric ([`TimeBase::Wall`]), virtual time in the simulator
//! ([`TimeBase::Virtual`]). When the ring is full the *oldest* events
//! are overwritten (the newest are what a post-mortem needs) and a
//! drop counter keeps the tally honest. [`FlightRecorder::dump`]
//! renders a human-readable timeline for chaos-seed repro lines, test
//! failures, and the `poe-node` `dump-trace` stdio command.
//!
//! Recording takes a `Mutex` for a handful of nanoseconds; events are
//! rare (per batch / per protocol transition, not per request), and the
//! hot per-request paths use the lock-free counters and histograms
//! from the metrics core instead.

use std::sync::Mutex;

/// Default event capacity per recorder (~100 KiB).
pub const DEFAULT_CAPACITY: usize = 4096;

/// The far side of a link event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkPeer {
    /// A replica peer, by replica id.
    Replica(u32),
    /// A client hub group, by group index.
    Clients(u32),
}

impl std::fmt::Display for LinkPeer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkPeer::Replica(id) => write!(f, "r{id}"),
            LinkPeer::Clients(g) => write!(f, "c{g}"),
        }
    }
}

/// One structured protocol event. `Copy` and fixed-size so recording
/// never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtoEvent {
    /// The batching stage cut a batch of `len` requests.
    BatchCut {
        /// Requests in the batch.
        len: u32,
    },
    /// A batch was speculatively executed at `seq` in `view`.
    Executed {
        /// View the execution happened in.
        view: u64,
        /// Sequence number executed.
        seq: u64,
    },
    /// A batch reached commit quorum at `seq`.
    Decided {
        /// Sequence number decided.
        seq: u64,
    },
    /// The replica moved to `view`.
    ViewChanged {
        /// The new view number.
        view: u64,
    },
    /// A checkpoint stabilized at `seq`.
    CheckpointStable {
        /// The stable sequence number.
        seq: u64,
    },
    /// Speculative execution rolled back to `to`.
    RolledBack {
        /// Frontier after the rollback.
        to: u64,
    },
    /// The replica noticed it fell behind the cluster.
    FellBehind {
        /// Cluster stable frontier observed.
        stable: u64,
        /// Local execution frontier.
        exec: u64,
    },
    /// State repair finished; the replica caught up.
    CaughtUp {
        /// Stable frontier reached.
        stable: u64,
        /// Execution frontier reached.
        exec: u64,
    },
    /// Ingress shed a window of client traffic (coalesced episode).
    Shed {
        /// Retransmits shed under the high-water policy.
        retransmits: u32,
        /// Fresh requests shed because the queue was full.
        full: u32,
    },
    /// Batching deferred to a deep consensus queue (coalesced episode).
    Deferred {
        /// Deferral pauses in the episode.
        count: u32,
    },
    /// A transport link went down.
    LinkDown {
        /// The peer whose link dropped.
        peer: LinkPeer,
    },
    /// A transport link (re)connected.
    LinkUp {
        /// The peer that connected.
        peer: LinkPeer,
        /// Whether this was a reconnect (not the first connect).
        reconnect: bool,
    },
    /// Fault injection: the replica was crashed.
    Crashed,
    /// Fault injection: the replica restarted / rejoined.
    Restarted,
    /// Fault injection: the replica was muted (isolated).
    Muted,
    /// Fault injection: the replica was unmuted.
    Unmuted,
}

impl std::fmt::Display for ProtoEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoEvent::BatchCut { len } => write!(f, "batch-cut len={len}"),
            ProtoEvent::Executed { view, seq } => write!(f, "executed view={view} seq={seq}"),
            ProtoEvent::Decided { seq } => write!(f, "decided seq={seq}"),
            ProtoEvent::ViewChanged { view } => write!(f, "view-changed view={view}"),
            ProtoEvent::CheckpointStable { seq } => write!(f, "checkpoint-stable seq={seq}"),
            ProtoEvent::RolledBack { to } => write!(f, "rolled-back to={to}"),
            ProtoEvent::FellBehind { stable, exec } => {
                write!(f, "fell-behind stable={stable} exec={exec}")
            }
            ProtoEvent::CaughtUp { stable, exec } => {
                write!(f, "caught-up stable={stable} exec={exec}")
            }
            ProtoEvent::Shed { retransmits, full } => {
                write!(f, "shed retransmits={retransmits} full={full}")
            }
            ProtoEvent::Deferred { count } => write!(f, "deferred count={count}"),
            ProtoEvent::LinkDown { peer } => write!(f, "link-down peer={peer}"),
            ProtoEvent::LinkUp { peer, reconnect } => {
                write!(f, "link-up peer={peer} reconnect={reconnect}")
            }
            ProtoEvent::Crashed => write!(f, "crashed"),
            ProtoEvent::Restarted => write!(f, "restarted"),
            ProtoEvent::Muted => write!(f, "muted"),
            ProtoEvent::Unmuted => write!(f, "unmuted"),
        }
    }
}

/// What the recorder's timestamps mean.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimeBase {
    /// Wall-clock nanoseconds since cluster start (the fabric).
    Wall,
    /// Virtual nanoseconds of the deterministic simulator.
    Virtual,
}

/// A recorded event with its timestamp.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimedEvent {
    /// Nanoseconds in the recorder's [`TimeBase`].
    pub t_ns: u64,
    /// The event.
    pub event: ProtoEvent,
}

struct Ring {
    buf: Vec<TimedEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

/// A fixed-capacity, overwrite-oldest ring of [`TimedEvent`]s.
///
/// Concurrent writers serialize on a short mutex hold; events are
/// never torn (a reader sees each event entirely or not at all) and
/// recording never allocates after construction.
pub struct FlightRecorder {
    ring: Mutex<Ring>,
    cap: usize,
    timebase: TimeBase,
}

impl FlightRecorder {
    /// A recorder holding at most `cap` events (`cap >= 1`).
    pub fn new(timebase: TimeBase, cap: usize) -> FlightRecorder {
        let cap = cap.max(1);
        FlightRecorder {
            ring: Mutex::new(Ring { buf: Vec::with_capacity(cap), head: 0, dropped: 0 }),
            cap,
            timebase,
        }
    }

    /// A recorder with [`DEFAULT_CAPACITY`].
    pub fn with_default_capacity(timebase: TimeBase) -> FlightRecorder {
        FlightRecorder::new(timebase, DEFAULT_CAPACITY)
    }

    /// The recorder's time base.
    pub fn timebase(&self) -> TimeBase {
        self.timebase
    }

    /// Event capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records one event at `t_ns`. Overwrites the oldest event when
    /// full; never allocates (the buffer is pre-reserved).
    pub fn record(&self, t_ns: u64, event: ProtoEvent) {
        let mut ring = self.ring.lock().expect("recorder poisoned");
        let ev = TimedEvent { t_ns, event };
        if ring.buf.len() < self.cap {
            ring.buf.push(ev);
        } else {
            let head = ring.head;
            ring.buf[head] = ev;
            ring.head = (head + 1) % self.cap;
            ring.dropped += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("recorder poisoned").buf.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("recorder poisoned").dropped
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TimedEvent> {
        let ring = self.ring.lock().expect("recorder poisoned");
        let mut out = Vec::with_capacity(ring.buf.len());
        out.extend_from_slice(&ring.buf[ring.head..]);
        out.extend_from_slice(&ring.buf[..ring.head]);
        out
    }

    /// Renders the retained timeline, one event per line, prefixed
    /// with `label`. Timestamps are seconds with microsecond precision
    /// in the recorder's time base.
    pub fn dump(&self, label: &str) -> String {
        let events = self.events();
        let dropped = self.dropped();
        let base = match self.timebase {
            TimeBase::Wall => "wall",
            TimeBase::Virtual => "virtual",
        };
        let mut out = String::new();
        use std::fmt::Write;
        let _ = writeln!(
            out,
            "-- {label}: {} events ({base} time, {dropped} older dropped) --",
            events.len()
        );
        for ev in &events {
            let secs = ev.t_ns / 1_000_000_000;
            let micros = (ev.t_ns % 1_000_000_000) / 1_000;
            let _ = writeln!(out, "{label} {secs:>5}.{micros:06} {}", ev.event);
        }
        out
    }

    /// The last `k` events rendered as with [`dump`](Self::dump).
    pub fn tail(&self, label: &str, k: usize) -> String {
        let events = self.events();
        let skip = events.len().saturating_sub(k);
        let mut out = String::new();
        use std::fmt::Write;
        for ev in &events[skip..] {
            let secs = ev.t_ns / 1_000_000_000;
            let micros = (ev.t_ns % 1_000_000_000) / 1_000;
            let _ = writeln!(out, "{label} {secs:>5}.{micros:06} {}", ev.event);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_newest_and_counts_drops() {
        let rec = FlightRecorder::new(TimeBase::Wall, 4);
        for i in 0..10u64 {
            rec.record(i, ProtoEvent::Decided { seq: i });
        }
        let evs = rec.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(rec.dropped(), 6);
        let seqs: Vec<u64> = evs
            .iter()
            .map(|e| match e.event {
                ProtoEvent::Decided { seq } => seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert!(evs.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    }

    #[test]
    fn dump_is_human_readable() {
        let rec = FlightRecorder::new(TimeBase::Virtual, 16);
        rec.record(1_500_000, ProtoEvent::BatchCut { len: 5 });
        rec.record(2_000_000, ProtoEvent::ViewChanged { view: 1 });
        let dump = rec.dump("r0");
        assert!(dump.contains("virtual time"), "{dump}");
        assert!(dump.contains("r0     0.001500 batch-cut len=5"), "{dump}");
        assert!(dump.contains("view-changed view=1"), "{dump}");
    }
}
