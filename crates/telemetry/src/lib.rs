//! `poe-telemetry` — observability primitives for the PoE stack:
//! mergeable bounded-error histograms, lock-free counters/gauges with
//! Prometheus text exposition, and a per-replica flight recorder of
//! structured protocol events.
//!
//! # Metrics core
//!
//! [`Counter`] and [`Gauge`] are `Arc`-shared relaxed atomics — a bump
//! is one RMW, no locks, no allocation, safe on the per-frame hot
//! path. [`Histogram`] / [`AtomicHistogram`] are log-linear HDR-style
//! histograms ([`hist`]): a fixed ~58 KiB bucket table whose relative
//! quantile error is bounded by `2^-(GRID_BITS+1)` (≈ 0.4 %),
//! regardless of sample count — latency series stay bounded-memory
//! over hour-long open-loop windows. Snapshots are plain `Histogram`s
//! that merge (across threads) and subtract ([`Histogram::delta_since`],
//! for per-tick interval quantiles out of a cumulative series).
//!
//! A [`Registry`] names the live series and renders them all as
//! Prometheus text via [`Registry::render`] ([`expo`]) — the payload
//! behind the `poe-node` `metrics` stdio command and the open-loop
//! engine's in-window sampler.
//!
//! # Flight recorder
//!
//! [`FlightRecorder`] ([`recorder`]) is a fixed-capacity,
//! overwrite-oldest ring of [`ProtoEvent`]s (batch cuts, view changes,
//! checkpoint stabilization, repair transitions, shed/deferral
//! episodes, link drops/reconnects, injected faults) stamped in wall
//! time (fabric) or virtual time (simulator). It answers "what did the
//! protocol *do*" after a chaos seed fails or a node misbehaves:
//! [`FlightRecorder::dump`] renders the retained timeline, and the
//! `poe-node` binary exposes it over stdio as `dump-trace`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expo;
pub mod hist;
pub mod metrics;
pub mod recorder;

pub use hist::{AtomicHistogram, Histogram, GRID_BITS, NUM_BUCKETS};
pub use metrics::{Counter, Gauge, Registry};
pub use recorder::{FlightRecorder, LinkPeer, ProtoEvent, TimeBase, TimedEvent, DEFAULT_CAPACITY};
