//! Counters, gauges, and the metric registry.
//!
//! Handles are `Arc`-shared atomics: cloning a handle is cheap, bumping
//! one is a single relaxed RMW with no locks and no allocation, so hot
//! paths (ingress frame counting, queue-depth tracking) can hold a
//! handle per thread. The [`Registry`] owns the name → handle mapping
//! and renders every registered series as Prometheus text (see
//! [`Registry::render`] in `expo.rs`).

use crate::hist::AtomicHistogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A free-standing counter (not registered anywhere).
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (queue depth, view number).
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A free-standing gauge (not registered anywhere).
    pub fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` (saturating via wrapping contract: callers keep
    /// inc/dec balanced).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// What a registered series points at.
pub(crate) enum MetricKind {
    /// Monotone counter.
    Counter(Arc<Counter>),
    /// Up/down gauge.
    Gauge(Arc<Gauge>),
    /// Log-linear histogram, rendered as a Prometheus summary.
    Histogram(Arc<AtomicHistogram>),
}

/// One registered series: a metric name, optional label pairs, help
/// text, and the live handle.
pub(crate) struct Entry {
    pub(crate) name: &'static str,
    pub(crate) help: &'static str,
    pub(crate) labels: Vec<(&'static str, String)>,
    pub(crate) kind: MetricKind,
}

/// A registry of named metric series.
///
/// Registration takes a lock and allocates; reads and renders walk the
/// entry list. The handles the registry gives out are plain atomics —
/// updating them never touches the registry again.
#[derive(Default)]
pub struct Registry {
    pub(crate) entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers a counter series and returns its handle.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        self.counter_with(name, help, Vec::new())
    }

    /// Registers a counter series with label pairs.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
    ) -> Arc<Counter> {
        let h = Arc::new(Counter::new());
        self.push(name, help, labels, MetricKind::Counter(h.clone()));
        h
    }

    /// Registers a gauge series and returns its handle.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        self.gauge_with(name, help, Vec::new())
    }

    /// Registers a gauge series with label pairs.
    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
    ) -> Arc<Gauge> {
        let h = Arc::new(Gauge::new());
        self.push(name, help, labels, MetricKind::Gauge(h.clone()));
        h
    }

    /// Registers an externally created gauge (e.g. a queue's depth
    /// gauge that must live inside the queue) under a series name.
    pub fn register_gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
        h: Arc<Gauge>,
    ) {
        self.push(name, help, labels, MetricKind::Gauge(h));
    }

    /// Registers a histogram series and returns its handle.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<AtomicHistogram> {
        self.histogram_with(name, help, Vec::new())
    }

    /// Registers a histogram series with label pairs.
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
    ) -> Arc<AtomicHistogram> {
        let h = Arc::new(AtomicHistogram::new());
        self.push(name, help, labels, MetricKind::Histogram(h.clone()));
        h
    }

    /// Registers an externally created histogram under a series name.
    pub fn register_histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
        h: Arc<AtomicHistogram>,
    ) {
        self.push(name, help, labels, MetricKind::Histogram(h));
    }

    fn push(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
        kind: MetricKind,
    ) {
        self.entries.lock().expect("registry poisoned").push(Entry { name, help, labels, kind });
    }
}
