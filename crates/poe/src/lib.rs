//! # poe-consensus
//!
//! The Proof-of-Execution (PoE) consensus protocol of Gupta, Hellings,
//! Rahnama & Sadoghi (EDBT 2021), as a sans-I/O
//! [`poe_kernel::automaton::ReplicaAutomaton`]. The same automaton is
//! driven by the deterministic discrete-event simulator (`poe-sim`) and —
//! eventually — the threaded fabric runtime (`poe-fabric`).
//!
//! ## Map from code to paper
//!
//! | Paper | Here |
//! |---|---|
//! | Fig. 3 normal case, Lines 1–7 (client) | `poe_workload::client` with an `nf`-matching reply policy |
//! | Fig. 3 Lines 8–13: primary batches `⟨T⟩c`, sends PROPOSE | [`replica::PoeReplica::on_event`] request path + batch-cut timer (§III "Batching") |
//! | Fig. 3 Lines 14–19: backup checks PROPOSE, speculatively executes, sends SUPPORT | `accept_proposal` / `try_execute`; TS shares via [`poe_crypto::CryptoProvider::ts_share`], MAC digests per Appendix A |
//! | Fig. 3 Lines 20–22: primary aggregates `nf` shares into CERTIFY | `try_aggregate` (batch share verification, blame fallback) |
//! | Fig. 3 Line 23: view-commit + INFORM | `commit_slot` / `try_inform` |
//! | §II-C failure detection (rules 1–2) | `TimerKind::RequestProgress` / `TimerKind::SlotProgress` timeouts |
//! | Fig. 5 view change: VC-REQUEST(v, E) | `start_view_change` (entries = certified prefix after the stable checkpoint) |
//! | Fig. 5 NV-PROPOSE(v+1, m₁…m_nf) | `maybe_nv_propose` / `enter_new_view` |
//! | Fig. 5 Line 14: rollback of unproven speculative batches | `enter_new_view` → [`poe_kernel::statemachine::StateMachine::rollback_to`] + ledger truncation |
//! | §II-F out-of-order processing | [`poe_kernel::watermark::Watermarks`] window around `commit` frontier |
//! | Checkpoint protocol (§II-E, bounding E) | `Checkpoint` votes, `2f+1` stability, undo-log GC at the low watermark |
//! | State transfer (checkpoint recovery) | `STATE-REQUEST`/`STATE-CHUNK`: `f+1`-vouched manifest, chunked image fetch, certified tail adoption, token-bucket serving budget |
//! | Appendix A (MAC-based PoE) | [`replica::SupportMode::Mac`]: broadcast SUPPORT digests, local `nf`-matching certification, `f+1`-multiplicity view-change adoption |
//!
//! Both certificate instantiations of the crypto layer are supported:
//! `CertScheme::MultiSig` (vector-of-Ed25519 certificates, real
//! cryptography) and `CertScheme::Simulated` (dealer-keyed HMAC tags for
//! large simulation runs); the protocol logic is identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod replica;

pub use replica::{support_digest, PoeReplica, RepairStats, SupportMode};
