//! The PoE replica automaton (paper Figures 3 and 5).
//!
//! Sans-I/O: the replica consumes [`Event`]s and emits [`Action`]s; the
//! simulator and fabric runtimes interpret them. All internal maps are
//! ordered (`BTreeMap`/`BTreeSet`) so the action stream is a pure
//! function of the event stream — the determinism the discrete-event
//! simulator's replayable traces rely on.

use poe_crypto::digest::{digest_concat, Digest, DIGEST_LEN};
use poe_crypto::ed25519::Signature;
use poe_crypto::provider::{CryptoMode, CryptoProvider, NodeIndex};
use poe_crypto::threshold::{SignatureShare, ThresholdCert, ThresholdError};
use poe_kernel::automaton::{Event, Notification, Outbox, ReplicaAutomaton};
use poe_kernel::codec::poe_vc_signing_bytes;
use poe_kernel::config::ClusterConfig;
use poe_kernel::ids::{NodeId, ReplicaId, SeqNum, View};
use poe_kernel::messages::{
    ClientReply, ExecEntry, PoeVcRequest, ProtocolMsg, RepairManifest, ReplyKind,
    StateChunkPayload, StateRequestKind,
};
use poe_kernel::quorum::MatchingVotes;
use poe_kernel::request::{Batch, Batcher, ClientRequest};
use poe_kernel::statemachine::{ExecOutcome, StateMachine};
use poe_kernel::time::Time;
use poe_kernel::timer::TimerKind;
use poe_kernel::watermark::{ContiguousTracker, Watermarks};
use poe_kernel::wire::WireBytes;
use poe_ledger::{BlockProof, Ledger};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Cap on buffered future-view messages (delivery races around a view
/// change); beyond this, newcomers are dropped and client retransmission
/// recovers.
const MAX_STASHED: usize = 4096;

/// Cap on the retired-batch buffer filled at checkpoint GC. Runtimes
/// that recycle batch containers ([`PoeReplica::take_retired_batches`])
/// drain it every event; runtimes that do not (the simulator) must not
/// accumulate dead batches forever, so beyond this the GC simply drops
/// them.
const MAX_RETIRED: usize = 256;

/// How SUPPORT votes are authenticated and certified.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SupportMode {
    /// Figure 3: backups send signature shares to the primary, which
    /// aggregates `nf` of them into a CERTIFY certificate.
    Threshold,
    /// Appendix A: backups broadcast SUPPORT digests; every replica
    /// certifies locally once it holds `nf` matching votes. No
    /// transferable certificate exists, so view changes adopt entries
    /// appearing in `f + 1` distinct VC-REQUESTs instead.
    Mac,
}

impl SupportMode {
    /// The paper's pairing of support mode to authentication mode: MAC
    /// clusters (CMAC/HMAC) run the Appendix-A variant, signature
    /// clusters the threshold variant.
    pub fn for_crypto(mode: CryptoMode) -> SupportMode {
        match mode {
            CryptoMode::Hmac | CryptoMode::Cmac => SupportMode::Mac,
            CryptoMode::None | CryptoMode::Ed25519 => SupportMode::Threshold,
        }
    }
}

/// The digest `h = D(v ‖ k ‖ D(⟨T⟩c))` that SUPPORT shares and CERTIFY
/// certificates cover (Figure 3 Line 15).
pub fn support_digest(view: View, seq: SeqNum, batch_digest: &Digest) -> Digest {
    digest_concat(&[
        b"poe-support",
        &view.0.to_le_bytes(),
        &seq.0.to_le_bytes(),
        batch_digest.as_bytes(),
    ])
}

/// Per-sequence-number consensus state.
struct Slot {
    batch: Option<Arc<Batch>>,
    proposed_view: View,
    /// `h` for the accepted proposal (valid when `batch` is set).
    digest: Digest,
    /// TS mode, primary: collected signature shares (own included).
    shares: BTreeMap<u32, SignatureShare>,
    /// MAC mode: SUPPORT votes per digest from distinct replicas.
    mac_votes: MatchingVotes<Digest>,
    /// CERTIFY that arrived before its PROPOSE (verified once the batch
    /// is known).
    pending_cert: Option<ThresholdCert>,
    /// The verified certificate (TS mode).
    cert: Option<ThresholdCert>,
    committed: bool,
    executed: bool,
    results: Option<ExecOutcome>,
    informed: bool,
    certify_sent: bool,
}

impl Default for Slot {
    fn default() -> Slot {
        Slot {
            batch: None,
            proposed_view: View::ZERO,
            digest: Digest::EMPTY,
            shares: BTreeMap::new(),
            mac_votes: MatchingVotes::new(),
            pending_cert: None,
            cert: None,
            committed: false,
            executed: false,
            results: None,
            informed: false,
            certify_sent: false,
        }
    }
}

impl Slot {
    fn matches(&self, batch_digest: &Digest) -> bool {
        self.batch.as_ref().is_some_and(|b| b.digest == *batch_digest)
    }
}

/// In-progress view change.
struct VcState {
    target: View,
}

/// Largest checkpoint image a [`RepairManifest`] may advertise. The
/// manifest is vouched for by `f + 1` distinct replicas before any
/// fetching starts, so this is purely a defensive bound on allocation.
const MAX_REPAIR_IMAGE_BYTES: u64 = 1 << 31;

/// Cap on entries per served STATE-CHUNK tail (bounds response frames;
/// anything longer than the out-of-order window never occurs anyway).
const MAX_TAIL_ENTRIES: usize = 4096;

/// Number of chunks a checkpoint image of `image_len` bytes splits
/// into under `chunk_bytes`-sized chunks, or `None` when the advertised
/// length is implausible. Requester and responders share the cluster
/// config, so both sides compute the same split.
fn chunk_count(image_len: u64, chunk_bytes: usize) -> Option<u32> {
    if image_len > MAX_REPAIR_IMAGE_BYTES {
        return None;
    }
    Some(image_len.div_ceil(chunk_bytes as u64).max(1) as u32)
}

/// Counters for the state-transfer repair protocol: requester-side
/// progress plus responder-side serving and rate-limiting. Runtimes
/// surface these in their reports so operators can see both that a
/// lagging replica caught up and that serving it was budget-bounded.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RepairStats {
    /// Repairs started (manifest probe broadcast).
    pub repairs_started: u64,
    /// Repairs completed (`CaughtUp` emitted).
    pub repairs_completed: u64,
    /// Image chunks fetched and accepted.
    pub chunks_fetched: u64,
    /// Retry-timer fires while a repair was in progress.
    pub retries: u64,
    /// Manifests served to lagging peers.
    pub manifests_served: u64,
    /// Image chunks served to lagging peers.
    pub chunks_served: u64,
    /// Certified tails served to lagging peers.
    pub tails_served: u64,
    /// Repair requests dropped because the per-view serving budget was
    /// exhausted (the rate limit protecting normal-case consensus).
    pub throttled: u64,
    /// Budget refills granted by the idle tick rather than a new stable
    /// checkpoint — the liveness valve for repairs that start after
    /// client traffic has fully drained.
    pub idle_refills: u64,
}

/// Requester-side state of an in-progress repair (state transfer).
struct RepairState {
    /// Retry-timer fires so far; drives the exponential back-off and
    /// the source rotation for re-requested chunks.
    attempts: u32,
    /// Manifest → distinct replicas vouching for it (Probing phase).
    manifests: BTreeMap<RepairManifest, BTreeSet<ReplicaId>>,
    phase: RepairPhase,
}

enum RepairPhase {
    /// Broadcast STATE-REQUEST(Manifest); waiting for `f + 1` distinct
    /// peers to vouch for the same checkpoint manifest (at least one of
    /// them honest), which makes it safe to act on.
    Probing,
    /// Fetching the image chunks, round-robin across the vouchers.
    Fetching {
        manifest: RepairManifest,
        vouchers: Vec<ReplicaId>,
        chunks: Vec<Option<WireBytes>>,
        received: u32,
    },
    /// Checkpoint installed; fetching the certified entries above it.
    Tailing {
        manifest: RepairManifest,
        vouchers: Vec<ReplicaId>,
        /// Tails received so far, per sender (MAC mode cross-checks
        /// `f + 1` of them; TS mode verifies certificates directly).
        tails: BTreeMap<ReplicaId, Vec<ExecEntry>>,
    },
}

/// Responder-side cache of the serialized checkpoint image for the
/// current stable checkpoint, built lazily on the first manifest
/// request and reused for every chunk request against it.
struct RepairImageCache {
    manifest: RepairManifest,
    image: WireBytes,
}

/// The PoE replica automaton.
pub struct PoeReplica {
    cfg: ClusterConfig,
    id: ReplicaId,
    mode: SupportMode,
    crypto: CryptoProvider,
    store: Box<dyn StateMachine>,
    ledger: Ledger,
    view: View,
    view_change: Option<VcState>,
    /// Consecutive view changes without progress (exponential back-off,
    /// Theorem 7); reset when a slot commits.
    vc_attempts: u32,
    watermarks: Watermarks,
    /// Primary: next sequence number to assign.
    next_seq: SeqNum,
    batcher: Batcher,
    pending_batches: VecDeque<Arc<Batch>>,
    batch_timer_armed: bool,
    slots: BTreeMap<SeqNum, Slot>,
    /// Contiguous speculative-execution frontier (Figure 3 Line 20).
    exec: ContiguousTracker,
    /// Contiguous view-commit frontier; drives the watermark window.
    committed: ContiguousTracker,
    stable_seq: Option<SeqNum>,
    checkpoint_votes: BTreeMap<SeqNum, MatchingVotes<Digest>>,
    /// Client requests we forwarded to the primary and are watching
    /// (failure-detection rule 1, §II-C).
    forwarded: BTreeSet<Digest>,
    /// Primary: request digests already batched or proposed (dedup).
    proposed: BTreeSet<Digest>,
    /// Executed request digest → slot, for re-INFORM on retransmission.
    executed_reqs: BTreeMap<Digest, SeqNum>,
    /// VC-REQUESTs per *target* view (the view being moved into).
    pending_vc: BTreeMap<View, BTreeMap<ReplicaId, PoeVcRequest>>,
    /// Target views for which we already broadcast NV-PROPOSE.
    nv_sent: BTreeSet<View>,
    /// Messages from views ahead of ours, replayed after a view change.
    stashed: Vec<(NodeId, ProtocolMsg)>,
    /// Reused signing-bytes scratch for batched client-signature
    /// verification (one buffer per replica instead of one `Vec` per
    /// request per PROPOSE).
    sig_scratch: Vec<u8>,
    /// Batches whose slots were garbage-collected at the last stable
    /// checkpoints — this is where decoded batches actually die, so a
    /// runtime can recycle their containers into its decode
    /// [`poe_kernel::codec::BatchPool`]. Bounded by [`MAX_RETIRED`].
    retired: Vec<Arc<Batch>>,
    /// In-progress state transfer (requester side), if any.
    repair: Option<RepairState>,
    /// Highest aligned checkpoint vote seen per peer — the lag detector
    /// feeding [`Self::maybe_start_repair`]. Bounded by `n`.
    peer_checkpoints: BTreeMap<ReplicaId, SeqNum>,
    /// Responder-side serving budget: tokens left in the current view
    /// (refilled on checkpoint stability and view installation). Serving
    /// catch-up traffic must not starve normal-case consensus.
    repair_tokens: u32,
    /// Whether the idle-refill timer is armed (set on the first throttle
    /// after the budget runs dry; cleared when any refill lands).
    repair_refill_armed: bool,
    /// Responder-side cached checkpoint image.
    repair_cache: Option<RepairImageCache>,
    repair_stats: RepairStats,
}

impl PoeReplica {
    /// Builds a replica. `crypto` must be the provider for `id`; `store`
    /// is the replicated application (must support rollback).
    pub fn new(
        cfg: ClusterConfig,
        id: ReplicaId,
        mode: SupportMode,
        crypto: CryptoProvider,
        store: Box<dyn StateMachine>,
    ) -> PoeReplica {
        assert_eq!(crypto.index(), id.0, "crypto provider must belong to this replica");
        let initial_primary = View::ZERO.primary(cfg.n);
        let primary_key =
            *crypto.verifying_key_of(initial_primary.0).expect("initial primary key exists");
        let batch_size = cfg.batch_size;
        let window = cfg.ooo_window;
        let repair_tokens = cfg.repair_budget_chunks;
        PoeReplica {
            cfg,
            id,
            mode,
            crypto,
            store,
            ledger: Ledger::new(initial_primary, &primary_key),
            view: View::ZERO,
            view_change: None,
            vc_attempts: 0,
            watermarks: Watermarks::new(window),
            next_seq: SeqNum::ZERO,
            batcher: Batcher::new(batch_size),
            pending_batches: VecDeque::new(),
            batch_timer_armed: false,
            slots: BTreeMap::new(),
            exec: ContiguousTracker::new(),
            committed: ContiguousTracker::new(),
            stable_seq: None,
            checkpoint_votes: BTreeMap::new(),
            forwarded: BTreeSet::new(),
            proposed: BTreeSet::new(),
            executed_reqs: BTreeMap::new(),
            pending_vc: BTreeMap::new(),
            nv_sent: BTreeSet::new(),
            stashed: Vec::new(),
            sig_scratch: Vec::new(),
            retired: Vec::new(),
            repair: None,
            peer_checkpoints: BTreeMap::new(),
            repair_tokens,
            repair_refill_armed: false,
            repair_cache: None,
            repair_stats: RepairStats::default(),
        }
    }

    /// Rebuilds this replica as it restarts after a crash, keeping only
    /// what the durability model persists: configuration, identity, key
    /// material, the committed ledger, and the application state at the
    /// last stable checkpoint. All volatile consensus state — open
    /// slots, votes, batches, timers, the reply cache — is lost. The
    /// replica resumes in the view of its ledger head and relies on the
    /// checkpoint repair protocol to catch back up.
    pub fn into_restarted(mut self) -> PoeReplica {
        let stable = self.stable_seq;
        self.store.rollback_to(stable);
        self.ledger.truncate_above(stable);
        let view = self.ledger.iter().last().map(|b| b.view).unwrap_or(View::ZERO);
        let resume = stable.map(SeqNum::next).unwrap_or(SeqNum::ZERO);
        let window = self.cfg.ooo_window;
        let batch_size = self.cfg.batch_size;
        let repair_tokens = self.cfg.repair_budget_chunks;
        let mut watermarks = Watermarks::new(window);
        watermarks.advance_to(resume);
        PoeReplica {
            cfg: self.cfg,
            id: self.id,
            mode: self.mode,
            crypto: self.crypto,
            store: self.store,
            ledger: self.ledger,
            view,
            view_change: None,
            vc_attempts: 0,
            watermarks,
            next_seq: resume,
            batcher: Batcher::new(batch_size),
            pending_batches: VecDeque::new(),
            batch_timer_armed: false,
            slots: BTreeMap::new(),
            exec: ContiguousTracker::starting_at(resume),
            committed: ContiguousTracker::starting_at(resume),
            stable_seq: stable,
            checkpoint_votes: BTreeMap::new(),
            forwarded: BTreeSet::new(),
            proposed: BTreeSet::new(),
            executed_reqs: BTreeMap::new(),
            pending_vc: BTreeMap::new(),
            nv_sent: BTreeSet::new(),
            stashed: Vec::new(),
            sig_scratch: Vec::new(),
            retired: Vec::new(),
            repair: None,
            peer_checkpoints: BTreeMap::new(),
            repair_tokens,
            repair_refill_armed: false,
            repair_cache: None,
            repair_stats: RepairStats::default(),
        }
    }

    /// The support mode in use.
    pub fn support_mode(&self) -> SupportMode {
        self.mode
    }

    /// Whether a view change is currently in progress.
    pub fn in_view_change(&self) -> bool {
        self.view_change.is_some()
    }

    /// The last stable checkpoint.
    pub fn stable_seq(&self) -> Option<SeqNum> {
        self.stable_seq
    }

    /// The committed ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Number of live consensus slots (bounded by window + GC).
    pub fn live_slots(&self) -> usize {
        self.slots.len()
    }

    /// The contiguous view-commit frontier.
    pub fn commit_frontier(&self) -> SeqNum {
        self.committed.frontier()
    }

    /// The low/high watermark window.
    pub fn watermarks(&self) -> &Watermarks {
        &self.watermarks
    }

    /// Counters for the state-transfer repair protocol.
    pub fn repair_stats(&self) -> RepairStats {
        self.repair_stats
    }

    /// Whether a repair (state transfer) is currently in progress.
    pub fn repairing(&self) -> bool {
        self.repair.is_some()
    }

    // ----------------------------------------------------------- helpers

    fn primary_of(&self, v: View) -> ReplicaId {
        v.primary(self.cfg.n)
    }

    fn is_primary(&self) -> bool {
        self.view_change.is_none() && self.primary_of(self.view) == self.id
    }

    fn nf(&self) -> usize {
        self.cfg.nf()
    }

    fn current_timeout(&self) -> poe_kernel::time::Duration {
        self.cfg.view_change_timeout(self.vc_attempts)
    }

    fn client_index(&self, client: poe_kernel::ids::ClientId) -> NodeIndex {
        NodeId::Client(client).global_index(self.cfg.n)
    }

    /// Verifies a client request signature under the cluster's crypto
    /// mode (`None` ⇒ unsigned requests are accepted).
    fn client_request_ok(&self, req: &ClientRequest) -> bool {
        match self.cfg.crypto_mode {
            CryptoMode::None => true,
            _ => match &req.signature {
                Some(sig) => {
                    let bytes = ClientRequest::signing_bytes(req.client, req.req_id, &req.op);
                    self.crypto.verify_from(self.client_index(req.client), &bytes, sig)
                }
                None => false,
            },
        }
    }

    fn stash(&mut self, from: NodeId, msg: ProtocolMsg) {
        if self.stashed.len() < MAX_STASHED {
            self.stashed.push((from, msg));
        }
    }

    // ------------------------------------------------------ client path

    fn on_client_request(&mut self, req: ClientRequest, out: &mut Outbox) {
        let digest = req.digest();
        // Retransmission of an already-executed request: answer from the
        // cached results instead of re-ordering it (PBFT-style reply
        // cache; keeps re-proposals from double-executing).
        if let Some(seq) = self.executed_reqs.get(&digest).copied() {
            self.reinform(seq, &digest, out);
            return;
        }
        if self.view_change.is_some() {
            return; // Client retry re-drives after the view change.
        }
        if self.is_primary() {
            if self.proposed.contains(&digest) || !self.client_request_ok(&req) {
                return;
            }
            self.proposed.insert(digest);
            if let Some(batch) = self.batcher.push(req) {
                self.enqueue_proposal(batch, out);
            } else if !self.batch_timer_armed {
                self.batch_timer_armed = true;
                out.set_timer(TimerKind::BatchCut, self.cfg.batch_cut_delay);
            }
        } else {
            // Forward to the primary and start the progress detector
            // (§II-B / failure-detection rule 1).
            let primary = self.primary_of(self.view);
            out.send(primary, ProtocolMsg::Forward(req));
            self.forwarded.insert(digest);
            out.set_timer(TimerKind::RequestProgress(digest), self.current_timeout());
        }
    }

    /// Re-sends the INFORM for an executed request (client retransmitted
    /// after missing replies).
    fn reinform(&self, seq: SeqNum, req_digest: &Digest, out: &mut Outbox) {
        let Some(slot) = self.slots.get(&seq) else { return };
        if !slot.committed {
            return;
        }
        let (Some(batch), Some(results)) = (&slot.batch, &slot.results) else { return };
        for (i, req) in batch.requests.iter().enumerate() {
            if req.digest() == *req_digest {
                out.send(
                    NodeId::Client(req.client),
                    ProtocolMsg::Reply(ClientReply {
                        kind: ReplyKind::PoeInform,
                        view: slot.proposed_view,
                        seq,
                        req_digest: *req_digest,
                        req_id: req.req_id,
                        result: results.results[i].clone(),
                        replica: self.id,
                        history: None,
                    }),
                );
                return;
            }
        }
    }

    /// Fabric entry point: a batch pre-cut by the runtime's batching
    /// stage (paper §III / Figure 6: the primary's batch threads run
    /// ahead of the consensus thread). The runtime is expected to have
    /// verified client signatures already — the same trust the
    /// `Event::Deliver` contract places in it for sender identity.
    ///
    /// The automaton stays the safety net: if this replica is not (or no
    /// longer) the primary, or any request needs dedup handling (already
    /// proposed, or already executed and awaiting a re-INFORM), the
    /// batch is unbundled through the ordinary per-request client path.
    /// On the clean common path the pre-cut batch is proposed as-is.
    pub fn on_local_batch(&mut self, batch: Arc<Batch>, out: &mut Outbox) {
        if batch.is_empty() {
            return;
        }
        // Clean = every request is new to this replica *and* unique
        // within the batch (a client-retry storm can put several copies
        // of one request into the same cut window; proposing them as-is
        // would execute the op more than once).
        let mut fresh = BTreeSet::new();
        let clean = self.is_primary()
            && batch.requests.iter().all(|r| {
                let d = r.digest();
                !self.proposed.contains(&d)
                    && !self.executed_reqs.contains_key(&d)
                    && fresh.insert(d)
            });
        if clean {
            for req in &batch.requests {
                self.proposed.insert(req.digest());
            }
            self.enqueue_proposal(batch, out);
        } else {
            for req in batch.requests.iter().cloned() {
                self.on_client_request(req, out);
            }
        }
    }

    // ----------------------------------------------------- normal case

    fn enqueue_proposal(&mut self, batch: Arc<Batch>, out: &mut Outbox) {
        self.pending_batches.push_back(batch);
        self.drain_proposals(out);
    }

    /// Opens consensus slots while the out-of-order window has headroom
    /// (§II-F).
    fn drain_proposals(&mut self, out: &mut Outbox) {
        while self.is_primary()
            && !self.pending_batches.is_empty()
            && self.watermarks.in_window(self.next_seq)
        {
            let batch = self.pending_batches.pop_front().expect("checked non-empty");
            let seq = self.next_seq;
            self.next_seq = seq.next();
            let view = self.view;
            out.broadcast(ProtocolMsg::PoePropose { view, seq, batch: batch.clone() });
            self.accept_proposal(self.id, view, seq, batch, out);
        }
    }

    fn on_propose(
        &mut self,
        from: ReplicaId,
        view: View,
        seq: SeqNum,
        batch: Arc<Batch>,
        out: &mut Outbox,
    ) {
        if view > self.view {
            self.stash(NodeId::Replica(from), ProtocolMsg::PoePropose { view, seq, batch });
            return;
        }
        if view < self.view || self.view_change.is_some() || from != self.primary_of(view) {
            return;
        }
        if !self.watermarks.in_window(seq) {
            return;
        }
        // Backups validate the client signatures the primary vouched for
        // (Figure 3 Line 14) — in one batched pass over one reused
        // scratch buffer (no per-request body allocations).
        if self.cfg.crypto_mode != CryptoMode::None {
            let n = self.cfg.n;
            let scratch = &mut self.sig_scratch;
            scratch.clear();
            let mut spans: Vec<(NodeIndex, std::ops::Range<usize>, Signature)> =
                Vec::with_capacity(batch.requests.len());
            for req in &batch.requests {
                let Some(sig) = &req.signature else { return };
                let start = scratch.len();
                ClientRequest::write_signing_bytes(scratch, req.client, req.req_id, &req.op);
                spans.push((
                    NodeId::Client(req.client).global_index(n),
                    start..scratch.len(),
                    *sig,
                ));
            }
            let items: Vec<(NodeIndex, &[u8], Signature)> =
                spans.iter().map(|(idx, span, sig)| (*idx, &scratch[span.clone()], *sig)).collect();
            if !self.crypto.verify_batch_from(&items) {
                return;
            }
        }
        self.accept_proposal(from, view, seq, batch, out);
    }

    fn accept_proposal(
        &mut self,
        from: ReplicaId,
        view: View,
        seq: SeqNum,
        batch: Arc<Batch>,
        out: &mut Outbox,
    ) {
        let digest = support_digest(view, seq, &batch.digest);
        let slot = self.slots.entry(seq).or_default();
        if slot.batch.is_some() {
            // Duplicate (or equivocating) proposal: first accepted wins.
            return;
        }
        slot.batch = Some(batch);
        slot.digest = digest;
        slot.proposed_view = view;
        // The proposal carries the primary's own support.
        slot.mac_votes.insert(from, digest);
        let i_am_primary = from == self.id;
        match self.mode {
            SupportMode::Threshold => {
                let share = self.crypto.ts_share(digest.as_bytes());
                if i_am_primary {
                    slot.shares.insert(self.id.0, share);
                } else {
                    out.send(from, ProtocolMsg::PoeSupport { view, seq, share });
                }
            }
            SupportMode::Mac => {
                slot.mac_votes.insert(self.id, digest);
                if !i_am_primary {
                    out.broadcast(ProtocolMsg::PoeSupportMac { view, seq, digest });
                }
            }
        }
        if !slot.committed {
            out.set_timer(TimerKind::SlotProgress(seq), self.current_timeout());
        }
        // A CERTIFY that raced ahead of this PROPOSE can be checked now.
        let pending = self.slots.get_mut(&seq).and_then(|s| s.pending_cert.take());
        if let Some(cert) = pending {
            self.on_certify(self.primary_of(view), view, seq, cert, out);
        }
        self.try_execute(out);
        self.try_aggregate(seq, out);
        self.try_mac_commit(seq, out);
    }

    fn on_support(
        &mut self,
        from: ReplicaId,
        view: View,
        seq: SeqNum,
        share: SignatureShare,
        out: &mut Outbox,
    ) {
        if view > self.view {
            self.stash(NodeId::Replica(from), ProtocolMsg::PoeSupport { view, seq, share });
            return;
        }
        if self.mode != SupportMode::Threshold
            || view < self.view
            || self.view_change.is_some()
            || self.primary_of(view) != self.id
            || share.signer != from.0
        {
            return;
        }
        let Some(slot) = self.slots.get_mut(&seq) else { return };
        if slot.batch.is_none() || slot.certify_sent || slot.shares.contains_key(&share.signer) {
            // Unknown slot, already certified, or duplicate share from
            // this replica: either way the vote cannot advance anything
            // (Proposition 2's single-SUPPORT rule).
            return;
        }
        slot.shares.insert(share.signer, share);
        self.try_aggregate(seq, out);
    }

    /// Primary, TS mode: aggregate `nf` shares into a CERTIFY
    /// certificate. Shares are *not* verified on arrival — aggregation
    /// batch-verifies the whole set in one pass and only attributes
    /// blame serially if that fails, discarding the offender.
    fn try_aggregate(&mut self, seq: SeqNum, out: &mut Outbox) {
        if self.mode != SupportMode::Threshold || !self.is_primary() {
            return;
        }
        let Some(slot) = self.slots.get_mut(&seq) else { return };
        if slot.batch.is_none() || slot.certify_sent || slot.shares.len() < self.cfg.nf() {
            return;
        }
        loop {
            let shares: Vec<SignatureShare> = slot.shares.values().cloned().collect();
            match self.crypto.ts_aggregate(slot.digest.as_bytes(), &shares) {
                Ok(cert) => {
                    slot.certify_sent = true;
                    let view = slot.proposed_view;
                    out.broadcast(ProtocolMsg::PoeCertify { view, seq, cert: cert.clone() });
                    self.commit_slot(seq, Some(cert), out);
                    return;
                }
                Err(ThresholdError::InvalidShare(signer)) => {
                    slot.shares.remove(&signer);
                    if slot.shares.len() < self.cfg.nf() {
                        return; // Wait for replacement shares.
                    }
                }
                Err(_) => return,
            }
        }
    }

    fn on_support_mac(
        &mut self,
        from: ReplicaId,
        view: View,
        seq: SeqNum,
        digest: Digest,
        out: &mut Outbox,
    ) {
        if view > self.view {
            self.stash(NodeId::Replica(from), ProtocolMsg::PoeSupportMac { view, seq, digest });
            return;
        }
        if self.mode != SupportMode::Mac
            || view < self.view
            || self.view_change.is_some()
            || !self.watermarks.in_window(seq)
        {
            // The window check also bounds the slot table: a byzantine
            // replica voting on arbitrary far-future sequence numbers
            // must not materialize slots outside the active window.
            return;
        }
        let slot = self.slots.entry(seq).or_default();
        slot.mac_votes.insert(from, digest);
        self.try_mac_commit(seq, out);
    }

    fn try_mac_commit(&mut self, seq: SeqNum, out: &mut Outbox) {
        if self.mode != SupportMode::Mac {
            return;
        }
        let Some(slot) = self.slots.get(&seq) else { return };
        if slot.batch.is_none() || slot.committed {
            return;
        }
        if slot.mac_votes.count_for(&slot.digest) >= self.nf() {
            self.commit_slot(seq, None, out);
        }
    }

    fn on_certify(
        &mut self,
        from: ReplicaId,
        view: View,
        seq: SeqNum,
        cert: ThresholdCert,
        out: &mut Outbox,
    ) {
        if view > self.view {
            self.stash(NodeId::Replica(from), ProtocolMsg::PoeCertify { view, seq, cert });
            return;
        }
        if self.mode != SupportMode::Threshold
            || view < self.view
            || self.view_change.is_some()
            || from != self.primary_of(view)
        {
            return;
        }
        let Some(slot) = self.slots.get_mut(&seq) else {
            return;
        };
        if slot.committed {
            return;
        }
        if slot.batch.is_none() {
            slot.pending_cert = Some(cert); // Raced ahead of its PROPOSE.
            return;
        }
        let valid = cert.signers.len() >= self.cfg.nf()
            && self.crypto.ts_verify_cert(slot.digest.as_bytes(), &cert);
        if valid {
            self.commit_slot(seq, Some(cert), out);
        }
    }

    /// View-commit (Figure 3 Line 23): the proposal is certified at this
    /// replica.
    fn commit_slot(&mut self, seq: SeqNum, cert: Option<ThresholdCert>, out: &mut Outbox) {
        let Some(slot) = self.slots.get_mut(&seq) else { return };
        if slot.committed {
            return;
        }
        slot.committed = true;
        slot.cert = cert;
        out.cancel_timer(TimerKind::SlotProgress(seq));
        // Progress: reset the view-change back-off (Theorem 7).
        self.vc_attempts = 0;
        self.committed.complete(seq);
        self.watermarks.advance_to(self.committed.frontier());
        out.notify(Notification::Decided { seq });
        self.try_inform(seq, out);
        self.try_append_ledger();
        self.drain_proposals(out);
    }

    /// Speculative execution at the contiguous frontier (Figure 3
    /// Line 20: execute `k` only once `k − 1` has executed).
    fn try_execute(&mut self, out: &mut Outbox) {
        loop {
            let next = self.exec.frontier();
            let Some(slot) = self.slots.get_mut(&next) else { break };
            let Some(batch) = slot.batch.clone() else { break };
            if slot.executed {
                break;
            }
            let outcome = self.store.apply(next, &batch);
            let results_digest = outcome.digest();
            slot.executed = true;
            slot.results = Some(outcome);
            let view = slot.proposed_view;
            self.exec.complete(next);
            out.notify(Notification::Executed {
                view,
                seq: next,
                batch: batch.clone(),
                results_digest,
            });
            for req in &batch.requests {
                let d = req.digest();
                self.executed_reqs.insert(d, next);
                if self.forwarded.remove(&d) {
                    out.cancel_timer(TimerKind::RequestProgress(d));
                }
            }
            if (next.0 + 1).is_multiple_of(self.cfg.checkpoint_interval) {
                let state_digest = self.store.state_digest();
                out.broadcast(ProtocolMsg::Checkpoint { seq: next, state_digest });
                self.checkpoint_votes.entry(next).or_default().insert(self.id, state_digest);
                self.try_stable_checkpoint(next, out);
            }
            self.try_inform(next, out);
        }
        self.try_append_ledger();
    }

    /// INFORM the clients once a slot is both executed and view-committed.
    fn try_inform(&mut self, seq: SeqNum, out: &mut Outbox) {
        let Some(slot) = self.slots.get_mut(&seq) else { return };
        if !slot.committed || !slot.executed || slot.informed {
            return;
        }
        let (Some(batch), Some(results)) = (&slot.batch, &slot.results) else { return };
        slot.informed = true;
        for (i, req) in batch.requests.iter().enumerate() {
            out.send(
                NodeId::Client(req.client),
                ProtocolMsg::Reply(ClientReply {
                    kind: ReplyKind::PoeInform,
                    view: slot.proposed_view,
                    seq,
                    req_digest: req.digest(),
                    req_id: req.req_id,
                    result: results.results[i].clone(),
                    replica: self.id,
                    history: None,
                }),
            );
        }
    }

    /// Appends executed-and-committed slots to the ledger in order
    /// (§III-A; the proof of acceptance is the CERTIFY certificate in TS
    /// mode, the locally observed committee in MAC mode).
    fn try_append_ledger(&mut self) {
        loop {
            let next = self.ledger.head_seq().map(SeqNum::next).unwrap_or(SeqNum::ZERO);
            let Some(slot) = self.slots.get(&next) else { break };
            if !slot.committed || !slot.executed {
                break;
            }
            let Some(batch) = &slot.batch else { break };
            let proof = match &slot.cert {
                Some(cert) => BlockProof::Certificate(cert.clone()),
                None => {
                    let committee: Vec<_> = slot.mac_votes.voters_for(&slot.digest).collect();
                    if committee.len() >= self.cfg.nf() {
                        BlockProof::Committee(committee)
                    } else {
                        // Sub-quorum commits only arise from checkpoint
                        // subsumption (see `try_stable_checkpoint`).
                        let stable = self.stable_seq.expect("subsumed commit implies a checkpoint");
                        BlockProof::Checkpoint(stable)
                    }
                }
            };
            self.ledger.append(next, slot.proposed_view, batch.digest, proof);
        }
        self.gc_stable_slots();
    }

    /// Drops consensus slots that are both stable (at or below the last
    /// stable checkpoint) and fully retired (committed, executed, and on
    /// the ledger). A slot whose CERTIFY is still in flight when its
    /// checkpoint stabilizes survives until it commits — otherwise the
    /// commit would be lost and the ledger would hold a permanent gap.
    fn gc_stable_slots(&mut self) {
        let Some(stable) = self.stable_seq else { return };
        let appended = self.ledger.head_seq().map(SeqNum::next).unwrap_or(SeqNum::ZERO);
        let bound = SeqNum(stable.next().0.min(appended.0));
        if self.slots.first_key_value().is_none_or(|(s, _)| *s >= bound) {
            return;
        }
        let live = self.slots.split_off(&bound);
        let dead = std::mem::replace(&mut self.slots, live);
        for slot in dead.into_values() {
            if let Some(batch) = slot.batch {
                for req in &batch.requests {
                    let d = req.digest();
                    self.proposed.remove(&d);
                    self.executed_reqs.remove(&d);
                }
                if self.retired.len() < MAX_RETIRED {
                    self.retired.push(batch);
                }
            }
        }
    }

    /// Drains the batches retired by checkpoint GC since the last call.
    /// The fabric runtime feeds these back into its ingress
    /// [`poe_kernel::codec::BatchPool`], closing the allocation-free
    /// decode loop (containers are recycled exactly where batches die).
    /// Runtimes that do not recycle may simply never call this; the
    /// buffer is bounded.
    pub fn take_retired_batches(&mut self) -> Vec<Arc<Batch>> {
        std::mem::take(&mut self.retired)
    }

    // ----------------------------------------------------- checkpoints

    fn on_checkpoint_vote(
        &mut self,
        from: ReplicaId,
        seq: SeqNum,
        state_digest: Digest,
        out: &mut Outbox,
    ) {
        // Honest checkpoints sit on interval boundaries and at most one
        // window ahead of us; anything else is noise and must not grow
        // the vote table (byzantine flooding of far-future seqs).
        let aligned = (seq.0 + 1).is_multiple_of(self.cfg.checkpoint_interval);
        if aligned {
            // Lag detector: remember the highest aligned checkpoint each
            // peer claims, even when the vote itself is filtered below
            // (a vote far past our window is exactly the signal that we
            // fell behind). Bounded by `n` entries.
            let best = self.peer_checkpoints.entry(from).or_insert(seq);
            if seq > *best {
                *best = seq;
            }
            self.maybe_start_repair(out);
        }
        let in_range = seq.0 < self.watermarks.high().0 + self.cfg.checkpoint_interval;
        if self.stable_seq.is_some_and(|s| seq <= s) || !aligned || !in_range {
            return;
        }
        self.checkpoint_votes.entry(seq).or_default().insert(from, state_digest);
        self.try_stable_checkpoint(seq, out);
    }

    /// `2f + 1` matching checkpoint votes (our own among them) make the
    /// checkpoint stable: undo logs below it are garbage-collected and
    /// the low watermark advances.
    fn try_stable_checkpoint(&mut self, seq: SeqNum, out: &mut Outbox) {
        if self.stable_seq.is_some_and(|s| seq <= s) {
            return;
        }
        let quorum = 2 * self.cfg.f + 1;
        let Some(votes) = self.checkpoint_votes.get(&seq) else { return };
        let Some(digest) = votes.quorum_value(quorum).copied() else { return };
        // We must agree with the stable value ourselves — a quorum we
        // are not part of means our state diverged or lags; that gap is
        // closed by the repair protocol (state transfer), not by
        // adopting a checkpoint we cannot verify.
        if !votes.voters_for(&digest).any(|r| r == self.id) {
            return;
        }
        self.stable_seq = Some(seq);
        self.store.stabilize(seq);
        // A stable checkpoint subsumes the per-slot acceptance proofs at
        // or below it: `2f + 1` replicas — our own matching state vote
        // among them — attest to a state that embeds every batch up to
        // `seq`. Speculative execution makes this matter: the checkpoint
        // can stabilize while a slot's SUPPORT/CERTIFY quorum is still
        // in flight, after which the advancing watermark discards the
        // late votes and the slot would otherwise never commit — gapping
        // the ledger and starving its clients forever.
        let subsumed: Vec<SeqNum> = self
            .slots
            .range(..=seq)
            .filter(|(_, s)| s.executed && !s.committed && s.batch.is_some())
            .map(|(k, _)| *k)
            .collect();
        for k in subsumed {
            self.commit_slot(k, None, out);
        }
        // Retire what is already on the ledger; slots whose commit is
        // still in flight are collected when it lands.
        self.try_append_ledger();
        self.checkpoint_votes = self.checkpoint_votes.split_off(&seq.next());
        self.watermarks.advance_to(seq.next());
        // A fresh stable checkpoint refills the repair-serving budget:
        // the rate limit is per checkpoint interval, so a recovering
        // peer makes steady progress while normal-case consensus always
        // keeps the lion's share of this replica's bandwidth.
        self.refill_repair_budget(out);
        out.notify(Notification::CheckpointStable { seq });
        self.drain_proposals(out);
    }

    // -------------------------------------- state transfer (repair)
    //
    // Closes the FellBehind gap: a replica whose execution or ledger
    // frontier sits below the cluster's stable checkpoint can never
    // recover through VC-REQUESTs (they only carry entries above the
    // checkpoint). Instead it fetches an `f + 1`-vouched checkpoint
    // image in chunks, installs it, rolls back unproven speculative
    // state, then adopts the certified tail above the checkpoint and
    // resumes live. Responders rate-limit serving with a token budget
    // so catch-up traffic cannot starve normal-case consensus.

    /// Lag detector: `f + 1` distinct peers voting for a checkpoint at
    /// least two full intervals past our execution frontier prove (at
    /// least one of them being honest) that the cluster moved on
    /// without us — our missing slots may already be garbage-collected
    /// there, so only state transfer can catch us up. This fires even
    /// when no view change occurs (n − 1 replicas keep forming quorums
    /// happily while we starve).
    fn maybe_start_repair(&mut self, out: &mut Outbox) {
        if self.repair.is_some() {
            return;
        }
        let need = self.cfg.f_plus_one();
        if self.peer_checkpoints.len() < need {
            return;
        }
        let mut seqs: Vec<SeqNum> = self.peer_checkpoints.values().copied().collect();
        seqs.sort_unstable_by(|a, b| b.cmp(a));
        let proved = seqs[need - 1];
        if proved.0 + 1 < self.exec.frontier().0 + 2 * self.cfg.checkpoint_interval {
            return;
        }
        if let Some(vc) = &self.view_change {
            // A view change with real backing takes precedence — it will
            // either complete (and its fell-behind branch starts the
            // repair) or time out and land back here. But a *unilateral*
            // attempt can never complete while the cluster demonstrably
            // makes progress without us (that is what the f + 1
            // checkpoint votes prove): typically our progress timers
            // fired during a partition. Waiting on it would deadlock the
            // recovery, so abandon it and repair instead.
            let backers = self.pending_vc.get(&vc.target).map_or(0, BTreeMap::len);
            if backers >= self.cfg.f_plus_one() {
                return;
            }
            let target = vc.target;
            self.view_change = None;
            out.cancel_timer(TimerKind::ViewChange(target));
        }
        self.start_repair(out);
    }

    /// Starts a repair: probe all peers for their checkpoint manifest.
    fn start_repair(&mut self, out: &mut Outbox) {
        if self.repair.is_some() {
            return;
        }
        self.repair = Some(RepairState {
            attempts: 0,
            manifests: BTreeMap::new(),
            phase: RepairPhase::Probing,
        });
        self.repair_stats.repairs_started += 1;
        out.broadcast(ProtocolMsg::StateRequest(StateRequestKind::Manifest));
        out.set_timer(TimerKind::Repair, self.cfg.repair_retry_timeout(0));
    }

    fn abandon_repair(&mut self, out: &mut Outbox) {
        if self.repair.take().is_some() {
            out.cancel_timer(TimerKind::Repair);
        }
    }

    /// Spends one serving token, counting the drop when none are left.
    ///
    /// The first throttle after the budget runs dry arms the idle-refill
    /// timer: refills normally ride on checkpoint stabilization, but
    /// when a repair starts after client traffic has fully drained no
    /// new checkpoints form, so without this valve the requester's
    /// retries would bounce off an empty bucket forever. The timer is
    /// armed once (not re-armed per throttle — requester retries faster
    /// than the refill period would push the deadline out indefinitely)
    /// and cleared by whichever refill lands first.
    fn take_repair_token(&mut self, out: &mut Outbox) -> bool {
        if self.repair_tokens == 0 {
            self.repair_stats.throttled += 1;
            if !self.repair_refill_armed {
                self.repair_refill_armed = true;
                out.set_timer(TimerKind::RepairBudget, self.cfg.repair_retry_timeout(0));
            }
            return false;
        }
        self.repair_tokens -= 1;
        true
    }

    /// Refills the serving budget to the configured cap and disarms the
    /// idle-refill timer (it only backstops the checkpoint refills).
    fn refill_repair_budget(&mut self, out: &mut Outbox) {
        self.repair_tokens = self.cfg.repair_budget_chunks;
        if self.repair_refill_armed {
            self.repair_refill_armed = false;
            out.cancel_timer(TimerKind::RepairBudget);
        }
    }

    /// Builds (or reuses) the serialized image + manifest for `stable`.
    /// Only the *current* stable checkpoint can be built; requests for
    /// an older cached one are still served from the cache until it is
    /// replaced.
    fn ensure_repair_cache(&mut self, stable: SeqNum) -> bool {
        if self.repair_cache.as_ref().is_some_and(|c| c.manifest.stable == stable) {
            return true;
        }
        if self.stable_seq != Some(stable) {
            return false;
        }
        // The repaired requester rebuilds its ledger from the image, so
        // ours must have reached the checkpoint (a commit may still be
        // in flight right after stabilization).
        if self.ledger.head_seq().is_none_or(|h| h < stable) {
            return false;
        }
        let Some(store_image) = self.store.checkpoint_image() else { return false };
        let count = stable.0 + 1;
        let mut image =
            Vec::with_capacity(8 + count as usize * (8 + DIGEST_LEN) + store_image.len());
        image.extend_from_slice(&count.to_le_bytes());
        for b in self.ledger.iter().take(count as usize) {
            image.extend_from_slice(&b.view.0.to_le_bytes());
            image.extend_from_slice(b.batch_digest.as_bytes());
        }
        image.extend_from_slice(&store_image);
        let manifest = RepairManifest {
            stable,
            state_digest: self.store.stable_state_digest(),
            history_digest: self.ledger.history_digest_up_to(stable),
            image_len: image.len() as u64,
            image_digest: Digest::of(&image),
        };
        self.repair_cache = Some(RepairImageCache { manifest, image: WireBytes::from(image) });
        true
    }

    /// Responder side: serve manifest / chunk / tail requests within
    /// the per-view token budget.
    fn on_state_request(&mut self, from: ReplicaId, kind: StateRequestKind, out: &mut Outbox) {
        if from == self.id {
            return;
        }
        match kind {
            StateRequestKind::Manifest => {
                let Some(stable) = self.stable_seq else { return };
                if !self.ensure_repair_cache(stable) || !self.take_repair_token(out) {
                    return;
                }
                let manifest = self.repair_cache.as_ref().expect("just built").manifest;
                self.repair_stats.manifests_served += 1;
                out.send(from, ProtocolMsg::StateChunk(StateChunkPayload::Manifest(manifest)));
            }
            StateRequestKind::Chunk { stable, chunk } => {
                if !self.ensure_repair_cache(stable) {
                    return;
                }
                // The cache may hold an older checkpoint than requested.
                if self.repair_cache.as_ref().is_none_or(|c| c.manifest.stable != stable) {
                    return;
                }
                if !self.take_repair_token(out) {
                    return;
                }
                let cache = self.repair_cache.as_ref().expect("checked");
                let chunk_bytes = self.cfg.repair_chunk_bytes;
                let len = cache.image.len();
                let total = len.div_ceil(chunk_bytes).max(1) as u32;
                if chunk >= total {
                    return;
                }
                let start = chunk as usize * chunk_bytes;
                let end = (start + chunk_bytes).min(len);
                let data = cache.image.slice(start..end);
                self.repair_stats.chunks_served += 1;
                out.send(
                    from,
                    ProtocolMsg::StateChunk(StateChunkPayload::Chunk {
                        stable,
                        chunk,
                        total,
                        data,
                    }),
                );
            }
            StateRequestKind::Tail { after } => {
                if !self.take_repair_token(out) {
                    return;
                }
                let mut entries = Vec::new();
                let mut s = after.next();
                while let Some(slot) = self.slots.get(&s) {
                    if !slot.committed || entries.len() >= MAX_TAIL_ENTRIES {
                        break;
                    }
                    let Some(batch) = &slot.batch else { break };
                    entries.push(ExecEntry {
                        view: slot.proposed_view,
                        seq: s,
                        cert: slot.cert.clone(),
                        batch: batch.clone(),
                    });
                    s = s.next();
                }
                self.repair_stats.tails_served += 1;
                out.send(from, ProtocolMsg::StateChunk(StateChunkPayload::Tail { after, entries }));
            }
        }
    }

    /// Requester side: STATE-CHUNK responses.
    fn on_state_chunk(&mut self, from: ReplicaId, payload: StateChunkPayload, out: &mut Outbox) {
        if from == self.id {
            return;
        }
        match payload {
            StateChunkPayload::Manifest(m) => self.on_repair_manifest(from, m, out),
            StateChunkPayload::Chunk { stable, chunk, total, data } => {
                self.on_repair_chunk(from, stable, chunk, total, data, out)
            }
            StateChunkPayload::Tail { after, entries } => {
                self.on_repair_tail(from, after, entries, out)
            }
        }
    }

    fn on_repair_manifest(&mut self, from: ReplicaId, m: RepairManifest, out: &mut Outbox) {
        // Reject manifests that would not advance us or advertise an
        // implausible image size.
        let Some(total) = chunk_count(m.image_len, self.cfg.repair_chunk_bytes) else { return };
        if m.stable < self.exec.frontier() {
            return;
        }
        let Some(repair) = self.repair.as_mut() else { return };
        if !matches!(repair.phase, RepairPhase::Probing) {
            return;
        }
        repair.manifests.entry(m).or_default().insert(from);
        let need = self.cfg.f_plus_one();
        if repair.manifests[&m].len() < need {
            return;
        }
        // `f + 1` distinct peers vouch for this exact manifest, so at
        // least one honest replica holds this checkpoint: fetch its
        // chunks, round-robin across the vouchers.
        let vouchers: Vec<ReplicaId> = repair.manifests[&m].iter().copied().collect();
        let attempts = repair.attempts;
        repair.phase = RepairPhase::Fetching {
            manifest: m,
            vouchers: vouchers.clone(),
            chunks: vec![None; total as usize],
            received: 0,
        };
        for i in 0..total {
            let to = vouchers[i as usize % vouchers.len()];
            out.send(
                to,
                ProtocolMsg::StateRequest(StateRequestKind::Chunk { stable: m.stable, chunk: i }),
            );
        }
        out.set_timer(TimerKind::Repair, self.cfg.repair_retry_timeout(attempts));
    }

    fn on_repair_chunk(
        &mut self,
        from: ReplicaId,
        stable: SeqNum,
        chunk: u32,
        total: u32,
        data: WireBytes,
        out: &mut Outbox,
    ) {
        let chunk_bytes = self.cfg.repair_chunk_bytes as u64;
        let Some(repair) = self.repair.as_mut() else { return };
        let RepairPhase::Fetching { manifest, vouchers, chunks, received } = &mut repair.phase
        else {
            return;
        };
        if manifest.stable != stable
            || !vouchers.contains(&from)
            || total as usize != chunks.len()
            || chunk as usize >= chunks.len()
        {
            return;
        }
        // Every chunk is exactly chunk_bytes long except the last.
        let expected = if chunk + 1 == total {
            (manifest.image_len - chunk_bytes * (total as u64 - 1)) as usize
        } else {
            chunk_bytes as usize
        };
        if data.len() != expected || chunks[chunk as usize].is_some() {
            return;
        }
        chunks[chunk as usize] = Some(data);
        *received += 1;
        self.repair_stats.chunks_fetched += 1;
        if (*received as usize) < chunks.len() {
            return;
        }
        // All chunks in hand: reassemble and verify against the vouched
        // manifest — the image digest is the safety gate (at least one
        // voucher is honest, so a digest-matching image IS the cluster's
        // checkpoint; a corrupt chunk can only fail the digest).
        let manifest = *manifest;
        let vouchers = std::mem::take(vouchers);
        let parts = std::mem::take(chunks);
        let mut image = Vec::with_capacity(manifest.image_len as usize);
        for part in &parts {
            image.extend_from_slice(part.as_ref().expect("all received").as_slice());
        }
        drop(parts);
        let ok = image.len() as u64 == manifest.image_len
            && Digest::of(&image) == manifest.image_digest
            && self.install_repair_image(&manifest, &image, out);
        let Some(repair) = self.repair.as_mut() else { return };
        if !ok {
            // Reassembly failed (some voucher lied) or the image did not
            // parse: refetch everything with rotated chunk sources.
            repair.attempts = repair.attempts.saturating_add(1);
            let attempts = repair.attempts;
            repair.phase = RepairPhase::Fetching {
                manifest,
                vouchers: vouchers.clone(),
                chunks: vec![None; total as usize],
                received: 0,
            };
            for i in 0..total {
                let to = vouchers[(i as usize + attempts as usize) % vouchers.len()];
                out.send(
                    to,
                    ProtocolMsg::StateRequest(StateRequestKind::Chunk {
                        stable: manifest.stable,
                        chunk: i,
                    }),
                );
            }
            out.set_timer(TimerKind::Repair, self.cfg.repair_retry_timeout(attempts));
            return;
        }
        // Checkpoint installed; fetch the certified tail above it.
        let attempts = repair.attempts;
        repair.phase =
            RepairPhase::Tailing { manifest, vouchers: vouchers.clone(), tails: BTreeMap::new() };
        for v in &vouchers {
            out.send(
                *v,
                ProtocolMsg::StateRequest(StateRequestKind::Tail { after: manifest.stable }),
            );
        }
        out.set_timer(TimerKind::Repair, self.cfg.repair_retry_timeout(attempts));
    }

    /// Parses and installs a digest-verified checkpoint image: replaces
    /// the application state, rebuilds the ledger prefix with
    /// [`BlockProof::Repaired`], rolls back speculative execution, and
    /// resets every tracker to resume from the checkpoint. Slots above
    /// the checkpoint survive (their commits are still valid) but are
    /// re-executed against the installed state.
    fn install_repair_image(&mut self, m: &RepairManifest, image: &[u8], out: &mut Outbox) -> bool {
        let stable = m.stable;
        let count = stable.0 + 1;
        // Layout: u64 block count, then (u64 view, batch digest) per
        // block, remainder = application state image.
        if image.len() < 8 || u64::from_le_bytes(image[..8].try_into().expect("8")) != count {
            return false;
        }
        let entry_len = 8 + DIGEST_LEN;
        let Some(blocks_len) = (count as usize).checked_mul(entry_len) else { return false };
        let Some(store_start) = blocks_len.checked_add(8) else { return false };
        if image.len() < store_start {
            return false;
        }
        let mut blocks = Vec::with_capacity(count as usize);
        for i in 0..count as usize {
            let at = 8 + i * entry_len;
            let view = View(u64::from_le_bytes(image[at..at + 8].try_into().expect("8")));
            let digest = Digest::from_bytes(
                image[at + 8..at + entry_len].try_into().expect("digest length"),
            );
            blocks.push((view, digest));
        }
        // Roll back unproven speculative batches before overwriting the
        // application state (surfaced so runtimes can count it).
        let old_resume = self.stable_seq.map(SeqNum::next).unwrap_or(SeqNum::ZERO);
        if self.exec.frontier() > old_resume {
            out.notify(Notification::RolledBack { to: self.stable_seq });
        }
        if !self.store.install_checkpoint(stable, &image[store_start..]) {
            return false;
        }
        self.ledger.truncate_above(None);
        for (i, (view, digest)) in blocks.into_iter().enumerate() {
            self.ledger.append(SeqNum(i as u64), view, digest, BlockProof::Repaired);
        }
        if self.store.state_digest() != m.state_digest
            || self.ledger.history_digest() != m.history_digest
        {
            // The image digest matched but its contents do not hash to
            // the vouched state: defensive — restart from a fresh probe.
            return false;
        }
        // Resume from the installed checkpoint: drop retired slots,
        // keep-but-reset live ones, and rebuild the trackers.
        let resume = stable.next();
        self.stable_seq = Some(stable);
        let live = self.slots.split_off(&resume);
        let dead = std::mem::replace(&mut self.slots, live);
        for slot in dead.into_values() {
            if let Some(batch) = slot.batch {
                for req in &batch.requests {
                    let d = req.digest();
                    self.proposed.remove(&d);
                    self.executed_reqs.remove(&d);
                }
                if self.retired.len() < MAX_RETIRED {
                    self.retired.push(batch);
                }
            }
        }
        self.exec = ContiguousTracker::starting_at(resume);
        self.committed = ContiguousTracker::starting_at(resume);
        self.executed_reqs.clear();
        for (seq, slot) in self.slots.iter_mut() {
            slot.executed = false;
            slot.results = None;
            slot.informed = false;
            if slot.committed {
                self.committed.complete(*seq);
            }
        }
        self.checkpoint_votes = self.checkpoint_votes.split_off(&resume);
        self.watermarks.advance_to(self.committed.frontier());
        if self.next_seq < self.committed.frontier() {
            self.next_seq = self.committed.frontier();
        }
        self.vc_attempts = 0;
        // Kept committed slots re-execute immediately against the
        // installed state (at small scale the out-of-order window often
        // spans the whole gap, leaving only these to replay).
        self.try_execute(out);
        true
    }

    fn on_repair_tail(
        &mut self,
        from: ReplicaId,
        after: SeqNum,
        entries: Vec<ExecEntry>,
        out: &mut Outbox,
    ) {
        {
            let Some(repair) = self.repair.as_ref() else { return };
            let RepairPhase::Tailing { manifest, vouchers, .. } = &repair.phase else { return };
            if manifest.stable != after || !vouchers.contains(&from) {
                return;
            }
        }
        match self.mode {
            SupportMode::Threshold => {
                // Certificates are transferable: one verified tail is
                // enough. (A faulty voucher could send a short or empty
                // tail and stop us early — liveness-only: the lag
                // detector re-fires and the next attempt rotates to a
                // different responder.)
                let adopt = self.verified_tail_prefix(after, &entries);
                let vouchers = vec![from];
                self.finish_repair(after, &vouchers, adopt, out);
            }
            SupportMode::Mac => {
                // No transferable certificates: adopt entries matching
                // in f + 1 distinct tails (at least one honest), exactly
                // the view-change adoption rule.
                let need = self.cfg.f_plus_one();
                let Some(repair) = self.repair.as_mut() else { return };
                let RepairPhase::Tailing { vouchers, tails, .. } = &mut repair.phase else {
                    return;
                };
                tails.insert(from, entries);
                if tails.len() < vouchers.len() {
                    return;
                }
                let mut adopt: Vec<ExecEntry> = Vec::new();
                let mut s = after.next();
                'adopting: loop {
                    let mut counts: BTreeMap<(View, Digest), (usize, &ExecEntry)> = BTreeMap::new();
                    for tail in tails.values() {
                        if let Some(e) = tail.iter().find(|e| e.seq == s) {
                            counts.entry((e.view, e.batch.digest)).or_insert((0, e)).0 += 1;
                        }
                    }
                    for (count, entry) in counts.into_values() {
                        if count >= need {
                            adopt.push(entry.clone());
                            s = s.next();
                            continue 'adopting;
                        }
                    }
                    break;
                }
                let vouchers = vouchers.clone();
                self.finish_repair(after, &vouchers, adopt, out);
            }
        }
    }

    /// TS mode: the longest consecutive certificate-verified prefix of a
    /// served tail.
    fn verified_tail_prefix(&self, after: SeqNum, entries: &[ExecEntry]) -> Vec<ExecEntry> {
        let mut adopt = Vec::new();
        let mut s = after.next();
        for e in entries {
            if e.seq != s {
                break;
            }
            let Some(cert) = &e.cert else { break };
            let h = support_digest(e.view, e.seq, &e.batch.digest);
            if cert.signers.len() < self.nf() || !self.crypto.ts_verify_cert(h.as_bytes(), cert) {
                break;
            }
            adopt.push(e.clone());
            s = s.next();
        }
        adopt
    }

    /// Adopts the proven tail entries, re-enters normal operation, and
    /// reports the catch-up. An empty tail still finishes: the lag
    /// detector restarts repair if we are still behind.
    fn finish_repair(
        &mut self,
        stable: SeqNum,
        vouchers: &[ReplicaId],
        adopt: Vec<ExecEntry>,
        out: &mut Outbox,
    ) {
        for e in adopt {
            let seq = e.seq;
            let slot = self.slots.entry(seq).or_default();
            if !slot.committed {
                let digest = support_digest(e.view, seq, &e.batch.digest);
                slot.batch = Some(e.batch.clone());
                slot.digest = digest;
                slot.proposed_view = e.view;
                slot.committed = true;
                slot.cert = e.cert.clone();
                slot.certify_sent = true;
                slot.executed = false;
                slot.results = None;
                slot.informed = false;
                // MAC mode has no certificate; the ledger proof becomes
                // the committee of vouchers that served this tail.
                for v in vouchers {
                    slot.mac_votes.insert(*v, digest);
                }
            }
            for req in &e.batch.requests {
                self.proposed.insert(req.digest());
            }
            self.committed.complete(seq);
        }
        self.watermarks.advance_to(self.committed.frontier());
        self.try_execute(out);
        out.cancel_timer(TimerKind::Repair);
        self.repair = None;
        self.repair_stats.repairs_completed += 1;
        out.notify(Notification::CaughtUp { stable, exec_frontier: self.exec.frontier() });
    }

    /// Retry timer: exponential back-off, re-request what is missing
    /// with rotated sources, and periodically restart from a fresh
    /// probe (the responders' stable checkpoint may have moved past the
    /// manifest we were fetching).
    fn repair_retry(&mut self, out: &mut Outbox) {
        let Some(repair) = self.repair.as_mut() else { return };
        self.repair_stats.retries += 1;
        repair.attempts = repair.attempts.saturating_add(1);
        let attempts = repair.attempts;
        if attempts.is_multiple_of(4) {
            repair.manifests.clear();
            repair.phase = RepairPhase::Probing;
        }
        match &repair.phase {
            RepairPhase::Probing => {
                out.broadcast(ProtocolMsg::StateRequest(StateRequestKind::Manifest));
            }
            RepairPhase::Fetching { manifest, vouchers, chunks, .. } => {
                for (i, c) in chunks.iter().enumerate() {
                    if c.is_none() {
                        let to = vouchers[(i + attempts as usize) % vouchers.len()];
                        out.send(
                            to,
                            ProtocolMsg::StateRequest(StateRequestKind::Chunk {
                                stable: manifest.stable,
                                chunk: i as u32,
                            }),
                        );
                    }
                }
            }
            RepairPhase::Tailing { manifest, vouchers, tails } => {
                for v in vouchers {
                    if !tails.contains_key(v) {
                        out.send(
                            *v,
                            ProtocolMsg::StateRequest(StateRequestKind::Tail {
                                after: manifest.stable,
                            }),
                        );
                    }
                }
            }
        }
        out.set_timer(TimerKind::Repair, self.cfg.repair_retry_timeout(attempts));
    }

    // ----------------------------------------------------- view change

    /// Requests a view change into `target` (Figure 5 Lines 1–5).
    fn start_view_change(&mut self, target: View, out: &mut Outbox) {
        if self.repair.is_some() {
            // Mid-repair this replica knows its state is stale: a
            // VC-REQUEST voted from it would carry an E behind the
            // cluster's stable checkpoint. The repair timer owns
            // liveness until the gap is closed; progress timers resume
            // after `finish_repair`.
            return;
        }
        if target <= self.view {
            return;
        }
        if let Some(vc) = &self.view_change {
            if vc.target >= target {
                return;
            }
        }
        self.view_change = Some(VcState { target });
        if self.batch_timer_armed {
            self.batch_timer_armed = false;
            out.cancel_timer(TimerKind::BatchCut);
        }
        // E: the consecutive certified transactions after the stable
        // checkpoint (Figure 5 Line 4).
        let mut entries = Vec::new();
        let mut s = self.stable_seq.map(SeqNum::next).unwrap_or(SeqNum::ZERO);
        while let Some(slot) = self.slots.get(&s) {
            if !slot.committed {
                break;
            }
            let Some(batch) = &slot.batch else { break };
            entries.push(ExecEntry {
                view: slot.proposed_view,
                seq: s,
                cert: slot.cert.clone(),
                batch: batch.clone(),
            });
            s = s.next();
        }
        let mut vc = PoeVcRequest {
            from: self.id,
            view: View(target.0 - 1),
            stable_seq: self.stable_seq,
            entries,
            signature: Signature::from_bytes([0u8; 64]),
        };
        vc.signature = self.crypto.sign(&poe_vc_signing_bytes(&vc));
        out.broadcast(ProtocolMsg::PoeVcRequest(vc.clone()));
        self.pending_vc.entry(target).or_default().insert(self.id, vc);
        out.set_timer(TimerKind::ViewChange(target), self.current_timeout());
        self.vc_attempts = self.vc_attempts.saturating_add(1);
        self.maybe_nv_propose(target, out);
    }

    fn on_vc_request(&mut self, from: ReplicaId, vc: PoeVcRequest, out: &mut Outbox) {
        let target = vc.view.next();
        if target <= self.view || vc.from != from {
            return;
        }
        if !self.crypto.verify_from(vc.from.0, &poe_vc_signing_bytes(&vc), &vc.signature) {
            return;
        }
        self.pending_vc.entry(target).or_default().insert(vc.from, vc);
        // Join rule: f + 1 replicas demanding a newer view cannot all be
        // faulty — move with them (Figure 5 Line 7).
        let count = self.pending_vc.get(&target).map(|m| m.len()).unwrap_or(0);
        let past_ours = self.view_change.as_ref().is_none_or(|s| s.target < target);
        if past_ours && count >= self.cfg.f_plus_one() {
            self.start_view_change(target, out);
        }
        self.maybe_nv_propose(target, out);
    }

    /// The primary-elect of `target` proposes the new view once it holds
    /// `nf` VC-REQUESTs (Figure 5 Lines 9–11).
    fn maybe_nv_propose(&mut self, target: View, out: &mut Outbox) {
        if self.primary_of(target) != self.id
            || self.view >= target
            || self.nv_sent.contains(&target)
        {
            return;
        }
        let Some(requests) = self.pending_vc.get(&target) else { return };
        if requests.len() < self.nf() {
            return;
        }
        let chosen: Vec<PoeVcRequest> = requests.values().take(self.nf()).cloned().collect();
        self.nv_sent.insert(target);
        out.broadcast(ProtocolMsg::PoeNvPropose { new_view: target, requests: chosen.clone() });
        self.enter_new_view(target, &chosen, out);
    }

    fn on_nv_propose(
        &mut self,
        from: ReplicaId,
        new_view: View,
        requests: Vec<PoeVcRequest>,
        out: &mut Outbox,
    ) {
        if new_view <= self.view || from != self.primary_of(new_view) {
            return;
        }
        if requests.len() < self.nf() {
            return;
        }
        let mut senders = BTreeSet::new();
        for vc in &requests {
            if vc.view.next() != new_view
                || !senders.insert(vc.from)
                || !self.crypto.verify_from(vc.from.0, &poe_vc_signing_bytes(vc), &vc.signature)
            {
                return;
            }
        }
        self.enter_new_view(new_view, &requests, out);
    }

    /// Installs view `w` from `nf` VC-REQUESTs: recover the certified
    /// history, roll back speculative batches that did not survive
    /// (Figure 5 Lines 12–15), and resume normal operation.
    fn enter_new_view(&mut self, w: View, requests: &[PoeVcRequest], out: &mut Outbox) {
        // Stable base: the highest checkpoint any participant proved.
        let mut base = self.stable_seq;
        for r in requests {
            if r.stable_seq > base {
                base = r.stable_seq;
            }
        }
        let start = base.map(SeqNum::next).unwrap_or(SeqNum::ZERO);
        let appended = self.ledger.head_seq().map(SeqNum::next).unwrap_or(SeqNum::ZERO);
        if base.is_some_and(|b| !self.exec.is_complete(b)) || appended < start {
            // We are behind the cluster's stable checkpoint — either we
            // have not executed through it, or a lost commit left our
            // ledger short of it (rebuilding only `start..` slots would
            // freeze the ledger at the gap forever). The VC-REQUESTs
            // cannot contain the batches we are missing. Adopt the view
            // (stay live for forwarding), surface the lag, and start the
            // checkpoint repair protocol: fetch an `f + 1`-vouched
            // checkpoint image plus the certified tail above it from the
            // peers that proved the newer checkpoint.
            if let Some(stable) = base {
                out.notify(Notification::FellBehind {
                    stable,
                    exec_frontier: self.exec.frontier(),
                    ledger_frontier: appended,
                });
            }
            self.install_view(w, out);
            self.start_repair(out);
            return;
        }
        // Recovering through the VC-REQUESTs means we are *not* behind a
        // stable checkpoint; any in-flight state transfer is moot.
        self.abandon_repair(out);
        // Recover the new history (Figure 5 Lines 9–10): per sequence
        // number the best provably-supported entry.
        let mut recovered: BTreeMap<SeqNum, ExecEntry> = BTreeMap::new();
        match self.mode {
            SupportMode::Threshold => {
                for r in requests {
                    for e in &r.entries {
                        if e.seq < start {
                            continue;
                        }
                        let Some(cert) = &e.cert else { continue };
                        let better = recovered.get(&e.seq).is_none_or(|prev| e.view > prev.view);
                        if !better {
                            continue;
                        }
                        let h = support_digest(e.view, e.seq, &e.batch.digest);
                        if cert.signers.len() >= self.nf()
                            && self.crypto.ts_verify_cert(h.as_bytes(), cert)
                        {
                            recovered.insert(e.seq, e.clone());
                        }
                    }
                }
            }
            SupportMode::Mac => {
                // No transferable certificates: adopt entries vouched for
                // by f + 1 distinct replicas (at least one non-faulty).
                let mut counts: BTreeMap<(SeqNum, View, Digest), BTreeSet<ReplicaId>> =
                    BTreeMap::new();
                for r in requests {
                    for e in &r.entries {
                        if e.seq < start {
                            continue;
                        }
                        counts.entry((e.seq, e.view, e.batch.digest)).or_default().insert(r.from);
                    }
                }
                for r in requests {
                    for e in &r.entries {
                        if e.seq < start {
                            continue;
                        }
                        let supporters =
                            counts.get(&(e.seq, e.view, e.batch.digest)).map(|s| s.len());
                        if supporters.is_some_and(|c| c >= self.cfg.f_plus_one()) {
                            let better =
                                recovered.get(&e.seq).is_none_or(|prev| e.view > prev.view);
                            if better {
                                recovered.insert(e.seq, e.clone());
                            }
                        }
                    }
                }
            }
        }
        // Keep only the gap-free prefix.
        let mut h_max: Option<SeqNum> = None;
        let mut s = start;
        while recovered.contains_key(&s) {
            h_max = Some(s);
            s = s.next();
        }
        match h_max {
            Some(h) => recovered.retain(|k, _| *k <= h),
            None => recovered.clear(),
        }
        // Longest locally-executed prefix that matches the recovered
        // history survives; everything above rolls back.
        let mut keep = base;
        let mut s = start;
        while h_max.is_some_and(|h| s <= h) {
            let matches = self.exec.is_complete(s)
                && self.slots.get(&s).is_some_and(|slot| slot.matches(&recovered[&s].batch.digest));
            if !matches {
                break;
            }
            keep = Some(s);
            s = s.next();
        }
        let keep_frontier = keep.map(|k| k.next()).unwrap_or(SeqNum::ZERO);
        if self.exec.frontier() > keep_frontier {
            self.store.rollback_to(keep);
            self.ledger.truncate_above(keep);
            out.notify(Notification::RolledBack { to: keep });
        }
        // Rebuild the slot table around the recovered history.
        let mut old = std::mem::take(&mut self.slots);
        for (seq, entry) in recovered {
            let mut slot = match old.remove(&seq) {
                Some(s) if s.matches(&entry.batch.digest) => s,
                _ => Slot::default(),
            };
            if seq >= keep_frontier {
                slot.executed = false;
                slot.results = None;
                slot.informed = false;
            }
            slot.batch = Some(entry.batch.clone());
            slot.digest = support_digest(entry.view, seq, &entry.batch.digest);
            slot.proposed_view = entry.view;
            slot.committed = true;
            slot.cert = entry.cert;
            slot.certify_sent = true;
            self.slots.insert(seq, slot);
        }
        // Reset the trackers to the recovered history.
        let committed_frontier = h_max.map(|h| h.next()).unwrap_or(start);
        self.exec = ContiguousTracker::starting_at(keep_frontier);
        self.committed = ContiguousTracker::starting_at(committed_frontier);
        self.next_seq = committed_frontier;
        self.watermarks.advance_to(committed_frontier);
        // Request bookkeeping now reflects exactly the recovered slots.
        self.proposed.clear();
        self.executed_reqs.clear();
        for (seq, slot) in &self.slots {
            if let Some(batch) = &slot.batch {
                for req in &batch.requests {
                    let d = req.digest();
                    self.proposed.insert(d);
                    if slot.executed {
                        self.executed_reqs.insert(d, *seq);
                    }
                }
            }
        }
        self.install_view(w, out);
        self.try_execute(out);
    }

    /// Common tail of a view installation: bookkeeping, notification,
    /// and replay of stashed future-view messages.
    fn install_view(&mut self, w: View, out: &mut Outbox) {
        out.cancel_timer(TimerKind::ViewChange(w));
        self.view = w;
        self.view_change = None;
        self.pending_vc = self.pending_vc.split_off(&w.next());
        self.batcher = Batcher::new(self.cfg.batch_size);
        self.pending_batches.clear();
        for d in std::mem::take(&mut self.forwarded) {
            out.cancel_timer(TimerKind::RequestProgress(d));
        }
        // Per-view refill of the repair-serving budget.
        self.refill_repair_budget(out);
        out.notify(Notification::ViewChanged { view: w });
        let stashed = std::mem::take(&mut self.stashed);
        for (from, msg) in stashed {
            self.dispatch(from, msg, out);
        }
    }

    // -------------------------------------------------------- dispatch

    fn dispatch(&mut self, from: NodeId, msg: ProtocolMsg, out: &mut Outbox) {
        match (from, msg) {
            (_, ProtocolMsg::Request(req)) | (_, ProtocolMsg::RequestBroadcast(req)) => {
                self.on_client_request(req, out)
            }
            (NodeId::Replica(_), ProtocolMsg::Forward(req)) if self.is_primary() => {
                self.on_client_request(req, out)
            }
            (NodeId::Replica(r), ProtocolMsg::PoePropose { view, seq, batch }) => {
                self.on_propose(r, view, seq, batch, out)
            }
            (NodeId::Replica(r), ProtocolMsg::PoeSupport { view, seq, share }) => {
                self.on_support(r, view, seq, share, out)
            }
            (NodeId::Replica(r), ProtocolMsg::PoeSupportMac { view, seq, digest }) => {
                self.on_support_mac(r, view, seq, digest, out)
            }
            (NodeId::Replica(r), ProtocolMsg::PoeCertify { view, seq, cert }) => {
                self.on_certify(r, view, seq, cert, out)
            }
            (NodeId::Replica(r), ProtocolMsg::PoeVcRequest(vc)) => self.on_vc_request(r, vc, out),
            (NodeId::Replica(r), ProtocolMsg::PoeNvPropose { new_view, requests }) => {
                self.on_nv_propose(r, new_view, requests, out)
            }
            (NodeId::Replica(r), ProtocolMsg::Checkpoint { seq, state_digest }) => {
                self.on_checkpoint_vote(r, seq, state_digest, out)
            }
            (NodeId::Replica(r), ProtocolMsg::StateRequest(kind)) => {
                self.on_state_request(r, kind, out)
            }
            (NodeId::Replica(r), ProtocolMsg::StateChunk(payload)) => {
                self.on_state_chunk(r, payload, out)
            }
            _ => {}
        }
    }

    fn on_timeout(&mut self, kind: TimerKind, out: &mut Outbox) {
        match kind {
            TimerKind::BatchCut => {
                self.batch_timer_armed = false;
                if self.is_primary() {
                    if let Some(batch) = self.batcher.flush() {
                        self.enqueue_proposal(batch, out);
                    }
                }
            }
            TimerKind::RequestProgress(d)
                if self.view_change.is_none() && self.forwarded.contains(&d) =>
            {
                self.start_view_change(self.view.next(), out);
            }
            TimerKind::SlotProgress(seq) => {
                let stalled = self
                    .slots
                    .get(&seq)
                    .is_some_and(|slot| slot.batch.is_some() && !slot.committed);
                if self.view_change.is_none() && stalled {
                    self.start_view_change(self.view.next(), out);
                }
            }
            TimerKind::ViewChange(target)
                if self.view_change.as_ref().is_some_and(|vc| vc.target == target) =>
            {
                // The new primary never materialized: escalate (Theorem
                // 7's exponential back-off keeps this live).
                self.start_view_change(target.next(), out);
            }
            TimerKind::Repair => self.repair_retry(out),
            TimerKind::RepairBudget => {
                // Idle refill: grant a fresh budget so a repair that
                // started after traffic drained keeps making progress.
                self.repair_refill_armed = false;
                self.repair_tokens = self.cfg.repair_budget_chunks;
                self.repair_stats.idle_refills += 1;
            }
            _ => {}
        }
    }
}

impl ReplicaAutomaton for PoeReplica {
    fn id(&self) -> ReplicaId {
        self.id
    }

    fn on_event(&mut self, _now: Time, event: Event, out: &mut Outbox) {
        match event {
            Event::Init => {}
            Event::Deliver { from, msg } => self.dispatch(from, msg, out),
            Event::Timeout(kind) => self.on_timeout(kind, out),
        }
    }

    fn current_view(&self) -> View {
        self.view
    }

    fn execution_frontier(&self) -> SeqNum {
        self.exec.frontier()
    }

    fn state_digest(&self) -> Digest {
        self.store.state_digest()
    }

    fn ledger_digest(&self) -> Digest {
        self.ledger.history_digest()
    }

    fn protocol_name(&self) -> &'static str {
        "poe"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}
