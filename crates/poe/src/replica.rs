//! The PoE replica automaton (paper Figures 3 and 5).
//!
//! Sans-I/O: the replica consumes [`Event`]s and emits [`Action`]s; the
//! simulator and fabric runtimes interpret them. All internal maps are
//! ordered (`BTreeMap`/`BTreeSet`) so the action stream is a pure
//! function of the event stream — the determinism the discrete-event
//! simulator's replayable traces rely on.

use poe_crypto::digest::{digest_concat, Digest};
use poe_crypto::ed25519::Signature;
use poe_crypto::provider::{CryptoMode, CryptoProvider, NodeIndex};
use poe_crypto::threshold::{SignatureShare, ThresholdCert, ThresholdError};
use poe_kernel::automaton::{Event, Notification, Outbox, ReplicaAutomaton};
use poe_kernel::codec::poe_vc_signing_bytes;
use poe_kernel::config::ClusterConfig;
use poe_kernel::ids::{NodeId, ReplicaId, SeqNum, View};
use poe_kernel::messages::{ClientReply, ExecEntry, PoeVcRequest, ProtocolMsg, ReplyKind};
use poe_kernel::quorum::MatchingVotes;
use poe_kernel::request::{Batch, Batcher, ClientRequest};
use poe_kernel::statemachine::{ExecOutcome, StateMachine};
use poe_kernel::time::Time;
use poe_kernel::timer::TimerKind;
use poe_kernel::watermark::{ContiguousTracker, Watermarks};
use poe_ledger::{BlockProof, Ledger};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Cap on buffered future-view messages (delivery races around a view
/// change); beyond this, newcomers are dropped and client retransmission
/// recovers.
const MAX_STASHED: usize = 4096;

/// Cap on the retired-batch buffer filled at checkpoint GC. Runtimes
/// that recycle batch containers ([`PoeReplica::take_retired_batches`])
/// drain it every event; runtimes that do not (the simulator) must not
/// accumulate dead batches forever, so beyond this the GC simply drops
/// them.
const MAX_RETIRED: usize = 256;

/// How SUPPORT votes are authenticated and certified.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SupportMode {
    /// Figure 3: backups send signature shares to the primary, which
    /// aggregates `nf` of them into a CERTIFY certificate.
    Threshold,
    /// Appendix A: backups broadcast SUPPORT digests; every replica
    /// certifies locally once it holds `nf` matching votes. No
    /// transferable certificate exists, so view changes adopt entries
    /// appearing in `f + 1` distinct VC-REQUESTs instead.
    Mac,
}

impl SupportMode {
    /// The paper's pairing of support mode to authentication mode: MAC
    /// clusters (CMAC/HMAC) run the Appendix-A variant, signature
    /// clusters the threshold variant.
    pub fn for_crypto(mode: CryptoMode) -> SupportMode {
        match mode {
            CryptoMode::Hmac | CryptoMode::Cmac => SupportMode::Mac,
            CryptoMode::None | CryptoMode::Ed25519 => SupportMode::Threshold,
        }
    }
}

/// The digest `h = D(v ‖ k ‖ D(⟨T⟩c))` that SUPPORT shares and CERTIFY
/// certificates cover (Figure 3 Line 15).
pub fn support_digest(view: View, seq: SeqNum, batch_digest: &Digest) -> Digest {
    digest_concat(&[
        b"poe-support",
        &view.0.to_le_bytes(),
        &seq.0.to_le_bytes(),
        batch_digest.as_bytes(),
    ])
}

/// Per-sequence-number consensus state.
struct Slot {
    batch: Option<Arc<Batch>>,
    proposed_view: View,
    /// `h` for the accepted proposal (valid when `batch` is set).
    digest: Digest,
    /// TS mode, primary: collected signature shares (own included).
    shares: BTreeMap<u32, SignatureShare>,
    /// MAC mode: SUPPORT votes per digest from distinct replicas.
    mac_votes: MatchingVotes<Digest>,
    /// CERTIFY that arrived before its PROPOSE (verified once the batch
    /// is known).
    pending_cert: Option<ThresholdCert>,
    /// The verified certificate (TS mode).
    cert: Option<ThresholdCert>,
    committed: bool,
    executed: bool,
    results: Option<ExecOutcome>,
    informed: bool,
    certify_sent: bool,
}

impl Default for Slot {
    fn default() -> Slot {
        Slot {
            batch: None,
            proposed_view: View::ZERO,
            digest: Digest::EMPTY,
            shares: BTreeMap::new(),
            mac_votes: MatchingVotes::new(),
            pending_cert: None,
            cert: None,
            committed: false,
            executed: false,
            results: None,
            informed: false,
            certify_sent: false,
        }
    }
}

impl Slot {
    fn matches(&self, batch_digest: &Digest) -> bool {
        self.batch.as_ref().is_some_and(|b| b.digest == *batch_digest)
    }
}

/// In-progress view change.
struct VcState {
    target: View,
}

/// The PoE replica automaton.
pub struct PoeReplica {
    cfg: ClusterConfig,
    id: ReplicaId,
    mode: SupportMode,
    crypto: CryptoProvider,
    store: Box<dyn StateMachine>,
    ledger: Ledger,
    view: View,
    view_change: Option<VcState>,
    /// Consecutive view changes without progress (exponential back-off,
    /// Theorem 7); reset when a slot commits.
    vc_attempts: u32,
    watermarks: Watermarks,
    /// Primary: next sequence number to assign.
    next_seq: SeqNum,
    batcher: Batcher,
    pending_batches: VecDeque<Arc<Batch>>,
    batch_timer_armed: bool,
    slots: BTreeMap<SeqNum, Slot>,
    /// Contiguous speculative-execution frontier (Figure 3 Line 20).
    exec: ContiguousTracker,
    /// Contiguous view-commit frontier; drives the watermark window.
    committed: ContiguousTracker,
    stable_seq: Option<SeqNum>,
    checkpoint_votes: BTreeMap<SeqNum, MatchingVotes<Digest>>,
    /// Client requests we forwarded to the primary and are watching
    /// (failure-detection rule 1, §II-C).
    forwarded: BTreeSet<Digest>,
    /// Primary: request digests already batched or proposed (dedup).
    proposed: BTreeSet<Digest>,
    /// Executed request digest → slot, for re-INFORM on retransmission.
    executed_reqs: BTreeMap<Digest, SeqNum>,
    /// VC-REQUESTs per *target* view (the view being moved into).
    pending_vc: BTreeMap<View, BTreeMap<ReplicaId, PoeVcRequest>>,
    /// Target views for which we already broadcast NV-PROPOSE.
    nv_sent: BTreeSet<View>,
    /// Messages from views ahead of ours, replayed after a view change.
    stashed: Vec<(NodeId, ProtocolMsg)>,
    /// Reused signing-bytes scratch for batched client-signature
    /// verification (one buffer per replica instead of one `Vec` per
    /// request per PROPOSE).
    sig_scratch: Vec<u8>,
    /// Batches whose slots were garbage-collected at the last stable
    /// checkpoints — this is where decoded batches actually die, so a
    /// runtime can recycle their containers into its decode
    /// [`poe_kernel::codec::BatchPool`]. Bounded by [`MAX_RETIRED`].
    retired: Vec<Arc<Batch>>,
}

impl PoeReplica {
    /// Builds a replica. `crypto` must be the provider for `id`; `store`
    /// is the replicated application (must support rollback).
    pub fn new(
        cfg: ClusterConfig,
        id: ReplicaId,
        mode: SupportMode,
        crypto: CryptoProvider,
        store: Box<dyn StateMachine>,
    ) -> PoeReplica {
        assert_eq!(crypto.index(), id.0, "crypto provider must belong to this replica");
        let initial_primary = View::ZERO.primary(cfg.n);
        let primary_key =
            *crypto.verifying_key_of(initial_primary.0).expect("initial primary key exists");
        let batch_size = cfg.batch_size;
        let window = cfg.ooo_window;
        PoeReplica {
            cfg,
            id,
            mode,
            crypto,
            store,
            ledger: Ledger::new(initial_primary, &primary_key),
            view: View::ZERO,
            view_change: None,
            vc_attempts: 0,
            watermarks: Watermarks::new(window),
            next_seq: SeqNum::ZERO,
            batcher: Batcher::new(batch_size),
            pending_batches: VecDeque::new(),
            batch_timer_armed: false,
            slots: BTreeMap::new(),
            exec: ContiguousTracker::new(),
            committed: ContiguousTracker::new(),
            stable_seq: None,
            checkpoint_votes: BTreeMap::new(),
            forwarded: BTreeSet::new(),
            proposed: BTreeSet::new(),
            executed_reqs: BTreeMap::new(),
            pending_vc: BTreeMap::new(),
            nv_sent: BTreeSet::new(),
            stashed: Vec::new(),
            sig_scratch: Vec::new(),
            retired: Vec::new(),
        }
    }

    /// The support mode in use.
    pub fn support_mode(&self) -> SupportMode {
        self.mode
    }

    /// Whether a view change is currently in progress.
    pub fn in_view_change(&self) -> bool {
        self.view_change.is_some()
    }

    /// The last stable checkpoint.
    pub fn stable_seq(&self) -> Option<SeqNum> {
        self.stable_seq
    }

    /// The committed ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Number of live consensus slots (bounded by window + GC).
    pub fn live_slots(&self) -> usize {
        self.slots.len()
    }

    /// The contiguous view-commit frontier.
    pub fn commit_frontier(&self) -> SeqNum {
        self.committed.frontier()
    }

    /// The low/high watermark window.
    pub fn watermarks(&self) -> &Watermarks {
        &self.watermarks
    }

    // ----------------------------------------------------------- helpers

    fn primary_of(&self, v: View) -> ReplicaId {
        v.primary(self.cfg.n)
    }

    fn is_primary(&self) -> bool {
        self.view_change.is_none() && self.primary_of(self.view) == self.id
    }

    fn nf(&self) -> usize {
        self.cfg.nf()
    }

    fn current_timeout(&self) -> poe_kernel::time::Duration {
        self.cfg.view_change_timeout(self.vc_attempts)
    }

    fn client_index(&self, client: poe_kernel::ids::ClientId) -> NodeIndex {
        NodeId::Client(client).global_index(self.cfg.n)
    }

    /// Verifies a client request signature under the cluster's crypto
    /// mode (`None` ⇒ unsigned requests are accepted).
    fn client_request_ok(&self, req: &ClientRequest) -> bool {
        match self.cfg.crypto_mode {
            CryptoMode::None => true,
            _ => match &req.signature {
                Some(sig) => {
                    let bytes = ClientRequest::signing_bytes(req.client, req.req_id, &req.op);
                    self.crypto.verify_from(self.client_index(req.client), &bytes, sig)
                }
                None => false,
            },
        }
    }

    fn stash(&mut self, from: NodeId, msg: ProtocolMsg) {
        if self.stashed.len() < MAX_STASHED {
            self.stashed.push((from, msg));
        }
    }

    // ------------------------------------------------------ client path

    fn on_client_request(&mut self, req: ClientRequest, out: &mut Outbox) {
        let digest = req.digest();
        // Retransmission of an already-executed request: answer from the
        // cached results instead of re-ordering it (PBFT-style reply
        // cache; keeps re-proposals from double-executing).
        if let Some(seq) = self.executed_reqs.get(&digest).copied() {
            self.reinform(seq, &digest, out);
            return;
        }
        if self.view_change.is_some() {
            return; // Client retry re-drives after the view change.
        }
        if self.is_primary() {
            if self.proposed.contains(&digest) || !self.client_request_ok(&req) {
                return;
            }
            self.proposed.insert(digest);
            if let Some(batch) = self.batcher.push(req) {
                self.enqueue_proposal(batch, out);
            } else if !self.batch_timer_armed {
                self.batch_timer_armed = true;
                out.set_timer(TimerKind::BatchCut, self.cfg.batch_cut_delay);
            }
        } else {
            // Forward to the primary and start the progress detector
            // (§II-B / failure-detection rule 1).
            let primary = self.primary_of(self.view);
            out.send(primary, ProtocolMsg::Forward(req));
            self.forwarded.insert(digest);
            out.set_timer(TimerKind::RequestProgress(digest), self.current_timeout());
        }
    }

    /// Re-sends the INFORM for an executed request (client retransmitted
    /// after missing replies).
    fn reinform(&self, seq: SeqNum, req_digest: &Digest, out: &mut Outbox) {
        let Some(slot) = self.slots.get(&seq) else { return };
        if !slot.committed {
            return;
        }
        let (Some(batch), Some(results)) = (&slot.batch, &slot.results) else { return };
        for (i, req) in batch.requests.iter().enumerate() {
            if req.digest() == *req_digest {
                out.send(
                    NodeId::Client(req.client),
                    ProtocolMsg::Reply(ClientReply {
                        kind: ReplyKind::PoeInform,
                        view: slot.proposed_view,
                        seq,
                        req_digest: *req_digest,
                        req_id: req.req_id,
                        result: results.results[i].clone(),
                        replica: self.id,
                        history: None,
                    }),
                );
                return;
            }
        }
    }

    /// Fabric entry point: a batch pre-cut by the runtime's batching
    /// stage (paper §III / Figure 6: the primary's batch threads run
    /// ahead of the consensus thread). The runtime is expected to have
    /// verified client signatures already — the same trust the
    /// `Event::Deliver` contract places in it for sender identity.
    ///
    /// The automaton stays the safety net: if this replica is not (or no
    /// longer) the primary, or any request needs dedup handling (already
    /// proposed, or already executed and awaiting a re-INFORM), the
    /// batch is unbundled through the ordinary per-request client path.
    /// On the clean common path the pre-cut batch is proposed as-is.
    pub fn on_local_batch(&mut self, batch: Arc<Batch>, out: &mut Outbox) {
        if batch.is_empty() {
            return;
        }
        // Clean = every request is new to this replica *and* unique
        // within the batch (a client-retry storm can put several copies
        // of one request into the same cut window; proposing them as-is
        // would execute the op more than once).
        let mut fresh = BTreeSet::new();
        let clean = self.is_primary()
            && batch.requests.iter().all(|r| {
                let d = r.digest();
                !self.proposed.contains(&d)
                    && !self.executed_reqs.contains_key(&d)
                    && fresh.insert(d)
            });
        if clean {
            for req in &batch.requests {
                self.proposed.insert(req.digest());
            }
            self.enqueue_proposal(batch, out);
        } else {
            for req in batch.requests.iter().cloned() {
                self.on_client_request(req, out);
            }
        }
    }

    // ----------------------------------------------------- normal case

    fn enqueue_proposal(&mut self, batch: Arc<Batch>, out: &mut Outbox) {
        self.pending_batches.push_back(batch);
        self.drain_proposals(out);
    }

    /// Opens consensus slots while the out-of-order window has headroom
    /// (§II-F).
    fn drain_proposals(&mut self, out: &mut Outbox) {
        while self.is_primary()
            && !self.pending_batches.is_empty()
            && self.watermarks.in_window(self.next_seq)
        {
            let batch = self.pending_batches.pop_front().expect("checked non-empty");
            let seq = self.next_seq;
            self.next_seq = seq.next();
            let view = self.view;
            out.broadcast(ProtocolMsg::PoePropose { view, seq, batch: batch.clone() });
            self.accept_proposal(self.id, view, seq, batch, out);
        }
    }

    fn on_propose(
        &mut self,
        from: ReplicaId,
        view: View,
        seq: SeqNum,
        batch: Arc<Batch>,
        out: &mut Outbox,
    ) {
        if view > self.view {
            self.stash(NodeId::Replica(from), ProtocolMsg::PoePropose { view, seq, batch });
            return;
        }
        if view < self.view || self.view_change.is_some() || from != self.primary_of(view) {
            return;
        }
        if !self.watermarks.in_window(seq) {
            return;
        }
        // Backups validate the client signatures the primary vouched for
        // (Figure 3 Line 14) — in one batched pass over one reused
        // scratch buffer (no per-request body allocations).
        if self.cfg.crypto_mode != CryptoMode::None {
            let n = self.cfg.n;
            let scratch = &mut self.sig_scratch;
            scratch.clear();
            let mut spans: Vec<(NodeIndex, std::ops::Range<usize>, Signature)> =
                Vec::with_capacity(batch.requests.len());
            for req in &batch.requests {
                let Some(sig) = &req.signature else { return };
                let start = scratch.len();
                ClientRequest::write_signing_bytes(scratch, req.client, req.req_id, &req.op);
                spans.push((
                    NodeId::Client(req.client).global_index(n),
                    start..scratch.len(),
                    *sig,
                ));
            }
            let items: Vec<(NodeIndex, &[u8], Signature)> =
                spans.iter().map(|(idx, span, sig)| (*idx, &scratch[span.clone()], *sig)).collect();
            if !self.crypto.verify_batch_from(&items) {
                return;
            }
        }
        self.accept_proposal(from, view, seq, batch, out);
    }

    fn accept_proposal(
        &mut self,
        from: ReplicaId,
        view: View,
        seq: SeqNum,
        batch: Arc<Batch>,
        out: &mut Outbox,
    ) {
        let digest = support_digest(view, seq, &batch.digest);
        let slot = self.slots.entry(seq).or_default();
        if slot.batch.is_some() {
            // Duplicate (or equivocating) proposal: first accepted wins.
            return;
        }
        slot.batch = Some(batch);
        slot.digest = digest;
        slot.proposed_view = view;
        // The proposal carries the primary's own support.
        slot.mac_votes.insert(from, digest);
        let i_am_primary = from == self.id;
        match self.mode {
            SupportMode::Threshold => {
                let share = self.crypto.ts_share(digest.as_bytes());
                if i_am_primary {
                    slot.shares.insert(self.id.0, share);
                } else {
                    out.send(from, ProtocolMsg::PoeSupport { view, seq, share });
                }
            }
            SupportMode::Mac => {
                slot.mac_votes.insert(self.id, digest);
                if !i_am_primary {
                    out.broadcast(ProtocolMsg::PoeSupportMac { view, seq, digest });
                }
            }
        }
        if !slot.committed {
            out.set_timer(TimerKind::SlotProgress(seq), self.current_timeout());
        }
        // A CERTIFY that raced ahead of this PROPOSE can be checked now.
        let pending = self.slots.get_mut(&seq).and_then(|s| s.pending_cert.take());
        if let Some(cert) = pending {
            self.on_certify(self.primary_of(view), view, seq, cert, out);
        }
        self.try_execute(out);
        self.try_aggregate(seq, out);
        self.try_mac_commit(seq, out);
    }

    fn on_support(
        &mut self,
        from: ReplicaId,
        view: View,
        seq: SeqNum,
        share: SignatureShare,
        out: &mut Outbox,
    ) {
        if view > self.view {
            self.stash(NodeId::Replica(from), ProtocolMsg::PoeSupport { view, seq, share });
            return;
        }
        if self.mode != SupportMode::Threshold
            || view < self.view
            || self.view_change.is_some()
            || self.primary_of(view) != self.id
            || share.signer != from.0
        {
            return;
        }
        let Some(slot) = self.slots.get_mut(&seq) else { return };
        if slot.batch.is_none() || slot.certify_sent || slot.shares.contains_key(&share.signer) {
            // Unknown slot, already certified, or duplicate share from
            // this replica: either way the vote cannot advance anything
            // (Proposition 2's single-SUPPORT rule).
            return;
        }
        slot.shares.insert(share.signer, share);
        self.try_aggregate(seq, out);
    }

    /// Primary, TS mode: aggregate `nf` shares into a CERTIFY
    /// certificate. Shares are *not* verified on arrival — aggregation
    /// batch-verifies the whole set in one pass and only attributes
    /// blame serially if that fails, discarding the offender.
    fn try_aggregate(&mut self, seq: SeqNum, out: &mut Outbox) {
        if self.mode != SupportMode::Threshold || !self.is_primary() {
            return;
        }
        let Some(slot) = self.slots.get_mut(&seq) else { return };
        if slot.batch.is_none() || slot.certify_sent || slot.shares.len() < self.cfg.nf() {
            return;
        }
        loop {
            let shares: Vec<SignatureShare> = slot.shares.values().cloned().collect();
            match self.crypto.ts_aggregate(slot.digest.as_bytes(), &shares) {
                Ok(cert) => {
                    slot.certify_sent = true;
                    let view = slot.proposed_view;
                    out.broadcast(ProtocolMsg::PoeCertify { view, seq, cert: cert.clone() });
                    self.commit_slot(seq, Some(cert), out);
                    return;
                }
                Err(ThresholdError::InvalidShare(signer)) => {
                    slot.shares.remove(&signer);
                    if slot.shares.len() < self.cfg.nf() {
                        return; // Wait for replacement shares.
                    }
                }
                Err(_) => return,
            }
        }
    }

    fn on_support_mac(
        &mut self,
        from: ReplicaId,
        view: View,
        seq: SeqNum,
        digest: Digest,
        out: &mut Outbox,
    ) {
        if view > self.view {
            self.stash(NodeId::Replica(from), ProtocolMsg::PoeSupportMac { view, seq, digest });
            return;
        }
        if self.mode != SupportMode::Mac
            || view < self.view
            || self.view_change.is_some()
            || !self.watermarks.in_window(seq)
        {
            // The window check also bounds the slot table: a byzantine
            // replica voting on arbitrary far-future sequence numbers
            // must not materialize slots outside the active window.
            return;
        }
        let slot = self.slots.entry(seq).or_default();
        slot.mac_votes.insert(from, digest);
        self.try_mac_commit(seq, out);
    }

    fn try_mac_commit(&mut self, seq: SeqNum, out: &mut Outbox) {
        if self.mode != SupportMode::Mac {
            return;
        }
        let Some(slot) = self.slots.get(&seq) else { return };
        if slot.batch.is_none() || slot.committed {
            return;
        }
        if slot.mac_votes.count_for(&slot.digest) >= self.nf() {
            self.commit_slot(seq, None, out);
        }
    }

    fn on_certify(
        &mut self,
        from: ReplicaId,
        view: View,
        seq: SeqNum,
        cert: ThresholdCert,
        out: &mut Outbox,
    ) {
        if view > self.view {
            self.stash(NodeId::Replica(from), ProtocolMsg::PoeCertify { view, seq, cert });
            return;
        }
        if self.mode != SupportMode::Threshold
            || view < self.view
            || self.view_change.is_some()
            || from != self.primary_of(view)
        {
            return;
        }
        let Some(slot) = self.slots.get_mut(&seq) else {
            return;
        };
        if slot.committed {
            return;
        }
        if slot.batch.is_none() {
            slot.pending_cert = Some(cert); // Raced ahead of its PROPOSE.
            return;
        }
        let valid = cert.signers.len() >= self.cfg.nf()
            && self.crypto.ts_verify_cert(slot.digest.as_bytes(), &cert);
        if valid {
            self.commit_slot(seq, Some(cert), out);
        }
    }

    /// View-commit (Figure 3 Line 23): the proposal is certified at this
    /// replica.
    fn commit_slot(&mut self, seq: SeqNum, cert: Option<ThresholdCert>, out: &mut Outbox) {
        let Some(slot) = self.slots.get_mut(&seq) else { return };
        if slot.committed {
            return;
        }
        slot.committed = true;
        slot.cert = cert;
        out.cancel_timer(TimerKind::SlotProgress(seq));
        // Progress: reset the view-change back-off (Theorem 7).
        self.vc_attempts = 0;
        self.committed.complete(seq);
        self.watermarks.advance_to(self.committed.frontier());
        out.notify(Notification::Decided { seq });
        self.try_inform(seq, out);
        self.try_append_ledger();
        self.drain_proposals(out);
    }

    /// Speculative execution at the contiguous frontier (Figure 3
    /// Line 20: execute `k` only once `k − 1` has executed).
    fn try_execute(&mut self, out: &mut Outbox) {
        loop {
            let next = self.exec.frontier();
            let Some(slot) = self.slots.get_mut(&next) else { break };
            let Some(batch) = slot.batch.clone() else { break };
            if slot.executed {
                break;
            }
            let outcome = self.store.apply(next, &batch);
            let results_digest = outcome.digest();
            slot.executed = true;
            slot.results = Some(outcome);
            let view = slot.proposed_view;
            self.exec.complete(next);
            out.notify(Notification::Executed {
                view,
                seq: next,
                batch: batch.clone(),
                results_digest,
            });
            for req in &batch.requests {
                let d = req.digest();
                self.executed_reqs.insert(d, next);
                if self.forwarded.remove(&d) {
                    out.cancel_timer(TimerKind::RequestProgress(d));
                }
            }
            if (next.0 + 1).is_multiple_of(self.cfg.checkpoint_interval) {
                let state_digest = self.store.state_digest();
                out.broadcast(ProtocolMsg::Checkpoint { seq: next, state_digest });
                self.checkpoint_votes.entry(next).or_default().insert(self.id, state_digest);
                self.try_stable_checkpoint(next, out);
            }
            self.try_inform(next, out);
        }
        self.try_append_ledger();
    }

    /// INFORM the clients once a slot is both executed and view-committed.
    fn try_inform(&mut self, seq: SeqNum, out: &mut Outbox) {
        let Some(slot) = self.slots.get_mut(&seq) else { return };
        if !slot.committed || !slot.executed || slot.informed {
            return;
        }
        let (Some(batch), Some(results)) = (&slot.batch, &slot.results) else { return };
        slot.informed = true;
        for (i, req) in batch.requests.iter().enumerate() {
            out.send(
                NodeId::Client(req.client),
                ProtocolMsg::Reply(ClientReply {
                    kind: ReplyKind::PoeInform,
                    view: slot.proposed_view,
                    seq,
                    req_digest: req.digest(),
                    req_id: req.req_id,
                    result: results.results[i].clone(),
                    replica: self.id,
                    history: None,
                }),
            );
        }
    }

    /// Appends executed-and-committed slots to the ledger in order
    /// (§III-A; the proof of acceptance is the CERTIFY certificate in TS
    /// mode, the locally observed committee in MAC mode).
    fn try_append_ledger(&mut self) {
        loop {
            let next = self.ledger.head_seq().map(SeqNum::next).unwrap_or(SeqNum::ZERO);
            let Some(slot) = self.slots.get(&next) else { break };
            if !slot.committed || !slot.executed {
                break;
            }
            let Some(batch) = &slot.batch else { break };
            let proof = match &slot.cert {
                Some(cert) => BlockProof::Certificate(cert.clone()),
                None => BlockProof::Committee(slot.mac_votes.voters_for(&slot.digest).collect()),
            };
            self.ledger.append(next, slot.proposed_view, batch.digest, proof);
        }
        self.gc_stable_slots();
    }

    /// Drops consensus slots that are both stable (at or below the last
    /// stable checkpoint) and fully retired (committed, executed, and on
    /// the ledger). A slot whose CERTIFY is still in flight when its
    /// checkpoint stabilizes survives until it commits — otherwise the
    /// commit would be lost and the ledger would hold a permanent gap.
    fn gc_stable_slots(&mut self) {
        let Some(stable) = self.stable_seq else { return };
        let appended = self.ledger.head_seq().map(SeqNum::next).unwrap_or(SeqNum::ZERO);
        let bound = SeqNum(stable.next().0.min(appended.0));
        if self.slots.first_key_value().is_none_or(|(s, _)| *s >= bound) {
            return;
        }
        let live = self.slots.split_off(&bound);
        let dead = std::mem::replace(&mut self.slots, live);
        for slot in dead.into_values() {
            if let Some(batch) = slot.batch {
                for req in &batch.requests {
                    let d = req.digest();
                    self.proposed.remove(&d);
                    self.executed_reqs.remove(&d);
                }
                if self.retired.len() < MAX_RETIRED {
                    self.retired.push(batch);
                }
            }
        }
    }

    /// Drains the batches retired by checkpoint GC since the last call.
    /// The fabric runtime feeds these back into its ingress
    /// [`poe_kernel::codec::BatchPool`], closing the allocation-free
    /// decode loop (containers are recycled exactly where batches die).
    /// Runtimes that do not recycle may simply never call this; the
    /// buffer is bounded.
    pub fn take_retired_batches(&mut self) -> Vec<Arc<Batch>> {
        std::mem::take(&mut self.retired)
    }

    // ----------------------------------------------------- checkpoints

    fn on_checkpoint_vote(
        &mut self,
        from: ReplicaId,
        seq: SeqNum,
        state_digest: Digest,
        out: &mut Outbox,
    ) {
        // Honest checkpoints sit on interval boundaries and at most one
        // window ahead of us; anything else is noise and must not grow
        // the vote table (byzantine flooding of far-future seqs).
        let aligned = (seq.0 + 1).is_multiple_of(self.cfg.checkpoint_interval);
        let in_range = seq.0 < self.watermarks.high().0 + self.cfg.checkpoint_interval;
        if self.stable_seq.is_some_and(|s| seq <= s) || !aligned || !in_range {
            return;
        }
        self.checkpoint_votes.entry(seq).or_default().insert(from, state_digest);
        self.try_stable_checkpoint(seq, out);
    }

    /// `2f + 1` matching checkpoint votes (our own among them) make the
    /// checkpoint stable: undo logs below it are garbage-collected and
    /// the low watermark advances.
    fn try_stable_checkpoint(&mut self, seq: SeqNum, out: &mut Outbox) {
        if self.stable_seq.is_some_and(|s| seq <= s) {
            return;
        }
        let quorum = 2 * self.cfg.f + 1;
        let Some(votes) = self.checkpoint_votes.get(&seq) else { return };
        let Some(digest) = votes.quorum_value(quorum).copied() else { return };
        // We must agree with the stable value ourselves — otherwise the
        // gap calls for state transfer, which is out of scope here.
        if !votes.voters_for(&digest).any(|r| r == self.id) {
            return;
        }
        self.stable_seq = Some(seq);
        self.store.stabilize(seq);
        // Retire what is already on the ledger; slots whose commit is
        // still in flight are collected when it lands.
        self.try_append_ledger();
        self.checkpoint_votes = self.checkpoint_votes.split_off(&seq.next());
        self.watermarks.advance_to(seq.next());
        out.notify(Notification::CheckpointStable { seq });
        self.drain_proposals(out);
    }

    // ----------------------------------------------------- view change

    /// Requests a view change into `target` (Figure 5 Lines 1–5).
    fn start_view_change(&mut self, target: View, out: &mut Outbox) {
        if target <= self.view {
            return;
        }
        if let Some(vc) = &self.view_change {
            if vc.target >= target {
                return;
            }
        }
        self.view_change = Some(VcState { target });
        if self.batch_timer_armed {
            self.batch_timer_armed = false;
            out.cancel_timer(TimerKind::BatchCut);
        }
        // E: the consecutive certified transactions after the stable
        // checkpoint (Figure 5 Line 4).
        let mut entries = Vec::new();
        let mut s = self.stable_seq.map(SeqNum::next).unwrap_or(SeqNum::ZERO);
        while let Some(slot) = self.slots.get(&s) {
            if !slot.committed {
                break;
            }
            let Some(batch) = &slot.batch else { break };
            entries.push(ExecEntry {
                view: slot.proposed_view,
                seq: s,
                cert: slot.cert.clone(),
                batch: batch.clone(),
            });
            s = s.next();
        }
        let mut vc = PoeVcRequest {
            from: self.id,
            view: View(target.0 - 1),
            stable_seq: self.stable_seq,
            entries,
            signature: Signature::from_bytes([0u8; 64]),
        };
        vc.signature = self.crypto.sign(&poe_vc_signing_bytes(&vc));
        out.broadcast(ProtocolMsg::PoeVcRequest(vc.clone()));
        self.pending_vc.entry(target).or_default().insert(self.id, vc);
        out.set_timer(TimerKind::ViewChange(target), self.current_timeout());
        self.vc_attempts = self.vc_attempts.saturating_add(1);
        self.maybe_nv_propose(target, out);
    }

    fn on_vc_request(&mut self, from: ReplicaId, vc: PoeVcRequest, out: &mut Outbox) {
        let target = vc.view.next();
        if target <= self.view || vc.from != from {
            return;
        }
        if !self.crypto.verify_from(vc.from.0, &poe_vc_signing_bytes(&vc), &vc.signature) {
            return;
        }
        self.pending_vc.entry(target).or_default().insert(vc.from, vc);
        // Join rule: f + 1 replicas demanding a newer view cannot all be
        // faulty — move with them (Figure 5 Line 7).
        let count = self.pending_vc.get(&target).map(|m| m.len()).unwrap_or(0);
        let past_ours = self.view_change.as_ref().is_none_or(|s| s.target < target);
        if past_ours && count >= self.cfg.f_plus_one() {
            self.start_view_change(target, out);
        }
        self.maybe_nv_propose(target, out);
    }

    /// The primary-elect of `target` proposes the new view once it holds
    /// `nf` VC-REQUESTs (Figure 5 Lines 9–11).
    fn maybe_nv_propose(&mut self, target: View, out: &mut Outbox) {
        if self.primary_of(target) != self.id
            || self.view >= target
            || self.nv_sent.contains(&target)
        {
            return;
        }
        let Some(requests) = self.pending_vc.get(&target) else { return };
        if requests.len() < self.nf() {
            return;
        }
        let chosen: Vec<PoeVcRequest> = requests.values().take(self.nf()).cloned().collect();
        self.nv_sent.insert(target);
        out.broadcast(ProtocolMsg::PoeNvPropose { new_view: target, requests: chosen.clone() });
        self.enter_new_view(target, &chosen, out);
    }

    fn on_nv_propose(
        &mut self,
        from: ReplicaId,
        new_view: View,
        requests: Vec<PoeVcRequest>,
        out: &mut Outbox,
    ) {
        if new_view <= self.view || from != self.primary_of(new_view) {
            return;
        }
        if requests.len() < self.nf() {
            return;
        }
        let mut senders = BTreeSet::new();
        for vc in &requests {
            if vc.view.next() != new_view
                || !senders.insert(vc.from)
                || !self.crypto.verify_from(vc.from.0, &poe_vc_signing_bytes(vc), &vc.signature)
            {
                return;
            }
        }
        self.enter_new_view(new_view, &requests, out);
    }

    /// Installs view `w` from `nf` VC-REQUESTs: recover the certified
    /// history, roll back speculative batches that did not survive
    /// (Figure 5 Lines 12–15), and resume normal operation.
    fn enter_new_view(&mut self, w: View, requests: &[PoeVcRequest], out: &mut Outbox) {
        // Stable base: the highest checkpoint any participant proved.
        let mut base = self.stable_seq;
        for r in requests {
            if r.stable_seq > base {
                base = r.stable_seq;
            }
        }
        let start = base.map(SeqNum::next).unwrap_or(SeqNum::ZERO);
        let appended = self.ledger.head_seq().map(SeqNum::next).unwrap_or(SeqNum::ZERO);
        if base.is_some_and(|b| !self.exec.is_complete(b)) || appended < start {
            // We are behind the cluster's stable checkpoint — either we
            // have not executed through it, or a lost commit left our
            // ledger short of it (rebuilding only `start..` slots would
            // freeze the ledger at the gap forever). The VC-REQUESTs
            // cannot contain the batches we are missing. Adopt the view
            // (stay live for forwarding) but keep our state; catching
            // up requires state transfer (future work). Surface the lag
            // so runtimes can log/expose it instead of stalling silently.
            if let Some(stable) = base {
                out.notify(Notification::FellBehind {
                    stable,
                    exec_frontier: self.exec.frontier(),
                    ledger_frontier: appended,
                });
            }
            self.install_view(w, out);
            return;
        }
        // Recover the new history (Figure 5 Lines 9–10): per sequence
        // number the best provably-supported entry.
        let mut recovered: BTreeMap<SeqNum, ExecEntry> = BTreeMap::new();
        match self.mode {
            SupportMode::Threshold => {
                for r in requests {
                    for e in &r.entries {
                        if e.seq < start {
                            continue;
                        }
                        let Some(cert) = &e.cert else { continue };
                        let better = recovered.get(&e.seq).is_none_or(|prev| e.view > prev.view);
                        if !better {
                            continue;
                        }
                        let h = support_digest(e.view, e.seq, &e.batch.digest);
                        if cert.signers.len() >= self.nf()
                            && self.crypto.ts_verify_cert(h.as_bytes(), cert)
                        {
                            recovered.insert(e.seq, e.clone());
                        }
                    }
                }
            }
            SupportMode::Mac => {
                // No transferable certificates: adopt entries vouched for
                // by f + 1 distinct replicas (at least one non-faulty).
                let mut counts: BTreeMap<(SeqNum, View, Digest), BTreeSet<ReplicaId>> =
                    BTreeMap::new();
                for r in requests {
                    for e in &r.entries {
                        if e.seq < start {
                            continue;
                        }
                        counts.entry((e.seq, e.view, e.batch.digest)).or_default().insert(r.from);
                    }
                }
                for r in requests {
                    for e in &r.entries {
                        if e.seq < start {
                            continue;
                        }
                        let supporters =
                            counts.get(&(e.seq, e.view, e.batch.digest)).map(|s| s.len());
                        if supporters.is_some_and(|c| c >= self.cfg.f_plus_one()) {
                            let better =
                                recovered.get(&e.seq).is_none_or(|prev| e.view > prev.view);
                            if better {
                                recovered.insert(e.seq, e.clone());
                            }
                        }
                    }
                }
            }
        }
        // Keep only the gap-free prefix.
        let mut h_max: Option<SeqNum> = None;
        let mut s = start;
        while recovered.contains_key(&s) {
            h_max = Some(s);
            s = s.next();
        }
        match h_max {
            Some(h) => recovered.retain(|k, _| *k <= h),
            None => recovered.clear(),
        }
        // Longest locally-executed prefix that matches the recovered
        // history survives; everything above rolls back.
        let mut keep = base;
        let mut s = start;
        while h_max.is_some_and(|h| s <= h) {
            let matches = self.exec.is_complete(s)
                && self.slots.get(&s).is_some_and(|slot| slot.matches(&recovered[&s].batch.digest));
            if !matches {
                break;
            }
            keep = Some(s);
            s = s.next();
        }
        let keep_frontier = keep.map(|k| k.next()).unwrap_or(SeqNum::ZERO);
        if self.exec.frontier() > keep_frontier {
            self.store.rollback_to(keep);
            self.ledger.truncate_above(keep);
            out.notify(Notification::RolledBack { to: keep });
        }
        // Rebuild the slot table around the recovered history.
        let mut old = std::mem::take(&mut self.slots);
        for (seq, entry) in recovered {
            let mut slot = match old.remove(&seq) {
                Some(s) if s.matches(&entry.batch.digest) => s,
                _ => Slot::default(),
            };
            if seq >= keep_frontier {
                slot.executed = false;
                slot.results = None;
                slot.informed = false;
            }
            slot.batch = Some(entry.batch.clone());
            slot.digest = support_digest(entry.view, seq, &entry.batch.digest);
            slot.proposed_view = entry.view;
            slot.committed = true;
            slot.cert = entry.cert;
            slot.certify_sent = true;
            self.slots.insert(seq, slot);
        }
        // Reset the trackers to the recovered history.
        let committed_frontier = h_max.map(|h| h.next()).unwrap_or(start);
        self.exec = ContiguousTracker::starting_at(keep_frontier);
        self.committed = ContiguousTracker::starting_at(committed_frontier);
        self.next_seq = committed_frontier;
        self.watermarks.advance_to(committed_frontier);
        // Request bookkeeping now reflects exactly the recovered slots.
        self.proposed.clear();
        self.executed_reqs.clear();
        for (seq, slot) in &self.slots {
            if let Some(batch) = &slot.batch {
                for req in &batch.requests {
                    let d = req.digest();
                    self.proposed.insert(d);
                    if slot.executed {
                        self.executed_reqs.insert(d, *seq);
                    }
                }
            }
        }
        self.install_view(w, out);
        self.try_execute(out);
    }

    /// Common tail of a view installation: bookkeeping, notification,
    /// and replay of stashed future-view messages.
    fn install_view(&mut self, w: View, out: &mut Outbox) {
        out.cancel_timer(TimerKind::ViewChange(w));
        self.view = w;
        self.view_change = None;
        self.pending_vc = self.pending_vc.split_off(&w.next());
        self.batcher = Batcher::new(self.cfg.batch_size);
        self.pending_batches.clear();
        for d in std::mem::take(&mut self.forwarded) {
            out.cancel_timer(TimerKind::RequestProgress(d));
        }
        out.notify(Notification::ViewChanged { view: w });
        let stashed = std::mem::take(&mut self.stashed);
        for (from, msg) in stashed {
            self.dispatch(from, msg, out);
        }
    }

    // -------------------------------------------------------- dispatch

    fn dispatch(&mut self, from: NodeId, msg: ProtocolMsg, out: &mut Outbox) {
        match (from, msg) {
            (_, ProtocolMsg::Request(req)) | (_, ProtocolMsg::RequestBroadcast(req)) => {
                self.on_client_request(req, out)
            }
            (NodeId::Replica(_), ProtocolMsg::Forward(req)) if self.is_primary() => {
                self.on_client_request(req, out)
            }
            (NodeId::Replica(r), ProtocolMsg::PoePropose { view, seq, batch }) => {
                self.on_propose(r, view, seq, batch, out)
            }
            (NodeId::Replica(r), ProtocolMsg::PoeSupport { view, seq, share }) => {
                self.on_support(r, view, seq, share, out)
            }
            (NodeId::Replica(r), ProtocolMsg::PoeSupportMac { view, seq, digest }) => {
                self.on_support_mac(r, view, seq, digest, out)
            }
            (NodeId::Replica(r), ProtocolMsg::PoeCertify { view, seq, cert }) => {
                self.on_certify(r, view, seq, cert, out)
            }
            (NodeId::Replica(r), ProtocolMsg::PoeVcRequest(vc)) => self.on_vc_request(r, vc, out),
            (NodeId::Replica(r), ProtocolMsg::PoeNvPropose { new_view, requests }) => {
                self.on_nv_propose(r, new_view, requests, out)
            }
            (NodeId::Replica(r), ProtocolMsg::Checkpoint { seq, state_digest }) => {
                self.on_checkpoint_vote(r, seq, state_digest, out)
            }
            _ => {}
        }
    }

    fn on_timeout(&mut self, kind: TimerKind, out: &mut Outbox) {
        match kind {
            TimerKind::BatchCut => {
                self.batch_timer_armed = false;
                if self.is_primary() {
                    if let Some(batch) = self.batcher.flush() {
                        self.enqueue_proposal(batch, out);
                    }
                }
            }
            TimerKind::RequestProgress(d)
                if self.view_change.is_none() && self.forwarded.contains(&d) =>
            {
                self.start_view_change(self.view.next(), out);
            }
            TimerKind::SlotProgress(seq) => {
                let stalled = self
                    .slots
                    .get(&seq)
                    .is_some_and(|slot| slot.batch.is_some() && !slot.committed);
                if self.view_change.is_none() && stalled {
                    self.start_view_change(self.view.next(), out);
                }
            }
            TimerKind::ViewChange(target)
                if self.view_change.as_ref().is_some_and(|vc| vc.target == target) =>
            {
                // The new primary never materialized: escalate (Theorem
                // 7's exponential back-off keeps this live).
                self.start_view_change(target.next(), out);
            }
            _ => {}
        }
    }
}

impl ReplicaAutomaton for PoeReplica {
    fn id(&self) -> ReplicaId {
        self.id
    }

    fn on_event(&mut self, _now: Time, event: Event, out: &mut Outbox) {
        match event {
            Event::Init => {}
            Event::Deliver { from, msg } => self.dispatch(from, msg, out),
            Event::Timeout(kind) => self.on_timeout(kind, out),
        }
    }

    fn current_view(&self) -> View {
        self.view
    }

    fn execution_frontier(&self) -> SeqNum {
        self.exec.frontier()
    }

    fn state_digest(&self) -> Digest {
        self.store.state_digest()
    }

    fn ledger_digest(&self) -> Digest {
        self.ledger.history_digest()
    }

    fn protocol_name(&self) -> &'static str {
        "poe"
    }
}
