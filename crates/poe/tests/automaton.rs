//! Automaton-level tests for the PoE replica: a hand-driven message pump
//! (no simulator) delivering actions between four replicas, with manual
//! timer firing so failure scenarios are exact.

use poe_consensus::{support_digest, PoeReplica, SupportMode};
use poe_crypto::ed25519::Signature;
use poe_crypto::{CertScheme, CryptoMode, Digest, KeyMaterial};
use poe_kernel::automaton::{Action, Event, Notification, Outbox, ReplicaAutomaton};
use poe_kernel::codec::poe_vc_signing_bytes;
use poe_kernel::config::ClusterConfig;
use poe_kernel::ids::{ClientId, NodeId, ReplicaId, SeqNum, View};
use poe_kernel::messages::{ClientReply, PoeVcRequest, ProtocolMsg, StateRequestKind};
use poe_kernel::request::ClientRequest;
use poe_kernel::time::Time;
use poe_kernel::timer::TimerKind;
use poe_store::{SpeculativeStore, Transaction};
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

const N: usize = 4;

struct Pump {
    queue: VecDeque<(usize, NodeId, ProtocolMsg)>,
    replies: Vec<(usize, ClientReply)>,
    notes: Vec<(usize, Notification)>,
    timers: Vec<(usize, TimerKind)>,
    crashed: BTreeSet<usize>,
}

impl Pump {
    fn new() -> Pump {
        Pump {
            queue: VecDeque::new(),
            replies: Vec::new(),
            notes: Vec::new(),
            timers: Vec::new(),
            crashed: BTreeSet::new(),
        }
    }

    fn crash(&mut self, idx: usize) {
        self.crashed.insert(idx);
        self.queue.retain(|(to, _, _)| *to != idx);
        self.timers.retain(|(r, _)| *r != idx);
    }

    fn collect(&mut self, from: usize, out: &mut Outbox) {
        for action in out.drain() {
            match action {
                Action::Send { to: NodeId::Replica(r), msg } => {
                    if !self.crashed.contains(&r.index()) {
                        self.queue.push_back((
                            r.index(),
                            NodeId::Replica(ReplicaId(from as u32)),
                            msg,
                        ));
                    }
                }
                Action::Send { to: NodeId::Client(_), msg } => {
                    if let ProtocolMsg::Reply(reply) = msg {
                        self.replies.push((from, reply));
                    }
                }
                Action::Broadcast { msg } => {
                    for to in 0..N {
                        if to != from && !self.crashed.contains(&to) {
                            self.queue.push_back((
                                to,
                                NodeId::Replica(ReplicaId(from as u32)),
                                msg.clone(),
                            ));
                        }
                    }
                }
                Action::SetTimer { kind, .. } => {
                    self.timers.retain(|(r, k)| !(*r == from && *k == kind));
                    self.timers.push((from, kind));
                }
                Action::CancelTimer { kind } => {
                    self.timers.retain(|(r, k)| !(*r == from && *k == kind));
                }
                Action::Notify(n) => self.notes.push((from, n)),
            }
        }
    }

    fn run(&mut self, replicas: &mut [PoeReplica]) {
        while let Some((to, from, msg)) = self.queue.pop_front() {
            if self.crashed.contains(&to) {
                continue;
            }
            let mut out = Outbox::new();
            replicas[to].on_event(Time::ZERO, Event::Deliver { from, msg }, &mut out);
            self.collect(to, &mut out);
        }
    }

    fn inject(&mut self, to: usize, from: NodeId, msg: ProtocolMsg) {
        self.queue.push_back((to, from, msg));
    }

    /// Fires every currently armed timer of `kind_matches` on live
    /// replicas, then pumps to quiescence.
    fn fire_timers(&mut self, replicas: &mut [PoeReplica], want: impl Fn(&TimerKind) -> bool) {
        let due: Vec<(usize, TimerKind)> = self
            .timers
            .iter()
            .filter(|(r, k)| !self.crashed.contains(r) && want(k))
            .cloned()
            .collect();
        self.timers.retain(|(r, k)| !want(k) || self.crashed.contains(r));
        for (r, kind) in due {
            let mut out = Outbox::new();
            replicas[r].on_event(Time::ZERO, Event::Timeout(kind), &mut out);
            self.collect(r, &mut out);
        }
        self.run(replicas);
    }
}

fn cluster(
    mode: SupportMode,
    crypto_mode: CryptoMode,
    scheme: CertScheme,
    tweak: impl Fn(ClusterConfig) -> ClusterConfig,
) -> (Vec<PoeReplica>, Arc<KeyMaterial>) {
    let cfg = tweak(ClusterConfig::new(N).with_batch_size(1).with_crypto_mode(crypto_mode));
    let km = KeyMaterial::generate(N, 2, cfg.nf(), crypto_mode, scheme, 77);
    let replicas = (0..N)
        .map(|i| {
            PoeReplica::new(
                cfg.clone(),
                ReplicaId(i as u32),
                mode,
                km.replica(i),
                Box::new(SpeculativeStore::new()),
            )
        })
        .collect();
    (replicas, km)
}

fn request(
    km: &Arc<KeyMaterial>,
    crypto_mode: CryptoMode,
    req_id: u64,
    key: &str,
) -> ClientRequest {
    let op = Transaction::put(key, format!("v{req_id}")).encode();
    let signature = (crypto_mode != CryptoMode::None)
        .then(|| km.client(0).sign(&ClientRequest::signing_bytes(ClientId(0), req_id, &op)));
    ClientRequest::new(ClientId(0), req_id, op, signature)
}

fn assert_converged(replicas: &[PoeReplica], skip: &BTreeSet<usize>) {
    let mut reference: Option<(Digest, Digest, SeqNum)> = None;
    for (i, r) in replicas.iter().enumerate() {
        if skip.contains(&i) {
            continue;
        }
        let tuple = (r.state_digest(), r.ledger_digest(), r.execution_frontier());
        match &reference {
            None => reference = Some(tuple),
            Some(expect) => assert_eq!(*expect, tuple, "replica {i} diverged"),
        }
    }
}

#[test]
fn happy_path_threshold_commits_executes_informs() {
    let (mut replicas, km) =
        cluster(SupportMode::Threshold, CryptoMode::None, CertScheme::MultiSig, |c| c);
    let mut pump = Pump::new();
    let client = NodeId::Client(ClientId(0));
    pump.inject(0, client, ProtocolMsg::Request(request(&km, CryptoMode::None, 0, "a")));
    pump.run(&mut replicas);

    for (i, r) in replicas.iter().enumerate() {
        assert_eq!(r.execution_frontier(), SeqNum(1), "replica {i}");
        assert_eq!(r.commit_frontier(), SeqNum(1), "replica {i}");
        assert_eq!(r.ledger().len(), 1, "replica {i}");
        assert_eq!(r.current_view(), View(0));
    }
    assert_converged(&replicas, &BTreeSet::new());
    // Every replica INFORMs the client.
    let informs = pump.replies.iter().filter(|(_, r)| r.req_id == 0).count();
    assert_eq!(informs, N);
    // Everyone decided and executed exactly once.
    let decided =
        pump.notes.iter().filter(|(_, n)| matches!(n, Notification::Decided { .. })).count();
    assert_eq!(decided, N);
}

#[test]
fn happy_path_mac_mode_with_signed_clients() {
    let (mut replicas, km) =
        cluster(SupportMode::Mac, CryptoMode::Cmac, CertScheme::MultiSig, |c| c);
    let mut pump = Pump::new();
    let client = NodeId::Client(ClientId(0));
    for req_id in 0..3 {
        pump.inject(0, client, ProtocolMsg::Request(request(&km, CryptoMode::Cmac, req_id, "k")));
    }
    pump.run(&mut replicas);
    for r in &replicas {
        assert_eq!(r.execution_frontier(), SeqNum(3));
        assert_eq!(r.ledger().len(), 3);
    }
    assert_converged(&replicas, &BTreeSet::new());
    assert_eq!(pump.replies.iter().filter(|(_, r)| r.req_id == 2).count(), N);
}

#[test]
fn tampered_client_signature_is_not_proposed() {
    let (mut replicas, km) =
        cluster(SupportMode::Threshold, CryptoMode::Cmac, CertScheme::MultiSig, |c| c);
    let mut pump = Pump::new();
    let orig = request(&km, CryptoMode::Cmac, 0, "a");
    // Keep the signature but swap the payload (a fresh request: identity
    // fields are immutable once built, see `ClientRequest`).
    let req = ClientRequest::new(
        orig.client,
        orig.req_id,
        Transaction::put("tampered", "x").encode(),
        orig.signature,
    );
    pump.inject(0, NodeId::Client(ClientId(0)), ProtocolMsg::Request(req));
    pump.run(&mut replicas);
    assert_eq!(replicas[0].execution_frontier(), SeqNum(0));
    assert!(pump.replies.is_empty());
}

/// Satellite: a duplicate SUPPORT share from one replica must not count
/// toward the `nf` threshold (Proposition 2's single-SUPPORT argument).
#[test]
fn duplicate_support_share_does_not_reach_quorum() {
    let (mut replicas, km) =
        cluster(SupportMode::Threshold, CryptoMode::None, CertScheme::MultiSig, |c| c);
    let mut pump = Pump::new();
    // Drive the primary alone: propose, then feed SUPPORT shares by hand.
    pump.crash(1);
    pump.crash(2);
    pump.crash(3);
    pump.inject(
        0,
        NodeId::Client(ClientId(0)),
        ProtocolMsg::Request(request(&km, CryptoMode::None, 0, "a")),
    );
    pump.run(&mut replicas);
    assert_eq!(replicas[0].commit_frontier(), SeqNum(0), "no quorum yet");

    let batch_digest = replicas[0].ledger().genesis_hash(); // placeholder, not used
    let _ = batch_digest;
    let h = {
        // Reconstruct h for the proposed batch.
        let batch = poe_kernel::request::Batch::new(vec![request(&km, CryptoMode::None, 0, "a")]);
        support_digest(View(0), SeqNum(0), &batch.digest)
    };
    let share1 = {
        let signer = km.replica(1);
        signer.ts_share(h.as_bytes())
    };
    // The same share twice: still only 2 distinct supporters (primary +
    // R1), below nf = 3.
    for _ in 0..2 {
        pump.inject(
            0,
            NodeId::Replica(ReplicaId(1)),
            ProtocolMsg::PoeSupport { view: View(0), seq: SeqNum(0), share: share1.clone() },
        );
    }
    pump.run(&mut replicas);
    assert_eq!(replicas[0].commit_frontier(), SeqNum(0), "duplicate share must not commit");

    // A third distinct supporter tips it over.
    let share2 = km.replica(2).ts_share(h.as_bytes());
    pump.inject(
        0,
        NodeId::Replica(ReplicaId(2)),
        ProtocolMsg::PoeSupport { view: View(0), seq: SeqNum(0), share: share2 },
    );
    pump.run(&mut replicas);
    assert_eq!(replicas[0].commit_frontier(), SeqNum(1));
}

/// Satellite: SUPPORT votes from an abandoned view must not count after
/// the view change (votes straddling a view change).
#[test]
fn support_from_old_view_ignored_after_view_change() {
    let (mut replicas, km) =
        cluster(SupportMode::Mac, CryptoMode::None, CertScheme::MultiSig, |c| c);
    let mut pump = Pump::new();
    // Stage precisely: deliver the PROPOSE to R1 only, so it holds 2 of
    // the 3 required votes (its own + the primary's implicit one) and
    // stays uncommitted while having executed speculatively.
    let batch = poe_kernel::request::Batch::new(vec![request(&km, CryptoMode::None, 0, "a")]);
    let h = support_digest(View(0), SeqNum(0), &batch.digest);
    pump.crash(0);
    pump.crash(2);
    pump.crash(3);
    pump.inject(
        1,
        NodeId::Replica(ReplicaId(0)),
        ProtocolMsg::PoePropose { view: View(0), seq: SeqNum(0), batch: batch.clone() },
    );
    pump.run(&mut replicas);
    assert_eq!(replicas[1].execution_frontier(), SeqNum(1), "speculative execution");
    assert_eq!(replicas[1].commit_frontier(), SeqNum(0), "2 of 3 votes: uncommitted");

    // Now the cluster abandons view 0: R1 receives VC-REQUESTs from R2
    // and R3, joins, and (as primary of view 1) installs the new view.
    pump.crashed.clear();
    pump.crash(0);
    for from in [2u32, 3u32] {
        let mut vc = poe_kernel::messages::PoeVcRequest {
            from: ReplicaId(from),
            view: View(0),
            stable_seq: None,
            entries: vec![],
            signature: poe_crypto::ed25519::Signature::from_bytes([0u8; 64]),
        };
        vc.signature =
            km.replica(from as usize).sign(&poe_kernel::codec::poe_vc_signing_bytes(&vc));
        pump.inject(1, NodeId::Replica(ReplicaId(from)), ProtocolMsg::PoeVcRequest(vc));
    }
    pump.run(&mut replicas);
    assert_eq!(replicas[1].current_view(), View(1));
    assert!(!replicas[1].in_view_change());
    // The uncertified speculative batch was rolled back.
    assert_eq!(replicas[1].execution_frontier(), SeqNum(0));
    assert!(pump
        .notes
        .iter()
        .any(|(r, n)| *r == 1 && matches!(n, Notification::RolledBack { to: None })));

    // Straddling votes: SUPPORTs for view 0 arrive late. They must not
    // resurrect the dead slot.
    for from in [2u32, 3u32] {
        pump.inject(
            1,
            NodeId::Replica(ReplicaId(from)),
            ProtocolMsg::PoeSupportMac { view: View(0), seq: SeqNum(0), digest: h },
        );
    }
    pump.run(&mut replicas);
    assert_eq!(replicas[1].commit_frontier(), SeqNum(0), "old-view votes must not commit");
    assert_eq!(replicas[1].execution_frontier(), SeqNum(0));
}

/// Satellite: checkpoint garbage collection at the low watermark.
#[test]
fn checkpoint_stability_garbage_collects_and_advances_watermark() {
    let (mut replicas, km) =
        cluster(SupportMode::Threshold, CryptoMode::None, CertScheme::Simulated, |c| {
            c.with_checkpoint_interval(2)
        });
    let mut pump = Pump::new();
    for req_id in 0..4 {
        pump.inject(
            0,
            NodeId::Client(ClientId(0)),
            ProtocolMsg::Request(request(&km, CryptoMode::None, req_id, "k")),
        );
    }
    pump.run(&mut replicas);
    for (i, r) in replicas.iter().enumerate() {
        assert_eq!(r.execution_frontier(), SeqNum(4), "replica {i}");
        // Checkpoints at seq 1 and seq 3 both stabilized.
        assert_eq!(r.stable_seq(), Some(SeqNum(3)), "replica {i}");
        // Undo logs and consensus slots at or below the checkpoint are
        // gone; the watermark window starts above it.
        assert_eq!(r.live_slots(), 0, "replica {i}");
        assert_eq!(r.watermarks().low(), SeqNum(4), "replica {i}");
    }
    let stable_notes = pump
        .notes
        .iter()
        .filter(|(_, n)| matches!(n, Notification::CheckpointStable { seq: SeqNum(3) }))
        .count();
    assert_eq!(stable_notes, N);
    // The ledger still holds the full history (GC only drops undo state).
    assert_eq!(replicas[0].ledger().len(), 4);
    assert_converged(&replicas, &BTreeSet::new());
}

/// Primary crash: backups time out, view-change, and the committed
/// prefix survives while the uncertified speculative suffix rolls back.
#[test]
fn primary_crash_triggers_view_change_and_rollback() {
    let (mut replicas, km) =
        cluster(SupportMode::Threshold, CryptoMode::None, CertScheme::MultiSig, |c| c);
    let mut pump = Pump::new();
    let client = NodeId::Client(ClientId(0));
    // Request 0 commits everywhere.
    pump.inject(0, client, ProtocolMsg::Request(request(&km, CryptoMode::None, 0, "a")));
    pump.run(&mut replicas);
    for r in &replicas {
        assert_eq!(r.commit_frontier(), SeqNum(1));
    }

    // Request 1: the PROPOSE goes out, backups execute speculatively,
    // and then the primary crashes before certifying.
    let req1 = request(&km, CryptoMode::None, 1, "b");
    let batch1 = poe_kernel::request::Batch::new(vec![req1.clone()]);
    for to in 1..N {
        pump.inject(
            to,
            NodeId::Replica(ReplicaId(0)),
            ProtocolMsg::PoePropose { view: View(0), seq: SeqNum(1), batch: batch1.clone() },
        );
    }
    pump.crash(0);
    pump.run(&mut replicas);
    for (i, r) in replicas.iter().enumerate().skip(1) {
        assert_eq!(r.execution_frontier(), SeqNum(2), "speculative at {i}");
        assert_eq!(r.commit_frontier(), SeqNum(1), "uncertified at {i}");
    }

    // The slot-progress detectors fire; the view change runs among the
    // three live replicas (nf = 3 exactly).
    pump.fire_timers(&mut replicas, |k| matches!(k, TimerKind::SlotProgress(_)));
    let live: Vec<usize> = (1..N).collect();
    for &i in &live {
        assert_eq!(replicas[i].current_view(), View(1), "replica {i}");
        assert!(!replicas[i].in_view_change(), "replica {i}");
        assert_eq!(replicas[i].execution_frontier(), SeqNum(1), "rolled back at {i}");
    }
    assert!(pump
        .notes
        .iter()
        .any(|(_, n)| matches!(n, Notification::RolledBack { to: Some(SeqNum(0)) })));
    let vc_notes = pump
        .notes
        .iter()
        .filter(|(r, n)| *r != 0 && matches!(n, Notification::ViewChanged { view: View(1) }))
        .count();
    assert_eq!(vc_notes, 3);

    // The client retransmits request 1; the new primary (R1) re-proposes
    // and it commits under the new view.
    for to in 1..N {
        pump.inject(to, client, ProtocolMsg::RequestBroadcast(req1.clone()));
    }
    pump.run(&mut replicas);
    for &i in &live {
        assert_eq!(replicas[i].commit_frontier(), SeqNum(2), "replica {i}");
        assert_eq!(replicas[i].ledger().len(), 2, "replica {i}");
    }
    let crashed: BTreeSet<usize> = [0usize].into_iter().collect();
    assert_converged(&replicas, &crashed);
    // The client eventually hears nf INFORMs for the retried request.
    let informs = pump.replies.iter().filter(|(_, r)| r.req_id == 1 && r.seq == SeqNum(1)).count();
    assert!(informs >= 3, "got {informs} INFORMs");
}

/// A committed-but-only-at-one-replica entry survives the view change in
/// TS mode: the single certificate in one VC-REQUEST is proof enough.
#[test]
fn committed_entry_survives_view_change_from_single_certificate() {
    let (mut replicas, km) =
        cluster(SupportMode::Threshold, CryptoMode::None, CertScheme::MultiSig, |c| c);
    let mut pump = Pump::new();
    let client = NodeId::Client(ClientId(0));
    pump.inject(0, client, ProtocolMsg::Request(request(&km, CryptoMode::None, 0, "a")));
    pump.run(&mut replicas);

    // Fresh staging: R1 committed seq 1, R2/R3 never saw it.
    let req1 = request(&km, CryptoMode::None, 1, "b");
    let batch1 = poe_kernel::request::Batch::new(vec![req1.clone()]);
    let h1 = support_digest(View(0), SeqNum(1), &batch1.digest);
    let cert = {
        let shares: Vec<_> = (0..3).map(|i| km.replica(i).ts_share(h1.as_bytes())).collect();
        km.replica(0).ts_aggregate(h1.as_bytes(), &shares).expect("aggregate")
    };
    pump.inject(
        1,
        NodeId::Replica(ReplicaId(0)),
        ProtocolMsg::PoePropose { view: View(0), seq: SeqNum(1), batch: batch1.clone() },
    );
    pump.inject(
        1,
        NodeId::Replica(ReplicaId(0)),
        ProtocolMsg::PoeCertify { view: View(0), seq: SeqNum(1), cert },
    );
    pump.crash(0);
    pump.run(&mut replicas);
    assert_eq!(replicas[1].commit_frontier(), SeqNum(2));
    assert_eq!(replicas[2].commit_frontier(), SeqNum(1));

    // View change: R1's VC-REQUEST carries the certificate, so the new
    // history includes seq 1 and R2/R3 adopt (and execute) it.
    pump.fire_timers(&mut replicas, |k| matches!(k, TimerKind::SlotProgress(_)));
    // R1 committed everything it knows — its progress timers are gone;
    // R2/R3 had no slot for seq 1. Kick the view change via a client
    // retransmission timing out at R2/R3 instead.
    for to in 2..N {
        pump.inject(to, client, ProtocolMsg::RequestBroadcast(req1.clone()));
    }
    pump.run(&mut replicas);
    pump.fire_timers(&mut replicas, |k| matches!(k, TimerKind::RequestProgress(_)));
    let crashed: BTreeSet<usize> = [0usize].into_iter().collect();
    for (i, r) in replicas.iter().enumerate().skip(1) {
        assert_eq!(r.current_view(), View(1), "replica {i}");
        assert_eq!(r.commit_frontier(), SeqNum(2), "replica {i}");
        assert_eq!(r.execution_frontier(), SeqNum(2), "replica {i}");
    }
    assert_converged(&replicas, &crashed);
}

/// Satellite: a replica behind the cluster's stable checkpoint adopts
/// the new view but surfaces a `FellBehind` notification (instead of
/// silently bailing) so runtimes can log/expose the lag until state
/// transfer lands.
#[test]
fn behind_stable_checkpoint_surfaces_fell_behind() {
    let (mut replicas, km) =
        cluster(SupportMode::Threshold, CryptoMode::None, CertScheme::MultiSig, |c| c);
    let mut pump = Pump::new();
    // nf = 3 VC-REQUESTs, all claiming a stable checkpoint at seq 7 that
    // replica 3 has never executed through; the entries list is empty,
    // so the missing history cannot be rebuilt from the requests.
    let requests: Vec<PoeVcRequest> = (0..3u32)
        .map(|i| {
            let mut vc = PoeVcRequest {
                from: ReplicaId(i),
                view: View(0),
                stable_seq: Some(SeqNum(7)),
                entries: Vec::new(),
                signature: Signature::from_bytes([0u8; 64]),
            };
            vc.signature = km.replica(i as usize).sign(&poe_vc_signing_bytes(&vc));
            vc
        })
        .collect();
    pump.inject(
        3,
        NodeId::Replica(ReplicaId(1)),
        ProtocolMsg::PoeNvPropose { new_view: View(1), requests },
    );
    pump.run(&mut replicas);
    // The view is adopted (the replica stays live for forwarding) …
    assert_eq!(replicas[3].current_view(), View(1));
    assert_eq!(replicas[3].execution_frontier(), SeqNum(0), "state kept, no fake catch-up");
    // … and the lag is surfaced with the exact frontiers.
    assert!(
        pump.notes.iter().any(|(r, n)| *r == 3
            && matches!(
                n,
                Notification::FellBehind {
                    stable: SeqNum(7),
                    exec_frontier: SeqNum(0),
                    ledger_frontier: SeqNum(0),
                }
            )),
        "expected a FellBehind notification, got {:?}",
        pump.notes
    );
}

/// Fabric hook: a batch pre-cut by the runtime's batching stage is
/// proposed as-is by the primary, deduplicated against the reply cache
/// on retransmission, and unbundled through the forward path on a
/// non-primary.
#[test]
fn local_batch_fast_path_and_fallbacks() {
    let (mut replicas, km) =
        cluster(SupportMode::Threshold, CryptoMode::None, CertScheme::MultiSig, |c| c);
    let mut pump = Pump::new();
    let req = request(&km, CryptoMode::None, 0, "a");
    let batch = poe_kernel::request::Batch::new(vec![req.clone()]);

    // Primary fast path: the pre-cut batch goes straight into PROPOSE.
    let mut out = Outbox::new();
    replicas[0].on_local_batch(batch.clone(), &mut out);
    assert!(
        out.actions().iter().any(|a| matches!(
            a,
            Action::Broadcast { msg: ProtocolMsg::PoePropose { seq: SeqNum(0), .. } }
        )),
        "primary must propose the pre-cut batch"
    );
    pump.collect(0, &mut out);
    pump.run(&mut replicas);
    for (i, r) in replicas.iter().enumerate() {
        assert_eq!(r.commit_frontier(), SeqNum(1), "replica {i}");
        assert_eq!(r.execution_frontier(), SeqNum(1), "replica {i}");
    }

    // Retransmission burst: re-offering the executed batch must not
    // re-propose — it answers from the reply cache instead.
    let before = pump.replies.len();
    let mut out = Outbox::new();
    replicas[0].on_local_batch(batch, &mut out);
    assert!(
        !out.actions().iter().any(|a| matches!(a, Action::Broadcast { .. })),
        "duplicate batch must not be re-proposed"
    );
    pump.collect(0, &mut out);
    assert_eq!(pump.replies.len(), before + 1, "re-INFORM from the reply cache");

    // Non-primary: the batch unbundles into forwards + progress timers.
    let other = poe_kernel::request::Batch::new(vec![request(&km, CryptoMode::None, 1, "b")]);
    let mut out = Outbox::new();
    replicas[2].on_local_batch(other, &mut out);
    assert!(out.actions().iter().any(|a| matches!(
        a,
        Action::Send { to: NodeId::Replica(ReplicaId(0)), msg: ProtocolMsg::Forward(_) }
    )));
    assert!(out
        .actions()
        .iter()
        .any(|a| matches!(a, Action::SetTimer { kind: TimerKind::RequestProgress(_), .. })));
}

/// Fabric hook: checkpoint GC retires the dead slots' batches into a
/// buffer the runtime drains to recycle decode containers (the point
/// where batches actually die — see `take_retired_batches`).
#[test]
fn checkpoint_gc_retires_batches_for_runtime_recycling() {
    let (mut replicas, km) =
        cluster(SupportMode::Threshold, CryptoMode::None, CertScheme::Simulated, |c| {
            c.with_checkpoint_interval(2)
        });
    let mut pump = Pump::new();
    for req_id in 0..4 {
        pump.inject(
            0,
            NodeId::Client(ClientId(0)),
            ProtocolMsg::Request(request(&km, CryptoMode::None, req_id, "k")),
        );
    }
    pump.run(&mut replicas);
    for (i, r) in replicas.iter_mut().enumerate() {
        assert_eq!(r.live_slots(), 0, "replica {i}: all slots GC'd");
        let retired = r.take_retired_batches();
        assert_eq!(retired.len(), 4, "replica {i}: every GC'd slot retires its batch");
        assert!(r.take_retired_batches().is_empty(), "replica {i}: buffer drained");
    }
}

/// A client-retry storm can put several copies of one request into the
/// same batching-stage cut window; the local-batch fast path must not
/// propose (and execute) the duplicate copies.
#[test]
fn local_batch_with_intra_batch_duplicates_executes_once() {
    let (mut replicas, km) =
        cluster(SupportMode::Threshold, CryptoMode::None, CertScheme::MultiSig, |c| c);
    let mut pump = Pump::new();
    let req = request(&km, CryptoMode::None, 0, "a");
    let dup = poe_kernel::request::Batch::new(vec![req.clone(), req.clone(), req]);
    let mut out = Outbox::new();
    replicas[0].on_local_batch(dup, &mut out);
    // Exactly one single-request proposal (batch size 1 in this helper):
    // the duplicates fall back to the per-request path and are dropped
    // by the proposed-set dedup.
    let proposed: Vec<usize> = out
        .actions()
        .iter()
        .filter_map(|a| match a {
            Action::Broadcast { msg: ProtocolMsg::PoePropose { batch, .. } } => Some(batch.len()),
            _ => None,
        })
        .collect();
    assert_eq!(proposed, vec![1], "duplicates must not be proposed");
    pump.collect(0, &mut out);
    pump.run(&mut replicas);
    for (i, r) in replicas.iter().enumerate() {
        assert_eq!(r.execution_frontier(), SeqNum(1), "exactly-once at replica {i}");
    }
    assert_converged(&replicas, &BTreeSet::new());
}

/// State transfer: the lag detector (`f + 1` peer checkpoint votes two
/// full intervals past our frontier) starts a repair, but the repair
/// acts only on `f + 1` *matching* manifests — a single (possibly
/// lying) responder cannot steer the fetch. Once the quorum lands, the
/// fetch → install → tail pipeline converges the straggler.
#[test]
fn repair_requires_manifest_quorum_then_converges() {
    let (mut replicas, km) =
        cluster(SupportMode::Threshold, CryptoMode::None, CertScheme::Simulated, |c| {
            c.with_checkpoint_interval(2)
        });
    let mut pump = Pump::new();
    // R3 is down; the remaining nf = 3 replicas commit six requests and
    // stabilize checkpoints at seqs 1, 3, and 5.
    pump.crash(3);
    for req_id in 0..6 {
        pump.inject(
            0,
            NodeId::Client(ClientId(0)),
            ProtocolMsg::Request(request(&km, CryptoMode::None, req_id, "k")),
        );
    }
    pump.run(&mut replicas);
    assert_eq!(replicas[0].stable_seq(), Some(SeqNum(5)));
    assert_eq!(replicas[3].execution_frontier(), SeqNum(0));

    // R3 comes back and hears two peers' checkpoint votes at seq 5 —
    // two full intervals past its frontier: the lag detector fires and
    // broadcasts a manifest probe.
    pump.crashed.remove(&3);
    let state_digest = replicas[0].state_digest();
    for from in [0u32, 1] {
        let mut out = Outbox::new();
        replicas[3].on_event(
            Time::ZERO,
            Event::Deliver {
                from: NodeId::Replica(ReplicaId(from)),
                msg: ProtocolMsg::Checkpoint { seq: SeqNum(5), state_digest },
            },
            &mut out,
        );
        pump.collect(3, &mut out);
    }
    assert!(replicas[3].repairing(), "lag detector must start a repair");
    let probes: Vec<_> = pump.queue.drain(..).collect();
    assert!(
        !probes.is_empty()
            && probes.iter().all(|(_, _, m)| matches!(
                m,
                ProtocolMsg::StateRequest(StateRequestKind::Manifest)
            )),
        "the probe phase sends manifest requests and nothing else: {probes:?}"
    );

    // One manifest alone must not start the fetch.
    let from3 = NodeId::Replica(ReplicaId(3));
    let mut out = Outbox::new();
    replicas[0].on_event(
        Time::ZERO,
        Event::Deliver { from: from3, msg: ProtocolMsg::StateRequest(StateRequestKind::Manifest) },
        &mut out,
    );
    pump.collect(0, &mut out);
    pump.run(&mut replicas);
    assert!(replicas[3].repairing(), "still probing after one manifest");
    assert_eq!(
        replicas[3].repair_stats().chunks_fetched,
        0,
        "a single manifest must not trigger the fetch"
    );

    // The second matching manifest completes the quorum; fetch, install,
    // and tail replay run to completion and the straggler converges.
    let mut out = Outbox::new();
    replicas[1].on_event(
        Time::ZERO,
        Event::Deliver { from: from3, msg: ProtocolMsg::StateRequest(StateRequestKind::Manifest) },
        &mut out,
    );
    pump.collect(1, &mut out);
    pump.run(&mut replicas);
    assert!(!replicas[3].repairing(), "repair completed");
    let stats = replicas[3].repair_stats();
    assert_eq!(stats.repairs_completed, 1);
    assert!(stats.chunks_fetched >= 1, "the image moved in chunks");
    assert_eq!(replicas[3].stable_seq(), Some(SeqNum(5)));
    assert_eq!(replicas[3].execution_frontier(), SeqNum(6));
    assert!(
        pump.notes
            .iter()
            .any(|(r, n)| *r == 3 && matches!(n, Notification::CaughtUp { stable: SeqNum(5), .. })),
        "CaughtUp surfaces the completion: {:?}",
        pump.notes
    );
    assert_converged(&replicas, &BTreeSet::new());
}

/// Responder-side rate limiting: the per-checkpoint token budget caps
/// manifest + chunk serving, overflow requests are dropped (counted,
/// never answered), and the next stable checkpoint refills the bucket.
#[test]
fn repair_serving_budget_throttles_and_refills() {
    let (mut replicas, km) =
        cluster(SupportMode::Threshold, CryptoMode::None, CertScheme::Simulated, |c| {
            c.with_checkpoint_interval(2).with_repair_budget_chunks(2).with_repair_chunk_bytes(64)
        });
    let mut pump = Pump::new();
    for req_id in 0..2 {
        pump.inject(
            0,
            NodeId::Client(ClientId(0)),
            ProtocolMsg::Request(request(&km, CryptoMode::None, req_id, "k")),
        );
    }
    pump.run(&mut replicas);
    assert_eq!(replicas[0].stable_seq(), Some(SeqNum(1)));

    // A lagging peer asks for the manifest and then three chunks. The
    // budget is two tokens: manifest + first chunk are served, the rest
    // are dropped and counted.
    let from3 = NodeId::Replica(ReplicaId(3));
    let deliver = |replicas: &mut Vec<PoeReplica>, pump: &mut Pump, kind: StateRequestKind| {
        let mut out = Outbox::new();
        replicas[0].on_event(
            Time::ZERO,
            Event::Deliver { from: from3, msg: ProtocolMsg::StateRequest(kind) },
            &mut out,
        );
        pump.collect(0, &mut out);
    };
    deliver(&mut replicas, &mut pump, StateRequestKind::Manifest);
    for chunk in 0..3 {
        deliver(&mut replicas, &mut pump, StateRequestKind::Chunk { stable: SeqNum(1), chunk });
    }
    let stats = replicas[0].repair_stats();
    assert_eq!(stats.manifests_served, 1);
    assert_eq!(stats.chunks_served, 1, "two tokens: one manifest + one chunk");
    assert_eq!(stats.throttled, 2, "overflow requests are dropped, not served");
    // Drop the queued replies: no repair is in progress at R3.
    pump.queue.clear();

    // The next stable checkpoint refills the bucket and serving resumes
    // (the rate limit is per checkpoint interval, not a lifetime cap).
    for req_id in 2..4 {
        pump.inject(
            0,
            NodeId::Client(ClientId(0)),
            ProtocolMsg::Request(request(&km, CryptoMode::None, req_id, "k")),
        );
    }
    pump.run(&mut replicas);
    assert_eq!(replicas[0].stable_seq(), Some(SeqNum(3)));
    deliver(&mut replicas, &mut pump, StateRequestKind::Chunk { stable: SeqNum(3), chunk: 0 });
    let stats = replicas[0].repair_stats();
    assert_eq!(stats.chunks_served, 2, "a fresh checkpoint refills the budget");
    assert_eq!(stats.throttled, 2, "no new drops after the refill");
    pump.queue.clear();
}
