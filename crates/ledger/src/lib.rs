//! # poe-ledger
//!
//! The blockchain ledger substrate of paper §III-A ("Ledger Management").
//!
//! A blockchain is an immutable ledger where blocks are chained as a
//! linked list: block `Bᵢ = {k, d, v, H(Bᵢ₋₁)}` holds the sequence number,
//! the batch digest, the view, and the hash of the previous block. The
//! genesis block is derived from the identity of the initial primary —
//! information every replica already has, so no communication is needed.
//!
//! Instead of (or in addition to) hashing the previous block, the paper
//! suggests storing the *proof of acceptance* — for PoE, the threshold
//! certificate from the CERTIFY message — in each block; [`BlockProof`]
//! supports both styles.
//!
//! Because PoE executes speculatively, a ledger suffix may have to be
//! discarded during a view change; [`Ledger::truncate_above`] mirrors the
//! store's rollback.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use poe_crypto::digest::{digest_concat, Digest};
use poe_crypto::ed25519::VerifyingKey;
use poe_crypto::threshold::ThresholdCert;
use poe_kernel::ids::{ReplicaId, SeqNum, View};
use std::fmt;

/// The consensus proof stored in a block.
#[derive(Clone, PartialEq, Debug)]
pub enum BlockProof {
    /// The genesis block needs no proof.
    Genesis,
    /// PoE/SBFT/HotStuff: the aggregated threshold certificate.
    Certificate(ThresholdCert),
    /// PBFT/Zyzzyva: the committee of replicas whose matching votes
    /// committed the block (MAC-authenticated protocols have no compact
    /// transferable certificate).
    Committee(Vec<ReplicaId>),
    /// The per-slot acceptance proof never completed locally — e.g. the
    /// watermark advanced past the slot and discarded its late SUPPORT
    /// votes. The commit is subsumed by the stable checkpoint at this
    /// sequence number: its `2f + 1` matching state votes (the local
    /// replica's own among them) attest to every batch up to and
    /// including this block.
    Checkpoint(SeqNum),
    /// The block was installed by state transfer from a checkpoint image
    /// vouched for by `f + 1` distinct peers; the original acceptance
    /// proof was garbage-collected with the serving replica's slots.
    /// Convergence audits compare [`Ledger::history_digest`], which is
    /// proof-independent, so repaired and original chains agree.
    Repaired,
}

impl BlockProof {
    fn digest_bytes(&self) -> Vec<u8> {
        match self {
            BlockProof::Genesis => b"genesis".to_vec(),
            BlockProof::Certificate(cert) => {
                let mut buf = Vec::with_capacity(cert.encoded_len());
                cert.encode(&mut buf);
                buf
            }
            BlockProof::Committee(ids) => ids.iter().flat_map(|r| r.0.to_le_bytes()).collect(),
            BlockProof::Checkpoint(seq) => {
                let mut buf = b"checkpoint".to_vec();
                buf.extend(seq.0.to_le_bytes());
                buf
            }
            BlockProof::Repaired => b"repaired".to_vec(),
        }
    }
}

/// One block in the chain.
#[derive(Clone, PartialEq, Debug)]
pub struct Block {
    /// Sequence number `k` of the batch this block commits.
    pub seq: SeqNum,
    /// Digest `d` of the batch.
    pub batch_digest: Digest,
    /// View `v` under which it was certified.
    pub view: View,
    /// Hash of the previous block, `H(Bᵢ₋₁)`.
    pub prev_hash: Digest,
    /// Proof of acceptance.
    pub proof: BlockProof,
}

impl Block {
    /// The hash of this block.
    pub fn hash(&self) -> Digest {
        digest_concat(&[
            &self.seq.0.to_le_bytes(),
            self.batch_digest.as_bytes(),
            &self.view.0.to_le_bytes(),
            self.prev_hash.as_bytes(),
            &self.proof.digest_bytes(),
        ])
    }
}

/// Errors from [`Ledger::verify_chain`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChainError {
    /// A block's `prev_hash` does not match its predecessor.
    BrokenLink {
        /// Index of the offending block.
        at: usize,
    },
    /// Sequence numbers are not consecutive.
    NonConsecutive {
        /// Index of the offending block.
        at: usize,
    },
    /// The first block is not a genesis block.
    MissingGenesis,
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::BrokenLink { at } => write!(f, "broken hash link at block {at}"),
            ChainError::NonConsecutive { at } => {
                write!(f, "non-consecutive sequence number at block {at}")
            }
            ChainError::MissingGenesis => write!(f, "chain does not start with genesis"),
        }
    }
}

impl std::error::Error for ChainError {}

/// An append-only (but speculatively truncatable) block chain.
#[derive(Clone, Debug)]
pub struct Ledger {
    genesis_hash: Digest,
    blocks: Vec<Block>,
}

impl Ledger {
    /// Creates a ledger whose genesis block is derived from the initial
    /// primary's public identity (paper §III-A: "we use the hash of the
    /// identity of the initial primary").
    pub fn new(initial_primary: ReplicaId, primary_key: &VerifyingKey) -> Ledger {
        let genesis_hash = digest_concat(&[
            b"poe-genesis",
            &initial_primary.0.to_le_bytes(),
            primary_key.as_bytes(),
        ]);
        Ledger { genesis_hash, blocks: Vec::new() }
    }

    /// The genesis hash (acts as `H(B₋₁)` for the first real block).
    pub fn genesis_hash(&self) -> Digest {
        self.genesis_hash
    }

    /// Hash of the newest block (genesis hash when empty).
    pub fn head_hash(&self) -> Digest {
        self.blocks.last().map(Block::hash).unwrap_or(self.genesis_hash)
    }

    /// Sequence number of the newest block.
    pub fn head_seq(&self) -> Option<SeqNum> {
        self.blocks.last().map(|b| b.seq)
    }

    /// Number of blocks (excluding genesis).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when only the genesis exists.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Appends the next block. The caller provides consensus results; the
    /// ledger enforces chain discipline (consecutive sequence numbers).
    ///
    /// # Panics
    /// Panics if `seq` is not exactly one past the head (blocks are only
    /// created by the execute stage, which runs in order).
    pub fn append(&mut self, seq: SeqNum, view: View, batch_digest: Digest, proof: BlockProof) {
        let expected = self.blocks.last().map(|b| b.seq.next()).unwrap_or(SeqNum::ZERO);
        assert_eq!(seq, expected, "ledger appends must be consecutive");
        let prev_hash = self.head_hash();
        self.blocks.push(Block { seq, batch_digest, view, prev_hash, proof });
    }

    /// Removes every block with sequence number above `keep_up_to`
    /// (`None` removes all): the ledger counterpart of speculative
    /// rollback.
    pub fn truncate_above(&mut self, keep_up_to: Option<SeqNum>) {
        match keep_up_to {
            Some(seq) => self.blocks.retain(|b| b.seq <= seq),
            None => self.blocks.clear(),
        }
    }

    /// The block at sequence number `seq`, if present.
    pub fn block_at(&self, seq: SeqNum) -> Option<&Block> {
        let idx = seq.0 as usize;
        self.blocks.get(idx).filter(|b| b.seq == seq)
    }

    /// Iterates the chain oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// Digest of the committed *history*: a fold over each block's
    /// `(seq, view, batch_digest)`, excluding acceptance proofs.
    ///
    /// [`Ledger::head_hash`] covers proofs, which are only canonical in
    /// certificate-carrying protocols (PoE-TS, SBFT, HotStuff). In MAC
    /// mode every replica commits on its *own* `nf` matching SUPPORT
    /// votes, so the recorded committee — and hence the block hash — can
    /// legitimately differ across replicas that agree on the history.
    /// Convergence audits therefore compare this digest instead.
    pub fn history_digest(&self) -> Digest {
        let mut acc = self.genesis_hash;
        for b in &self.blocks {
            acc = digest_concat(&[
                acc.as_bytes(),
                &b.seq.0.to_le_bytes(),
                &b.view.0.to_le_bytes(),
                b.batch_digest.as_bytes(),
            ]);
        }
        acc
    }

    /// [`Ledger::history_digest`] restricted to blocks with sequence
    /// numbers at or below `up_to`: what a replica whose chain ends at
    /// `up_to` would report. Repair manifests advertise this for the
    /// offered checkpoint so a requester can verify its installed prefix.
    pub fn history_digest_up_to(&self, up_to: SeqNum) -> Digest {
        let mut acc = self.genesis_hash;
        for b in self.blocks.iter().take_while(|b| b.seq <= up_to) {
            acc = digest_concat(&[
                acc.as_bytes(),
                &b.seq.0.to_le_bytes(),
                &b.view.0.to_le_bytes(),
                b.batch_digest.as_bytes(),
            ]);
        }
        acc
    }

    /// Audits the whole chain: hash links, consecutive sequence numbers.
    pub fn verify_chain(&self) -> Result<(), ChainError> {
        let mut prev_hash = self.genesis_hash;
        for (i, block) in self.blocks.iter().enumerate() {
            if block.prev_hash != prev_hash {
                return Err(ChainError::BrokenLink { at: i });
            }
            if block.seq.0 != i as u64 {
                return Err(ChainError::NonConsecutive { at: i });
            }
            prev_hash = block.hash();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_crypto::ed25519::SigningKey;

    fn ledger() -> Ledger {
        let key = SigningKey::from_label(b"replica-0").verifying_key();
        Ledger::new(ReplicaId(0), &key)
    }

    fn d(s: &str) -> Digest {
        Digest::of(s.as_bytes())
    }

    #[test]
    fn genesis_is_deterministic_and_identity_bound() {
        let k0 = SigningKey::from_label(b"replica-0").verifying_key();
        let k1 = SigningKey::from_label(b"replica-1").verifying_key();
        let a = Ledger::new(ReplicaId(0), &k0);
        let b = Ledger::new(ReplicaId(0), &k0);
        let c = Ledger::new(ReplicaId(1), &k1);
        assert_eq!(a.genesis_hash(), b.genesis_hash());
        assert_ne!(a.genesis_hash(), c.genesis_hash());
    }

    #[test]
    fn append_links_blocks() {
        let mut l = ledger();
        assert!(l.is_empty());
        l.append(SeqNum(0), View(0), d("b0"), BlockProof::Genesis);
        l.append(SeqNum(1), View(0), d("b1"), BlockProof::Committee(vec![ReplicaId(0)]));
        l.append(SeqNum(2), View(1), d("b2"), BlockProof::Genesis);
        assert_eq!(l.len(), 3);
        assert_eq!(l.head_seq(), Some(SeqNum(2)));
        l.verify_chain().expect("valid chain");
        // Each block's prev_hash is its predecessor's hash.
        let blocks: Vec<_> = l.iter().collect();
        assert_eq!(blocks[1].prev_hash, blocks[0].hash());
        assert_eq!(blocks[2].prev_hash, blocks[1].hash());
    }

    #[test]
    #[should_panic(expected = "consecutive")]
    fn gap_rejected() {
        let mut l = ledger();
        l.append(SeqNum(1), View(0), d("x"), BlockProof::Genesis);
    }

    #[test]
    fn tampering_detected() {
        let mut l = ledger();
        l.append(SeqNum(0), View(0), d("b0"), BlockProof::Genesis);
        l.append(SeqNum(1), View(0), d("b1"), BlockProof::Genesis);
        // Tamper with block 0's payload.
        l.blocks[0].batch_digest = d("evil");
        assert_eq!(l.verify_chain(), Err(ChainError::BrokenLink { at: 1 }));
    }

    #[test]
    fn broken_first_link_detected() {
        let mut l = ledger();
        l.append(SeqNum(0), View(0), d("b0"), BlockProof::Genesis);
        l.blocks[0].prev_hash = d("wrong");
        assert_eq!(l.verify_chain(), Err(ChainError::BrokenLink { at: 0 }));
    }

    #[test]
    fn truncate_above_rolls_back() {
        let mut l = ledger();
        for k in 0..5u64 {
            l.append(SeqNum(k), View(0), d(&format!("b{k}")), BlockProof::Genesis);
        }
        l.truncate_above(Some(SeqNum(2)));
        assert_eq!(l.len(), 3);
        assert_eq!(l.head_seq(), Some(SeqNum(2)));
        l.verify_chain().expect("still valid");
        // Can re-append after truncation.
        l.append(SeqNum(3), View(1), d("b3'"), BlockProof::Genesis);
        l.verify_chain().expect("valid after re-append");
        l.truncate_above(None);
        assert!(l.is_empty());
        assert_eq!(l.head_hash(), l.genesis_hash());
    }

    #[test]
    fn history_digest_ignores_proofs_but_not_history() {
        let mut a = ledger();
        let mut b = ledger();
        a.append(SeqNum(0), View(0), d("b0"), BlockProof::Committee(vec![ReplicaId(0)]));
        b.append(SeqNum(0), View(0), d("b0"), BlockProof::Committee(vec![ReplicaId(1)]));
        // Same history, different local acceptance evidence.
        assert_ne!(a.head_hash(), b.head_hash());
        assert_eq!(a.history_digest(), b.history_digest());
        // Different history diverges.
        a.append(SeqNum(1), View(0), d("b1"), BlockProof::Genesis);
        b.append(SeqNum(1), View(0), d("b1'"), BlockProof::Genesis);
        assert_ne!(a.history_digest(), b.history_digest());
    }

    #[test]
    fn history_digest_up_to_matches_truncated_chain() {
        let mut l = ledger();
        for k in 0..5u64 {
            l.append(SeqNum(k), View(0), d(&format!("b{k}")), BlockProof::Genesis);
        }
        let mut prefix = ledger();
        for k in 0..3u64 {
            prefix.append(SeqNum(k), View(0), d(&format!("b{k}")), BlockProof::Repaired);
        }
        // A chain rebuilt from a repaired prefix agrees digest-for-digest
        // with the original through the checkpoint, proofs regardless.
        assert_eq!(l.history_digest_up_to(SeqNum(2)), prefix.history_digest());
        assert_eq!(l.history_digest_up_to(SeqNum(4)), l.history_digest());
        prefix.verify_chain().expect("repaired prefix is a valid chain");
    }

    #[test]
    fn block_at_lookup() {
        let mut l = ledger();
        l.append(SeqNum(0), View(0), d("b0"), BlockProof::Genesis);
        l.append(SeqNum(1), View(0), d("b1"), BlockProof::Genesis);
        assert_eq!(l.block_at(SeqNum(1)).unwrap().batch_digest, d("b1"));
        assert!(l.block_at(SeqNum(9)).is_none());
    }

    #[test]
    fn proof_variants_change_hash() {
        let base = Block {
            seq: SeqNum(0),
            batch_digest: d("b"),
            view: View(0),
            prev_hash: d("p"),
            proof: BlockProof::Genesis,
        };
        let mut committee = base.clone();
        committee.proof = BlockProof::Committee(vec![ReplicaId(0), ReplicaId(1)]);
        assert_ne!(base.hash(), committee.hash());
    }
}
