//! Proves the codec hot-path allocation claims with a counting global
//! allocator: decoding allocates only the *output* structures (zero heap
//! traffic for fixed-size messages), and a warmed [`ScratchPool`] encode
//! allocates nothing at all.
//!
//! The library crates forbid `unsafe`; this integration test is its own
//! crate, and the `GlobalAlloc` impl below is the standard counting
//! wrapper around the system allocator.

use poe_crypto::digest::Digest;
use poe_crypto::{CertScheme, CryptoMode, KeyMaterial};
use poe_kernel::codec::{decode_envelope, decode_msg, encode_envelope, encode_msg, ScratchPool};
use poe_kernel::ids::{ClientId, NodeId, ReplicaId, SeqNum, View};
use poe_kernel::messages::{Envelope, ProtocolMsg};
use poe_kernel::request::{Batch, ClientRequest};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static ALLOC_EVENTS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Minimum allocation count of `f` across a few runs (the minimum
/// filters out one-off interference from the test harness).
fn min_allocs(mut f: impl FnMut()) -> usize {
    (0..5)
        .map(|_| {
            let before = ALLOC_EVENTS.load(Ordering::Relaxed);
            f();
            ALLOC_EVENTS.load(Ordering::Relaxed) - before
        })
        .min()
        .expect("non-empty")
}

#[test]
fn decode_and_pooled_encode_allocation_budgets() {
    let km = KeyMaterial::generate(4, 2, 3, CryptoMode::Cmac, CertScheme::MultiSig, 1);

    // --- fixed-size messages decode with ZERO heap allocations -------
    let digest_msgs = vec![
        ProtocolMsg::PoeSupportMac { view: View(1), seq: SeqNum(2), digest: Digest::of(b"d") },
        ProtocolMsg::PbftPrepare { view: View(1), seq: SeqNum(2), digest: Digest::of(b"d") },
        ProtocolMsg::PbftCommit { view: View(1), seq: SeqNum(2), digest: Digest::of(b"d") },
        ProtocolMsg::Checkpoint { seq: SeqNum(9), state_digest: Digest::of(b"s") },
        ProtocolMsg::HsNewView { height: 4, high_qc: None },
        ProtocolMsg::PoeSupport {
            view: View(1),
            seq: SeqNum(2),
            share: km.replica(1).ts_share(b"m"),
        },
    ];
    for msg in &digest_msgs {
        let bytes = encode_msg(msg);
        let allocs = min_allocs(|| {
            let decoded = decode_msg(&bytes).expect("decode");
            std::hint::black_box(&decoded);
        });
        assert_eq!(allocs, 0, "decoding {} allocated", msg.label());
    }

    // --- certificate decode allocates only its two output Vecs -------
    let cert = {
        let providers: Vec<_> = (0..4).map(|i| km.replica(i)).collect();
        let shares: Vec<_> = providers.iter().map(|p| p.ts_share(b"m")).collect();
        providers[0].ts_aggregate(b"m", &shares).expect("aggregate")
    };
    let cert_msg = ProtocolMsg::PoeCertify { view: View(1), seq: SeqNum(2), cert };
    let bytes = encode_msg(&cert_msg);
    let allocs = min_allocs(|| {
        let decoded = decode_msg(&bytes).expect("decode");
        std::hint::black_box(&decoded);
    });
    assert_eq!(allocs, 2, "cert decode should allocate exactly signers + sigs Vecs");

    // --- envelope decode: no allocation beyond the message's own -----
    let env = Envelope {
        from: NodeId::Replica(ReplicaId(3)),
        auth: km.replica(3).authenticate(0, b"body"),
        msg: ProtocolMsg::PbftPrepare { view: View(0), seq: SeqNum(1), digest: Digest::of(b"x") },
    };
    let bytes = encode_envelope(&env);
    let allocs = min_allocs(|| {
        let decoded = decode_envelope(&bytes).expect("decode");
        std::hint::black_box(&decoded);
    });
    assert_eq!(allocs, 0, "fixed-size envelope decode allocated");

    // --- request decode allocates only the op buffer ------------------
    let req_msg = ProtocolMsg::Request(ClientRequest {
        client: ClientId(0),
        req_id: 7,
        op: Arc::new(vec![1, 2, 3, 4]),
        signature: None,
    });
    let bytes = encode_msg(&req_msg);
    let allocs = min_allocs(|| {
        let decoded = decode_msg(&bytes).expect("decode");
        std::hint::black_box(&decoded);
    });
    // One Arc<Vec<u8>> = 2 allocation events (Arc block + Vec data).
    assert!(allocs <= 2, "request decode allocated {allocs} times (expected <= 2)");

    // --- warmed ScratchPool encodes allocate NOTHING -------------------
    let batch_msg = ProtocolMsg::PoePropose {
        view: View(0),
        seq: SeqNum(0),
        batch: Batch::new(vec![ClientRequest {
            client: ClientId(0),
            req_id: 1,
            op: Arc::new(vec![9u8; 100]),
            signature: None,
        }]),
    };
    let mut pool = ScratchPool::new();
    // Warm-up: the first encode may allocate the backing buffer.
    let buf = pool.encode_msg(&batch_msg);
    pool.recycle(buf);
    let allocs = min_allocs(|| {
        let buf = pool.encode_msg(&batch_msg);
        std::hint::black_box(&buf);
        pool.recycle(buf);
    });
    assert_eq!(allocs, 0, "warmed pooled encode allocated");

    let env_allocs = {
        let buf = pool.encode_envelope(&env);
        pool.recycle(buf);
        min_allocs(|| {
            let buf = pool.encode_envelope(&env);
            std::hint::black_box(&buf);
            pool.recycle(buf);
        })
    };
    assert_eq!(env_allocs, 0, "warmed pooled envelope encode allocated");
}
