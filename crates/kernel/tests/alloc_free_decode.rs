//! Proves the codec hot-path allocation claims with a counting global
//! allocator: decoding allocates only the *output* structures (zero heap
//! traffic for fixed-size messages), a warmed [`ScratchPool`] encode
//! allocates nothing at all, and — with [`WireBytes`] payload views plus
//! a warmed [`BatchPool`] — a **full PROPOSE decode, request payloads
//! included, is allocation-free** end-to-end.
//!
//! The library crates forbid `unsafe`; this integration test is its own
//! crate, and the `GlobalAlloc` impl below is the standard counting
//! wrapper around the system allocator.

use poe_crypto::digest::Digest;
use poe_crypto::{CertScheme, CryptoMode, KeyMaterial};
use poe_kernel::codec::{
    decode_envelope, decode_msg, decode_msg_pooled, decode_msg_shared, encode_envelope,
    encode_frame, encode_msg, BatchPool, ScratchPool,
};
use poe_kernel::ids::{ClientId, NodeId, ReplicaId, SeqNum, View};
use poe_kernel::messages::{
    Envelope, ProtocolMsg, RepairManifest, StateChunkPayload, StateRequestKind,
};
use poe_kernel::request::{Batch, ClientRequest};
use poe_kernel::wire::WireBytes;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOC_EVENTS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Minimum allocation count of `f` across a few runs (the minimum
/// filters out one-off interference from the test harness).
fn min_allocs(mut f: impl FnMut()) -> usize {
    (0..5)
        .map(|_| {
            let before = ALLOC_EVENTS.load(Ordering::Relaxed);
            f();
            ALLOC_EVENTS.load(Ordering::Relaxed) - before
        })
        .min()
        .expect("non-empty")
}

#[test]
fn decode_and_pooled_encode_allocation_budgets() {
    let km = KeyMaterial::generate(4, 2, 3, CryptoMode::Cmac, CertScheme::MultiSig, 1);

    // --- fixed-size messages decode with ZERO heap allocations -------
    let digest_msgs = vec![
        ProtocolMsg::PoeSupportMac { view: View(1), seq: SeqNum(2), digest: Digest::of(b"d") },
        ProtocolMsg::PbftPrepare { view: View(1), seq: SeqNum(2), digest: Digest::of(b"d") },
        ProtocolMsg::PbftCommit { view: View(1), seq: SeqNum(2), digest: Digest::of(b"d") },
        ProtocolMsg::Checkpoint { seq: SeqNum(9), state_digest: Digest::of(b"s") },
        ProtocolMsg::HsNewView { height: 4, high_qc: None },
        ProtocolMsg::PoeSupport {
            view: View(1),
            seq: SeqNum(2),
            share: km.replica(1).ts_share(b"m"),
        },
    ];
    for msg in &digest_msgs {
        let bytes = encode_msg(msg);
        let allocs = min_allocs(|| {
            let decoded = decode_msg(&bytes).expect("decode");
            std::hint::black_box(&decoded);
        });
        assert_eq!(allocs, 0, "decoding {} allocated", msg.label());
    }

    // --- certificate decode allocates only its two output Vecs -------
    let cert = {
        let providers: Vec<_> = (0..4).map(|i| km.replica(i)).collect();
        let shares: Vec<_> = providers.iter().map(|p| p.ts_share(b"m")).collect();
        providers[0].ts_aggregate(b"m", &shares).expect("aggregate")
    };
    let cert_msg = ProtocolMsg::PoeCertify { view: View(1), seq: SeqNum(2), cert };
    let bytes = encode_msg(&cert_msg);
    let allocs = min_allocs(|| {
        let decoded = decode_msg(&bytes).expect("decode");
        std::hint::black_box(&decoded);
    });
    assert_eq!(allocs, 2, "cert decode should allocate exactly signers + sigs Vecs");

    // --- envelope decode: no allocation beyond the message's own -----
    let env = Envelope {
        from: NodeId::Replica(ReplicaId(3)),
        auth: km.replica(3).authenticate(0, b"body"),
        msg: ProtocolMsg::PbftPrepare { view: View(0), seq: SeqNum(1), digest: Digest::of(b"x") },
    };
    let bytes = encode_envelope(&env);
    let allocs = min_allocs(|| {
        let decoded = decode_envelope(&bytes).expect("decode");
        std::hint::black_box(&decoded);
    });
    assert_eq!(allocs, 0, "fixed-size envelope decode allocated");

    // --- owned request decode allocates only the op buffer -----------
    let req_msg =
        ProtocolMsg::Request(ClientRequest::new(ClientId(0), 7, vec![1u8, 2, 3, 4], None));
    let bytes = encode_msg(&req_msg);
    let allocs = min_allocs(|| {
        let decoded = decode_msg(&bytes).expect("decode");
        std::hint::black_box(&decoded);
    });
    // One shared buffer (`Arc<[u8]>`) = 1 allocation event.
    assert!(allocs <= 1, "request decode allocated {allocs} times (expected <= 1)");

    // --- shared-mode request decode allocates NOTHING -----------------
    let frame = encode_frame(&req_msg);
    let allocs = min_allocs(|| {
        let decoded = decode_msg_shared(&frame).expect("decode");
        std::hint::black_box(&decoded);
    });
    assert_eq!(allocs, 0, "zero-copy request decode allocated");

    // --- warmed ScratchPool encodes allocate NOTHING -------------------
    let batch_msg = ProtocolMsg::PoePropose {
        view: View(0),
        seq: SeqNum(0),
        batch: Batch::new(vec![ClientRequest::new(ClientId(0), 1, vec![9u8; 100], None)]),
    };
    let mut pool = ScratchPool::new();
    // Warm-up: the first encode may allocate the backing buffer.
    let buf = pool.encode_msg(&batch_msg);
    pool.recycle(buf);
    let allocs = min_allocs(|| {
        let buf = pool.encode_msg(&batch_msg);
        std::hint::black_box(&buf);
        pool.recycle(buf);
    });
    assert_eq!(allocs, 0, "warmed pooled encode allocated");

    let env_allocs = {
        let buf = pool.encode_envelope(&env);
        pool.recycle(buf);
        min_allocs(|| {
            let buf = pool.encode_envelope(&env);
            std::hint::black_box(&buf);
            pool.recycle(buf);
        })
    };
    assert_eq!(env_allocs, 0, "warmed pooled envelope encode allocated");

    // The remaining proofs run inside this single #[test] on purpose:
    // the counting allocator is process-global, and a second test
    // thread would pollute the counters.
    propose_decode_with_payloads_is_allocation_free();
    shared_decode_allocates_only_containers();
    wire_bytes_clone_and_slice_are_allocation_free();
    state_chunk_decode_is_zero_copy_and_lean();
}

/// State-transfer chunks ride the same zero-copy wire path as batches:
/// a shared-frame STATE-CHUNK decode performs ZERO heap allocations and
/// its `data` payload is a view into the receive frame — catch-up
/// traffic never memcpys checkpoint images on the consensus thread.
fn state_chunk_decode_is_zero_copy_and_lean() {
    let chunk_msg = ProtocolMsg::StateChunk(StateChunkPayload::Chunk {
        stable: SeqNum(15),
        chunk: 3,
        total: 8,
        data: WireBytes::from(vec![0xAB; 4096]),
    });
    let frame = encode_frame(&chunk_msg);
    let allocs = min_allocs(|| {
        let decoded = decode_msg_shared(&frame).expect("decode");
        match &decoded {
            ProtocolMsg::StateChunk(StateChunkPayload::Chunk { data, .. }) => {
                debug_assert!(data.shares_buffer_with(&frame));
            }
            other => panic!("wrong variant {}", other.label()),
        }
        std::hint::black_box(&decoded);
    });
    assert_eq!(allocs, 0, "zero-copy STATE-CHUNK decode allocated");

    // The fixed-size repair messages are allocation-free too.
    let manifest_msg = ProtocolMsg::StateChunk(StateChunkPayload::Manifest(RepairManifest {
        stable: SeqNum(15),
        state_digest: Digest::of(b"s"),
        history_digest: Digest::of(b"h"),
        image_len: 1 << 20,
        image_digest: Digest::of(b"i"),
    }));
    let request_msg =
        ProtocolMsg::StateRequest(StateRequestKind::Chunk { stable: SeqNum(15), chunk: 3 });
    for msg in [&manifest_msg, &request_msg] {
        let bytes = encode_msg(msg);
        let allocs = min_allocs(|| {
            let decoded = decode_msg(&bytes).expect("decode");
            std::hint::black_box(&decoded);
        });
        assert_eq!(allocs, 0, "decoding {} allocated", msg.label());
    }
}

/// The tentpole claim: a full PROPOSE decode — multi-request batch,
/// real payloads, signatures — performs ZERO heap allocations in the
/// shared-frame mode with a warmed [`BatchPool`]. Payloads are views
/// into the frame; the batch container and its requests vector are
/// recycled; digests accumulate on the stack.
fn propose_decode_with_payloads_is_allocation_free() {
    let km = KeyMaterial::generate(4, 2, 3, CryptoMode::Cmac, CertScheme::MultiSig, 1);
    let requests: Vec<ClientRequest> = (0..20)
        .map(|i| {
            let op = vec![i as u8; 64];
            let sig = km.client(0).sign(&ClientRequest::signing_bytes(ClientId(0), i, &op));
            ClientRequest::new(ClientId(0), i, op, Some(sig))
        })
        .collect();
    let msg =
        ProtocolMsg::PoePropose { view: View(3), seq: SeqNum(9), batch: Batch::new(requests) };
    let frame = encode_frame(&msg);

    let mut pool = BatchPool::new();
    // Warm-up: the first decode allocates the container once.
    match decode_msg_pooled(&frame, &mut pool).expect("decode") {
        ProtocolMsg::PoePropose { batch, .. } => pool.recycle(batch),
        other => panic!("wrong variant {}", other.label()),
    }

    let allocs = min_allocs(|| {
        let decoded = decode_msg_pooled(&frame, &mut pool).expect("decode");
        std::hint::black_box(&decoded);
        match decoded {
            ProtocolMsg::PoePropose { batch, .. } => {
                // The decoded payloads are views into the receive frame.
                debug_assert!(batch.requests[0].op.shares_buffer_with(&frame));
                pool.recycle(batch);
            }
            other => panic!("wrong variant {}", other.label()),
        }
    });
    assert_eq!(allocs, 0, "full PROPOSE decode with payloads allocated");
    let (hits, misses) = pool.stats();
    assert_eq!(misses, 1, "only the warm-up decode may allocate the container");
    assert!(hits >= 5, "steady-state decodes must reuse the container");
}

/// Shared-frame decode of the other batch-carrying hot-path messages
/// stays within the two container allocations (requests vec + Arc), with
/// zero per-request or per-byte allocations, even without a pool.
fn shared_decode_allocates_only_containers() {
    let requests: Vec<ClientRequest> = (0..50)
        .map(|i| ClientRequest::new(ClientId(i as u32 % 4), i, vec![7u8; 48], None))
        .collect();
    let batch = Batch::new(requests);
    for msg in [
        ProtocolMsg::PoePropose { view: View(0), seq: SeqNum(1), batch: batch.clone() },
        ProtocolMsg::PbftPrePrepare { view: View(0), seq: SeqNum(1), batch: batch.clone() },
        ProtocolMsg::SbftPrePrepare { view: View(0), seq: SeqNum(1), batch: batch.clone() },
    ] {
        let frame = encode_frame(&msg);
        let allocs = min_allocs(|| {
            let decoded = decode_msg_shared(&frame).expect("decode");
            std::hint::black_box(&decoded);
        });
        assert!(
            allocs <= 2,
            "{}: shared decode allocated {allocs} times (expected <= 2: requests vec + Arc)",
            msg.label()
        );
    }
}

/// Cloning a [`WireBytes`] view or slicing sub-views never touches the
/// heap — the property the encode-once broadcast path relies on.
fn wire_bytes_clone_and_slice_are_allocation_free() {
    let frame = WireBytes::from(vec![5u8; 4096]);
    let allocs = min_allocs(|| {
        let a = frame.clone();
        let b = a.slice(100..2000);
        let c = b.slice(5..50);
        std::hint::black_box((&a, &b, &c));
    });
    assert_eq!(allocs, 0, "WireBytes clone/slice allocated");
    let empties = min_allocs(|| {
        let e = WireBytes::empty();
        std::hint::black_box(&e);
    });
    assert_eq!(empties, 0, "WireBytes::empty allocated");
}
