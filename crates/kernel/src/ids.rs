//! Identifiers: replicas, clients, nodes, views, and sequence numbers.
//!
//! The paper's system model assigns each replica `R` a unique identifier
//! `id(R)` with `0 ≤ id(R) < |R|`, elects the primary of view `v` as the
//! replica with `id = v mod n`, and numbers transactions with consecutive
//! sequence numbers `k`.

use std::fmt;

/// A replica identifier in `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReplicaId(pub u32);

impl ReplicaId {
    /// The integer id.
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Index form for slices.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A client identifier (0-based, disjoint numbering from replicas).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub u32);

impl ClientId {
    /// The integer id.
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Index form for slices.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A node on the network: either a replica or a client.
///
/// The global index convention matches `poe-crypto`: replicas occupy
/// `0..n`, clients occupy `n..n+m`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeId {
    /// A consensus replica.
    Replica(ReplicaId),
    /// A client.
    Client(ClientId),
}

impl NodeId {
    /// Global index given the number of replicas `n`.
    pub fn global_index(self, n: usize) -> u32 {
        match self {
            NodeId::Replica(r) => r.0,
            NodeId::Client(c) => n as u32 + c.0,
        }
    }

    /// Inverse of [`NodeId::global_index`].
    pub fn from_global_index(idx: u32, n: usize) -> NodeId {
        if (idx as usize) < n {
            NodeId::Replica(ReplicaId(idx))
        } else {
            NodeId::Client(ClientId(idx - n as u32))
        }
    }

    /// The replica id, if this is a replica.
    pub fn as_replica(self) -> Option<ReplicaId> {
        match self {
            NodeId::Replica(r) => Some(r),
            NodeId::Client(_) => None,
        }
    }

    /// The client id, if this is a client.
    pub fn as_client(self) -> Option<ClientId> {
        match self {
            NodeId::Client(c) => Some(c),
            NodeId::Replica(_) => None,
        }
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Replica(r) => write!(f, "{r:?}"),
            NodeId::Client(c) => write!(f, "{c:?}"),
        }
    }
}

impl From<ReplicaId> for NodeId {
    fn from(r: ReplicaId) -> NodeId {
        NodeId::Replica(r)
    }
}

impl From<ClientId> for NodeId {
    fn from(c: ClientId) -> NodeId {
        NodeId::Client(c)
    }
}

/// A view number `v`; the primary of view `v` is replica `v mod n`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct View(pub u64);

impl View {
    /// The genesis view.
    pub const ZERO: View = View(0);

    /// The primary of this view in a cluster of `n` replicas.
    pub fn primary(self, n: usize) -> ReplicaId {
        ReplicaId((self.0 % n as u64) as u32)
    }

    /// The next view.
    pub fn next(self) -> View {
        View(self.0 + 1)
    }
}

impl fmt::Debug for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A sequence number `k` assigned by the primary to a batch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SeqNum(pub u64);

impl SeqNum {
    /// The first sequence number.
    pub const ZERO: SeqNum = SeqNum(0);

    /// The next sequence number.
    pub fn next(self) -> SeqNum {
        SeqNum(self.0 + 1)
    }

    /// The previous sequence number, if any.
    pub fn prev(self) -> Option<SeqNum> {
        self.0.checked_sub(1).map(SeqNum)
    }
}

impl fmt::Debug for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_rotation_wraps() {
        assert_eq!(View(0).primary(4), ReplicaId(0));
        assert_eq!(View(3).primary(4), ReplicaId(3));
        assert_eq!(View(4).primary(4), ReplicaId(0));
        assert_eq!(View(9).primary(4), ReplicaId(1));
    }

    #[test]
    fn global_index_roundtrip() {
        let n = 7;
        for idx in 0..20u32 {
            let node = NodeId::from_global_index(idx, n);
            assert_eq!(node.global_index(n), idx);
        }
        assert_eq!(NodeId::from_global_index(6, n), NodeId::Replica(ReplicaId(6)));
        assert_eq!(NodeId::from_global_index(7, n), NodeId::Client(ClientId(0)));
    }

    #[test]
    fn as_replica_and_client() {
        let r: NodeId = ReplicaId(3).into();
        let c: NodeId = ClientId(5).into();
        assert_eq!(r.as_replica(), Some(ReplicaId(3)));
        assert_eq!(r.as_client(), None);
        assert_eq!(c.as_client(), Some(ClientId(5)));
        assert_eq!(c.as_replica(), None);
    }

    #[test]
    fn seqnum_navigation() {
        assert_eq!(SeqNum(0).next(), SeqNum(1));
        assert_eq!(SeqNum(1).prev(), Some(SeqNum(0)));
        assert_eq!(SeqNum(0).prev(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", ReplicaId(2)), "R2");
        assert_eq!(format!("{}", ClientId(9)), "C9");
        assert_eq!(format!("{}", View(4)), "v4");
        assert_eq!(format!("{}", SeqNum(8)), "k8");
    }
}
