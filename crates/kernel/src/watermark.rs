//! Sequence-number watermarks: the out-of-order window.
//!
//! Paper §II-F: single-primary protocols pipeline consensus instances by
//! letting the primary propose sequence number `k+1` before `k` finishes,
//! bounded by an *active set* of sequence numbers between a low and high
//! watermark. The low watermark advances as instances commit (or as
//! checkpoints stabilize); the window size caps how far ahead the primary
//! may run. Disabling out-of-order processing (window = 1) reproduces the
//! paper's Figure 9(k,l), where throughput collapses by ~200×.

use crate::ids::SeqNum;

/// A sliding window `[low, low + size)` of sequence numbers a replica is
/// willing to work on concurrently.
#[derive(Clone, Debug)]
pub struct Watermarks {
    low: SeqNum,
    size: usize,
}

impl Watermarks {
    /// A window of `size` slots starting at sequence number 0.
    pub fn new(size: usize) -> Watermarks {
        assert!(size >= 1, "window must hold at least one slot");
        Watermarks { low: SeqNum::ZERO, size }
    }

    /// The low watermark: the lowest sequence number still in flight.
    pub fn low(&self) -> SeqNum {
        self.low
    }

    /// The high watermark (exclusive).
    pub fn high(&self) -> SeqNum {
        SeqNum(self.low.0 + self.size as u64)
    }

    /// Window capacity.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Whether `seq` is inside the active window.
    pub fn in_window(&self, seq: SeqNum) -> bool {
        seq >= self.low && seq < self.high()
    }

    /// Advances the low watermark to `new_low` (no-op if behind).
    pub fn advance_to(&mut self, new_low: SeqNum) {
        if new_low > self.low {
            self.low = new_low;
        }
    }

    /// Number of slots the primary may still open given the next
    /// unassigned sequence number `next`.
    pub fn headroom(&self, next: SeqNum) -> usize {
        if next >= self.high() {
            0
        } else {
            (self.high().0 - next.0.max(self.low.0)) as usize
        }
    }
}

/// Tracks contiguous completion: feed it out-of-order completions, it
/// reports how far the consecutive prefix extends (the execution frontier
/// that Figure 3 Line 20 enforces: execute `k` only after `k−1`).
#[derive(Clone, Debug, Default)]
pub struct ContiguousTracker {
    next: u64,
    done: std::collections::BTreeSet<u64>,
}

impl ContiguousTracker {
    /// A tracker expecting sequence number 0 first.
    pub fn new() -> ContiguousTracker {
        ContiguousTracker::default()
    }

    /// A tracker expecting `next` as the first completion.
    pub fn starting_at(next: SeqNum) -> ContiguousTracker {
        ContiguousTracker { next: next.0, done: Default::default() }
    }

    /// Marks `seq` complete; returns the sequence numbers that have just
    /// become part of the contiguous prefix (in order).
    pub fn complete(&mut self, seq: SeqNum) -> Vec<SeqNum> {
        if seq.0 >= self.next {
            self.done.insert(seq.0);
        }
        let mut newly = Vec::new();
        while self.done.remove(&self.next) {
            newly.push(SeqNum(self.next));
            self.next += 1;
        }
        newly
    }

    /// The next sequence number the contiguous prefix is waiting for.
    pub fn frontier(&self) -> SeqNum {
        SeqNum(self.next)
    }

    /// Whether `seq` is already part of the contiguous prefix.
    pub fn is_complete(&self, seq: SeqNum) -> bool {
        seq.0 < self.next
    }

    /// Jumps the frontier forward (view change / state transfer), dropping
    /// stale out-of-order completions.
    pub fn reset_to(&mut self, next: SeqNum) {
        self.next = next.0;
        self.done.retain(|s| *s >= next.0);
    }

    /// Count of completions parked above the frontier.
    pub fn parked(&self) -> usize {
        self.done.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_bounds() {
        let w = Watermarks::new(4);
        assert!(w.in_window(SeqNum(0)));
        assert!(w.in_window(SeqNum(3)));
        assert!(!w.in_window(SeqNum(4)));
        assert_eq!(w.low(), SeqNum(0));
        assert_eq!(w.high(), SeqNum(4));
    }

    #[test]
    fn window_advance() {
        let mut w = Watermarks::new(4);
        w.advance_to(SeqNum(10));
        assert!(!w.in_window(SeqNum(9)));
        assert!(w.in_window(SeqNum(10)));
        assert!(w.in_window(SeqNum(13)));
        assert!(!w.in_window(SeqNum(14)));
        // Does not move backwards.
        w.advance_to(SeqNum(5));
        assert_eq!(w.low(), SeqNum(10));
    }

    #[test]
    fn headroom_counts_open_slots() {
        let w = Watermarks::new(4);
        assert_eq!(w.headroom(SeqNum(0)), 4);
        assert_eq!(w.headroom(SeqNum(3)), 1);
        assert_eq!(w.headroom(SeqNum(4)), 0);
        assert_eq!(w.headroom(SeqNum(100)), 0);
    }

    #[test]
    fn sequential_window_has_single_slot() {
        let w = Watermarks::new(1);
        assert!(w.in_window(SeqNum(0)));
        assert!(!w.in_window(SeqNum(1)));
        assert_eq!(w.headroom(SeqNum(0)), 1);
    }

    #[test]
    fn contiguous_in_order() {
        let mut t = ContiguousTracker::new();
        assert_eq!(t.complete(SeqNum(0)), vec![SeqNum(0)]);
        assert_eq!(t.complete(SeqNum(1)), vec![SeqNum(1)]);
        assert_eq!(t.frontier(), SeqNum(2));
    }

    #[test]
    fn contiguous_out_of_order() {
        let mut t = ContiguousTracker::new();
        assert_eq!(t.complete(SeqNum(2)), vec![]);
        assert_eq!(t.complete(SeqNum(1)), vec![]);
        assert_eq!(t.parked(), 2);
        assert_eq!(t.complete(SeqNum(0)), vec![SeqNum(0), SeqNum(1), SeqNum(2)]);
        assert_eq!(t.parked(), 0);
        assert!(t.is_complete(SeqNum(2)));
        assert!(!t.is_complete(SeqNum(3)));
    }

    #[test]
    fn contiguous_duplicate_and_stale() {
        let mut t = ContiguousTracker::new();
        t.complete(SeqNum(0));
        // Duplicate completion of an already-contiguous seq is ignored.
        assert_eq!(t.complete(SeqNum(0)), vec![]);
        assert_eq!(t.frontier(), SeqNum(1));
    }

    #[test]
    fn reset_drops_stale() {
        let mut t = ContiguousTracker::new();
        t.complete(SeqNum(5));
        t.complete(SeqNum(12));
        t.reset_to(SeqNum(10));
        assert_eq!(t.frontier(), SeqNum(10));
        assert_eq!(t.parked(), 1); // 12 kept, 5 dropped
        assert_eq!(t.complete(SeqNum(10)), vec![SeqNum(10)]);
        assert_eq!(t.complete(SeqNum(11)), vec![SeqNum(11), SeqNum(12)]);
    }

    #[test]
    fn starting_at_offset() {
        let mut t = ContiguousTracker::starting_at(SeqNum(100));
        assert_eq!(t.complete(SeqNum(99)), vec![]); // below frontier: ignored
        assert_eq!(t.complete(SeqNum(100)), vec![SeqNum(100)]);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_window_rejected() {
        let _ = Watermarks::new(0);
    }
}
