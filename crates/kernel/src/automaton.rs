//! The sans-I/O automaton model.
//!
//! Every protocol (PoE and the four baselines) is implemented as a
//! deterministic state machine: it consumes [`Event`]s and appends
//! [`Action`]s to an [`Outbox`]. Two runtimes interpret the same
//! automatons:
//!
//! * `poe-sim` — a discrete-event simulator with virtual time, cost
//!   models, and failure injection (used for all the paper's figures);
//! * `poe-fabric` — a multi-threaded pipelined runtime on the wall clock
//!   (the ResilientDB-style deployment of paper §III).
//!
//! Determinism is a protocol requirement ("non-faulty replicas … are
//! deterministic", §II-A) and is what makes simulation traces replayable.
//!
//! Convention: [`Outbox::broadcast`] targets all *other* replicas. An
//! automaton that wants its own vote counts it directly in its state
//! (mirroring the paper's optimization "the primary can generate one
//! signature share itself", §II-E).

use crate::ids::{ClientId, NodeId, ReplicaId, SeqNum, View};
use crate::messages::ProtocolMsg;
use crate::request::Batch;
use crate::time::{Duration, Time};
use crate::timer::TimerKind;
use poe_crypto::Digest;
use std::sync::Arc;

/// An input to a replica automaton.
#[derive(Clone, Debug)]
pub enum Event {
    /// Delivered at time zero, before any other event.
    Init,
    /// A message arrived.
    Deliver {
        /// Sender (already authenticated by the runtime).
        from: NodeId,
        /// The message.
        msg: ProtocolMsg,
    },
    /// A previously set timer fired (and was still armed).
    Timeout(TimerKind),
}

/// A state-transition observation emitted for metrics, ledgers, and
/// invariant checking. Notifications never affect other nodes.
#[derive(Clone, Debug)]
pub enum Notification {
    /// A batch was (speculatively) executed as the `seq`-th transaction.
    Executed {
        /// View under which it executed.
        view: View,
        /// Sequence number.
        seq: SeqNum,
        /// The batch.
        batch: Arc<Batch>,
        /// Digest of the execution results.
        results_digest: Digest,
    },
    /// Speculatively executed batches above `to` were reverted.
    RolledBack {
        /// Highest surviving sequence number (`None` = everything).
        to: Option<SeqNum>,
    },
    /// The replica moved into `view`.
    ViewChanged {
        /// The new view.
        view: View,
    },
    /// A checkpoint at `seq` became stable (2f+1 matching votes).
    CheckpointStable {
        /// The stable sequence number.
        seq: SeqNum,
    },
    /// A consensus decision completed at this replica (used by the
    /// decisions/s metric of Figure 11; for PoE this is the view-commit).
    Decided {
        /// Sequence number decided.
        seq: SeqNum,
    },
    /// The replica discovered that the cluster's stable checkpoint is
    /// ahead of its own state and the missing history cannot be rebuilt
    /// from VC-REQUESTs alone. The replica stays live (forwarding,
    /// voting on in-window slots) and starts the state-transfer repair
    /// protocol; a later [`Notification::CaughtUp`] marks its completion.
    FellBehind {
        /// The stable checkpoint the cluster proved.
        stable: SeqNum,
        /// This replica's contiguous execution frontier.
        exec_frontier: SeqNum,
        /// The next sequence number this replica's ledger expects.
        ledger_frontier: SeqNum,
    },
    /// State-transfer repair finished: the replica installed a verified
    /// checkpoint (and any certified tail above it) and rejoined the
    /// live protocol. Pairs with an earlier [`Notification::FellBehind`]
    /// or lag detection via peer checkpoint votes.
    CaughtUp {
        /// The stable checkpoint that was installed.
        stable: SeqNum,
        /// The contiguous execution frontier after catch-up.
        exec_frontier: SeqNum,
    },
    /// A client completed a request (client automatons only).
    RequestComplete {
        /// The client.
        client: ClientId,
        /// The client-local request id.
        req_id: u64,
        /// Time the request was first sent.
        submitted_at: Time,
    },
}

impl Notification {
    /// A stable single-line rendering, used by the simulator's
    /// notification trace. Two runs of the same seeded simulation must
    /// produce byte-identical trace lines, so this goes through explicit
    /// fields only (digests, ids, sequence numbers) — never through
    /// `Debug` formatting of nested structures.
    pub fn trace_line(&self) -> String {
        match self {
            Notification::Executed { view, seq, batch, results_digest } => {
                format!(
                    "executed {view} {seq} reqs={} batch={} results={}",
                    batch.len(),
                    batch.digest.short_hex(),
                    results_digest.short_hex()
                )
            }
            Notification::RolledBack { to: Some(seq) } => format!("rolledback to={seq}"),
            Notification::RolledBack { to: None } => "rolledback to=genesis".to_string(),
            Notification::ViewChanged { view } => format!("viewchanged {view}"),
            Notification::CheckpointStable { seq } => format!("checkpoint {seq}"),
            Notification::Decided { seq } => format!("decided {seq}"),
            Notification::FellBehind { stable, exec_frontier, ledger_frontier } => {
                format!("fellbehind stable={stable} exec={exec_frontier} ledger={ledger_frontier}")
            }
            Notification::CaughtUp { stable, exec_frontier } => {
                format!("caughtup stable={stable} exec={exec_frontier}")
            }
            Notification::RequestComplete { client, req_id, submitted_at } => {
                format!("complete {client} req={req_id} submitted={}", submitted_at.as_nanos())
            }
        }
    }
}

/// An output of an automaton.
#[derive(Clone, Debug)]
pub enum Action {
    /// Send `msg` to a single node.
    Send {
        /// Destination.
        to: NodeId,
        /// Message.
        msg: ProtocolMsg,
    },
    /// Send `msg` to every replica except the sender itself.
    Broadcast {
        /// Message.
        msg: ProtocolMsg,
    },
    /// Arm (or re-arm) a timer.
    SetTimer {
        /// Timer identity.
        kind: TimerKind,
        /// Delay from now.
        delay: Duration,
    },
    /// Disarm a timer.
    CancelTimer {
        /// Timer identity.
        kind: TimerKind,
    },
    /// Emit an observation.
    Notify(Notification),
}

/// Collects the actions of one automaton step.
#[derive(Debug, Default)]
pub struct Outbox {
    actions: Vec<Action>,
}

impl Outbox {
    /// An empty outbox.
    pub fn new() -> Outbox {
        Outbox::default()
    }

    /// Queues a unicast.
    pub fn send(&mut self, to: impl Into<NodeId>, msg: ProtocolMsg) {
        self.actions.push(Action::Send { to: to.into(), msg });
    }

    /// Queues a broadcast to all other replicas.
    pub fn broadcast(&mut self, msg: ProtocolMsg) {
        self.actions.push(Action::Broadcast { msg });
    }

    /// Arms a timer.
    pub fn set_timer(&mut self, kind: TimerKind, delay: Duration) {
        self.actions.push(Action::SetTimer { kind, delay });
    }

    /// Disarms a timer.
    pub fn cancel_timer(&mut self, kind: TimerKind) {
        self.actions.push(Action::CancelTimer { kind });
    }

    /// Emits an observation.
    pub fn notify(&mut self, n: Notification) {
        self.actions.push(Action::Notify(n));
    }

    /// Drains the queued actions.
    pub fn drain(&mut self) -> Vec<Action> {
        std::mem::take(&mut self.actions)
    }

    /// Drains the queued actions in order while keeping the outbox's
    /// capacity, so a runtime can recycle one outbox across events
    /// instead of allocating a fresh action vector per delivery.
    pub fn drain_iter(&mut self) -> std::vec::Drain<'_, Action> {
        self.actions.drain(..)
    }

    /// Read-only view of queued actions (tests).
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Number of queued actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

/// A replica-side protocol automaton.
pub trait ReplicaAutomaton: Send {
    /// This replica's identity.
    fn id(&self) -> ReplicaId;

    /// Handles one event, appending resulting actions to `out`.
    fn on_event(&mut self, now: Time, event: Event, out: &mut Outbox);

    /// The replica's current view (HotStuff reports its round).
    fn current_view(&self) -> View;

    /// The next sequence number this replica has not yet executed
    /// (the contiguous execution frontier).
    fn execution_frontier(&self) -> SeqNum;

    /// Digest of the replica's application state, for cross-replica
    /// convergence audits (the runtimes assert all live replicas agree
    /// at quiescence).
    fn state_digest(&self) -> Digest;

    /// Digest of the replica's committed ledger history (sequence
    /// numbers, views, and batch digests — proof-independent, so it is
    /// comparable across replicas even in MAC mode where acceptance
    /// proofs are local evidence).
    fn ledger_digest(&self) -> Digest;

    /// Protocol name for reports.
    fn protocol_name(&self) -> &'static str;

    /// The concrete automaton behind the trait object — the escape
    /// hatch for runtime-side inspection of protocol-specific state
    /// (e.g. repair counters in recovery tests).
    fn as_any(&self) -> &dyn std::any::Any;
}

/// A client-side automaton: submits requests, collects replies,
/// retransmits on timeout.
pub trait ClientAutomaton: Send {
    /// This client's identity.
    fn id(&self) -> ClientId;

    /// Handles one event, appending resulting actions to `out`.
    fn on_event(&mut self, now: Time, event: Event, out: &mut Outbox);

    /// Number of requests this client has completed.
    fn completed(&self) -> u64;

    /// Number of requests currently in flight.
    fn in_flight(&self) -> usize;
}

/// Supplies operation payloads to client automatons (implemented by
/// `poe-workload`).
pub trait RequestSource: Send {
    /// The next operation for `client`, or `None` when the workload is
    /// exhausted.
    fn next_op(&mut self, client: ClientId) -> Option<Vec<u8>>;
}

/// A request source yielding a fixed payload forever (tests, zero-payload
/// runs).
#[derive(Clone, Debug)]
pub struct FixedPayloadSource {
    payload: Vec<u8>,
    remaining: Option<u64>,
}

impl FixedPayloadSource {
    /// Yields `payload` forever.
    pub fn unbounded(payload: Vec<u8>) -> FixedPayloadSource {
        FixedPayloadSource { payload, remaining: None }
    }

    /// Yields `payload` exactly `count` times per source.
    pub fn bounded(payload: Vec<u8>, count: u64) -> FixedPayloadSource {
        FixedPayloadSource { payload, remaining: Some(count) }
    }
}

impl RequestSource for FixedPayloadSource {
    fn next_op(&mut self, _client: ClientId) -> Option<Vec<u8>> {
        match &mut self.remaining {
            None => Some(self.payload.clone()),
            Some(0) => None,
            Some(left) => {
                *left -= 1;
                Some(self.payload.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_collects_in_order() {
        let mut out = Outbox::new();
        assert!(out.is_empty());
        out.send(
            ReplicaId(1),
            ProtocolMsg::Checkpoint { seq: SeqNum(1), state_digest: Digest::EMPTY },
        );
        out.broadcast(ProtocolMsg::Checkpoint { seq: SeqNum(2), state_digest: Digest::EMPTY });
        out.set_timer(TimerKind::BatchCut, Duration::from_millis(1));
        out.cancel_timer(TimerKind::BatchCut);
        out.notify(Notification::Decided { seq: SeqNum(1) });
        assert_eq!(out.len(), 5);
        let actions = out.drain();
        assert!(matches!(actions[0], Action::Send { .. }));
        assert!(matches!(actions[1], Action::Broadcast { .. }));
        assert!(matches!(actions[2], Action::SetTimer { .. }));
        assert!(matches!(actions[3], Action::CancelTimer { .. }));
        assert!(matches!(actions[4], Action::Notify(_)));
        assert!(out.is_empty());
    }

    #[test]
    fn fixed_source_bounded() {
        let mut src = FixedPayloadSource::bounded(vec![1], 2);
        assert!(src.next_op(ClientId(0)).is_some());
        assert!(src.next_op(ClientId(0)).is_some());
        assert!(src.next_op(ClientId(0)).is_none());
    }

    #[test]
    fn fixed_source_unbounded() {
        let mut src = FixedPayloadSource::unbounded(vec![9]);
        for _ in 0..100 {
            assert_eq!(src.next_op(ClientId(1)), Some(vec![9]));
        }
    }
}
