//! Hand-written binary wire format.
//!
//! The offline dependency set has no serde *format* crate, so the wire
//! format is written by hand: little-endian fixed-width integers,
//! u32-length-prefixed sequences, one tag byte per enum variant. The same
//! writer is generic over a [`Sink`] so messages can be *measured*
//! (`encoded_len`) without allocating — the simulator's bandwidth model
//! uses that path on every send.
//!
//! Decoding has two modes sharing one grammar:
//!
//! * **owned** ([`decode_msg`] / [`decode_envelope`]) — payload byte
//!   strings are copied out of the input slice;
//! * **shared** ([`decode_msg_shared`] / [`decode_envelope_shared`]) —
//!   the input is a refcounted [`WireBytes`] frame and every payload
//!   (request `op`s, reply results) becomes a *view* into it, so nothing
//!   is copied. With a warmed [`BatchPool`] the shared mode decodes a
//!   full PROPOSE — request payloads included — without touching the
//!   heap at all (proved by `tests/alloc_free_decode.rs`).
//!
//! Every top-level decode entry point ends with [`Reader::finish`], so a
//! frame carrying trailing garbage after a well-formed message is
//! rejected, not silently accepted.
//!
//! Signed view-change payloads (`PoeVcRequest`, `PbftViewChange`) expose
//! `*_signing_bytes` helpers producing the exact byte string covered by
//! their embedded Ed25519 signatures.

use crate::ids::{ClientId, NodeId, ReplicaId, SeqNum, View};
use crate::messages::{
    ClientReply, Envelope, ExecEntry, HsBlock, HsQuorumCert, PbftPreparedEntry, PbftViewChange,
    PoeVcRequest, ProtocolMsg, RepairManifest, ReplyKind, StateChunkPayload, StateRequestKind,
    ZyzCommitCert,
};
use crate::request::{Batch, ClientRequest};
use crate::wire::WireBytes;
use poe_crypto::digest::{Digest, DIGEST_LEN};
use poe_crypto::ed25519::Signature;
use poe_crypto::provider::AuthTag;
use poe_crypto::threshold::{SignatureShare, ThresholdCert};
use std::sync::Arc;

pub use poe_crypto::sink::Sink;

/// A sink that only counts bytes.
#[derive(Default)]
pub struct LenCounter(pub usize);

impl Sink for LenCounter {
    fn put(&mut self, bytes: &[u8]) {
        self.0 += bytes.len();
    }
}

/// Decoding error.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError;

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed wire message")
    }
}

impl std::error::Error for DecodeError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// In shared mode, the frame `buf` is a view of — byte-string fields
    /// decode as sub-views of it instead of copies.
    frame: Option<&'a WireBytes>,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0, frame: None }
    }

    fn over_frame(frame: &'a WireBytes) -> Reader<'a> {
        Reader { buf: frame, pos: 0, frame: Some(frame) }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_le_bytes(s.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_le_bytes(s.try_into().expect("len 8")))
    }

    fn digest(&mut self) -> Option<Digest> {
        self.take(DIGEST_LEN).map(|s| Digest::from_bytes(s.try_into().expect("digest len")))
    }

    fn signature(&mut self) -> Option<Signature> {
        self.take(64).map(|s| Signature::from_bytes(s.try_into().expect("sig len")))
    }

    /// Reads a u32-length-prefixed byte string as a **borrowed**
    /// sub-slice of the input buffer. Decoders that need ownership copy
    /// at the last moment (directly into the output structure), so
    /// decoding never materializes intermediate heap buffers.
    fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a u32-length-prefixed byte string as a [`WireBytes`]. In
    /// shared mode this is a zero-copy, zero-allocation sub-view of the
    /// frame; in owned mode the bytes are copied into a fresh buffer.
    fn wire_bytes(&mut self) -> Option<WireBytes> {
        let len = self.u32()? as usize;
        let start = self.pos;
        let slice = self.take(len)?;
        Some(match self.frame {
            Some(f) => f.slice(start..start + len),
            None => WireBytes::copy_from(slice),
        })
    }

    fn remainder(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Exhaustion check every top-level decode must end with: a
    /// well-formed message followed by trailing bytes is malformed.
    fn finish(&self) -> Result<(), DecodeError> {
        if self.remainder() == 0 {
            Ok(())
        } else {
            Err(DecodeError)
        }
    }
}

// --------------------------------------------------------------- writers

fn put_view<S: Sink>(out: &mut S, v: View) {
    out.put(&v.0.to_le_bytes());
}

fn put_seq<S: Sink>(out: &mut S, k: SeqNum) {
    out.put(&k.0.to_le_bytes());
}

fn put_digest<S: Sink>(out: &mut S, d: &Digest) {
    out.put(d.as_bytes());
}

fn put_bytes<S: Sink>(out: &mut S, b: &[u8]) {
    out.put(&(b.len() as u32).to_le_bytes());
    out.put(b);
}

fn put_opt_seq<S: Sink>(out: &mut S, s: Option<SeqNum>) {
    match s {
        None => out.put_u8(0),
        Some(k) => {
            out.put_u8(1);
            put_seq(out, k);
        }
    }
}

fn put_request<S: Sink>(out: &mut S, req: &ClientRequest) {
    out.put(&req.client.0.to_le_bytes());
    out.put(&req.req_id.to_le_bytes());
    put_bytes(out, &req.op);
    match &req.signature {
        None => out.put_u8(0),
        Some(sig) => {
            out.put_u8(1);
            out.put(sig.as_bytes());
        }
    }
}

fn put_batch<S: Sink>(out: &mut S, batch: &Batch) {
    out.put(&(batch.requests.len() as u32).to_le_bytes());
    for req in &batch.requests {
        put_request(out, req);
    }
}

/// Streams a share into the sink via the crypto crate's (single,
/// authoritative) encoder — no intermediate buffer; this runs once per
/// SUPPORT / SIGN-SHARE / vote on the hot path.
fn put_share<S: Sink>(out: &mut S, share: &SignatureShare) {
    share.encode(out);
}

/// Streams a length-prefixed certificate into the sink. The prefix
/// comes from [`ThresholdCert::encoded_len`], which is pure arithmetic;
/// the body is the crypto crate's own encoder.
fn put_cert<S: Sink>(out: &mut S, cert: &ThresholdCert) {
    out.put(&(cert.encoded_len() as u32).to_le_bytes());
    cert.encode(out);
}

/// Streams a length-prefixed auth tag into the sink (crypto crate's
/// encoder, no intermediate buffer).
fn put_auth_tag<S: Sink>(out: &mut S, tag: &AuthTag) {
    out.put(&(tag.encoded_len() as u32).to_le_bytes());
    tag.encode(out);
}

fn put_opt_cert<S: Sink>(out: &mut S, cert: &Option<ThresholdCert>) {
    match cert {
        None => out.put_u8(0),
        Some(c) => {
            out.put_u8(1);
            put_cert(out, c);
        }
    }
}

fn put_exec_entry<S: Sink>(out: &mut S, e: &ExecEntry) {
    put_view(out, e.view);
    put_seq(out, e.seq);
    put_opt_cert(out, &e.cert);
    put_batch(out, &e.batch);
}

fn put_vc_request_body<S: Sink>(out: &mut S, vc: &PoeVcRequest) {
    out.put(&vc.from.0.to_le_bytes());
    put_view(out, vc.view);
    put_opt_seq(out, vc.stable_seq);
    out.put(&(vc.entries.len() as u32).to_le_bytes());
    for e in &vc.entries {
        put_exec_entry(out, e);
    }
}

fn put_vc_request<S: Sink>(out: &mut S, vc: &PoeVcRequest) {
    put_vc_request_body(out, vc);
    out.put(vc.signature.as_bytes());
}

fn put_pbft_prepared<S: Sink>(out: &mut S, p: &PbftPreparedEntry) {
    put_view(out, p.view);
    put_seq(out, p.seq);
    put_digest(out, &p.digest);
    put_batch(out, &p.batch);
}

fn put_pbft_view_change_body<S: Sink>(out: &mut S, vc: &PbftViewChange) {
    out.put(&vc.from.0.to_le_bytes());
    put_view(out, vc.new_view);
    put_opt_seq(out, vc.stable_seq);
    out.put(&(vc.prepared.len() as u32).to_le_bytes());
    for p in &vc.prepared {
        put_pbft_prepared(out, p);
    }
}

fn put_pbft_view_change<S: Sink>(out: &mut S, vc: &PbftViewChange) {
    put_pbft_view_change_body(out, vc);
    out.put(vc.signature.as_bytes());
}

fn put_qc<S: Sink>(out: &mut S, qc: &HsQuorumCert) {
    out.put(&qc.height.to_le_bytes());
    put_digest(out, &qc.block);
    put_cert(out, &qc.cert);
}

fn put_opt_qc<S: Sink>(out: &mut S, qc: &Option<HsQuorumCert>) {
    match qc {
        None => out.put_u8(0),
        Some(q) => {
            out.put_u8(1);
            put_qc(out, q);
        }
    }
}

fn put_block<S: Sink>(out: &mut S, b: &HsBlock) {
    out.put(&b.height.to_le_bytes());
    put_digest(out, &b.parent);
    put_opt_qc(out, &b.justify);
    put_batch(out, &b.batch);
}

fn put_reply<S: Sink>(out: &mut S, r: &ClientReply) {
    out.put_u8(match r.kind {
        ReplyKind::PoeInform => 0,
        ReplyKind::PbftReply => 1,
        ReplyKind::ZyzSpecResponse => 2,
        ReplyKind::ZyzLocalCommit => 3,
        ReplyKind::SbftExecuteAck => 4,
        ReplyKind::HsReply => 5,
    });
    put_view(out, r.view);
    put_seq(out, r.seq);
    put_digest(out, &r.req_digest);
    out.put(&r.req_id.to_le_bytes());
    put_bytes(out, &r.result);
    out.put(&r.replica.0.to_le_bytes());
    match &r.history {
        None => out.put_u8(0),
        Some(h) => {
            out.put_u8(1);
            put_digest(out, h);
        }
    }
}

/// Writes `msg` into `out`.
pub fn write_msg<S: Sink>(out: &mut S, msg: &ProtocolMsg) {
    match msg {
        ProtocolMsg::Request(req) => {
            out.put_u8(0);
            put_request(out, req);
        }
        ProtocolMsg::RequestBroadcast(req) => {
            out.put_u8(1);
            put_request(out, req);
        }
        ProtocolMsg::Forward(req) => {
            out.put_u8(2);
            put_request(out, req);
        }
        ProtocolMsg::Reply(r) => {
            out.put_u8(3);
            put_reply(out, r);
        }
        ProtocolMsg::PoePropose { view, seq, batch } => {
            out.put_u8(10);
            put_view(out, *view);
            put_seq(out, *seq);
            put_batch(out, batch);
        }
        ProtocolMsg::PoeSupport { view, seq, share } => {
            out.put_u8(11);
            put_view(out, *view);
            put_seq(out, *seq);
            put_share(out, share);
        }
        ProtocolMsg::PoeSupportMac { view, seq, digest } => {
            out.put_u8(12);
            put_view(out, *view);
            put_seq(out, *seq);
            put_digest(out, digest);
        }
        ProtocolMsg::PoeCertify { view, seq, cert } => {
            out.put_u8(13);
            put_view(out, *view);
            put_seq(out, *seq);
            put_cert(out, cert);
        }
        ProtocolMsg::PoeVcRequest(vc) => {
            out.put_u8(14);
            put_vc_request(out, vc);
        }
        ProtocolMsg::PoeNvPropose { new_view, requests } => {
            out.put_u8(15);
            put_view(out, *new_view);
            out.put(&(requests.len() as u32).to_le_bytes());
            for vc in requests {
                put_vc_request(out, vc);
            }
        }
        ProtocolMsg::PbftPrePrepare { view, seq, batch } => {
            out.put_u8(20);
            put_view(out, *view);
            put_seq(out, *seq);
            put_batch(out, batch);
        }
        ProtocolMsg::PbftPrepare { view, seq, digest } => {
            out.put_u8(21);
            put_view(out, *view);
            put_seq(out, *seq);
            put_digest(out, digest);
        }
        ProtocolMsg::PbftCommit { view, seq, digest } => {
            out.put_u8(22);
            put_view(out, *view);
            put_seq(out, *seq);
            put_digest(out, digest);
        }
        ProtocolMsg::PbftViewChangeMsg(vc) => {
            out.put_u8(23);
            put_pbft_view_change(out, vc);
        }
        ProtocolMsg::PbftNewView { new_view, view_changes, pre_prepares } => {
            out.put_u8(24);
            put_view(out, *new_view);
            out.put(&(view_changes.len() as u32).to_le_bytes());
            for vc in view_changes {
                put_pbft_view_change(out, vc);
            }
            out.put(&(pre_prepares.len() as u32).to_le_bytes());
            for (seq, batch) in pre_prepares {
                put_seq(out, *seq);
                put_batch(out, batch);
            }
        }
        ProtocolMsg::ZyzOrderReq { view, seq, history, batch } => {
            out.put_u8(30);
            put_view(out, *view);
            put_seq(out, *seq);
            put_digest(out, history);
            put_batch(out, batch);
        }
        ProtocolMsg::ZyzCommit(cc) => {
            out.put_u8(31);
            put_view(out, cc.view);
            put_seq(out, cc.seq);
            put_digest(out, &cc.history);
            out.put(&(cc.replicas.len() as u32).to_le_bytes());
            for r in &cc.replicas {
                out.put(&r.0.to_le_bytes());
            }
        }
        ProtocolMsg::SbftPrePrepare { view, seq, batch } => {
            out.put_u8(40);
            put_view(out, *view);
            put_seq(out, *seq);
            put_batch(out, batch);
        }
        ProtocolMsg::SbftSignShare { view, seq, share } => {
            out.put_u8(41);
            put_view(out, *view);
            put_seq(out, *seq);
            put_share(out, share);
        }
        ProtocolMsg::SbftFullCommitProof { view, seq, cert } => {
            out.put_u8(42);
            put_view(out, *view);
            put_seq(out, *seq);
            put_cert(out, cert);
        }
        ProtocolMsg::SbftSignState { view, seq, share } => {
            out.put_u8(43);
            put_view(out, *view);
            put_seq(out, *seq);
            put_share(out, share);
        }
        ProtocolMsg::SbftExecuteAck { view, seq, cert } => {
            out.put_u8(44);
            put_view(out, *view);
            put_seq(out, *seq);
            put_cert(out, cert);
        }
        ProtocolMsg::HsProposal { block } => {
            out.put_u8(50);
            put_block(out, block);
        }
        ProtocolMsg::HsVote { height, block, share } => {
            out.put_u8(51);
            out.put(&height.to_le_bytes());
            put_digest(out, block);
            put_share(out, share);
        }
        ProtocolMsg::HsNewView { height, high_qc } => {
            out.put_u8(52);
            out.put(&height.to_le_bytes());
            put_opt_qc(out, high_qc);
        }
        ProtocolMsg::Checkpoint { seq, state_digest } => {
            out.put_u8(60);
            put_seq(out, *seq);
            put_digest(out, state_digest);
        }
        ProtocolMsg::StateRequest(kind) => {
            out.put_u8(61);
            match kind {
                StateRequestKind::Manifest => out.put_u8(0),
                StateRequestKind::Chunk { stable, chunk } => {
                    out.put_u8(1);
                    put_seq(out, *stable);
                    out.put(&chunk.to_le_bytes());
                }
                StateRequestKind::Tail { after } => {
                    out.put_u8(2);
                    put_seq(out, *after);
                }
            }
        }
        ProtocolMsg::StateChunk(payload) => {
            out.put_u8(62);
            match payload {
                StateChunkPayload::Manifest(m) => {
                    out.put_u8(0);
                    put_seq(out, m.stable);
                    put_digest(out, &m.state_digest);
                    put_digest(out, &m.history_digest);
                    out.put(&m.image_len.to_le_bytes());
                    put_digest(out, &m.image_digest);
                }
                StateChunkPayload::Chunk { stable, chunk, total, data } => {
                    out.put_u8(1);
                    put_seq(out, *stable);
                    out.put(&chunk.to_le_bytes());
                    out.put(&total.to_le_bytes());
                    put_bytes(out, data);
                }
                StateChunkPayload::Tail { after, entries } => {
                    out.put_u8(2);
                    put_seq(out, *after);
                    out.put(&(entries.len() as u32).to_le_bytes());
                    for e in entries {
                        put_exec_entry(out, e);
                    }
                }
            }
        }
    }
}

/// Encodes a message into a fresh, exactly-sized buffer.
///
/// The buffer is pre-sized with [`encoded_len`] (a measuring pass over
/// the same writer, no allocation), so encoding performs exactly one
/// heap allocation and zero reallocations. Hot loops that can reuse
/// buffers should prefer [`ScratchPool::encode_msg`], which performs
/// zero.
pub fn encode_msg(msg: &ProtocolMsg) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_len(msg));
    write_msg(&mut out, msg);
    out
}

/// Encodes `msg` into `out`, clearing it first. Reserves the exact
/// encoded size, so a buffer that has ever held a message of this size
/// is never reallocated.
pub fn encode_msg_into(msg: &ProtocolMsg, out: &mut Vec<u8>) {
    out.clear();
    out.reserve(encoded_len(msg));
    write_msg(out, msg);
}

/// Exact encoded size of `msg`, without allocating the buffer.
pub fn encoded_len(msg: &ProtocolMsg) -> usize {
    let mut counter = LenCounter::default();
    write_msg(&mut counter, msg);
    counter.0
}

/// Encodes `msg` once into a refcounted frame ready to be shared across
/// all recipients of a broadcast (clone the view per edge, decode with
/// [`decode_msg_shared`] at each receiver).
pub fn encode_frame(msg: &ProtocolMsg) -> WireBytes {
    WireBytes::from(encode_msg(msg))
}

/// The byte string a PoE VC-REQUEST signature covers (everything except
/// the signature itself).
pub fn poe_vc_signing_bytes(vc: &PoeVcRequest) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    put_vc_request_body(&mut out, vc);
    out
}

/// The byte string a PBFT VIEW-CHANGE signature covers.
pub fn pbft_vc_signing_bytes(vc: &PbftViewChange) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    put_pbft_view_change_body(&mut out, vc);
    out
}

// ----------------------------------------------------------- batch pool

/// A recycler of uniquely-owned `Arc<Batch>` allocations for
/// allocation-free steady-state decode (the receive-side twin of
/// [`ScratchPool`]).
///
/// Decoding a batch-carrying message needs one `Arc<Batch>` and its
/// `requests` vector — the only heap objects left on the shared-decode
/// path once payloads became [`WireBytes`] views. A warmed pool hands
/// those back out, so a full PROPOSE decode performs **zero**
/// allocations. Recycling only accepts batches with no other references
/// (checked via `Arc::get_mut`), so a batch still referenced by a
/// consensus slot is simply dropped from the pool's perspective.
#[derive(Debug)]
pub struct BatchPool {
    free: Vec<Arc<Batch>>,
    max_batches: usize,
    hits: u64,
    misses: u64,
}

impl Default for BatchPool {
    fn default() -> Self {
        BatchPool::new()
    }
}

impl BatchPool {
    /// Default pool bound (matches [`ScratchPool::DEFAULT_MAX_BUFFERS`]).
    pub const DEFAULT_MAX_BATCHES: usize = 64;

    /// An empty pool with the default bound.
    pub fn new() -> BatchPool {
        BatchPool::with_max_batches(Self::DEFAULT_MAX_BATCHES)
    }

    /// An empty pool holding at most `max_batches` recycled batches.
    pub fn with_max_batches(max_batches: usize) -> BatchPool {
        BatchPool { free: Vec::new(), max_batches, hits: 0, misses: 0 }
    }

    /// Takes a uniquely-owned batch (recycled or freshly allocated).
    fn take(&mut self) -> Arc<Batch> {
        match self.free.pop() {
            Some(b) => {
                self.hits += 1;
                b
            }
            None => {
                self.misses += 1;
                Arc::new(Batch { requests: Vec::new(), digest: Digest::EMPTY })
            }
        }
    }

    /// Returns a decoded batch for reuse. Kept only when the caller holds
    /// the last reference and the pool has room; otherwise dropped. The
    /// requests are cleared immediately (capacity retained) so a pooled
    /// container never pins its last receive frame in memory.
    pub fn recycle(&mut self, mut batch: Arc<Batch>) {
        if self.free.len() < self.max_batches {
            if let Some(b) = Arc::get_mut(&mut batch) {
                b.requests.clear();
                b.digest = Digest::EMPTY;
                self.free.push(batch);
            }
        }
    }

    /// Batches currently available for reuse.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// `(reuse_hits, fresh_allocations)` counters, for instrumentation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Per-decode context: an optional batch recycler.
struct DecodeCtx<'p> {
    pool: Option<&'p mut BatchPool>,
}

impl DecodeCtx<'_> {
    fn take_batch(&mut self, count: usize) -> Arc<Batch> {
        match self.pool.as_deref_mut() {
            Some(pool) => pool.take(),
            None => Arc::new(Batch { requests: Vec::with_capacity(count), digest: Digest::EMPTY }),
        }
    }
}

// --------------------------------------------------------------- readers

fn get_request(r: &mut Reader<'_>) -> Option<ClientRequest> {
    let client = ClientId(r.u32()?);
    let req_id = r.u64()?;
    let op = r.wire_bytes()?;
    let signature = match r.u8()? {
        0 => None,
        1 => Some(r.signature()?),
        _ => return None,
    };
    Some(ClientRequest::new(client, req_id, op, signature))
}

fn get_batch(r: &mut Reader<'_>, ctx: &mut DecodeCtx<'_>) -> Option<Arc<Batch>> {
    let count = r.u32()? as usize;
    // Guard against absurd allocations from corrupt input.
    if count > r.remainder() {
        return None;
    }
    let mut arc = ctx.take_batch(count);
    {
        let batch = Arc::get_mut(&mut arc).expect("pool hands out uniquely owned batches");
        batch.requests.clear();
        batch.requests.reserve(count);
        for _ in 0..count {
            batch.requests.push(get_request(r)?);
        }
        batch.digest = Batch::digest_of(&batch.requests);
    }
    Some(arc)
}

fn get_share(r: &mut Reader<'_>) -> Option<SignatureShare> {
    let (share, used) = SignatureShare::decode(&r.buf[r.pos..])?;
    r.pos += used;
    Some(share)
}

fn get_cert(r: &mut Reader<'_>) -> Option<ThresholdCert> {
    // Borrowed view: the certificate decodes straight out of the wire
    // buffer, with no intermediate copy of its length-prefixed body.
    let raw = r.bytes()?;
    let (cert, used) = ThresholdCert::decode(raw)?;
    (used == raw.len()).then_some(cert)
}

fn get_opt_cert(r: &mut Reader<'_>) -> Option<Option<ThresholdCert>> {
    match r.u8()? {
        0 => Some(None),
        1 => Some(Some(get_cert(r)?)),
        _ => None,
    }
}

fn get_exec_entry(r: &mut Reader<'_>, ctx: &mut DecodeCtx<'_>) -> Option<ExecEntry> {
    Some(ExecEntry {
        view: View(r.u64()?),
        seq: SeqNum(r.u64()?),
        cert: get_opt_cert(r)?,
        batch: get_batch(r, ctx)?,
    })
}

fn get_opt_seq(r: &mut Reader<'_>) -> Option<Option<SeqNum>> {
    match r.u8()? {
        0 => Some(None),
        1 => Some(Some(SeqNum(r.u64()?))),
        _ => None,
    }
}

fn get_vc_request(r: &mut Reader<'_>, ctx: &mut DecodeCtx<'_>) -> Option<PoeVcRequest> {
    let from = ReplicaId(r.u32()?);
    let view = View(r.u64()?);
    let stable_seq = get_opt_seq(r)?;
    let count = r.u32()? as usize;
    if count > r.remainder() {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        entries.push(get_exec_entry(r, ctx)?);
    }
    let signature = r.signature()?;
    Some(PoeVcRequest { from, view, stable_seq, entries, signature })
}

fn get_pbft_prepared(r: &mut Reader<'_>, ctx: &mut DecodeCtx<'_>) -> Option<PbftPreparedEntry> {
    Some(PbftPreparedEntry {
        view: View(r.u64()?),
        seq: SeqNum(r.u64()?),
        digest: r.digest()?,
        batch: get_batch(r, ctx)?,
    })
}

fn get_pbft_view_change(r: &mut Reader<'_>, ctx: &mut DecodeCtx<'_>) -> Option<PbftViewChange> {
    let from = ReplicaId(r.u32()?);
    let new_view = View(r.u64()?);
    let stable_seq = get_opt_seq(r)?;
    let count = r.u32()? as usize;
    if count > r.remainder() {
        return None;
    }
    let mut prepared = Vec::with_capacity(count);
    for _ in 0..count {
        prepared.push(get_pbft_prepared(r, ctx)?);
    }
    let signature = r.signature()?;
    Some(PbftViewChange { from, new_view, stable_seq, prepared, signature })
}

fn get_qc(r: &mut Reader<'_>) -> Option<HsQuorumCert> {
    Some(HsQuorumCert { height: r.u64()?, block: r.digest()?, cert: get_cert(r)? })
}

fn get_opt_qc(r: &mut Reader<'_>) -> Option<Option<HsQuorumCert>> {
    match r.u8()? {
        0 => Some(None),
        1 => Some(Some(get_qc(r)?)),
        _ => None,
    }
}

fn get_block(r: &mut Reader<'_>, ctx: &mut DecodeCtx<'_>) -> Option<Arc<HsBlock>> {
    Some(Arc::new(HsBlock {
        height: r.u64()?,
        parent: r.digest()?,
        justify: get_opt_qc(r)?,
        batch: get_batch(r, ctx)?,
    }))
}

fn get_reply(r: &mut Reader<'_>) -> Option<ClientReply> {
    let kind = match r.u8()? {
        0 => ReplyKind::PoeInform,
        1 => ReplyKind::PbftReply,
        2 => ReplyKind::ZyzSpecResponse,
        3 => ReplyKind::ZyzLocalCommit,
        4 => ReplyKind::SbftExecuteAck,
        5 => ReplyKind::HsReply,
        _ => return None,
    };
    Some(ClientReply {
        kind,
        view: View(r.u64()?),
        seq: SeqNum(r.u64()?),
        req_digest: r.digest()?,
        req_id: r.u64()?,
        result: r.wire_bytes()?,
        replica: ReplicaId(r.u32()?),
        history: match r.u8()? {
            0 => None,
            1 => Some(r.digest()?),
            _ => return None,
        },
    })
}

/// Decodes one message from `buf` (must consume the entire buffer).
/// Payload byte strings are copied; prefer [`decode_msg_shared`] when
/// the input is a shared frame.
pub fn decode_msg(buf: &[u8]) -> Result<ProtocolMsg, DecodeError> {
    let mut r = Reader::new(buf);
    let mut ctx = DecodeCtx { pool: None };
    let msg = decode_inner(&mut r, &mut ctx).ok_or(DecodeError)?;
    r.finish()?;
    Ok(msg)
}

/// Decodes one message from a shared frame (must consume it entirely).
/// Request payloads and reply results become zero-copy views into
/// `frame`; the frame stays alive as long as any decoded payload does.
pub fn decode_msg_shared(frame: &WireBytes) -> Result<ProtocolMsg, DecodeError> {
    let mut r = Reader::over_frame(frame);
    let mut ctx = DecodeCtx { pool: None };
    let msg = decode_inner(&mut r, &mut ctx).ok_or(DecodeError)?;
    r.finish()?;
    Ok(msg)
}

/// [`decode_msg_shared`] with batch-container recycling: a warmed pool
/// makes the whole decode allocation-free (request payloads included).
pub fn decode_msg_pooled(
    frame: &WireBytes,
    pool: &mut BatchPool,
) -> Result<ProtocolMsg, DecodeError> {
    let mut r = Reader::over_frame(frame);
    let mut ctx = DecodeCtx { pool: Some(pool) };
    let msg = decode_inner(&mut r, &mut ctx).ok_or(DecodeError)?;
    r.finish()?;
    Ok(msg)
}

fn decode_inner(r: &mut Reader<'_>, ctx: &mut DecodeCtx<'_>) -> Option<ProtocolMsg> {
    Some(match r.u8()? {
        0 => ProtocolMsg::Request(get_request(r)?),
        1 => ProtocolMsg::RequestBroadcast(get_request(r)?),
        2 => ProtocolMsg::Forward(get_request(r)?),
        3 => ProtocolMsg::Reply(get_reply(r)?),
        10 => ProtocolMsg::PoePropose {
            view: View(r.u64()?),
            seq: SeqNum(r.u64()?),
            batch: get_batch(r, ctx)?,
        },
        11 => ProtocolMsg::PoeSupport {
            view: View(r.u64()?),
            seq: SeqNum(r.u64()?),
            share: get_share(r)?,
        },
        12 => ProtocolMsg::PoeSupportMac {
            view: View(r.u64()?),
            seq: SeqNum(r.u64()?),
            digest: r.digest()?,
        },
        13 => ProtocolMsg::PoeCertify {
            view: View(r.u64()?),
            seq: SeqNum(r.u64()?),
            cert: get_cert(r)?,
        },
        14 => ProtocolMsg::PoeVcRequest(get_vc_request(r, ctx)?),
        15 => {
            let new_view = View(r.u64()?);
            let count = r.u32()? as usize;
            if count > r.remainder() {
                return None;
            }
            let mut requests = Vec::with_capacity(count);
            for _ in 0..count {
                requests.push(get_vc_request(r, ctx)?);
            }
            ProtocolMsg::PoeNvPropose { new_view, requests }
        }
        20 => ProtocolMsg::PbftPrePrepare {
            view: View(r.u64()?),
            seq: SeqNum(r.u64()?),
            batch: get_batch(r, ctx)?,
        },
        21 => ProtocolMsg::PbftPrepare {
            view: View(r.u64()?),
            seq: SeqNum(r.u64()?),
            digest: r.digest()?,
        },
        22 => ProtocolMsg::PbftCommit {
            view: View(r.u64()?),
            seq: SeqNum(r.u64()?),
            digest: r.digest()?,
        },
        23 => ProtocolMsg::PbftViewChangeMsg(get_pbft_view_change(r, ctx)?),
        24 => {
            let new_view = View(r.u64()?);
            let vc_count = r.u32()? as usize;
            if vc_count > r.remainder() {
                return None;
            }
            let mut view_changes = Vec::with_capacity(vc_count);
            for _ in 0..vc_count {
                view_changes.push(get_pbft_view_change(r, ctx)?);
            }
            let pp_count = r.u32()? as usize;
            if pp_count > r.remainder() {
                return None;
            }
            let mut pre_prepares = Vec::with_capacity(pp_count);
            for _ in 0..pp_count {
                let seq = SeqNum(r.u64()?);
                let batch = get_batch(r, ctx)?;
                pre_prepares.push((seq, batch));
            }
            ProtocolMsg::PbftNewView { new_view, view_changes, pre_prepares }
        }
        30 => ProtocolMsg::ZyzOrderReq {
            view: View(r.u64()?),
            seq: SeqNum(r.u64()?),
            history: r.digest()?,
            batch: get_batch(r, ctx)?,
        },
        31 => {
            let view = View(r.u64()?);
            let seq = SeqNum(r.u64()?);
            let history = r.digest()?;
            let count = r.u32()? as usize;
            if count > r.remainder() {
                return None;
            }
            let mut replicas = Vec::with_capacity(count);
            for _ in 0..count {
                replicas.push(ReplicaId(r.u32()?));
            }
            ProtocolMsg::ZyzCommit(ZyzCommitCert { view, seq, history, replicas })
        }
        40 => ProtocolMsg::SbftPrePrepare {
            view: View(r.u64()?),
            seq: SeqNum(r.u64()?),
            batch: get_batch(r, ctx)?,
        },
        41 => ProtocolMsg::SbftSignShare {
            view: View(r.u64()?),
            seq: SeqNum(r.u64()?),
            share: get_share(r)?,
        },
        42 => ProtocolMsg::SbftFullCommitProof {
            view: View(r.u64()?),
            seq: SeqNum(r.u64()?),
            cert: get_cert(r)?,
        },
        43 => ProtocolMsg::SbftSignState {
            view: View(r.u64()?),
            seq: SeqNum(r.u64()?),
            share: get_share(r)?,
        },
        44 => ProtocolMsg::SbftExecuteAck {
            view: View(r.u64()?),
            seq: SeqNum(r.u64()?),
            cert: get_cert(r)?,
        },
        50 => ProtocolMsg::HsProposal { block: get_block(r, ctx)? },
        51 => ProtocolMsg::HsVote { height: r.u64()?, block: r.digest()?, share: get_share(r)? },
        52 => ProtocolMsg::HsNewView { height: r.u64()?, high_qc: get_opt_qc(r)? },
        60 => ProtocolMsg::Checkpoint { seq: SeqNum(r.u64()?), state_digest: r.digest()? },
        61 => ProtocolMsg::StateRequest(match r.u8()? {
            0 => StateRequestKind::Manifest,
            1 => StateRequestKind::Chunk { stable: SeqNum(r.u64()?), chunk: r.u32()? },
            2 => StateRequestKind::Tail { after: SeqNum(r.u64()?) },
            _ => return None,
        }),
        62 => ProtocolMsg::StateChunk(match r.u8()? {
            0 => StateChunkPayload::Manifest(RepairManifest {
                stable: SeqNum(r.u64()?),
                state_digest: r.digest()?,
                history_digest: r.digest()?,
                image_len: r.u64()?,
                image_digest: r.digest()?,
            }),
            1 => StateChunkPayload::Chunk {
                stable: SeqNum(r.u64()?),
                chunk: r.u32()?,
                total: r.u32()?,
                // Shared mode: a zero-copy sub-view of the frame.
                data: r.wire_bytes()?,
            },
            2 => {
                let after = SeqNum(r.u64()?);
                let count = r.u32()? as usize;
                if count > r.remainder() {
                    return None;
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    entries.push(get_exec_entry(r, ctx)?);
                }
                StateChunkPayload::Tail { after, entries }
            }
            _ => return None,
        }),
        _ => return None,
    })
}

// -------------------------------------------------------------- envelope

/// Writes an envelope (sender, auth, message) into any sink.
pub fn write_envelope<S: Sink>(out: &mut S, env: &Envelope) {
    match env.from {
        NodeId::Replica(r) => {
            out.put_u8(0);
            out.put(&r.0.to_le_bytes());
        }
        NodeId::Client(c) => {
            out.put_u8(1);
            out.put(&c.0.to_le_bytes());
        }
    }
    put_auth_tag(out, &env.auth);
    write_msg(out, &env.msg);
}

/// Exact encoded size of an envelope, without allocating.
pub fn envelope_encoded_len(env: &Envelope) -> usize {
    let mut counter = LenCounter::default();
    write_envelope(&mut counter, env);
    counter.0
}

/// Encodes an envelope into a fresh, exactly-sized buffer (one
/// allocation; see [`ScratchPool::encode_envelope`] for zero).
pub fn encode_envelope(env: &Envelope) -> Vec<u8> {
    let mut out = Vec::with_capacity(envelope_encoded_len(env));
    write_envelope(&mut out, env);
    out
}

/// Encodes an envelope into `out`, clearing it first and reserving the
/// exact encoded size.
pub fn encode_envelope_into(env: &Envelope, out: &mut Vec<u8>) {
    out.clear();
    out.reserve(envelope_encoded_len(env));
    write_envelope(out, env);
}

/// Writes an envelope around **already-encoded** message bytes — the
/// per-peer link-authentication path: the message is encoded once (via
/// [`ScratchPool::encode_msg`]), then each peer's envelope is assembled
/// around the shared bytes with that peer's tag, without re-walking the
/// message structure per recipient.
pub fn write_envelope_parts<S: Sink>(out: &mut S, from: NodeId, auth: &AuthTag, msg_bytes: &[u8]) {
    match from {
        NodeId::Replica(r) => {
            out.put_u8(0);
            out.put(&r.0.to_le_bytes());
        }
        NodeId::Client(c) => {
            out.put_u8(1);
            out.put(&c.0.to_le_bytes());
        }
    }
    put_auth_tag(out, auth);
    out.put(msg_bytes);
}

/// Byte offset where the message encoding starts inside an encoded
/// envelope — exactly the region a link authenticator covers (the
/// sender header and the tag itself are excluded, since the tag cannot
/// cover its own bytes). `None` when the buffer is too short to hold
/// the header or claims a tag running past the end.
pub fn envelope_msg_offset(buf: &[u8]) -> Option<usize> {
    // [from kind u8][from id u32][auth_len u32][auth tag ...][msg ...]
    if buf.len() < 9 || buf[0] > 1 {
        return None;
    }
    let auth_len = u32::from_le_bytes(buf[5..9].try_into().expect("len 4")) as usize;
    let offset = 9usize.checked_add(auth_len)?;
    (offset <= buf.len()).then_some(offset)
}

// ---------------------------------------------------------- scratch pool

/// A reusable pool of encode buffers for allocation-free steady-state
/// encoding.
///
/// Every `encode_msg`/`encode_envelope` call on the pool takes a
/// recycled buffer (or allocates one the first few times), encodes into
/// it pre-sized via [`encoded_len`], and hands it out; callers return it
/// with [`ScratchPool::recycle`] once the bytes are on the wire. After
/// warm-up the pool reaches a fixed point where **no encode allocates**:
/// buffers keep their high-water-mark capacity, and `clear()` +
/// `reserve()` are O(1) no-ops.
///
/// **Complexity.** `take`/`recycle` are O(1) vector push/pop; memory is
/// bounded by `max_buffers × high-water-mark message size` (default 64
/// buffers; beyond that `recycle` drops the buffer instead of growing
/// the pool, so a burst cannot pin memory forever).
///
/// The pool is deliberately not thread-safe: each replica/worker thread
/// owns one (the fabric runtime is one automaton per thread), so there
/// is no synchronization on the hot path.
#[derive(Debug)]
pub struct ScratchPool {
    free: Vec<Vec<u8>>,
    max_buffers: usize,
    /// Encodes served without taking a fresh allocation for the buffer.
    reuse_hits: u64,
    /// Buffers newly allocated because the pool was empty.
    misses: u64,
}

impl Default for ScratchPool {
    fn default() -> Self {
        ScratchPool::new()
    }
}

impl ScratchPool {
    /// Default pool bound: enough for every in-flight message of a
    /// replica's send window without unbounded growth.
    pub const DEFAULT_MAX_BUFFERS: usize = 64;

    /// An empty pool with the default bound.
    pub fn new() -> ScratchPool {
        ScratchPool::with_max_buffers(Self::DEFAULT_MAX_BUFFERS)
    }

    /// An empty pool holding at most `max_buffers` recycled buffers.
    pub fn with_max_buffers(max_buffers: usize) -> ScratchPool {
        ScratchPool { free: Vec::new(), max_buffers, reuse_hits: 0, misses: 0 }
    }

    /// Takes a cleared buffer from the pool (allocating if empty).
    pub fn take(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(buf) => {
                self.reuse_hits += 1;
                buf
            }
            None => {
                self.misses += 1;
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the pool for reuse. Dropped (deallocating) if
    /// the pool is already at its bound.
    pub fn recycle(&mut self, mut buf: Vec<u8>) {
        if self.free.len() < self.max_buffers {
            buf.clear();
            self.free.push(buf);
        }
    }

    /// Encodes `msg` into a pooled buffer (allocation-free once warm).
    ///
    /// Deliberately skips the `encoded_len` measuring pass: a recycled
    /// buffer already carries its high-water-mark capacity, so the
    /// reserve would be a no-op bought with a full structural traversal.
    /// Only cold (freshly allocated) buffers pay amortized growth.
    pub fn encode_msg(&mut self, msg: &ProtocolMsg) -> Vec<u8> {
        let mut buf = self.take();
        write_msg(&mut buf, msg);
        buf
    }

    /// Encodes `env` into a pooled buffer (allocation-free once warm;
    /// same no-measuring-pass strategy as [`ScratchPool::encode_msg`]).
    pub fn encode_envelope(&mut self, env: &Envelope) -> Vec<u8> {
        let mut buf = self.take();
        write_envelope(&mut buf, env);
        buf
    }

    /// Buffers currently available for reuse.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// `(reuse_hits, fresh_allocations)` counters, for instrumentation.
    pub fn stats(&self) -> (u64, u64) {
        (self.reuse_hits, self.misses)
    }
}

/// Decodes an envelope (payloads copied out of `buf`).
pub fn decode_envelope(buf: &[u8]) -> Result<Envelope, DecodeError> {
    let mut r = Reader::new(buf);
    decode_envelope_inner(&mut r, &mut DecodeCtx { pool: None })
}

/// Decodes an envelope from a shared frame: the carried message's
/// payloads become zero-copy views into `frame`.
pub fn decode_envelope_shared(frame: &WireBytes) -> Result<Envelope, DecodeError> {
    let mut r = Reader::over_frame(frame);
    decode_envelope_inner(&mut r, &mut DecodeCtx { pool: None })
}

/// [`decode_envelope_shared`] with batch-container recycling (see
/// [`BatchPool`]).
pub fn decode_envelope_pooled(
    frame: &WireBytes,
    pool: &mut BatchPool,
) -> Result<Envelope, DecodeError> {
    let mut r = Reader::over_frame(frame);
    decode_envelope_inner(&mut r, &mut DecodeCtx { pool: Some(pool) })
}

fn decode_envelope_inner(
    r: &mut Reader<'_>,
    ctx: &mut DecodeCtx<'_>,
) -> Result<Envelope, DecodeError> {
    let from = match r.u8().ok_or(DecodeError)? {
        0 => NodeId::Replica(ReplicaId(r.u32().ok_or(DecodeError)?)),
        1 => NodeId::Client(ClientId(r.u32().ok_or(DecodeError)?)),
        _ => return Err(DecodeError),
    };
    let auth_raw = r.bytes().ok_or(DecodeError)?;
    let (auth, used) = AuthTag::decode(auth_raw).ok_or(DecodeError)?;
    if used != auth_raw.len() {
        return Err(DecodeError);
    }
    let msg = decode_inner(r, ctx).ok_or(DecodeError)?;
    r.finish()?;
    Ok(Envelope { from, msg, auth })
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_crypto::{CertScheme, CryptoMode, KeyMaterial};

    fn km() -> std::sync::Arc<KeyMaterial> {
        KeyMaterial::generate(4, 2, 3, CryptoMode::Cmac, CertScheme::MultiSig, 1)
    }

    fn sample_request(signed: bool) -> ClientRequest {
        let sig = signed.then(|| km().client(0).sign(b"x"));
        ClientRequest::new(ClientId(0), 7, vec![1u8, 2, 3, 4, 5], sig)
    }

    fn sample_batch() -> Arc<Batch> {
        Batch::new(vec![sample_request(true), sample_request(false)])
    }

    fn sample_cert() -> ThresholdCert {
        let km = km();
        let providers: Vec<_> = (0..4).map(|i| km.replica(i)).collect();
        let shares: Vec<_> = providers.iter().map(|p| p.ts_share(b"m")).collect();
        providers[0].ts_aggregate(b"m", &shares).unwrap()
    }

    fn sample_vc() -> PoeVcRequest {
        PoeVcRequest {
            from: ReplicaId(2),
            view: View(3),
            stable_seq: Some(SeqNum(10)),
            entries: vec![
                ExecEntry {
                    view: View(3),
                    seq: SeqNum(11),
                    cert: Some(sample_cert()),
                    batch: sample_batch(),
                },
                ExecEntry { view: View(3), seq: SeqNum(12), cert: None, batch: sample_batch() },
            ],
            signature: km().replica(2).sign(b"vc"),
        }
    }

    fn all_sample_messages() -> Vec<ProtocolMsg> {
        let b = sample_batch();
        let cert = sample_cert();
        let share = km().replica(1).ts_share(b"m");
        let d = Digest::of(b"d");
        let reply = ClientReply {
            kind: ReplyKind::ZyzSpecResponse,
            view: View(1),
            seq: SeqNum(2),
            req_digest: d,
            req_id: 9,
            result: vec![4u8, 5].into(),
            replica: ReplicaId(3),
            history: Some(Digest::of(b"h")),
        };
        let pbft_vc = PbftViewChange {
            from: ReplicaId(1),
            new_view: View(4),
            stable_seq: None,
            prepared: vec![PbftPreparedEntry {
                view: View(3),
                seq: SeqNum(12),
                digest: d,
                batch: b.clone(),
            }],
            signature: km().replica(1).sign(b"pbft-vc"),
        };
        let block = Arc::new(HsBlock {
            height: 5,
            parent: d,
            justify: Some(HsQuorumCert { height: 4, block: d, cert: cert.clone() }),
            batch: b.clone(),
        });
        vec![
            ProtocolMsg::Request(sample_request(true)),
            ProtocolMsg::RequestBroadcast(sample_request(false)),
            ProtocolMsg::Forward(sample_request(true)),
            ProtocolMsg::Reply(reply),
            ProtocolMsg::PoePropose { view: View(1), seq: SeqNum(2), batch: b.clone() },
            ProtocolMsg::PoeSupport { view: View(1), seq: SeqNum(2), share: share.clone() },
            ProtocolMsg::PoeSupportMac { view: View(1), seq: SeqNum(2), digest: d },
            ProtocolMsg::PoeCertify { view: View(1), seq: SeqNum(2), cert: cert.clone() },
            ProtocolMsg::PoeVcRequest(sample_vc()),
            ProtocolMsg::PoeNvPropose { new_view: View(4), requests: vec![sample_vc()] },
            ProtocolMsg::PbftPrePrepare { view: View(1), seq: SeqNum(2), batch: b.clone() },
            ProtocolMsg::PbftPrepare { view: View(1), seq: SeqNum(2), digest: d },
            ProtocolMsg::PbftCommit { view: View(1), seq: SeqNum(2), digest: d },
            ProtocolMsg::PbftViewChangeMsg(pbft_vc.clone()),
            ProtocolMsg::PbftNewView {
                new_view: View(4),
                view_changes: vec![pbft_vc],
                pre_prepares: vec![(SeqNum(13), b.clone())],
            },
            ProtocolMsg::ZyzOrderReq {
                view: View(1),
                seq: SeqNum(2),
                history: d,
                batch: b.clone(),
            },
            ProtocolMsg::ZyzCommit(ZyzCommitCert {
                view: View(1),
                seq: SeqNum(2),
                history: d,
                replicas: vec![ReplicaId(0), ReplicaId(1), ReplicaId(2)],
            }),
            ProtocolMsg::SbftPrePrepare { view: View(1), seq: SeqNum(2), batch: b.clone() },
            ProtocolMsg::SbftSignShare { view: View(1), seq: SeqNum(2), share: share.clone() },
            ProtocolMsg::SbftFullCommitProof { view: View(1), seq: SeqNum(2), cert: cert.clone() },
            ProtocolMsg::SbftSignState { view: View(1), seq: SeqNum(2), share: share.clone() },
            ProtocolMsg::SbftExecuteAck { view: View(1), seq: SeqNum(2), cert: cert.clone() },
            ProtocolMsg::HsProposal { block },
            ProtocolMsg::HsVote { height: 5, block: d, share },
            ProtocolMsg::HsNewView { height: 5, high_qc: None },
            ProtocolMsg::Checkpoint { seq: SeqNum(100), state_digest: d },
            ProtocolMsg::StateRequest(StateRequestKind::Manifest),
            ProtocolMsg::StateRequest(StateRequestKind::Chunk { stable: SeqNum(99), chunk: 3 }),
            ProtocolMsg::StateRequest(StateRequestKind::Tail { after: SeqNum(99) }),
            ProtocolMsg::StateChunk(StateChunkPayload::Manifest(RepairManifest {
                stable: SeqNum(99),
                state_digest: d,
                history_digest: Digest::of(b"h"),
                image_len: 123_456,
                image_digest: Digest::of(b"img"),
            })),
            ProtocolMsg::StateChunk(StateChunkPayload::Chunk {
                stable: SeqNum(99),
                chunk: 3,
                total: 31,
                data: vec![9u8, 8, 7, 6, 5].into(),
            }),
            ProtocolMsg::StateChunk(StateChunkPayload::Tail {
                after: SeqNum(99),
                entries: vec![
                    ExecEntry {
                        view: View(3),
                        seq: SeqNum(100),
                        cert: Some(sample_cert()),
                        batch: sample_batch(),
                    },
                    ExecEntry {
                        view: View(3),
                        seq: SeqNum(101),
                        cert: None,
                        batch: sample_batch(),
                    },
                ],
            }),
        ]
    }

    #[test]
    fn roundtrip_every_variant() {
        for msg in all_sample_messages() {
            let bytes = encode_msg(&msg);
            let decoded = decode_msg(&bytes).unwrap_or_else(|_| panic!("{}", msg.label()));
            assert_eq!(decoded, msg, "variant {}", msg.label());
        }
    }

    #[test]
    fn encoded_len_matches_buffer() {
        for msg in all_sample_messages() {
            assert_eq!(encoded_len(&msg), encode_msg(&msg).len(), "variant {}", msg.label());
        }
    }

    #[test]
    fn truncation_rejected_everywhere() {
        for msg in all_sample_messages() {
            let bytes = encode_msg(&msg);
            for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
                assert!(
                    decode_msg(&bytes[..cut]).is_err(),
                    "variant {} accepted truncation at {cut}",
                    msg.label()
                );
                let frame = WireBytes::copy_from(&bytes[..cut]);
                assert!(
                    decode_msg_shared(&frame).is_err(),
                    "variant {} accepted truncation at {cut} (shared mode)",
                    msg.label()
                );
            }
        }
    }

    /// The `finish()` exhaustion check: a well-formed message followed by
    /// padding must be rejected, for every variant, in every decode mode.
    #[test]
    fn padded_frames_rejected_everywhere() {
        let mut pool = BatchPool::new();
        for msg in all_sample_messages() {
            let mut bytes = encode_msg(&msg);
            bytes.push(0);
            assert!(decode_msg(&bytes).is_err(), "variant {} accepted padding", msg.label());
            let frame = WireBytes::from(bytes);
            assert!(
                decode_msg_shared(&frame).is_err(),
                "variant {} accepted padding (shared mode)",
                msg.label()
            );
            assert!(
                decode_msg_pooled(&frame, &mut pool).is_err(),
                "variant {} accepted padding (pooled mode)",
                msg.label()
            );
        }
    }

    #[test]
    fn padded_envelope_rejected() {
        let env = Envelope {
            from: NodeId::Client(ClientId(9)),
            auth: AuthTag::None,
            msg: ProtocolMsg::Request(sample_request(false)),
        };
        let mut bytes = encode_envelope(&env);
        bytes.push(7);
        assert!(decode_envelope(&bytes).is_err());
        assert!(decode_envelope_shared(&WireBytes::from(bytes)).is_err());
    }

    #[test]
    fn shared_decode_matches_owned_everywhere() {
        for msg in all_sample_messages() {
            let frame = encode_frame(&msg);
            let shared = decode_msg_shared(&frame).unwrap_or_else(|_| panic!("{}", msg.label()));
            assert_eq!(shared, msg, "variant {}", msg.label());
            let owned = decode_msg(&frame).expect("owned decode");
            assert_eq!(shared, owned, "variant {}", msg.label());
        }
    }

    /// Shared-mode payloads are views into the frame, not copies.
    #[test]
    fn shared_decode_is_zero_copy() {
        let msg = ProtocolMsg::PoePropose { view: View(1), seq: SeqNum(2), batch: sample_batch() };
        let frame = encode_frame(&msg);
        let ProtocolMsg::PoePropose { batch, .. } = decode_msg_shared(&frame).expect("decode")
        else {
            panic!("wrong variant");
        };
        for req in &batch.requests {
            assert!(
                req.op.shares_buffer_with(&frame),
                "request payload must be a view into the receive frame"
            );
        }
        // Reply results share the frame too.
        let reply_msg = {
            let mut m = all_sample_messages();
            m.remove(3) // the Reply sample
        };
        let frame = encode_frame(&reply_msg);
        let ProtocolMsg::Reply(r) = decode_msg_shared(&frame).expect("decode") else {
            panic!("expected Reply, got {}", reply_msg.label());
        };
        assert!(r.result.shares_buffer_with(&frame));
    }

    /// STATE-CHUNK image data decodes as a sub-view of the receive frame
    /// (the whole point of chunked repair: no per-chunk copies on the
    /// requester's hot path).
    #[test]
    fn state_chunk_shared_decode_is_zero_copy() {
        let msg = ProtocolMsg::StateChunk(StateChunkPayload::Chunk {
            stable: SeqNum(40),
            chunk: 1,
            total: 4,
            data: vec![0xAB; 512].into(),
        });
        let frame = encode_frame(&msg);
        let ProtocolMsg::StateChunk(StateChunkPayload::Chunk { data, .. }) =
            decode_msg_shared(&frame).expect("decode")
        else {
            panic!("wrong variant");
        };
        assert_eq!(data.len(), 512);
        assert!(
            data.shares_buffer_with(&frame),
            "chunk data must be a view into the receive frame"
        );
    }

    /// A warmed [`BatchPool`] hands the same batch container back out.
    #[test]
    fn batch_pool_recycles_containers() {
        let msg = ProtocolMsg::PoePropose { view: View(1), seq: SeqNum(2), batch: sample_batch() };
        let frame = encode_frame(&msg);
        let mut pool = BatchPool::new();

        let ProtocolMsg::PoePropose { batch, .. } =
            decode_msg_pooled(&frame, &mut pool).expect("decode")
        else {
            panic!("wrong variant");
        };
        let first_ptr = Arc::as_ptr(&batch);
        pool.recycle(batch);
        assert_eq!(pool.available(), 1);

        let ProtocolMsg::PoePropose { batch, .. } =
            decode_msg_pooled(&frame, &mut pool).expect("decode")
        else {
            panic!("wrong variant");
        };
        assert_eq!(Arc::as_ptr(&batch), first_ptr, "second decode must reuse the container");
        // A batch still referenced elsewhere is not recycled.
        let held = batch.clone();
        pool.recycle(batch);
        assert_eq!(pool.available(), 0, "shared batch must not enter the pool");
        drop(held);
        let (hits, misses) = pool.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(decode_msg(&[200]).is_err());
        assert!(decode_msg(&[]).is_err());
    }

    #[test]
    fn envelope_roundtrip() {
        let km = km();
        let provider = km.replica(0);
        let msg =
            ProtocolMsg::PoeSupportMac { view: View(0), seq: SeqNum(1), digest: Digest::of(b"q") };
        let body = encode_msg(&msg);
        let env = Envelope {
            from: NodeId::Replica(ReplicaId(0)),
            auth: provider.authenticate(1, &body),
            msg,
        };
        let bytes = encode_envelope(&env);
        let decoded = decode_envelope(&bytes).expect("envelope");
        assert_eq!(decoded, env);
        // And the receiving replica can verify the link tag.
        let receiver = km.replica(1);
        let rebody = encode_msg(&decoded.msg);
        assert!(receiver.check(0, &rebody, &decoded.auth));
    }

    #[test]
    fn envelope_client_sender_roundtrip() {
        let env = Envelope {
            from: NodeId::Client(ClientId(9)),
            auth: AuthTag::None,
            msg: ProtocolMsg::Request(sample_request(false)),
        };
        let bytes = encode_envelope(&env);
        assert_eq!(decode_envelope(&bytes).expect("envelope"), env);
    }

    #[test]
    fn vc_signing_bytes_exclude_signature() {
        let mut vc = sample_vc();
        let before = poe_vc_signing_bytes(&vc);
        vc.signature = km().replica(2).sign(b"different");
        assert_eq!(poe_vc_signing_bytes(&vc), before);
    }

    /// The streamed writers frame crypto payloads with a length prefix
    /// taken from `encoded_len()` (pure arithmetic) rather than from a
    /// materialized buffer — so the prefix must equal the bytes the
    /// shared encoder actually emits, for every scheme and tag variant.
    #[test]
    fn share_cert_writers_match_crypto_encoders() {
        let km = km();
        for scheme in [CertScheme::MultiSig, CertScheme::Simulated] {
            let skm = KeyMaterial::generate(4, 0, 3, CryptoMode::Cmac, scheme, 9);
            let share = skm.replica(1).ts_share(b"m");
            let mut streamed = Vec::new();
            put_share(&mut streamed, &share);
            assert_eq!(streamed.len(), share.encoded_len(), "share scheme {scheme:?}");

            let providers: Vec<_> = (0..4).map(|i| skm.replica(i)).collect();
            let shares: Vec<_> = providers.iter().map(|p| p.ts_share(b"m")).collect();
            let cert = providers[0].ts_aggregate(b"m", &shares).expect("aggregate");
            let mut streamed = Vec::new();
            put_cert(&mut streamed, &cert);
            let mut cert_bytes = Vec::new();
            cert.encode(&mut cert_bytes);
            let mut framed = Vec::new();
            put_bytes(&mut framed, &cert_bytes);
            assert_eq!(streamed, framed, "cert scheme {scheme:?}");
        }

        for tag in [
            AuthTag::None,
            AuthTag::Hmac([7u8; 32]),
            AuthTag::Cmac([8u8; 16]),
            AuthTag::Sig(km.replica(0).sign(b"x")),
        ] {
            let mut streamed = Vec::new();
            put_auth_tag(&mut streamed, &tag);
            let mut tag_bytes = Vec::new();
            tag.encode(&mut tag_bytes);
            let mut framed = Vec::new();
            put_bytes(&mut framed, &tag_bytes);
            assert_eq!(streamed, framed, "tag {tag:?}");
        }
    }

    #[test]
    fn encode_msg_buffer_is_exactly_sized() {
        for msg in all_sample_messages() {
            let buf = encode_msg(&msg);
            assert_eq!(buf.capacity(), buf.len(), "variant {}", msg.label());
        }
    }

    #[test]
    fn encode_msg_into_matches_encode_msg() {
        let mut buf = Vec::new();
        for msg in all_sample_messages() {
            encode_msg_into(&msg, &mut buf);
            assert_eq!(buf, encode_msg(&msg), "variant {}", msg.label());
        }
    }

    #[test]
    fn envelope_encoded_len_matches_buffer() {
        let env = Envelope {
            from: NodeId::Client(ClientId(9)),
            auth: AuthTag::Hmac([3u8; 32]),
            msg: ProtocolMsg::Request(sample_request(true)),
        };
        let buf = encode_envelope(&env);
        assert_eq!(envelope_encoded_len(&env), buf.len());
        assert_eq!(buf.capacity(), buf.len());
        let mut into = Vec::new();
        encode_envelope_into(&env, &mut into);
        assert_eq!(into, buf);
    }

    #[test]
    fn envelope_parts_match_whole_envelope_encode() {
        for from in [NodeId::Replica(ReplicaId(3)), NodeId::Client(ClientId(7))] {
            for auth in [AuthTag::None, AuthTag::Hmac([9u8; 32]), AuthTag::Cmac([2u8; 16])] {
                let msg =
                    ProtocolMsg::Checkpoint { seq: SeqNum(4), state_digest: Digest::of(b"c") };
                let env = Envelope { from, auth: auth.clone(), msg: msg.clone() };
                let whole = encode_envelope(&env);
                let msg_bytes = encode_msg(&msg);
                let mut parts = Vec::new();
                write_envelope_parts(&mut parts, from, &auth, &msg_bytes);
                assert_eq!(parts, whole);
            }
        }
    }

    #[test]
    fn envelope_msg_offset_finds_the_authenticated_region() {
        let msg = ProtocolMsg::Checkpoint { seq: SeqNum(8), state_digest: Digest::of(b"x") };
        for auth in [AuthTag::None, AuthTag::Hmac([1u8; 32]), AuthTag::Cmac([6u8; 16])] {
            let env = Envelope { from: NodeId::Replica(ReplicaId(1)), auth, msg: msg.clone() };
            let buf = encode_envelope(&env);
            let offset = envelope_msg_offset(&buf).expect("well-formed envelope");
            assert_eq!(&buf[offset..], &encode_msg(&msg)[..], "auth {:?}", env.auth);
        }
    }

    #[test]
    fn envelope_msg_offset_rejects_malformed_headers() {
        assert_eq!(envelope_msg_offset(&[]), None, "empty");
        assert_eq!(envelope_msg_offset(&[0u8; 8]), None, "short of the auth length");
        assert_eq!(envelope_msg_offset(&[2, 0, 0, 0, 0, 0, 0, 0, 0]), None, "bad sender kind");
        // Claimed tag length runs past the end of the buffer.
        let mut lying = vec![0u8; 9];
        lying[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(envelope_msg_offset(&lying), None, "tag length overruns");
    }

    #[test]
    fn scratch_pool_reuses_buffers() {
        let mut pool = ScratchPool::new();
        let msg = ProtocolMsg::PoePropose { view: View(1), seq: SeqNum(2), batch: sample_batch() };
        let expect = encode_msg(&msg);

        let buf = pool.encode_msg(&msg);
        assert_eq!(buf, expect);
        let first_ptr = buf.as_ptr();
        let first_cap = buf.capacity();
        pool.recycle(buf);
        assert_eq!(pool.available(), 1);

        // The second encode must reuse the exact same backing buffer.
        let buf = pool.encode_msg(&msg);
        assert_eq!(buf, expect);
        assert_eq!(buf.as_ptr(), first_ptr);
        assert_eq!(buf.capacity(), first_cap);
        pool.recycle(buf);

        let (hits, misses) = pool.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn scratch_pool_envelope_roundtrips() {
        let mut pool = ScratchPool::new();
        let env = Envelope {
            from: NodeId::Replica(ReplicaId(2)),
            auth: AuthTag::Cmac([5u8; 16]),
            msg: ProtocolMsg::Checkpoint { seq: SeqNum(3), state_digest: Digest::of(b"s") },
        };
        for _ in 0..3 {
            let buf = pool.encode_envelope(&env);
            assert_eq!(decode_envelope(&buf).expect("roundtrip"), env);
            pool.recycle(buf);
        }
        assert_eq!(pool.stats().1, 1, "exactly one fresh buffer allocated");
    }

    #[test]
    fn scratch_pool_respects_bound() {
        let mut pool = ScratchPool::with_max_buffers(2);
        for _ in 0..5 {
            pool.recycle(Vec::with_capacity(64));
        }
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn propose_size_scales_with_batch() {
        let small = ProtocolMsg::PoePropose {
            view: View(0),
            seq: SeqNum(0),
            batch: Batch::new(vec![sample_request(true)]),
        };
        let large = ProtocolMsg::PoePropose {
            view: View(0),
            seq: SeqNum(0),
            batch: Batch::new(
                (0..100)
                    .map(|i| {
                        let r = sample_request(true);
                        ClientRequest::new(r.client, i, r.op, r.signature)
                    })
                    .collect(),
            ),
        };
        assert!(encoded_len(&large) > 50 * encoded_len(&small));
    }
}
