//! Refcounted wire-buffer views.
//!
//! [`WireBytes`] is the unit of the zero-copy message path: a cheap-to-
//! clone `{Arc<[u8]>, range}` view into a shared frame. A receive buffer
//! is turned into one `WireBytes` frame; decoding slices request
//! payloads and reply results straight out of it ([`crate::codec`]'s
//! shared-decode mode), so the bytes are never copied between the wire
//! and the consensus state. Broadcast works the other way around: the
//! sender encodes a message once into a frame and hands clones of the
//! view to all `n − 1` recipients.
//!
//! Digests, MAC tags, and signatures are computed over the view directly
//! (`WireBytes` derefs to `[u8]`), so the crypto layer needs no copies
//! either.

use std::fmt;
use std::ops::{Deref, Range};
use std::sync::{Arc, OnceLock};

/// A cheap-to-clone view into a shared, immutable byte buffer.
///
/// Cloning bumps a reference count and copies two offsets; no bytes
/// move. Equality, ordering, and hashing are by content, so a sliced
/// view and an owned copy of the same bytes compare equal.
#[derive(Clone)]
pub struct WireBytes {
    buf: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl WireBytes {
    /// A view of the whole buffer.
    pub fn new(buf: Arc<[u8]>) -> WireBytes {
        let end = buf.len();
        WireBytes { buf, start: 0, end }
    }

    /// The shared empty view (a process-wide cached allocation, so
    /// empty payloads — zero-payload workloads, empty results — never
    /// allocate).
    pub fn empty() -> WireBytes {
        static EMPTY: OnceLock<Arc<[u8]>> = OnceLock::new();
        WireBytes::new(EMPTY.get_or_init(|| Arc::from(&[][..])).clone())
    }

    /// Copies `bytes` into a fresh shared buffer (the one copy an owned
    /// frame ever pays).
    pub fn copy_from(bytes: &[u8]) -> WireBytes {
        if bytes.is_empty() {
            return WireBytes::empty();
        }
        WireBytes::new(Arc::from(bytes))
    }

    /// A sub-view of this view. `range` is relative to `self`; the
    /// underlying buffer is shared, not copied.
    ///
    /// # Panics
    /// Panics if `range` is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> WireBytes {
        assert!(range.start <= range.end && self.start + range.end <= self.end);
        WireBytes {
            buf: self.buf.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether two views share the same backing buffer (diagnostics and
    /// zero-copy tests; unrelated to equality, which is by content).
    pub fn shares_buffer_with(&self, other: &WireBytes) -> bool {
        Arc::ptr_eq(&self.buf, &other.buf)
    }
}

impl Deref for WireBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for WireBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for WireBytes {
    fn from(v: Vec<u8>) -> WireBytes {
        if v.is_empty() {
            return WireBytes::empty();
        }
        WireBytes::new(Arc::from(v))
    }
}

impl From<&[u8]> for WireBytes {
    fn from(s: &[u8]) -> WireBytes {
        WireBytes::copy_from(s)
    }
}

impl<const N: usize> From<[u8; N]> for WireBytes {
    fn from(a: [u8; N]) -> WireBytes {
        WireBytes::copy_from(&a)
    }
}

impl<const N: usize> From<&[u8; N]> for WireBytes {
    fn from(a: &[u8; N]) -> WireBytes {
        WireBytes::copy_from(a)
    }
}

impl PartialEq for WireBytes {
    fn eq(&self, other: &WireBytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for WireBytes {}

impl PartialOrd for WireBytes {
    fn partial_cmp(&self, other: &WireBytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WireBytes {
    fn cmp(&self, other: &WireBytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for WireBytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for WireBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WireBytes(len={}", self.len())?;
        for b in self.as_slice().iter().take(8) {
            write!(f, " {b:02x}")?;
        }
        if self.len() > 8 {
            write!(f, " …")?;
        }
        write!(f, ")")
    }
}

impl Default for WireBytes {
    fn default() -> WireBytes {
        WireBytes::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_buffer() {
        let frame = WireBytes::copy_from(b"hello world");
        let word = frame.slice(6..11);
        assert_eq!(&word[..], b"world");
        assert!(word.shares_buffer_with(&frame));
        // Slicing a slice stays relative and shared.
        let tail = word.slice(1..5);
        assert_eq!(&tail[..], b"orld");
        assert!(tail.shares_buffer_with(&frame));
    }

    #[test]
    fn equality_is_by_content() {
        let a = WireBytes::copy_from(b"xabcx").slice(1..4);
        let b = WireBytes::copy_from(b"abc");
        assert_eq!(a, b);
        assert!(!a.shares_buffer_with(&b));
        assert_ne!(b, WireBytes::copy_from(b"abd"));
    }

    #[test]
    fn empty_is_shared() {
        let a = WireBytes::empty();
        let b = WireBytes::empty();
        let c = WireBytes::from(Vec::new());
        assert!(a.shares_buffer_with(&b));
        assert!(a.shares_buffer_with(&c));
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn from_vec_takes_contents() {
        let w = WireBytes::from(vec![1u8, 2, 3]);
        assert_eq!(&w[..], &[1, 2, 3]);
        assert_eq!(w.len(), 3);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        WireBytes::copy_from(b"ab").slice(1..3).slice(0..3);
    }

    #[test]
    fn clone_is_view_not_copy() {
        let a = WireBytes::copy_from(b"shared");
        let b = a.clone();
        assert!(a.shares_buffer_with(&b));
        assert_eq!(a, b);
    }

    #[test]
    fn ordering_and_hash_follow_content() {
        use std::collections::BTreeSet;
        let mut set = BTreeSet::new();
        set.insert(WireBytes::copy_from(b"b"));
        set.insert(WireBytes::copy_from(b"a"));
        set.insert(WireBytes::copy_from(b"xax").slice(1..2));
        assert_eq!(set.len(), 2);
        assert_eq!(&set.iter().next().unwrap()[..], b"a");
    }
}
