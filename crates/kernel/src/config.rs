//! Cluster configuration.
//!
//! Collects every knob the paper's evaluation sweeps: replica count,
//! batch size (Fig. 9i/j), payload mode (Fig. 9e–h), crypto mode (Fig. 8),
//! certificate scheme (I3), out-of-order window (Fig. 9k/l and §II-F),
//! checkpoint period, and the view-change timeout with exponential
//! back-off (Theorem 7).

use crate::time::Duration;
use poe_crypto::{CertScheme, CryptoMode};

/// Payload configuration of the workload (paper §IV: "Standard Payload"
/// vs "Zero Payload").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PayloadMode {
    /// Full request payloads travel in PROPOSE messages (~5400 B per
    /// 100-request batch in the paper).
    #[default]
    Standard,
    /// Replicas execute dummy instructions; proposals carry no request
    /// bodies, so bandwidth is not the bottleneck.
    Zero,
}

/// Static configuration shared by every replica and client of a cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of replicas `n`.
    pub n: usize,
    /// Maximum number of byzantine replicas `f` (largest `f` with
    /// `n > 3f`).
    pub f: usize,
    /// Number of requests aggregated into one batch.
    pub batch_size: usize,
    /// Out-of-order window: how many consensus slots may be in flight at
    /// once (the PBFT high-minus-low watermark). `1` disables
    /// out-of-order processing (Fig. 9k/l).
    pub ooo_window: usize,
    /// Checkpoint period in sequence numbers.
    pub checkpoint_interval: u64,
    /// How long the primary lets a partial batch sit before flushing it
    /// (the batch-cut timer of the paper's Figure 6 pipeline; full
    /// batches are cut immediately).
    pub batch_cut_delay: Duration,
    /// Base timeout before a replica suspects the primary.
    pub base_timeout: Duration,
    /// Client retransmission timeout.
    pub client_timeout: Duration,
    /// Authentication scheme for replica/client messages.
    pub crypto_mode: CryptoMode,
    /// Threshold-certificate scheme (the paper's TS instantiation).
    pub cert_scheme: CertScheme,
    /// Payload mode.
    pub payload: PayloadMode,
    /// Base retry timeout for the state-transfer repair protocol (doubles
    /// per retry, like the view-change back-off).
    pub repair_timeout: Duration,
    /// Responder-side repair budget: STATE-CHUNK responses a replica will
    /// serve between budget refills (refilled on every stable checkpoint
    /// and view entry), so catch-up traffic cannot starve consensus.
    pub repair_budget_chunks: u32,
    /// Size of one checkpoint-image chunk in a STATE-CHUNK message.
    pub repair_chunk_bytes: usize,
    /// Deterministic seed for key generation and workloads.
    pub seed: u64,
}

impl ClusterConfig {
    /// A configuration for `n` replicas with the paper's defaults:
    /// batch size 100, checkpointing every 1000 sequence numbers, 3 s
    /// timeouts (§IV-D chooses 3 s), CMAC replica authentication.
    pub fn new(n: usize) -> ClusterConfig {
        assert!(n >= 4, "BFT needs n >= 4 (n > 3f with f >= 1)");
        ClusterConfig {
            n,
            f: (n - 1) / 3,
            batch_size: 100,
            ooo_window: 256,
            checkpoint_interval: 1_000,
            batch_cut_delay: Duration::from_millis(5),
            base_timeout: Duration::from_secs(3),
            client_timeout: Duration::from_secs(3),
            crypto_mode: CryptoMode::Cmac,
            cert_scheme: CertScheme::MultiSig,
            payload: PayloadMode::Standard,
            repair_timeout: Duration::from_millis(500),
            repair_budget_chunks: 64,
            repair_chunk_bytes: 4096,
            seed: 0xD1CE,
        }
    }

    /// Number of non-faulty replicas `nf = n - f`; also the quorum and
    /// threshold-certificate size used throughout the paper.
    pub fn nf(&self) -> usize {
        self.n - self.f
    }

    /// The `f + 1` quorum (e.g. view-change join, PBFT client replies).
    pub fn f_plus_one(&self) -> usize {
        self.f + 1
    }

    /// Sets the batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size >= 1);
        self.batch_size = batch_size;
        self
    }

    /// Sets the out-of-order window (1 = sequential consensus).
    pub fn with_ooo_window(mut self, window: usize) -> Self {
        assert!(window >= 1);
        self.ooo_window = window;
        self
    }

    /// Sets the crypto mode.
    pub fn with_crypto_mode(mut self, mode: CryptoMode) -> Self {
        self.crypto_mode = mode;
        self
    }

    /// Sets the certificate scheme.
    pub fn with_cert_scheme(mut self, scheme: CertScheme) -> Self {
        self.cert_scheme = scheme;
        self
    }

    /// Sets the payload mode.
    pub fn with_payload(mut self, payload: PayloadMode) -> Self {
        self.payload = payload;
        self
    }

    /// Sets the base (view-change) timeout.
    pub fn with_base_timeout(mut self, t: Duration) -> Self {
        self.base_timeout = t;
        self
    }

    /// Sets the client retransmission timeout.
    pub fn with_client_timeout(mut self, t: Duration) -> Self {
        self.client_timeout = t;
        self
    }

    /// Sets the batch-cut delay for partial batches.
    pub fn with_batch_cut_delay(mut self, t: Duration) -> Self {
        self.batch_cut_delay = t;
        self
    }

    /// Sets the checkpoint interval.
    pub fn with_checkpoint_interval(mut self, every: u64) -> Self {
        assert!(every >= 1);
        self.checkpoint_interval = every;
        self
    }

    /// Sets the deterministic seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the repair (state-transfer) base retry timeout.
    pub fn with_repair_timeout(mut self, t: Duration) -> Self {
        self.repair_timeout = t;
        self
    }

    /// Sets the responder-side repair budget (chunks per refill).
    pub fn with_repair_budget_chunks(mut self, chunks: u32) -> Self {
        assert!(chunks >= 1);
        self.repair_budget_chunks = chunks;
        self
    }

    /// Sets the checkpoint-image chunk size.
    pub fn with_repair_chunk_bytes(mut self, bytes: usize) -> Self {
        assert!(bytes >= 1);
        self.repair_chunk_bytes = bytes;
        self
    }

    /// View-change timeout for a replica that has already performed
    /// `attempts` view changes: exponential back-off, doubling each time
    /// (Theorem 7's liveness argument).
    pub fn view_change_timeout(&self, attempts: u32) -> Duration {
        self.base_timeout.saturating_mul(1u64 << attempts.min(20))
    }

    /// Repair retry timeout after `attempts` unproductive retries: same
    /// doubling back-off shape as [`ClusterConfig::view_change_timeout`].
    pub fn repair_retry_timeout(&self, attempts: u32) -> Duration {
        self.repair_timeout.saturating_mul(1u64 << attempts.min(20))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f_is_max_for_n() {
        assert_eq!(ClusterConfig::new(4).f, 1);
        assert_eq!(ClusterConfig::new(7).f, 2);
        assert_eq!(ClusterConfig::new(16).f, 5);
        assert_eq!(ClusterConfig::new(32).f, 10);
        assert_eq!(ClusterConfig::new(64).f, 21);
        assert_eq!(ClusterConfig::new(91).f, 30);
    }

    #[test]
    fn n_gt_3f_holds() {
        for n in 4..100 {
            let c = ClusterConfig::new(n);
            assert!(c.n > 3 * c.f, "n={n}");
            assert!(c.nf() > 2 * c.f, "n={n}");
        }
    }

    #[test]
    fn quorum_sizes() {
        let c = ClusterConfig::new(4);
        assert_eq!(c.nf(), 3);
        assert_eq!(c.f_plus_one(), 2);
        let c = ClusterConfig::new(91);
        assert_eq!(c.nf(), 61); // paper: "clients wait for the fastest nf = 61 replies"
    }

    #[test]
    #[should_panic(expected = "n >= 4")]
    fn too_small_cluster_rejected() {
        let _ = ClusterConfig::new(3);
    }

    #[test]
    fn backoff_doubles() {
        let c = ClusterConfig::new(4).with_base_timeout(Duration::from_millis(100));
        assert_eq!(c.view_change_timeout(0), Duration::from_millis(100));
        assert_eq!(c.view_change_timeout(1), Duration::from_millis(200));
        assert_eq!(c.view_change_timeout(3), Duration::from_millis(800));
    }

    #[test]
    fn builder_chain() {
        let c = ClusterConfig::new(16)
            .with_batch_size(50)
            .with_ooo_window(1)
            .with_crypto_mode(CryptoMode::Ed25519)
            .with_payload(PayloadMode::Zero)
            .with_checkpoint_interval(10)
            .with_seed(7);
        assert_eq!(c.batch_size, 50);
        assert_eq!(c.ooo_window, 1);
        assert_eq!(c.crypto_mode, CryptoMode::Ed25519);
        assert_eq!(c.payload, PayloadMode::Zero);
        assert_eq!(c.checkpoint_interval, 10);
        assert_eq!(c.seed, 7);
    }
}
