//! # poe-kernel
//!
//! The consensus kernel shared by the Proof-of-Execution protocol
//! (`poe-consensus`) and the baseline protocols (`poe-baselines`). It
//! contains everything that is protocol-independent:
//!
//! * [`ids`] — replica/client/node identifiers, views, sequence numbers.
//! * [`time`] — virtual time and durations (nanosecond granularity).
//! * [`config`] — cluster configuration (`n`, `f`, batch size, timeouts,
//!   watermarks, crypto mode).
//! * [`request`] — client requests, transactions-as-bytes, and batches.
//! * [`messages`] — the full message vocabulary of all five protocols
//!   (PoE, PBFT, Zyzzyva, SBFT, HotStuff) plus checkpointing.
//! * [`codec`] — a hand-written, dependency-free binary wire format.
//! * [`quorum`] — distinct-sender vote counting and matching-value quorums.
//! * [`watermark`] — the out-of-order sequence window (PBFT-style
//!   low/high watermarks) that §II-F of the paper identifies as crucial.
//! * [`timer`] — logical timers for the sans-I/O automatons.
//! * [`automaton`] — the [`automaton::ReplicaAutomaton`] trait: protocols
//!   are deterministic state machines consuming [`automaton::Event`]s and
//!   emitting [`automaton::Action`]s; the simulator and the threaded fabric
//!   are two interpreters of the same automatons.
//! * [`statemachine`] — the replicated application interface with
//!   *speculative execution support* (apply / rollback / checkpoint), the
//!   hook that PoE's safe-rollback ingredient (I2) requires.
//! * [`wire`] — refcounted wire-buffer views ([`wire::WireBytes`]): the
//!   zero-copy unit shared by the codec's frame-backed decode mode, the
//!   network substrates, and request/reply payloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod automaton;
pub mod codec;
pub mod config;
pub mod ids;
pub mod messages;
pub mod quorum;
pub mod request;
pub mod statemachine;
pub mod time;
pub mod timer;
pub mod watermark;
pub mod wire;

pub use automaton::{Action, Event, Outbox, ReplicaAutomaton};
pub use config::ClusterConfig;
pub use ids::{ClientId, NodeId, ReplicaId, SeqNum, View};
pub use messages::{ClientReply, Envelope, ProtocolMsg};
pub use request::{Batch, ClientRequest};
pub use statemachine::{ExecOutcome, StateMachine};
pub use time::{Duration, Time};
pub use wire::WireBytes;
