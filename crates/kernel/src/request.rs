//! Client requests and batches.
//!
//! A client `c` signs its transaction `T` and sends `⟨T⟩c` to the primary;
//! the primary aggregates requests into batches (paper §III "Batching")
//! and proposes whole batches under a single sequence number.
//!
//! Transaction bytes are carried as [`WireBytes`] views, so a request
//! decoded from a network frame keeps pointing into that frame instead
//! of owning a copy, and forwarding/proposing/executing it never
//! duplicates the payload. The request digest `D(⟨T⟩c)` is computed at
//! most once per request instance and cached — it is consulted on every
//! hop (dedup, reply matching, INFORM, progress timers).

use crate::ids::ClientId;
use crate::wire::WireBytes;
use poe_crypto::digest::{digest_concat, Digest, DigestWriter};
use poe_crypto::ed25519::Signature;
use poe_crypto::Sink;
use std::sync::{Arc, OnceLock};

/// A signed client request `⟨T⟩c`.
///
/// The transaction body is opaque bytes at this layer; the replicated
/// state machine (`poe-store`) interprets them. Construct with
/// [`ClientRequest::new`] (the digest cache is not a public field).
///
/// **Invariant:** treat `client`, `req_id`, and `op` as immutable after
/// construction — [`ClientRequest::digest`] caches its result, so
/// mutating an identity field afterwards would leave a stale digest.
/// Build a fresh request with `new` instead of editing one in place
/// (`signature` is not covered by the digest and may be set freely).
#[derive(Clone, Debug)]
pub struct ClientRequest {
    /// The issuing client.
    pub client: ClientId,
    /// Client-local request number (monotonically increasing; also used
    /// for reply matching and retransmission de-duplication).
    pub req_id: u64,
    /// Serialized transaction `T` (a view into the carrying frame when
    /// the request was decoded from the wire).
    pub op: WireBytes,
    /// The client's Ed25519 signature over `(client, req_id, op)`, absent
    /// only in `CryptoMode::None` runs.
    pub signature: Option<Signature>,
    /// Lazily computed `D(⟨T⟩c)`; not part of the wire format or of
    /// request equality.
    digest: OnceLock<Digest>,
}

impl PartialEq for ClientRequest {
    fn eq(&self, other: &Self) -> bool {
        self.client == other.client
            && self.req_id == other.req_id
            && self.op == other.op
            && self.signature == other.signature
    }
}

impl Eq for ClientRequest {}

impl ClientRequest {
    /// Builds a request. The digest is computed lazily on first use.
    pub fn new(
        client: ClientId,
        req_id: u64,
        op: impl Into<WireBytes>,
        signature: Option<Signature>,
    ) -> ClientRequest {
        ClientRequest { client, req_id, op: op.into(), signature, digest: OnceLock::new() }
    }

    /// The byte string a client signs (and replicas verify).
    pub fn signing_bytes(client: ClientId, req_id: u64, op: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(op.len() + 16);
        Self::write_signing_bytes(&mut out, client, req_id, op);
        out
    }

    /// Streams the signing byte string into any sink (allocation-free
    /// when the sink is a reused scratch buffer).
    pub fn write_signing_bytes<S: Sink>(out: &mut S, client: ClientId, req_id: u64, op: &[u8]) {
        out.put(&client.0.to_le_bytes());
        out.put(&req_id.to_le_bytes());
        out.put(op);
    }

    /// Digest `D(⟨T⟩c)` identifying the request (cached after the first
    /// call on this instance; clones carry the cache along).
    pub fn digest(&self) -> Digest {
        *self.digest.get_or_init(|| {
            digest_concat(&[&self.client.0.to_le_bytes(), &self.req_id.to_le_bytes(), &self.op])
        })
    }

    /// Approximate wire size in bytes (payload + ids + signature).
    pub fn encoded_len(&self) -> usize {
        4 + 8 + 4 + self.op.len() + 1 + if self.signature.is_some() { 64 } else { 0 }
    }
}

/// A batch of client requests proposed under one sequence number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Batch {
    /// The requests, in proposal order.
    pub requests: Vec<ClientRequest>,
    /// Digest committing to the whole batch.
    pub digest: Digest,
}

impl Batch {
    /// Builds a batch and computes its digest.
    pub fn new(requests: Vec<ClientRequest>) -> Arc<Batch> {
        let digest = Self::digest_of(&requests);
        Arc::new(Batch { requests, digest })
    }

    /// The empty batch (used by no-op proposals during view change).
    /// Process-wide cached: the batch-cut timer path and view-change
    /// no-ops share one allocation instead of minting a fresh
    /// `Arc<Batch>` per call.
    pub fn empty() -> Arc<Batch> {
        static EMPTY: OnceLock<Arc<Batch>> = OnceLock::new();
        EMPTY.get_or_init(|| Batch::new(Vec::new())).clone()
    }

    /// Digest over the request digests (order-sensitive). Streams
    /// through [`DigestWriter`], so no intermediate buffers are
    /// materialized (this runs on every batch construction, including
    /// the codec's zero-copy decode path).
    pub fn digest_of(requests: &[ClientRequest]) -> Digest {
        let mut w = DigestWriter::new();
        for r in requests {
            w.part(&r.digest().0);
        }
        w.finish()
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the batch holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Approximate wire size of the batch payload.
    pub fn encoded_len(&self) -> usize {
        4 + self.requests.iter().map(ClientRequest::encoded_len).sum::<usize>() + 32
    }
}

/// Accumulates incoming requests and cuts batches of the configured size
/// (the primary's batch-threads in the paper's Figure 6 pipeline).
#[derive(Debug)]
pub struct Batcher {
    pending: Vec<ClientRequest>,
    batch_size: usize,
}

impl Batcher {
    /// A batcher cutting batches of `batch_size` requests.
    pub fn new(batch_size: usize) -> Batcher {
        assert!(batch_size >= 1);
        Batcher { pending: Vec::with_capacity(batch_size), batch_size }
    }

    /// Adds a request; returns a full batch when one is ready.
    pub fn push(&mut self, req: ClientRequest) -> Option<Arc<Batch>> {
        self.pending.push(req);
        (self.pending.len() >= self.batch_size).then(|| self.cut())
    }

    /// Cuts whatever is pending into a batch (possibly smaller than
    /// `batch_size`); `None` if nothing is pending.
    pub fn flush(&mut self) -> Option<Arc<Batch>> {
        (!self.pending.is_empty()).then(|| self.cut())
    }

    /// Number of requests waiting for the next cut.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn cut(&mut self) -> Arc<Batch> {
        let reqs = std::mem::replace(&mut self.pending, Vec::with_capacity(self.batch_size));
        Batch::new(reqs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(client: u32, req_id: u64, op: &[u8]) -> ClientRequest {
        ClientRequest::new(ClientId(client), req_id, op, None)
    }

    #[test]
    fn request_digest_distinguishes_fields() {
        let base = req(1, 1, b"op");
        assert_ne!(base.digest(), req(2, 1, b"op").digest());
        assert_ne!(base.digest(), req(1, 2, b"op").digest());
        assert_ne!(base.digest(), req(1, 1, b"oq").digest());
        assert_eq!(base.digest(), req(1, 1, b"op").digest());
    }

    #[test]
    fn digest_cache_survives_clone_and_matches() {
        let a = req(3, 9, b"payload");
        let before = a.digest();
        let b = a.clone();
        assert_eq!(b.digest(), before);
        // A fresh instance with identical fields computes the same value.
        assert_eq!(req(3, 9, b"payload").digest(), before);
    }

    #[test]
    fn equality_ignores_digest_cache() {
        let a = req(1, 1, b"x");
        let b = req(1, 1, b"x");
        let _ = a.digest(); // warm only one side's cache
        assert_eq!(a, b);
    }

    #[test]
    fn batch_digest_is_order_sensitive() {
        let a = req(1, 1, b"a");
        let b = req(1, 2, b"b");
        let d1 = Batch::new(vec![a.clone(), b.clone()]).digest;
        let d2 = Batch::new(vec![b, a]).digest;
        assert_ne!(d1, d2);
    }

    #[test]
    fn batch_digest_matches_concat_form() {
        // digest_of must stay equal to the digest_concat-over-request-
        // digests definition the wire format was built against.
        let reqs = vec![req(1, 1, b"a"), req(2, 2, b"bb")];
        let digests: Vec<[u8; 32]> = reqs.iter().map(|r| r.digest().0).collect();
        let parts: Vec<&[u8]> = digests.iter().map(|d| d.as_slice()).collect();
        assert_eq!(Batch::digest_of(&reqs), digest_concat(&parts));
    }

    #[test]
    fn empty_batch() {
        let b = Batch::empty();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn empty_batch_is_shared() {
        let a = Batch::empty();
        let b = Batch::empty();
        assert!(Arc::ptr_eq(&a, &b), "Batch::empty must reuse one cached allocation");
    }

    #[test]
    fn batcher_cuts_at_size() {
        let mut batcher = Batcher::new(3);
        assert!(batcher.push(req(0, 1, b"x")).is_none());
        assert!(batcher.push(req(0, 2, b"x")).is_none());
        let batch = batcher.push(req(0, 3, b"x")).expect("full batch");
        assert_eq!(batch.len(), 3);
        assert_eq!(batcher.pending_len(), 0);
    }

    #[test]
    fn batcher_flush_partial() {
        let mut batcher = Batcher::new(10);
        assert!(batcher.flush().is_none());
        batcher.push(req(0, 1, b"x"));
        batcher.push(req(0, 2, b"x"));
        let batch = batcher.flush().expect("partial batch");
        assert_eq!(batch.len(), 2);
        assert!(batcher.flush().is_none());
    }

    #[test]
    fn signing_bytes_roundtrip_layout() {
        let bytes = ClientRequest::signing_bytes(ClientId(7), 9, b"payload");
        assert_eq!(&bytes[..4], &7u32.to_le_bytes());
        assert_eq!(&bytes[4..12], &9u64.to_le_bytes());
        assert_eq!(&bytes[12..], b"payload");
        // The streamed form writes the identical byte string.
        let mut streamed = Vec::new();
        ClientRequest::write_signing_bytes(&mut streamed, ClientId(7), 9, b"payload");
        assert_eq!(streamed, bytes);
    }

    #[test]
    fn encoded_len_counts_signature() {
        let unsigned = req(1, 1, b"12345");
        let mut signed = unsigned.clone();
        signed.signature = Some(poe_crypto::ed25519::Signature::from_bytes([0u8; 64]));
        assert_eq!(signed.encoded_len(), unsigned.encoded_len() + 64);
    }
}
