//! Virtual time.
//!
//! The simulator runs on a deterministic virtual clock; the fabric maps
//! these types onto the wall clock. Nanosecond-granularity `u64`s cover
//! ~584 years of simulated time, ample for any experiment.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A duration in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Duration(pub u64);

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Duration {
        Duration(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000_000)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000_000)
    }

    /// As nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// As (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating multiplication (for exponential back-off).
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }

    /// Conversion to the standard library type (used by the fabric).
    pub fn to_std(self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.0)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

/// An absolute instant on the virtual clock (nanoseconds since start).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Time(pub u64);

impl Time {
    /// The clock origin.
    pub const ZERO: Time = Time(0);

    /// Nanoseconds since origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since origin.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed duration since `earlier` (saturating at zero).
    pub fn since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_are_consistent() {
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1000));
        assert_eq!(Duration::from_millis(1), Duration::from_micros(1000));
        assert_eq!(Duration::from_micros(1), Duration::from_nanos(1000));
    }

    #[test]
    fn arithmetic() {
        let t = Time::ZERO + Duration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!(t - Time::ZERO, Duration::from_millis(5));
        assert_eq!(Time(3).since(Time(10)), Duration::ZERO); // saturating
    }

    #[test]
    fn backoff_mul() {
        let d = Duration::from_millis(100);
        assert_eq!(d.saturating_mul(2), Duration::from_millis(200));
        assert_eq!(Duration(u64::MAX).saturating_mul(2), Duration(u64::MAX));
    }

    #[test]
    fn debug_rendering() {
        assert_eq!(format!("{:?}", Duration::from_nanos(12)), "12ns");
        assert_eq!(format!("{:?}", Duration::from_micros(3)), "3.000µs");
        assert_eq!(format!("{:?}", Duration::from_millis(7)), "7.000ms");
        assert_eq!(format!("{:?}", Duration::from_secs(2)), "2.000s");
    }
}
