//! The replicated application interface, with speculative-execution
//! support.
//!
//! PoE's ingredient I2 (safe rollbacks) requires the application to be able
//! to *revert* executed transactions when a view change discovers that a
//! speculatively executed batch did not survive. [`StateMachine`] therefore
//! exposes `rollback_to` next to `apply`, plus checkpoint hooks used by the
//! periodic checkpoint protocol.

use crate::ids::SeqNum;
use crate::request::Batch;
use crate::wire::WireBytes;
use poe_crypto::{Digest, DigestWriter};

/// Result of executing one batch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExecOutcome {
    /// One opaque result blob per request, in batch order (the `r` the
    /// INFORM message carries back to clients). Shared views: the store
    /// materializes each result once, and every INFORM/re-INFORM clones
    /// the view.
    pub results: Vec<WireBytes>,
}

impl ExecOutcome {
    /// An outcome with one empty result per request (all sharing the
    /// cached empty buffer).
    pub fn empty(batch_len: usize) -> ExecOutcome {
        ExecOutcome { results: vec![WireBytes::empty(); batch_len] }
    }

    /// Digest of all results (used to compare replica agreement).
    pub fn digest(&self) -> Digest {
        let mut w = DigestWriter::new();
        for r in &self.results {
            w.part(r);
        }
        w.finish()
    }
}

/// A deterministic replicated application.
///
/// Determinism is required by the system model: "on identical inputs, all
/// non-faulty replicas must produce identical outputs".
pub trait StateMachine: Send {
    /// Applies `batch` as the `seq`-th committed batch, returning per
    /// request results. Implementations must record enough undo
    /// information to honour a later [`StateMachine::rollback_to`].
    fn apply(&mut self, seq: SeqNum, batch: &Batch) -> ExecOutcome;

    /// Reverts every batch applied with sequence number greater than
    /// `keep_up_to` — or *every* revertible batch when `None` (PoE
    /// view-change Line 14: "Rollback any executed transactions not in
    /// NV-PROPOSE").
    fn rollback_to(&mut self, keep_up_to: Option<SeqNum>);

    /// A digest of the current application state (checkpoint messages
    /// compare these across replicas).
    fn state_digest(&self) -> Digest;

    /// Declares `seq` stable: undo information at and below `seq` may be
    /// garbage-collected and can no longer be rolled back.
    fn stabilize(&mut self, seq: SeqNum);

    /// Highest applied sequence number, if any batch has been applied.
    fn applied_up_to(&self) -> Option<SeqNum>;

    /// Serializes the application state *at the last stabilized
    /// checkpoint* (current state minus all still-revertible batches)
    /// into a canonical byte image: two replicas with the same stable
    /// state must produce byte-identical images regardless of apply
    /// order. Used by the state-transfer repair protocol. `None` means
    /// the machine does not support checkpoint export.
    fn checkpoint_image(&self) -> Option<Vec<u8>> {
        None
    }

    /// The digest a peer would report as [`StateMachine::state_digest`]
    /// right after installing this machine's
    /// [`StateMachine::checkpoint_image`] — i.e. the digest of the state
    /// *at the last stabilized checkpoint*. Machines with speculative
    /// (revertible) suffixes must override this; the default assumes
    /// current state and stable state coincide.
    fn stable_state_digest(&self) -> Digest {
        self.state_digest()
    }

    /// Replaces the entire application state with the image produced by
    /// a peer's [`StateMachine::checkpoint_image`], declaring `seq` both
    /// applied and stable. Returns false (leaving state unspecified only
    /// on a malformed image, which verified-digest callers never pass)
    /// when the image cannot be parsed or installation is unsupported.
    fn install_checkpoint(&mut self, _seq: SeqNum, _image: &[u8]) -> bool {
        false
    }
}

/// A trivial state machine that executes "dummy instructions": used for the
/// paper's zero-payload experiments and as a lightweight default.
#[derive(Debug, Default)]
pub struct NullStateMachine {
    applied: Vec<SeqNum>,
    spin_per_request: u64,
    counter: u64,
}

impl NullStateMachine {
    /// A no-op machine.
    pub fn new() -> NullStateMachine {
        NullStateMachine::default()
    }

    /// A machine that burns roughly `iters` arithmetic operations per
    /// request ("100 dummy instructions" in the paper's zero-payload
    /// setup).
    pub fn with_spin(iters: u64) -> NullStateMachine {
        NullStateMachine { spin_per_request: iters, ..Default::default() }
    }
}

impl StateMachine for NullStateMachine {
    fn apply(&mut self, seq: SeqNum, batch: &Batch) -> ExecOutcome {
        for _ in 0..batch.len().max(1) {
            // Dummy instructions: data-dependent so the optimizer keeps them.
            for _ in 0..self.spin_per_request {
                self.counter = self.counter.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
        }
        self.applied.push(seq);
        ExecOutcome::empty(batch.len())
    }

    fn rollback_to(&mut self, keep_up_to: Option<SeqNum>) {
        match keep_up_to {
            Some(seq) => self.applied.retain(|s| *s <= seq),
            None => self.applied.clear(),
        }
    }

    fn state_digest(&self) -> Digest {
        let bytes: Vec<u8> = self.applied.iter().flat_map(|s| s.0.to_le_bytes()).collect();
        Digest::of(&bytes)
    }

    fn stabilize(&mut self, _seq: SeqNum) {}

    fn applied_up_to(&self) -> Option<SeqNum> {
        self.applied.last().copied()
    }

    fn checkpoint_image(&self) -> Option<Vec<u8>> {
        // The null machine keeps no undo logs, so its image is simply
        // the full applied list.
        Some(self.applied.iter().flat_map(|s| s.0.to_le_bytes()).collect())
    }

    fn install_checkpoint(&mut self, _seq: SeqNum, image: &[u8]) -> bool {
        if !image.len().is_multiple_of(8) {
            return false;
        }
        self.applied = image
            .chunks_exact(8)
            .map(|c| SeqNum(u64::from_le_bytes(c.try_into().expect("8-byte chunk"))))
            .collect();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;
    use crate::request::ClientRequest;
    use std::sync::Arc;

    fn batch(k: u64) -> Arc<Batch> {
        Batch::new(vec![ClientRequest::new(ClientId(0), k, vec![1u8, 2, 3], None)])
    }

    #[test]
    fn null_machine_tracks_applied() {
        let mut sm = NullStateMachine::new();
        assert_eq!(sm.applied_up_to(), None);
        sm.apply(SeqNum(0), &batch(0));
        sm.apply(SeqNum(1), &batch(1));
        assert_eq!(sm.applied_up_to(), Some(SeqNum(1)));
    }

    #[test]
    fn null_machine_rollback() {
        let mut sm = NullStateMachine::new();
        for k in 0..5 {
            sm.apply(SeqNum(k), &batch(k));
        }
        let digest_at_2 = {
            let mut probe = NullStateMachine::new();
            for k in 0..3 {
                probe.apply(SeqNum(k), &batch(k));
            }
            probe.state_digest()
        };
        sm.rollback_to(Some(SeqNum(2)));
        assert_eq!(sm.applied_up_to(), Some(SeqNum(2)));
        assert_eq!(sm.state_digest(), digest_at_2);
        sm.rollback_to(None);
        assert_eq!(sm.applied_up_to(), None);
    }

    #[test]
    fn outcome_digest_varies_with_results() {
        let a = ExecOutcome { results: vec![vec![1u8].into(), vec![2u8].into()] };
        let b = ExecOutcome { results: vec![vec![1u8].into(), vec![3u8].into()] };
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.digest(), a.digest());
    }

    #[test]
    fn spin_machine_applies() {
        let mut sm = NullStateMachine::with_spin(100);
        let out = sm.apply(SeqNum(0), &batch(0));
        assert_eq!(out.results.len(), 1);
    }
}
