//! Quorum tracking.
//!
//! BFT protocols repeatedly answer the question "have `q` *distinct*
//! replicas said this?" — for PREPARE/COMMIT quorums, matching SUPPORT
//! digests, view-change joins (`f+1`), checkpoint stability (`2f+1`), and
//! client reply collection (`nf` identical INFORMs). The trackers here
//! centralize the distinct-sender and matching-value bookkeeping.

use crate::ids::ReplicaId;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::Hash;

/// Counts distinct voters toward a single threshold.
#[derive(Clone, Debug, Default)]
pub struct VoteSet {
    voters: BTreeSet<ReplicaId>,
}

impl VoteSet {
    /// An empty vote set.
    pub fn new() -> VoteSet {
        VoteSet::default()
    }

    /// Records a vote; returns true if it was new.
    pub fn insert(&mut self, from: ReplicaId) -> bool {
        self.voters.insert(from)
    }

    /// Whether `from` has voted.
    pub fn contains(&self, from: ReplicaId) -> bool {
        self.voters.contains(&from)
    }

    /// Number of distinct voters.
    pub fn len(&self) -> usize {
        self.voters.len()
    }

    /// True when no votes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.voters.is_empty()
    }

    /// True when at least `q` distinct replicas voted.
    pub fn reached(&self, q: usize) -> bool {
        self.voters.len() >= q
    }

    /// Iterates over the voters in id order.
    pub fn voters(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        self.voters.iter().copied()
    }
}

/// Counts votes *per value* (e.g. per digest) from distinct senders, and
/// reports when some value reaches a quorum.
///
/// A replica may only vote once: a second vote for a *different* value from
/// the same sender is rejected (byzantine equivocation does not double
/// count), mirroring the paper's "non-faulty replicas only send a single
/// SUPPORT message" argument in Proposition 2.
#[derive(Clone, Debug)]
pub struct MatchingVotes<V> {
    by_voter: BTreeMap<ReplicaId, V>,
    counts: BTreeMap<V, usize>,
}

impl<V: Clone + Ord + Hash> Default for MatchingVotes<V> {
    fn default() -> Self {
        MatchingVotes { by_voter: BTreeMap::new(), counts: BTreeMap::new() }
    }
}

impl<V: Clone + Ord + Hash> MatchingVotes<V> {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `from` voting for `value`. Returns `false` if `from`
    /// already voted (for any value).
    pub fn insert(&mut self, from: ReplicaId, value: V) -> bool {
        if self.by_voter.contains_key(&from) {
            return false;
        }
        self.by_voter.insert(from, value.clone());
        *self.counts.entry(value).or_insert(0) += 1;
        true
    }

    /// The number of votes for `value`.
    pub fn count_for(&self, value: &V) -> usize {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Total number of voters.
    pub fn total(&self) -> usize {
        self.by_voter.len()
    }

    /// Some value that reached quorum `q`, if any.
    pub fn quorum_value(&self, q: usize) -> Option<&V> {
        self.counts.iter().find(|(_, c)| **c >= q).map(|(v, _)| v)
    }

    /// The voters who voted for `value`.
    pub fn voters_for<'a>(&'a self, value: &'a V) -> impl Iterator<Item = ReplicaId> + 'a {
        self.by_voter.iter().filter(move |(_, v)| *v == value).map(|(r, _)| *r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vote_set_counts_distinct() {
        let mut vs = VoteSet::new();
        assert!(vs.is_empty());
        assert!(vs.insert(ReplicaId(0)));
        assert!(!vs.insert(ReplicaId(0)));
        assert!(vs.insert(ReplicaId(1)));
        assert_eq!(vs.len(), 2);
        assert!(vs.reached(2));
        assert!(!vs.reached(3));
        assert!(vs.contains(ReplicaId(1)));
        assert_eq!(vs.voters().collect::<Vec<_>>(), vec![ReplicaId(0), ReplicaId(1)]);
    }

    #[test]
    fn matching_votes_reach_quorum() {
        let mut mv = MatchingVotes::new();
        mv.insert(ReplicaId(0), "a");
        mv.insert(ReplicaId(1), "a");
        assert_eq!(mv.quorum_value(3), None);
        mv.insert(ReplicaId(2), "a");
        assert_eq!(mv.quorum_value(3), Some(&"a"));
        assert_eq!(mv.count_for(&"a"), 3);
        assert_eq!(mv.count_for(&"b"), 0);
    }

    #[test]
    fn equivocation_does_not_double_count() {
        let mut mv = MatchingVotes::new();
        assert!(mv.insert(ReplicaId(0), "a"));
        // Same replica tries to vote differently: rejected.
        assert!(!mv.insert(ReplicaId(0), "b"));
        assert_eq!(mv.count_for(&"a"), 1);
        assert_eq!(mv.count_for(&"b"), 0);
        assert_eq!(mv.total(), 1);
    }

    #[test]
    fn split_votes_no_quorum() {
        let mut mv = MatchingVotes::new();
        mv.insert(ReplicaId(0), "a");
        mv.insert(ReplicaId(1), "b");
        mv.insert(ReplicaId(2), "c");
        assert_eq!(mv.quorum_value(2), None);
        assert_eq!(mv.total(), 3);
    }

    #[test]
    fn voters_for_value() {
        let mut mv = MatchingVotes::new();
        mv.insert(ReplicaId(0), "a");
        mv.insert(ReplicaId(1), "b");
        mv.insert(ReplicaId(2), "a");
        let voters: Vec<_> = mv.voters_for(&"a").collect();
        assert_eq!(voters, vec![ReplicaId(0), ReplicaId(2)]);
    }
}
