//! Logical timers for sans-I/O automatons.
//!
//! Automatons never read a clock; they request timers via
//! [`crate::automaton::Action::SetTimer`] and receive
//! [`crate::automaton::Event::Timeout`] events. [`TimerKind`] enumerates
//! every timer any of the five protocols uses, so timeouts are
//! self-describing and need no id-to-meaning table in protocol code.

use crate::ids::{SeqNum, View};
use poe_crypto::Digest;

/// What a timer means to the automaton that set it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum TimerKind {
    /// A replica is waiting for progress on a client request it forwarded
    /// to the primary (PoE failure-detection rule 1, §II-C1).
    RequestProgress(Digest),
    /// A replica is waiting for the normal case to advance past `seq`.
    SlotProgress(SeqNum),
    /// Waiting for the NV-PROPOSE / NEW-VIEW of `view` after requesting a
    /// view change; expiry escalates to the next view.
    ViewChange(View),
    /// A client is waiting for enough replies to its request.
    ClientRetry(u64),
    /// Zyzzyva client: window to gather all `n` speculative responses
    /// before falling back to the commit path.
    ZyzFastPath(u64),
    /// SBFT collector: window to gather all `n` sign-shares before
    /// falling back to the slow path.
    SbftFastPath(SeqNum),
    /// HotStuff pacemaker round timer.
    HsRound(u64),
    /// The primary's batch cut-off (flush a partial batch).
    BatchCut,
    /// A lagging replica's state-transfer retry timer: re-drives the
    /// current repair phase (probe, missing chunks, or tail) with
    /// exponential backoff and source rotation.
    Repair,
    /// A responder whose repair-serving budget ran dry arms this to
    /// refill on an idle tick: budgets normally refill when a new
    /// checkpoint stabilizes, but a repair that starts after client
    /// traffic fully drains would otherwise stall until traffic
    /// resumes (no new checkpoints → no refills).
    RepairBudget,
}

/// Bookkeeping for pending timers on the runtime side.
///
/// Runtimes (simulator, fabric) use this to implement cancellation: a
/// fired timer is delivered only if its generation is still current.
#[derive(Clone, Debug, Default)]
pub struct TimerTable {
    generations: std::collections::HashMap<TimerKind, u64>,
    next_gen: u64,
}

impl TimerTable {
    /// An empty table.
    pub fn new() -> TimerTable {
        TimerTable::default()
    }

    /// Registers (or re-registers) a timer, returning its generation
    /// token. Older generations of the same kind become stale.
    pub fn arm(&mut self, kind: TimerKind) -> u64 {
        self.next_gen += 1;
        self.generations.insert(kind, self.next_gen);
        self.next_gen
    }

    /// Cancels a timer (future fires of any generation are stale).
    pub fn cancel(&mut self, kind: &TimerKind) {
        self.generations.remove(kind);
    }

    /// Whether a fire of `kind` with generation `gen` is still current.
    pub fn is_current(&self, kind: &TimerKind, gen: u64) -> bool {
        self.generations.get(kind) == Some(&gen)
    }

    /// Consumes a fire: returns true (and disarms) when current.
    pub fn fire(&mut self, kind: &TimerKind, gen: u64) -> bool {
        if self.is_current(kind, gen) {
            self.generations.remove(kind);
            true
        } else {
            false
        }
    }

    /// Number of armed timers.
    pub fn armed(&self) -> usize {
        self.generations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_fire_cycle() {
        let mut t = TimerTable::new();
        let g = t.arm(TimerKind::BatchCut);
        assert!(t.is_current(&TimerKind::BatchCut, g));
        assert!(t.fire(&TimerKind::BatchCut, g));
        // Second fire of the same generation is stale.
        assert!(!t.fire(&TimerKind::BatchCut, g));
    }

    #[test]
    fn rearm_invalidates_old_generation() {
        let mut t = TimerTable::new();
        let g1 = t.arm(TimerKind::ViewChange(View(1)));
        let g2 = t.arm(TimerKind::ViewChange(View(1)));
        assert!(!t.fire(&TimerKind::ViewChange(View(1)), g1));
        assert!(t.fire(&TimerKind::ViewChange(View(1)), g2));
    }

    #[test]
    fn cancel_prevents_fire() {
        let mut t = TimerTable::new();
        let g = t.arm(TimerKind::SlotProgress(SeqNum(5)));
        t.cancel(&TimerKind::SlotProgress(SeqNum(5)));
        assert!(!t.fire(&TimerKind::SlotProgress(SeqNum(5)), g));
        assert_eq!(t.armed(), 0);
    }

    #[test]
    fn kinds_are_independent() {
        let mut t = TimerTable::new();
        let g1 = t.arm(TimerKind::ClientRetry(1));
        let g2 = t.arm(TimerKind::ClientRetry(2));
        assert!(t.fire(&TimerKind::ClientRetry(1), g1));
        assert!(t.fire(&TimerKind::ClientRetry(2), g2));
    }
}
