//! The message vocabulary of all five protocols.
//!
//! One flat [`ProtocolMsg`] enum carries every message of PoE, PBFT,
//! Zyzzyva, SBFT, and HotStuff, plus the shared checkpoint protocol and
//! client traffic. A single enum keeps the network substrate, codec, and
//! simulator protocol-agnostic.
//!
//! Message names follow the paper: PoE's normal case is
//! PROPOSE → SUPPORT → CERTIFY → INFORM (Figure 3); its view change is
//! VC-REQUEST → NV-PROPOSE (Figure 5).

use crate::ids::{ReplicaId, SeqNum, View};
use crate::request::{Batch, ClientRequest};
use crate::wire::WireBytes;
use poe_crypto::digest::Digest;
use poe_crypto::ed25519::Signature;
use poe_crypto::provider::AuthTag;
use poe_crypto::threshold::{SignatureShare, ThresholdCert};
use std::sync::Arc;

/// One executed transaction in a PoE VC-REQUEST: the pair
/// `(CERTIFY(⟨h⟩, w, k), ⟨T⟩c)` of Figure 5 Line 4.
#[derive(Clone, PartialEq, Debug)]
pub struct ExecEntry {
    /// The view in which the batch was certified.
    pub view: View,
    /// The sequence number.
    pub seq: SeqNum,
    /// The CERTIFY certificate proving `nf` replicas supported it.
    ///
    /// `None` in the MAC support mode (Appendix A): MAC-authenticated
    /// SUPPORT votes produce no transferable certificate, so the new
    /// primary instead requires an entry to appear in `f + 1` distinct
    /// VC-REQUESTs before adopting it.
    pub cert: Option<ThresholdCert>,
    /// The batch itself.
    pub batch: Arc<Batch>,
}

/// PoE view-change request: `VC-REQUEST(v, E)` (Figure 5).
///
/// Carried both standalone and inside NV-PROPOSE, so it is signed with the
/// sender's digital signature ("The VC-REQUEST messages need to be signed,
/// as they need to be forwarded without tampering", §II-E).
#[derive(Clone, PartialEq, Debug)]
pub struct PoeVcRequest {
    /// The requesting replica.
    pub from: ReplicaId,
    /// The view being abandoned.
    pub view: View,
    /// Stable checkpoint this summary starts after.
    pub stable_seq: Option<SeqNum>,
    /// Consecutive executed transactions after the stable checkpoint.
    pub entries: Vec<ExecEntry>,
    /// Ed25519 signature over the encoding of the fields above.
    pub signature: Signature,
}

/// A prepared-batch proof inside a PBFT VIEW-CHANGE message.
#[derive(Clone, PartialEq, Debug)]
pub struct PbftPreparedEntry {
    /// View in which the batch prepared.
    pub view: View,
    /// Sequence number.
    pub seq: SeqNum,
    /// Batch digest.
    pub digest: Digest,
    /// The batch (real PBFT fetches bodies separately; we inline them).
    pub batch: Arc<Batch>,
}

/// PBFT VIEW-CHANGE message (signed, forwardable).
#[derive(Clone, PartialEq, Debug)]
pub struct PbftViewChange {
    /// The requesting replica.
    pub from: ReplicaId,
    /// The view being entered.
    pub new_view: View,
    /// Last stable checkpoint sequence.
    pub stable_seq: Option<SeqNum>,
    /// Batches prepared above the stable checkpoint.
    pub prepared: Vec<PbftPreparedEntry>,
    /// Ed25519 signature over the fields above.
    pub signature: Signature,
}

/// Zyzzyva commit certificate: `2f+1` matching speculative responses
/// collected by the client.
#[derive(Clone, PartialEq, Debug)]
pub struct ZyzCommitCert {
    /// View of the speculative responses.
    pub view: View,
    /// Sequence number being committed.
    pub seq: SeqNum,
    /// History digest the responses agreed on.
    pub history: Digest,
    /// The `2f+1` replicas whose responses matched.
    pub replicas: Vec<ReplicaId>,
}

/// A HotStuff block (chained variant): one block per consensus round.
#[derive(Clone, PartialEq, Debug)]
pub struct HsBlock {
    /// Round/height of the block.
    pub height: u64,
    /// Digest of the parent block.
    pub parent: Digest,
    /// Quorum certificate justifying the parent (None only for genesis).
    pub justify: Option<HsQuorumCert>,
    /// The proposed batch.
    pub batch: Arc<Batch>,
}

impl HsBlock {
    /// Digest identifying this block.
    pub fn digest(&self) -> Digest {
        let justify_digest = self.justify.as_ref().map(|qc| qc.block).unwrap_or(Digest::EMPTY);
        poe_crypto::digest_concat(&[
            &self.height.to_le_bytes(),
            self.parent.as_bytes(),
            justify_digest.as_bytes(),
            self.batch.digest.as_bytes(),
        ])
    }
}

/// A HotStuff quorum certificate over a block.
#[derive(Clone, PartialEq, Debug)]
pub struct HsQuorumCert {
    /// Height of the certified block.
    pub height: u64,
    /// Digest of the certified block.
    pub block: Digest,
    /// Aggregated threshold certificate from `n - f` votes.
    pub cert: ThresholdCert,
}

/// Which protocol/phase a client reply belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReplyKind {
    /// PoE INFORM (Figure 3 Line 23).
    PoeInform,
    /// PBFT REPLY after commit.
    PbftReply,
    /// Zyzzyva speculative response (fast path).
    ZyzSpecResponse,
    /// Zyzzyva local-commit (after the client distributed a commit cert).
    ZyzLocalCommit,
    /// SBFT execute-ack relayed by the executor.
    SbftExecuteAck,
    /// HotStuff reply after a block becomes committed.
    HsReply,
}

/// A reply sent by a replica to a client.
#[derive(Clone, PartialEq, Debug)]
pub struct ClientReply {
    /// Reply kind (protocol/phase).
    pub kind: ReplyKind,
    /// View (or HotStuff height) in which the request executed.
    pub view: View,
    /// Sequence number under which the request's batch executed.
    pub seq: SeqNum,
    /// Digest of the client request this reply answers.
    pub req_digest: Digest,
    /// Client-local request id (for matching).
    pub req_id: u64,
    /// Execution result bytes (empty when not executed yet, e.g. SBFT
    /// collector acks). A shared view: every replica's INFORM for the
    /// same execution clones the view, not the bytes.
    pub result: WireBytes,
    /// The replying replica.
    pub replica: ReplicaId,
    /// Zyzzyva: the replica's history digest up to and including `seq`.
    pub history: Option<Digest>,
}

/// Description of a responder's latest stable checkpoint, sent in reply
/// to a STATE-REQUEST manifest probe. A lagging replica acts on a
/// manifest only once `f + 1` distinct peers vouch for the same one
/// (field-for-field), which guarantees at least one honest voucher.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct RepairManifest {
    /// Sequence number of the stable checkpoint being offered.
    pub stable: SeqNum,
    /// Application state digest at `stable`.
    pub state_digest: Digest,
    /// [`Ledger::history_digest`] of the chain through `stable`.
    pub history_digest: Digest,
    /// Total length in bytes of the checkpoint image.
    pub image_len: u64,
    /// Digest of the full checkpoint image (verified after reassembly).
    pub image_digest: Digest,
}

/// What a STATE-REQUEST asks for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StateRequestKind {
    /// "Describe your latest stable checkpoint" (broadcast probe).
    Manifest,
    /// One chunk of the checkpoint image at `stable`.
    Chunk {
        /// The checkpoint the requester is fetching.
        stable: SeqNum,
        /// Zero-based chunk index.
        chunk: u32,
    },
    /// Certified transactions committed above `after` (the requester's
    /// freshly installed checkpoint), so it can rejoin at the live edge.
    Tail {
        /// The sequence number the tail starts after.
        after: SeqNum,
    },
}

/// The payload of a STATE-CHUNK response.
#[derive(Clone, PartialEq, Debug)]
pub enum StateChunkPayload {
    /// Answer to a manifest probe.
    Manifest(RepairManifest),
    /// One chunk of the checkpoint image. `data` stays a shared view of
    /// the receive frame on decode (zero-copy).
    Chunk {
        /// The checkpoint the chunk belongs to.
        stable: SeqNum,
        /// Zero-based chunk index.
        chunk: u32,
        /// Total number of chunks in the image.
        total: u32,
        /// The chunk bytes.
        data: WireBytes,
    },
    /// The responder's committed transactions above `after`, oldest
    /// first and gap-free. Entries reuse [`ExecEntry`]: certificates are
    /// present in threshold mode and `None` in MAC mode (where the
    /// requester instead demands `f + 1` matching tails).
    Tail {
        /// The sequence number the tail starts after (echoes the request).
        after: SeqNum,
        /// Consecutive committed entries starting at `after + 1`.
        entries: Vec<ExecEntry>,
    },
}

/// Every message that can travel between nodes.
#[derive(Clone, PartialEq, Debug)]
pub enum ProtocolMsg {
    // ------------------------------------------------------ client traffic
    /// Client → primary: a fresh request.
    Request(ClientRequest),
    /// Client → all replicas (retransmission fallback); replicas forward
    /// to the primary and start a progress timer.
    RequestBroadcast(ClientRequest),
    /// Replica → primary: forwarded client request.
    Forward(ClientRequest),
    /// Replica → client.
    Reply(ClientReply),

    // ------------------------------------------------------------ PoE (TS)
    /// Primary → all: `PROPOSE(⟨T⟩c, v, k)`.
    PoePropose {
        /// Current view.
        view: View,
        /// Assigned sequence number.
        seq: SeqNum,
        /// Proposed batch.
        batch: Arc<Batch>,
    },
    /// Backup → primary: `SUPPORT(s⟨h⟩i, v, k)` (threshold-signature mode).
    PoeSupport {
        /// Current view.
        view: View,
        /// Sequence number being supported.
        seq: SeqNum,
        /// This replica's signature share over `h = D(k‖v‖batch)`.
        share: SignatureShare,
    },
    /// Backup → all: `SUPPORT(D(⟨T⟩c), v, k)` (MAC mode, Appendix A).
    PoeSupportMac {
        /// Current view.
        view: View,
        /// Sequence number being supported.
        seq: SeqNum,
        /// Digest of the supported proposal.
        digest: Digest,
    },
    /// Primary → all: `CERTIFY(⟨h⟩, v, k)`.
    PoeCertify {
        /// Current view.
        view: View,
        /// Certified sequence number.
        seq: SeqNum,
        /// Aggregated threshold certificate.
        cert: ThresholdCert,
    },
    /// Replica → all: `VC-REQUEST(v, E)`.
    PoeVcRequest(PoeVcRequest),
    /// New primary → all: `NV-PROPOSE(v+1, m1…m_nf)`.
    PoeNvPropose {
        /// The view being proposed.
        new_view: View,
        /// The `nf` VC-REQUEST messages justifying the new view.
        requests: Vec<PoeVcRequest>,
    },

    // ---------------------------------------------------------------- PBFT
    /// Primary → all: PRE-PREPARE.
    PbftPrePrepare {
        /// Current view.
        view: View,
        /// Assigned sequence number.
        seq: SeqNum,
        /// Proposed batch.
        batch: Arc<Batch>,
    },
    /// All → all: PREPARE.
    PbftPrepare {
        /// Current view.
        view: View,
        /// Sequence number.
        seq: SeqNum,
        /// Batch digest.
        digest: Digest,
    },
    /// All → all: COMMIT.
    PbftCommit {
        /// Current view.
        view: View,
        /// Sequence number.
        seq: SeqNum,
        /// Batch digest.
        digest: Digest,
    },
    /// Replica → all: VIEW-CHANGE.
    PbftViewChangeMsg(PbftViewChange),
    /// New primary → all: NEW-VIEW.
    PbftNewView {
        /// The view being entered.
        new_view: View,
        /// The `2f+1` VIEW-CHANGE messages justifying it.
        view_changes: Vec<PbftViewChange>,
        /// Re-issued PRE-PREPAREs for in-flight sequence numbers.
        pre_prepares: Vec<(SeqNum, Arc<Batch>)>,
    },

    // ------------------------------------------------------------- Zyzzyva
    /// Primary → all: ORDER-REQ with history digest.
    ZyzOrderReq {
        /// Current view.
        view: View,
        /// Assigned sequence number.
        seq: SeqNum,
        /// Digest chain over all previous orderings.
        history: Digest,
        /// Ordered batch.
        batch: Arc<Batch>,
    },
    /// Client → all replicas: a commit certificate from `2f+1` matching
    /// speculative responses (slow path).
    ZyzCommit(ZyzCommitCert),

    // ---------------------------------------------------------------- SBFT
    /// Primary → all: PRE-PREPARE.
    SbftPrePrepare {
        /// Current view.
        view: View,
        /// Assigned sequence number.
        seq: SeqNum,
        /// Proposed batch.
        batch: Arc<Batch>,
    },
    /// Replica → collector: signature share over the proposal.
    SbftSignShare {
        /// Current view.
        view: View,
        /// Sequence number.
        seq: SeqNum,
        /// Share over the commit digest.
        share: SignatureShare,
    },
    /// Collector → all: full-commit-proof (aggregated certificate).
    SbftFullCommitProof {
        /// Current view.
        view: View,
        /// Sequence number.
        seq: SeqNum,
        /// Aggregated commit certificate.
        cert: ThresholdCert,
    },
    /// Replica → executor: signature share over the execution result.
    SbftSignState {
        /// Current view.
        view: View,
        /// Sequence number.
        seq: SeqNum,
        /// Share over the result digest.
        share: SignatureShare,
    },
    /// Executor → all replicas: aggregated execution certificate.
    SbftExecuteAck {
        /// Current view.
        view: View,
        /// Sequence number.
        seq: SeqNum,
        /// Aggregated execution certificate.
        cert: ThresholdCert,
    },

    // ------------------------------------------------------------ HotStuff
    /// Leader → all: a proposal extending the chain.
    HsProposal {
        /// The proposed block.
        block: Arc<HsBlock>,
    },
    /// Replica → next leader: a vote (signature share) on a block.
    HsVote {
        /// Height of the voted block.
        height: u64,
        /// Digest of the voted block.
        block: Digest,
        /// Signature share forming the QC.
        share: SignatureShare,
    },
    /// Replica → next leader: new-view on timeout, carrying the highest
    /// known QC.
    HsNewView {
        /// The height being abandoned.
        height: u64,
        /// The sender's highest quorum certificate.
        high_qc: Option<HsQuorumCert>,
    },

    // ----------------------------------------------------------- check-
    /// Periodic checkpoint vote (all → all).
    Checkpoint {
        /// Sequence number of the checkpoint.
        seq: SeqNum,
        /// Application state digest at that point.
        state_digest: Digest,
    },

    // ------------------------------------------------------ state transfer
    /// Lagging replica → peers: a repair request (manifest probe, image
    /// chunk fetch, or tail fetch).
    StateRequest(StateRequestKind),
    /// Peer → lagging replica: a repair response.
    StateChunk(StateChunkPayload),
}

impl ProtocolMsg {
    /// Short label for metrics and traces.
    pub fn label(&self) -> &'static str {
        match self {
            ProtocolMsg::Request(_) => "REQUEST",
            ProtocolMsg::RequestBroadcast(_) => "REQUEST-BCAST",
            ProtocolMsg::Forward(_) => "FORWARD",
            ProtocolMsg::Reply(r) => match r.kind {
                ReplyKind::PoeInform => "INFORM",
                ReplyKind::PbftReply => "PBFT-REPLY",
                ReplyKind::ZyzSpecResponse => "ZYZ-SPEC-RESPONSE",
                ReplyKind::ZyzLocalCommit => "ZYZ-LOCAL-COMMIT",
                ReplyKind::SbftExecuteAck => "SBFT-EXECUTE-ACK",
                ReplyKind::HsReply => "HS-REPLY",
            },
            ProtocolMsg::PoePropose { .. } => "PROPOSE",
            ProtocolMsg::PoeSupport { .. } => "SUPPORT",
            ProtocolMsg::PoeSupportMac { .. } => "SUPPORT-MAC",
            ProtocolMsg::PoeCertify { .. } => "CERTIFY",
            ProtocolMsg::PoeVcRequest(_) => "VC-REQUEST",
            ProtocolMsg::PoeNvPropose { .. } => "NV-PROPOSE",
            ProtocolMsg::PbftPrePrepare { .. } => "PRE-PREPARE",
            ProtocolMsg::PbftPrepare { .. } => "PREPARE",
            ProtocolMsg::PbftCommit { .. } => "COMMIT",
            ProtocolMsg::PbftViewChangeMsg(_) => "VIEW-CHANGE",
            ProtocolMsg::PbftNewView { .. } => "NEW-VIEW",
            ProtocolMsg::ZyzOrderReq { .. } => "ORDER-REQ",
            ProtocolMsg::ZyzCommit(_) => "ZYZ-COMMIT",
            ProtocolMsg::SbftPrePrepare { .. } => "SBFT-PRE-PREPARE",
            ProtocolMsg::SbftSignShare { .. } => "SBFT-SIGN-SHARE",
            ProtocolMsg::SbftFullCommitProof { .. } => "SBFT-FULL-COMMIT-PROOF",
            ProtocolMsg::SbftSignState { .. } => "SBFT-SIGN-STATE",
            ProtocolMsg::SbftExecuteAck { .. } => "SBFT-EXECUTE-ACK",
            ProtocolMsg::HsProposal { .. } => "HS-PROPOSAL",
            ProtocolMsg::HsVote { .. } => "HS-VOTE",
            ProtocolMsg::HsNewView { .. } => "HS-NEW-VIEW",
            ProtocolMsg::Checkpoint { .. } => "CHECKPOINT",
            ProtocolMsg::StateRequest(_) => "STATE-REQUEST",
            ProtocolMsg::StateChunk(_) => "STATE-CHUNK",
        }
    }

    /// True for messages carrying full batches (the bandwidth-dominant
    /// messages; paper §IV-E).
    pub fn carries_batch(&self) -> bool {
        matches!(
            self,
            ProtocolMsg::PoePropose { .. }
                | ProtocolMsg::PbftPrePrepare { .. }
                | ProtocolMsg::ZyzOrderReq { .. }
                | ProtocolMsg::SbftPrePrepare { .. }
                | ProtocolMsg::HsProposal { .. }
        )
    }
}

/// A message wrapped with sender identity and link authentication,
/// as it travels on the network.
#[derive(Clone, PartialEq, Debug)]
pub struct Envelope {
    /// The sending node.
    pub from: crate::ids::NodeId,
    /// The message.
    pub msg: ProtocolMsg,
    /// Link authenticator (MAC, signature, or none; see
    /// [`poe_crypto::CryptoMode`]).
    pub auth: AuthTag,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;
    use std::sync::Arc as StdArc;

    fn sample_batch() -> StdArc<Batch> {
        Batch::new(vec![ClientRequest::new(ClientId(1), 1, vec![1u8, 2, 3], None)])
    }

    #[test]
    fn labels_are_paper_names() {
        let b = sample_batch();
        assert_eq!(
            ProtocolMsg::PoePropose { view: View(0), seq: SeqNum(0), batch: b.clone() }.label(),
            "PROPOSE"
        );
        assert_eq!(
            ProtocolMsg::PoeSupportMac { view: View(0), seq: SeqNum(0), digest: b.digest }.label(),
            "SUPPORT-MAC"
        );
        assert_eq!(
            ProtocolMsg::Checkpoint { seq: SeqNum(0), state_digest: Digest::EMPTY }.label(),
            "CHECKPOINT"
        );
    }

    #[test]
    fn batch_carriers_identified() {
        let b = sample_batch();
        assert!(ProtocolMsg::PoePropose { view: View(0), seq: SeqNum(0), batch: b.clone() }
            .carries_batch());
        assert!(!ProtocolMsg::PbftPrepare { view: View(0), seq: SeqNum(0), digest: b.digest }
            .carries_batch());
    }

    #[test]
    fn hs_block_digest_depends_on_fields() {
        let b = sample_batch();
        let block = HsBlock { height: 1, parent: Digest::EMPTY, justify: None, batch: b.clone() };
        let mut other = block.clone();
        other.height = 2;
        assert_ne!(block.digest(), other.digest());
        let mut other2 = block.clone();
        other2.parent = Digest::of(b"x");
        assert_ne!(block.digest(), other2.digest());
    }
}
