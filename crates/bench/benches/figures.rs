//! Paper-figure reproduction points over the discrete-event simulator.
//!
//! These measure *host CPU per simulated request* for end-to-end PoE
//! cluster runs — the composition the micro benches (`crypto.rs`,
//! `protocol_step.rs`, `store.rs`) bound individually:
//!
//! * `sim_poe/throughput/{ts,mac}` — Figure 8's support-mode comparison
//!   shape: an n = 4 cluster completing a fixed workload under both
//!   SUPPORT modes.
//! * `sim_poe/delay/<ms>` — Figure 11's message-delay sweep shape: the
//!   same workload under growing constant link delays (virtual time
//!   absorbs the delay; host cost stays ~flat, which is the point of
//!   simulating).
//! * `sim_poe/n91/ts` — the paper's full-scale configuration (§IV:
//!   n = 91, f = 30, nf = 61), practical since the zero-copy wire path
//!   (encode-once broadcast + shared-frame decode) removed the
//!   per-edge message copies.
//!
//! Full-scale figure reproduction (request-rate vs wall-clock plots)
//! remains a runtime concern: see `examples/sim_cluster.rs` and
//! `examples/fig8_scale.rs` (Fig. 8-shaped CSV across n up to 91) for
//! the printable entry points.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use poe_consensus::SupportMode;
use poe_kernel::time::{Duration, Time};
use poe_net::DelayModel;
use poe_sim::{build_poe_cluster, PoeClusterConfig};

const REQUESTS: u64 = 200;

fn run_cluster(cfg: &PoeClusterConfig) -> u64 {
    let mut sim = build_poe_cluster(cfg);
    let done = sim.run_until_completed(cfg.total_requests(), Time(Duration::from_secs(300).0));
    assert!(done, "simulated workload must complete");
    sim.completed_requests()
}

fn small_config(support: SupportMode) -> PoeClusterConfig {
    let mut cfg = PoeClusterConfig::new(4, support);
    cfg.n_clients = 2;
    cfg.requests_per_client = REQUESTS / 2;
    cfg
}

fn bench_support_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_poe");
    for (label, support) in [("ts", SupportMode::Threshold), ("mac", SupportMode::Mac)] {
        let cfg = small_config(support);
        g.throughput(Throughput::Elements(REQUESTS));
        g.bench_function(BenchmarkId::new("throughput", label), |b| {
            b.iter(|| run_cluster(black_box(&cfg)))
        });
    }
    g.finish();
}

fn bench_delay_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_poe");
    for delay_ms in [1u64, 10, 40] {
        let mut cfg = small_config(SupportMode::Threshold);
        cfg.delay = DelayModel::Constant(Duration::from_millis(delay_ms));
        g.throughput(Throughput::Elements(REQUESTS));
        g.bench_function(BenchmarkId::new("delay", format!("{delay_ms}ms")), |b| {
            b.iter(|| run_cluster(black_box(&cfg)))
        });
    }
    g.finish();
}

/// Paper-scale point: 200 requests through a simulated n = 91 cluster
/// (threshold support, the Fig. 8 TS configuration). Host CPU per
/// simulated request is the figure of merit; the committed baseline
/// documents that paper-scale runs are now routine.
fn bench_paper_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_poe");
    let mut cfg = PoeClusterConfig::paper_scale(SupportMode::Threshold);
    cfg.cluster = cfg.cluster.with_batch_size(20);
    cfg.n_clients = 2;
    cfg.requests_per_client = REQUESTS / 2;
    g.throughput(Throughput::Elements(REQUESTS));
    g.bench_function(BenchmarkId::new("n91", "ts"), |b| b.iter(|| run_cluster(black_box(&cfg))));
    g.finish();
}

criterion_group!(benches, bench_support_modes, bench_delay_sweep, bench_paper_scale);
criterion_main!(benches);
