//! Placeholder for paper-figure reproduction runs (Figures 8/11):
//! end-to-end protocol throughput/latency sweeps over crypto modes and
//! message delays. Gated on the simulator and fabric runtimes, which are
//! still under construction (see ROADMAP "Open items"); the micro-level
//! costs they compose are measured today by `crypto.rs`, `kernel.rs`,
//! `protocol_step.rs`, and `store.rs`.

fn main() {}
