//! Wall-clock fabric runtime benchmarks.
//!
//! `fabric_poe/throughput/{ts,mac}` runs the same workload shape as the
//! simulator's `sim_poe/throughput/*` points (n = 4, 2 clients, 200
//! YCSB requests, batch 20) — but on the real multi-threaded pipelined
//! runtime: 16 stage threads + 2 client threads exchanging encode-once
//! shared frames over the in-proc hub, wall-clock timers, pooled
//! zero-copy decode with checkpoint-GC recycling.
//!
//! Reading the comparison: `sim_poe/throughput` measures **host CPU per
//! simulated request** (virtual time absorbs all waiting); this bench
//! measures **elapsed wall time** for the same request count, which
//! includes real batch-cut delays (5 ms) and thread handoffs. The two
//! together bound where the runtime sits between "pure protocol cost"
//! and "deployed pipeline".

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use poe_consensus::SupportMode;
use poe_crypto::CryptoMode;
use poe_fabric::{run_fabric, FabricCluster, FabricConfig, TcpTransport};
use std::time::Duration;

const REQUESTS: u64 = 200;

fn fabric_config(support: SupportMode) -> FabricConfig {
    let mut cfg = FabricConfig::new(4, support);
    cfg.n_clients = 2;
    cfg.requests_per_client = REQUESTS / 2;
    cfg
}

fn run(cfg: &FabricConfig) -> u64 {
    let report = run_fabric(cfg, Duration::from_secs(60)).expect("fabric run completes");
    assert!(report.converged(), "replicas diverged");
    assert_eq!(report.completed_requests, REQUESTS);
    report.completed_requests
}

/// Socket-substrate run: the identical cluster and workload, but every
/// replica on its own TCP hub over a loopback mesh — real sockets,
/// length-prefixed framing, supervised links.
fn run_tcp(cfg: &FabricConfig) -> u64 {
    let mut transport =
        TcpTransport::loopback(&cfg.cluster, cfg.link_auth).expect("bind loopback mesh");
    let report = FabricCluster::launch_with(cfg, &mut transport)
        .run_to_completion(Duration::from_secs(60))
        .expect("tcp fabric run completes");
    assert!(report.converged(), "replicas diverged over TCP");
    assert_eq!(report.completed_requests, REQUESTS);
    report.completed_requests
}

/// Repair A/B point: the same pipeline serving the same clients, but a
/// backup is crash-restarted mid-run and catches up through the
/// state-transfer protocol while normal-case consensus continues. The
/// longer workload (1 000 requests) keeps client traffic — and the
/// checkpoint cadence that refills the responder-side repair budget —
/// flowing across the 350 ms outage. Compare `req/s` against
/// `throughput/ts`: the token budget caps catch-up traffic, so the
/// normal-case rate must not degrade.
const REPAIR_REQUESTS: u64 = 1_000;

fn run_with_repair(cfg: &FabricConfig) -> u64 {
    let mut cluster = FabricCluster::launch(cfg);
    std::thread::sleep(Duration::from_millis(100));
    cluster.crash_replica(2);
    std::thread::sleep(Duration::from_millis(350));
    cluster.restart_replica(2);
    let report = cluster.run_to_completion(Duration::from_secs(60)).expect("fabric run completes");
    assert!(report.converged(), "replicas diverged");
    assert_eq!(report.completed_requests, REPAIR_REQUESTS);
    assert!(
        report.replicas[2].repair.repairs_completed >= 1,
        "the restarted replica must catch up via state transfer"
    );
    report.completed_requests
}

fn bench_fabric_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric_poe");
    for (label, support) in [("ts", SupportMode::Threshold), ("mac", SupportMode::Mac)] {
        let cfg = fabric_config(support);
        g.throughput(Throughput::Elements(REQUESTS));
        g.bench_function(BenchmarkId::new("throughput", label), |b| {
            b.iter(|| run(black_box(&cfg)))
        });
    }
    // Transport × link-MAC A/B, same runner, same workload shape as
    // `throughput/ts`: what the socket substrate costs over the in-proc
    // hub, and what per-peer link MACs (which end encode-once frame
    // sharing on broadcast — each peer gets its own tagged envelope)
    // cost on each substrate.
    let linkmac = fabric_config(SupportMode::Threshold).with_link_auth(CryptoMode::Cmac);
    g.throughput(Throughput::Elements(REQUESTS));
    g.bench_function(BenchmarkId::new("throughput", "ts_linkmac"), |b| {
        b.iter(|| run(black_box(&linkmac)))
    });
    for (label, link_auth) in [("ts_tcp", None), ("ts_tcp_linkmac", Some(CryptoMode::Cmac))] {
        let mut cfg = fabric_config(SupportMode::Threshold);
        if let Some(mode) = link_auth {
            cfg = cfg.with_link_auth(mode);
        }
        g.throughput(Throughput::Elements(REQUESTS));
        g.bench_function(BenchmarkId::new("throughput", label), |b| {
            b.iter(|| run_tcp(black_box(&cfg)))
        });
    }
    let mut cfg = fabric_config(SupportMode::Threshold);
    cfg.requests_per_client = REPAIR_REQUESTS / 2;
    g.throughput(Throughput::Elements(REPAIR_REQUESTS));
    g.bench_function(BenchmarkId::new("throughput", "ts_repair"), |b| {
        b.iter(|| run_with_repair(black_box(&cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_fabric_throughput);
criterion_main!(benches);
