//! Wall-clock fabric runtime benchmarks.
//!
//! `fabric_poe/throughput/{ts,mac}` runs the same workload shape as the
//! simulator's `sim_poe/throughput/*` points (n = 4, 2 clients, 200
//! YCSB requests, batch 20) — but on the real multi-threaded pipelined
//! runtime: 16 stage threads + 2 client threads exchanging encode-once
//! shared frames over the in-proc hub, wall-clock timers, pooled
//! zero-copy decode with checkpoint-GC recycling.
//!
//! Reading the comparison: `sim_poe/throughput` measures **host CPU per
//! simulated request** (virtual time absorbs all waiting); this bench
//! measures **elapsed wall time** for the same request count, which
//! includes real batch-cut delays (5 ms) and thread handoffs. The two
//! together bound where the runtime sits between "pure protocol cost"
//! and "deployed pipeline".

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use poe_consensus::SupportMode;
use poe_fabric::{run_fabric, FabricConfig};
use std::time::Duration;

const REQUESTS: u64 = 200;

fn fabric_config(support: SupportMode) -> FabricConfig {
    let mut cfg = FabricConfig::new(4, support);
    cfg.n_clients = 2;
    cfg.requests_per_client = REQUESTS / 2;
    cfg
}

fn run(cfg: &FabricConfig) -> u64 {
    let report = run_fabric(cfg, Duration::from_secs(60)).expect("fabric run completes");
    assert!(report.converged(), "replicas diverged");
    assert_eq!(report.completed_requests, REQUESTS);
    report.completed_requests
}

fn bench_fabric_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric_poe");
    for (label, support) in [("ts", SupportMode::Threshold), ("mac", SupportMode::Mac)] {
        let cfg = fabric_config(support);
        g.throughput(Throughput::Elements(REQUESTS));
        g.bench_function(BenchmarkId::new("throughput", label), |b| {
            b.iter(|| run(black_box(&cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fabric_throughput);
criterion_main!(benches);
