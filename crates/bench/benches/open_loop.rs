//! `fabric_poe/open_loop` — drive a 4-replica cluster open-loop until it
//! saturates, then report **requests/sec/core** and the latency shape of
//! the curve below the knee.
//!
//! Unlike `fabric_poe/throughput/*` (closed-loop: clients wait for their
//! reply, so offered load collapses with the cluster), this bench severs
//! the feedback with [`run_open_loop`]: a fixed population of simulated
//! sessions submits on a Poisson arrival clock regardless of how the
//! cluster is doing. The sweep:
//!
//! 1. **Ladder** — double the target rate until the achieved rate stops
//!    tracking it (completion drops below 80 % of offered). The best
//!    achieved rate across rungs is the saturation throughput.
//! 2. **Refine** — re-measure at 50 % / 80 % / 95 % of saturation for
//!    p50/p99 latency along the open part of the curve.
//! 3. **Overload** — one run at 2× saturation: the pipeline must shed
//!    visibly, stay within its queue/cache bounds, and still converge to
//!    byte-identical history digests.
//! 4. **Socket substrate** — the same engine over a loopback TCP mesh
//!    ([`TcpTransport`]) at 50 % of the in-proc saturation rate (the
//!    same offered load as the first refine point, so the inproc-vs-TCP
//!    latency comparison reads row to row), then the identical point
//!    with a scripted connection kill halfway into the measured window:
//!    supervised reconnects must carry the run to byte-identical
//!    digests while load keeps arriving. The kill point needs live
//!    traffic *after* the reconnect — checkpoint-based repair is what
//!    re-fills the tail the severed link lost, and its lag detector
//!    only fires while peers keep proving newer checkpoints — which is
//!    why the socket points sit below the knee rather than at it.
//!
//! Every point lands in `bench-results/open_loop_curve.csv`; a summary
//! (saturation rate, req/s/core, refined latencies, the TCP points) in
//! `bench-results/open_loop.json`. requests/sec/core divides completed
//! requests by *replica-thread* CPU seconds (`/proc` per-thread
//! accounting), so driver cost is excluded by construction.
//!
//! Knobs: `POE_BENCH_FAST=1` shrinks the windows and population for CI
//! smoke; `POE_BENCH_OUT` redirects the output directory.

use poe_consensus::SupportMode;
use poe_fabric::{
    run_open_loop, run_open_loop_with, FabricConfig, OpenLoopConfig, OpenLoopReport, TcpTransport,
};
use poe_workload::ArrivalProcess;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

const SEED: u64 = 42;
const DEADLINE: Duration = Duration::from_secs(120);

/// Sweep dimensions, shrunk under `POE_BENCH_FAST=1`.
struct Shape {
    sessions: u32,
    drivers: usize,
    warmup: Duration,
    measure: Duration,
    abandon: Duration,
    start_rps: f64,
    max_rungs: usize,
}

fn shape(fast: bool) -> Shape {
    if fast {
        Shape {
            sessions: 8_192,
            drivers: 2,
            warmup: Duration::from_millis(150),
            measure: Duration::from_millis(600),
            abandon: Duration::from_millis(400),
            start_rps: 500.0,
            max_rungs: 6,
        }
    } else {
        Shape {
            sessions: 100_000,
            drivers: 2,
            warmup: Duration::from_millis(500),
            measure: Duration::from_secs(2),
            abandon: Duration::from_secs(1),
            start_rps: 1_000.0,
            max_rungs: 10,
        }
    }
}

/// One measured point of the curve, as a CSV row.
struct Point {
    phase: &'static str,
    report: OpenLoopReport,
}

fn point_config(shape: &Shape, target_rps: f64) -> OpenLoopConfig {
    let mut cfg = OpenLoopConfig::new(FabricConfig::new(4, SupportMode::Threshold), target_rps);
    cfg.sessions = shape.sessions;
    cfg.drivers = shape.drivers;
    cfg.process = ArrivalProcess::Poisson;
    cfg.warmup = shape.warmup;
    cfg.measure = shape.measure;
    cfg.abandon_after = shape.abandon;
    cfg.seed = SEED;
    cfg
}

fn run_point(shape: &Shape, target_rps: f64) -> OpenLoopReport {
    let cfg = point_config(shape, target_rps);
    let report = run_open_loop(&cfg, DEADLINE).expect("open-loop point completes");
    assert!(report.converged(), "replicas diverged at {target_rps} rps");
    report
}

/// The same point over a loopback TCP mesh — real sockets under the
/// open-loop engine. `kill_at` severs replica 1's links that far into
/// the run (warmup included) while load keeps arriving: supervised
/// reconnects and state transfer must still carry every replica to the
/// identical committed history.
fn run_point_tcp(shape: &Shape, target_rps: f64, kill_at: Option<Duration>) -> OpenLoopReport {
    let cfg = point_config(shape, target_rps);
    let mut transport =
        TcpTransport::loopback(&cfg.fabric.cluster, cfg.fabric.link_auth).expect("bind loopback");
    let killer = kill_at.map(|after| {
        let hub = transport.replica_hubs()[1].clone();
        std::thread::spawn(move || {
            std::thread::sleep(after);
            hub.drop_links();
        })
    });
    let report =
        run_open_loop_with(&cfg, &mut transport, DEADLINE).expect("tcp open-loop point completes");
    if let Some(k) = killer {
        k.join().expect("kill timer");
    }
    assert!(report.converged(), "replicas diverged over TCP at {target_rps} rps");
    report
}

fn print_point(phase: &str, r: &OpenLoopReport) {
    let rpspc = r
        .requests_per_sec_per_core()
        .map(|v| format!("{v:.0}"))
        .unwrap_or_else(|| "n/a".to_string());
    println!(
        "fabric_poe/open_loop/{phase:<9} target {:>9.0} rps  achieved {:>9.0} rps  \
         ratio {:>5.2}  p50 {:>7} µs  p99 {:>7} µs  shed {:>8}  req/s/core {rpspc}",
        r.target_rps,
        r.achieved_rps,
        r.completion_ratio(),
        r.latency.p50_us,
        r.latency.p99_us,
        r.total_shed(),
    );
}

fn csv(points: &[Point]) -> String {
    let mut s = String::from(
        "phase,target_rps,achieved_rps,completion_ratio,p50_us,p99_us,\
         shed,abandoned,completed,replica_cpu_secs,req_per_sec_per_core\n",
    );
    for p in points {
        let r = &p.report;
        let _ = writeln!(
            s,
            "{},{:.0},{:.1},{:.4},{},{},{},{},{},{:.4},{}",
            p.phase,
            r.target_rps,
            r.achieved_rps,
            r.completion_ratio(),
            r.latency.p50_us,
            r.latency.p99_us,
            r.total_shed(),
            r.mux.abandoned,
            r.mux.completed,
            r.fabric.replica_cpu_secs(),
            r.requests_per_sec_per_core().map(|v| format!("{v:.1}")).unwrap_or_default(),
        );
    }
    s
}

/// The in-run scrapes of every point, one row per sampler tick —
/// achieved rate, interval latency quantiles, queue depths, and the
/// cumulative shed count over the life of each run.
fn timeseries_csv(points: &[Point]) -> String {
    let mut s = String::from(
        "phase,target_rps,t_ms,submitted,completed,tick_rps,p50_us,p99_us,\
         batch_depth,cons_depth,shed\n",
    );
    for p in points {
        for t in &p.report.timeseries {
            let _ = writeln!(
                s,
                "{},{:.0},{},{},{},{:.1},{},{},{},{},{}",
                p.phase,
                p.report.target_rps,
                t.t_ms,
                t.submitted,
                t.completed,
                t.tick_rps,
                t.p50_us,
                t.p99_us,
                t.batch_depth,
                t.cons_depth,
                t.shed,
            );
        }
    }
    s
}

fn json_point(r: &OpenLoopReport) -> String {
    format!(
        "{{\"target_rps\":{:.0},\"achieved_rps\":{:.1},\"completion_ratio\":{:.4},\
         \"p50_us\":{},\"p99_us\":{},\"shed\":{},\"req_per_sec_per_core\":{}}}",
        r.target_rps,
        r.achieved_rps,
        r.completion_ratio(),
        r.latency.p50_us,
        r.latency.p99_us,
        r.total_shed(),
        r.requests_per_sec_per_core().map(|v| format!("{v:.1}")).unwrap_or_else(|| "null".into()),
    )
}

fn out_dir() -> PathBuf {
    std::env::var("POE_BENCH_OUT").map(PathBuf::from).unwrap_or_else(|_| {
        let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".to_string());
        let p = PathBuf::from(manifest);
        p.ancestors().nth(2).unwrap_or(&p).join("bench-results")
    })
}

fn main() {
    // Mirror the criterion shim's CLI surface so `cargo bench -- <filter>`
    // and `cargo test --benches` (which passes `--list`/`--test`) behave.
    let mut filter = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--list" => {
                println!("fabric_poe/open_loop: bench");
                return;
            }
            a if a.starts_with("--") => {}
            a => filter = Some(a.to_string()),
        }
    }
    if let Some(f) = &filter {
        if !"fabric_poe/open_loop".contains(f.as_str()) {
            return;
        }
    }
    let fast = std::env::var("POE_BENCH_FAST").map(|v| v == "1").unwrap_or(false);
    let shape = shape(fast);
    let mut points: Vec<Point> = Vec::new();

    // Phase 1 — the rate ladder. Keep doubling while the cluster keeps
    // up; the first rung where completion falls under 80 % of offered is
    // past the knee.
    let mut target = shape.start_rps;
    let mut saturation_rps = 0.0f64;
    for _ in 0..shape.max_rungs {
        let r = run_point(&shape, target);
        print_point("ladder", &r);
        saturation_rps = saturation_rps.max(r.achieved_rps);
        let saturated = r.completion_ratio() < 0.8;
        points.push(Point { phase: "ladder", report: r });
        if saturated {
            break;
        }
        target *= 2.0;
    }
    assert!(saturation_rps > 0.0, "ladder never completed a request");

    // Phase 2 — latency below the knee: 50 % / 80 % / 95 % of the
    // saturation throughput.
    let mut refined = Vec::new();
    for frac in [0.50, 0.80, 0.95] {
        let r = run_point(&shape, saturation_rps * frac);
        print_point("refine", &r);
        refined.push((frac, json_point(&r)));
        points.push(Point { phase: "refine", report: r });
    }

    // Phase 3 — 2× overload: bounded queues shed, agreement holds (the
    // convergence assert lives in run_point).
    let over = run_point(&shape, saturation_rps * 2.0);
    print_point("overload", &over);
    assert!(
        over.total_shed() > 0 || over.completion_ratio() >= 0.8,
        "2x overload neither shed nor kept up — backpressure counters are dead"
    );
    let over_json = json_point(&over);
    let sat_rpspc =
        points.iter().filter_map(|p| p.report.requests_per_sec_per_core()).fold(0.0f64, f64::max);
    points.push(Point { phase: "overload", report: over });

    // Phase 4 — the socket substrate: same engine, loopback TCP mesh,
    // at the 50 % refine rate (safely below both knees); then the
    // identical point with replica 1's links severed halfway through
    // the measured window.
    let tcp_rate = saturation_rps * 0.5;
    let tcp = run_point_tcp(&shape, tcp_rate, None);
    print_point("tcp", &tcp);
    let tcp_json = json_point(&tcp);
    points.push(Point { phase: "tcp", report: tcp });
    let tcp_kill = run_point_tcp(&shape, tcp_rate, Some(shape.warmup + shape.measure / 2));
    print_point("tcp_kill", &tcp_kill);
    let reconnects: u64 =
        tcp_kill.fabric.replicas.iter().flat_map(|r| r.links.iter()).map(|l| l.reconnects).sum();
    assert!(reconnects >= 1, "scripted kill must force at least one supervised reconnect");
    let tcp_kill_json = json_point(&tcp_kill);
    points.push(Point { phase: "tcp_kill", report: tcp_kill });

    println!(
        "fabric_poe/open_loop: saturation {:.0} req/s, best {:.0} req/s/core, \
         tcp kill survived with {reconnects} reconnect(s)",
        saturation_rps, sat_rpspc
    );

    let dir = out_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("open_loop: cannot create {}: {e}", dir.display());
        return;
    }
    let csv_path = dir.join("open_loop_curve.csv");
    match std::fs::write(&csv_path, csv(&points)) {
        Ok(()) => println!("wrote {}", csv_path.display()),
        Err(e) => eprintln!("open_loop: write {} failed: {e}", csv_path.display()),
    }
    let ts_path = dir.join("open_loop_timeseries.csv");
    match std::fs::write(&ts_path, timeseries_csv(&points)) {
        Ok(()) => println!("wrote {}", ts_path.display()),
        Err(e) => eprintln!("open_loop: write {} failed: {e}", ts_path.display()),
    }
    let mut json = String::from("{\n  \"bench\": \"open_loop\",\n");
    let _ = write!(
        json,
        "  \"saturation_rps\": {saturation_rps:.1},\n  \"req_per_sec_per_core\": {sat_rpspc:.1},\n"
    );
    json.push_str("  \"refined\": {\n");
    for (i, (frac, point)) in refined.iter().enumerate() {
        let _ = write!(json, "    \"{:.0}%\": {point}", frac * 100.0);
        json.push_str(if i + 1 < refined.len() { ",\n" } else { "\n" });
    }
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"overload_2x\": {over_json},");
    let _ = writeln!(json, "  \"tcp\": {tcp_json},");
    let _ = writeln!(json, "  \"tcp_kill\": {tcp_kill_json},");
    let _ = write!(json, "  \"tcp_kill_reconnects\": {reconnects}\n}}\n");
    let json_path = dir.join("open_loop.json");
    match std::fs::write(&json_path, json) {
        Ok(()) => println!("wrote {}", json_path.display()),
        Err(e) => eprintln!("open_loop: write {} failed: {e}", json_path.display()),
    }
}
