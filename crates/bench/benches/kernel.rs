//! Wire-codec benchmarks: encode/decode round-trips for the messages a
//! replica touches on every protocol step, fresh vs pooled encoding, and
//! the `encoded_len` measuring pass the bandwidth model runs per send.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use poe_bench::sample_batch;
use poe_crypto::digest::Digest;
use poe_crypto::{CertScheme, CryptoMode, KeyMaterial};
use poe_kernel::codec::{
    decode_envelope, decode_msg, encode_envelope, encode_msg, encode_msg_into, encoded_len,
    ScratchPool,
};
use poe_kernel::ids::{NodeId, ReplicaId, SeqNum, View};
use poe_kernel::messages::{Envelope, ProtocolMsg};

/// The two shapes that dominate traffic: a full PROPOSE (100-request
/// batch, ~5.4 kB like the paper's) and a fixed-size PREPARE-style vote.
fn corpus() -> Vec<(&'static str, ProtocolMsg)> {
    let km = KeyMaterial::generate(4, 2, 3, CryptoMode::Cmac, CertScheme::MultiSig, 1);
    let providers: Vec<_> = (0..4).map(|i| km.replica(i)).collect();
    let shares: Vec<_> = providers.iter().map(|p| p.ts_share(b"m")).collect();
    let cert = providers[0].ts_aggregate(b"m", &shares).expect("aggregate");
    vec![
        (
            "propose100x48",
            ProtocolMsg::PoePropose {
                view: View(1),
                seq: SeqNum(2),
                batch: sample_batch(100, 48, 1),
            },
        ),
        (
            "support_mac",
            ProtocolMsg::PoeSupportMac { view: View(1), seq: SeqNum(2), digest: Digest::of(b"d") },
        ),
        ("certify", ProtocolMsg::PoeCertify { view: View(1), seq: SeqNum(2), cert }),
    ]
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec_encode");
    for (label, msg) in corpus() {
        let size = encoded_len(&msg) as u64;
        g.throughput(Throughput::Bytes(size));
        g.bench_function(BenchmarkId::new("fresh", label), |b| {
            b.iter(|| encode_msg(black_box(&msg)))
        });
        let mut reused = Vec::new();
        g.bench_function(BenchmarkId::new("into_reused", label), |b| {
            b.iter(|| encode_msg_into(black_box(&msg), &mut reused))
        });
        let mut pool = ScratchPool::new();
        g.bench_function(BenchmarkId::new("pooled", label), |b| {
            b.iter(|| {
                let buf = pool.encode_msg(black_box(&msg));
                let len = buf.len();
                pool.recycle(buf);
                len
            })
        });
        g.bench_function(BenchmarkId::new("encoded_len", label), |b| {
            b.iter(|| encoded_len(black_box(&msg)))
        });
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec_decode");
    for (label, msg) in corpus() {
        let bytes = encode_msg(&msg);
        g.throughput(Throughput::Bytes(bytes.len() as u64));
        g.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| decode_msg(black_box(&bytes)).expect("decode"))
        });
    }
    g.finish();
}

fn bench_envelope(c: &mut Criterion) {
    let km = KeyMaterial::generate(4, 2, 3, CryptoMode::Cmac, CertScheme::MultiSig, 1);
    let sender = km.replica(1);
    let msg =
        ProtocolMsg::PoeSupportMac { view: View(1), seq: SeqNum(2), digest: Digest::of(b"d") };
    let body = encode_msg(&msg);
    let env =
        Envelope { from: NodeId::Replica(ReplicaId(1)), auth: sender.authenticate(0, &body), msg };
    let bytes = encode_envelope(&env);
    let mut g = c.benchmark_group("codec_envelope");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode", |b| b.iter(|| encode_envelope(black_box(&env))));
    let mut pool = ScratchPool::new();
    g.bench_function("encode_pooled", |b| {
        b.iter(|| {
            let buf = pool.encode_envelope(black_box(&env));
            let len = buf.len();
            pool.recycle(buf);
            len
        })
    });
    g.bench_function("decode", |b| b.iter(|| decode_envelope(black_box(&bytes)).expect("decode")));
    g.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_envelope);
criterion_main!(benches);
