//! Crypto hot-path benchmarks: the per-message authentication cost that
//! dominates replica CPU in the paper's evaluation (Figure 8).
//!
//! Headline comparison: `ed25519_verify/serial/N` vs
//! `ed25519_verify/batch/N` on identical inputs — the PR-1 acceptance
//! bar is batch ≥ 2× serial at N = 64.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use poe_bench::prng_bytes;
use poe_crypto::ed25519::{verify_batch, BatchItem, Signature, SigningKey, VerifyingKey};
use poe_crypto::provider::{AuthTag, NodeIndex};
use poe_crypto::{CertScheme, CryptoMode, KeyMaterial};

const BATCH_SIZES: [usize; 4] = [1, 16, 64, 256];

fn signed_corpus(n: usize) -> (Vec<Vec<u8>>, Vec<(VerifyingKey, Signature)>) {
    let msgs: Vec<Vec<u8>> = (0..n).map(|i| prng_bytes(i as u64, 64)).collect();
    let keys: Vec<(VerifyingKey, Signature)> = msgs
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let sk = SigningKey::from_label(format!("bench-{i}").as_bytes());
            (sk.verifying_key(), sk.sign(m))
        })
        .collect();
    (msgs, keys)
}

fn bench_verify(c: &mut Criterion) {
    let (msgs, sigs) = signed_corpus(*BATCH_SIZES.iter().max().expect("non-empty"));
    let mut g = c.benchmark_group("ed25519_verify");
    for &n in &BATCH_SIZES {
        let items: Vec<BatchItem<'_>> = msgs[..n]
            .iter()
            .zip(&sigs[..n])
            .map(|(m, (pk, sig))| (m.as_slice(), *pk, *sig))
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(BenchmarkId::new("serial", n), |b| {
            b.iter(|| items.iter().all(|(m, pk, sig)| pk.verify(black_box(m), sig)))
        });
        g.bench_function(BenchmarkId::new("batch", n), |b| {
            b.iter(|| verify_batch(black_box(&items)))
        });
    }
    g.finish();
}

fn bench_sign(c: &mut Criterion) {
    let sk = SigningKey::from_label(b"bench-signer");
    let msg = prng_bytes(42, 64);
    c.bench_function("ed25519_sign/64B", |b| b.iter(|| sk.sign(black_box(&msg))));
}

/// Per-message authenticator cost across the paper's Figure-8 modes:
/// produce + check one tag, and check a 64-message batch.
fn bench_auth_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("auth_tag");
    for (label, mode) in [
        ("none", CryptoMode::None),
        ("hmac", CryptoMode::Hmac),
        ("cmac", CryptoMode::Cmac),
        ("ed25519", CryptoMode::Ed25519),
    ] {
        let km = KeyMaterial::generate(4, 0, 3, mode, CertScheme::MultiSig, 7);
        let sender = km.replica(1);
        let receiver = km.replica(0);
        let msg = prng_bytes(9, 256);
        g.throughput(Throughput::Elements(1));
        g.bench_function(BenchmarkId::new("authenticate", label), |b| {
            b.iter(|| sender.authenticate(0, black_box(&msg)))
        });
        let tag = sender.authenticate(0, &msg);
        g.bench_function(BenchmarkId::new("check", label), |b| {
            b.iter(|| receiver.check(1, black_box(&msg), &tag))
        });

        // 64 inbound messages from 3 peers, checked in one pass.
        let msgs: Vec<Vec<u8>> = (0..64u64).map(|i| prng_bytes(i, 256)).collect();
        let tagged: Vec<(NodeIndex, AuthTag)> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let peer = km.replica(1 + i % 3);
                (peer.index(), peer.authenticate(0, m))
            })
            .collect();
        let items: Vec<(NodeIndex, &[u8], &AuthTag)> =
            msgs.iter().zip(&tagged).map(|(m, (peer, tag))| (*peer, m.as_slice(), tag)).collect();
        g.throughput(Throughput::Elements(64));
        g.bench_function(BenchmarkId::new("check_batch64", label), |b| {
            b.iter(|| receiver.check_batch(black_box(&items)))
        });
        g.bench_function(BenchmarkId::new("check_serial64", label), |b| {
            b.iter(|| items.iter().all(|(peer, m, tag)| receiver.check(*peer, m, tag)))
        });
    }
    g.finish();
}

/// Threshold-certificate verification: nf signatures over one message —
/// the CERTIFY-message cost each replica pays per batch. Uses the
/// batch-verify path internally since this PR.
fn bench_cert_verify(c: &mut Criterion) {
    let mut g = c.benchmark_group("threshold_cert");
    for n in [4usize, 16, 64] {
        let threshold = n - n / 3;
        let km =
            KeyMaterial::generate(n, 0, threshold, CryptoMode::Ed25519, CertScheme::MultiSig, 3);
        let providers: Vec<_> = (0..n).map(|i| km.replica(i)).collect();
        let msg = prng_bytes(1, 32);
        let shares: Vec<_> = providers.iter().map(|p| p.ts_share(&msg)).collect();
        let cert = providers[0].ts_aggregate(&msg, &shares).expect("aggregate");
        g.throughput(Throughput::Elements(threshold as u64));
        g.bench_function(BenchmarkId::new("verify_multisig", format!("nf{threshold}")), |b| {
            b.iter(|| providers[1].ts_verify_cert(black_box(&msg), &cert))
        });
    }
    g.finish();
}

/// Share aggregation: the per-slot cost the PoE primary pays to turn an
/// `nf`-share SUPPORT flood into a CERTIFY certificate. `aggregate`
/// batch-verifies the whole share set in one pass; the `serial` point is
/// the check-each-share-then-assemble alternative it replaced.
fn bench_share_aggregate(c: &mut Criterion) {
    let mut g = c.benchmark_group("threshold_aggregate");
    for n in [4usize, 16, 64] {
        let threshold = n - n / 3;
        let km =
            KeyMaterial::generate(n, 0, threshold, CryptoMode::Ed25519, CertScheme::MultiSig, 5);
        let providers: Vec<_> = (0..n).map(|i| km.replica(i)).collect();
        let msg = prng_bytes(2, 32);
        let shares: Vec<_> = providers.iter().take(threshold).map(|p| p.ts_share(&msg)).collect();
        g.throughput(Throughput::Elements(threshold as u64));
        g.bench_function(BenchmarkId::new("batched", format!("nf{threshold}")), |b| {
            b.iter(|| providers[0].ts_aggregate(black_box(&msg), &shares).is_ok())
        });
        g.bench_function(BenchmarkId::new("serial", format!("nf{threshold}")), |b| {
            b.iter(|| shares.iter().all(|s| providers[0].ts_verify_share(black_box(&msg), s)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_verify,
    bench_sign,
    bench_auth_modes,
    bench_cert_verify,
    bench_share_aggregate
);
criterion_main!(benches);
