fn main() {}
