//! `SpeculativeStore` benchmarks: the execute-now/maybe-revert substrate
//! of PoE's speculation (ingredients I1/I2). Measures batch execution,
//! rollback of a speculative suffix, the incremental state digest, and
//! checkpoint stabilization.

use criterion::{
    black_box, criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput,
};
use poe_kernel::ids::{ClientId, SeqNum};
use poe_kernel::request::{Batch, ClientRequest};
use poe_kernel::statemachine::StateMachine;
use poe_store::op::{Op, Transaction};
use poe_store::table::ycsb_key;
use poe_store::SpeculativeStore;
use std::sync::Arc;

const RECORDS: usize = 10_000;
const BATCH: usize = 100;
const VALUE: usize = 32;

/// A batch of `n` single-op write transactions over the YCSB table.
fn write_batch(n: usize, round: u64) -> Arc<Batch> {
    Batch::new(
        (0..n)
            .map(|i| {
                let key = ycsb_key(((round as usize).wrapping_mul(31) + i * 7) % RECORDS);
                let txn = Transaction::single(Op::Put { key, value: vec![0xabu8; VALUE] });
                ClientRequest::new(
                    ClientId((i % 16) as u32),
                    round * 1_000 + i as u64,
                    txn.encode(),
                    None,
                )
            })
            .collect(),
    )
}

fn bench_execute(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_execute");
    g.throughput(Throughput::Elements(BATCH as u64));
    g.bench_function(BenchmarkId::new("apply_writes", BATCH), |b| {
        let mut store = SpeculativeStore::with_ycsb_table(RECORDS, VALUE);
        let mut seq = 0u64;
        b.iter(|| {
            let batch = write_batch(BATCH, seq);
            let out = store.apply(SeqNum(seq), black_box(&batch));
            seq += 1;
            // Keep the undo log bounded like a real checkpoint interval.
            if seq.is_multiple_of(128) {
                store.stabilize(SeqNum(seq - 1));
            }
            out.results.len()
        })
    });
    g.finish();
}

fn bench_rollback(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_rollback");
    for depth in [1usize, 10, 50] {
        g.throughput(Throughput::Elements((depth * BATCH) as u64));
        g.bench_function(BenchmarkId::new("revert_batches", depth), |b| {
            b.iter_batched(
                || {
                    // A store with `depth` speculative batches applied.
                    let mut store = SpeculativeStore::with_ycsb_table(RECORDS, VALUE);
                    for round in 0..depth as u64 {
                        let batch = write_batch(BATCH, round);
                        store.apply(SeqNum(round), &batch);
                    }
                    store
                },
                |mut store| {
                    store.rollback_to(None);
                    store.revertible_batches()
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_digest_and_stabilize(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_maintenance");
    let mut store = SpeculativeStore::with_ycsb_table(RECORDS, VALUE);
    for round in 0..10u64 {
        let batch = write_batch(BATCH, round);
        store.apply(SeqNum(round), &batch);
    }
    g.bench_function("state_digest", |b| b.iter(|| black_box(&store).state_digest()));
    g.bench_function("stabilize", |b| {
        b.iter_batched(
            || {
                let mut s = SpeculativeStore::with_ycsb_table(1_000, VALUE);
                for round in 0..10u64 {
                    s.apply(SeqNum(round), &write_batch(10, round));
                }
                s
            },
            |mut s| s.stabilize(SeqNum(9)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_execute, bench_rollback, bench_digest_and_stabilize);
criterion_main!(benches);
