//! Composed protocol-step benchmarks: what a replica actually does per
//! message — encode, authenticate, ship, decode, check — and the
//! SUPPORT-flood verification a PoE primary performs per consensus slot.
//! These bound the per-slot CPU budget the simulator's cost model uses.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use poe_bench::sample_batch;
use poe_consensus::{PoeReplica, SupportMode};
use poe_crypto::provider::{AuthTag, NodeIndex};
use poe_crypto::{CertScheme, CryptoMode, KeyMaterial};
use poe_kernel::automaton::{Action, Event, Outbox, ReplicaAutomaton};
use poe_kernel::codec::{decode_envelope, encode_envelope, encode_msg, ScratchPool};
use poe_kernel::config::ClusterConfig;
use poe_kernel::ids::{ClientId, NodeId, ReplicaId, SeqNum, View};
use poe_kernel::messages::{Envelope, ProtocolMsg};
use poe_kernel::request::ClientRequest;
use poe_kernel::statemachine::NullStateMachine;
use poe_kernel::time::Time;
use std::collections::VecDeque;

/// Full PREPREPARE path: primary encodes + authenticates a 100-request
/// propose; replica decodes and checks the link tag.
fn bench_preprepare_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("preprepare_step");
    for (label, mode) in [("cmac", CryptoMode::Cmac), ("ed25519", CryptoMode::Ed25519)] {
        let km = KeyMaterial::generate(4, 2, 3, mode, CertScheme::MultiSig, 1);
        let primary = km.replica(0);
        let backup = km.replica(1);
        let msg = ProtocolMsg::PoePropose {
            view: View(0),
            seq: SeqNum(7),
            batch: sample_batch(100, 48, 3),
        };

        let mut pool = ScratchPool::new();
        g.throughput(Throughput::Elements(1));
        g.bench_function(BenchmarkId::new("send", label), |b| {
            b.iter(|| {
                // Primary side: serialize body, tag it, wrap, serialize
                // envelope — with pooled buffers, as the fabric will.
                let body = pool.encode_msg(black_box(&msg));
                let auth = primary.authenticate(1, &body);
                pool.recycle(body);
                let env = Envelope { from: NodeId::Replica(ReplicaId(0)), auth, msg: msg.clone() };
                let wire = pool.encode_envelope(&env);
                let len = wire.len();
                pool.recycle(wire);
                len
            })
        });

        let body = encode_msg(&msg);
        let env = Envelope {
            from: NodeId::Replica(ReplicaId(0)),
            auth: primary.authenticate(1, &body),
            msg: msg.clone(),
        };
        let wire = encode_envelope(&env);
        g.bench_function(BenchmarkId::new("receive", label), |b| {
            b.iter(|| {
                // Backup side: deserialize, re-serialize the body the tag
                // covers, check the tag.
                let env = decode_envelope(black_box(&wire)).expect("decode");
                let body = encode_msg(&env.msg);
                backup.check(0, &body, &env.auth)
            })
        });
    }
    g.finish();
}

/// SUPPORT flood: the primary collects n−1 votes per slot and must check
/// all of them before aggregating a certificate. Serial loop vs the
/// batched one-pass check.
fn bench_support_flood(c: &mut Criterion) {
    let mut g = c.benchmark_group("support_flood");
    for (label, mode) in [("cmac", CryptoMode::Cmac), ("ed25519", CryptoMode::Ed25519)] {
        for n_votes in [16usize, 64] {
            let km = KeyMaterial::generate(n_votes + 1, 0, n_votes, mode, CertScheme::MultiSig, 5);
            let primary = km.replica(0);
            let votes: Vec<Vec<u8>> = (1..=n_votes)
                .map(|i| {
                    encode_msg(&ProtocolMsg::PoeSupportMac {
                        view: View(0),
                        seq: SeqNum(i as u64),
                        digest: poe_crypto::Digest::of(&i.to_le_bytes()),
                    })
                })
                .collect();
            let tags: Vec<(NodeIndex, AuthTag)> = votes
                .iter()
                .enumerate()
                .map(|(i, body)| {
                    let voter = km.replica(1 + i);
                    (voter.index(), voter.authenticate(0, body))
                })
                .collect();
            let items: Vec<(NodeIndex, &[u8], &AuthTag)> = votes
                .iter()
                .zip(&tags)
                .map(|(body, (voter, tag))| (*voter, body.as_slice(), tag))
                .collect();
            g.throughput(Throughput::Elements(n_votes as u64));
            g.bench_function(BenchmarkId::new(format!("serial_{label}"), n_votes), |b| {
                b.iter(|| items.iter().all(|(v, body, tag)| primary.check(*v, body, tag)))
            });
            g.bench_function(BenchmarkId::new(format!("batch_{label}"), n_votes), |b| {
                b.iter(|| primary.check_batch(black_box(&items)))
            });
        }
    }
    g.finish();
}

/// One full PoE consensus slot across a hand-pumped 4-replica cluster:
/// batch ingestion at the primary, PROPOSE → SUPPORT → CERTIFY, and the
/// speculative execute/inform fan-out — the per-slot CPU the simulator's
/// cost model composes. `multisig` pays real Ed25519 shares; `sim` uses
/// dealer-keyed HMAC shares (large simulation runs).
fn bench_poe_slot(c: &mut Criterion) {
    const N: usize = 4;
    const BATCH: usize = 10;
    let mut g = c.benchmark_group("poe_slot");
    for (label, scheme, mode) in [
        ("ts_multisig", CertScheme::MultiSig, SupportMode::Threshold),
        ("ts_sim", CertScheme::Simulated, SupportMode::Threshold),
        ("mac", CertScheme::Simulated, SupportMode::Mac),
    ] {
        let cfg = ClusterConfig::new(N)
            .with_crypto_mode(CryptoMode::None)
            .with_cert_scheme(scheme)
            .with_batch_size(BATCH)
            .with_checkpoint_interval(64);
        let km = KeyMaterial::generate(N, 1, cfg.nf(), CryptoMode::None, scheme, 11);
        let mut replicas: Vec<PoeReplica> = (0..N)
            .map(|i| {
                PoeReplica::new(
                    cfg.clone(),
                    ReplicaId(i as u32),
                    mode,
                    km.replica(i),
                    Box::new(NullStateMachine::new()),
                )
            })
            .collect();
        let mut queue: VecDeque<(usize, NodeId, ProtocolMsg)> = VecDeque::new();
        let mut req_id = 0u64;
        g.throughput(Throughput::Elements(BATCH as u64));
        g.bench_function(BenchmarkId::new("slot", label), |b| {
            b.iter(|| {
                // One batch worth of requests enters the primary…
                for _ in 0..BATCH {
                    req_id += 1;
                    let req = ClientRequest::new(ClientId(0), req_id, vec![0u8; 16], None);
                    queue.push_back((0, NodeId::Client(ClientId(0)), ProtocolMsg::Request(req)));
                }
                // …and the whole slot is pumped to quiescence.
                while let Some((to, from, msg)) = queue.pop_front() {
                    let mut out = Outbox::new();
                    replicas[to].on_event(Time::ZERO, Event::Deliver { from, msg }, &mut out);
                    for action in out.drain() {
                        match action {
                            Action::Send { to: NodeId::Replica(r), msg } => {
                                queue.push_back((
                                    r.index(),
                                    NodeId::Replica(ReplicaId(to as u32)),
                                    msg,
                                ));
                            }
                            Action::Broadcast { msg } => {
                                for dest in 0..N {
                                    if dest != to {
                                        queue.push_back((
                                            dest,
                                            NodeId::Replica(ReplicaId(to as u32)),
                                            msg.clone(),
                                        ));
                                    }
                                }
                            }
                            _ => {}
                        }
                    }
                }
                black_box(replicas[0].execution_frontier())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_preprepare_roundtrip, bench_support_flood, bench_poe_slot);
criterion_main!(benches);
