//! Composed protocol-step benchmarks: what a replica actually does per
//! message — encode, authenticate, ship, decode, check — and the
//! SUPPORT-flood verification a PoE primary performs per consensus slot.
//! These bound the per-slot CPU budget the simulator's cost model uses.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use poe_bench::sample_batch;
use poe_crypto::provider::{AuthTag, NodeIndex};
use poe_crypto::{CertScheme, CryptoMode, KeyMaterial};
use poe_kernel::codec::{decode_envelope, encode_envelope, encode_msg, ScratchPool};
use poe_kernel::ids::{NodeId, ReplicaId, SeqNum, View};
use poe_kernel::messages::{Envelope, ProtocolMsg};

/// Full PREPREPARE path: primary encodes + authenticates a 100-request
/// propose; replica decodes and checks the link tag.
fn bench_preprepare_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("preprepare_step");
    for (label, mode) in [("cmac", CryptoMode::Cmac), ("ed25519", CryptoMode::Ed25519)] {
        let km = KeyMaterial::generate(4, 2, 3, mode, CertScheme::MultiSig, 1);
        let primary = km.replica(0);
        let backup = km.replica(1);
        let msg = ProtocolMsg::PoePropose {
            view: View(0),
            seq: SeqNum(7),
            batch: sample_batch(100, 48, 3),
        };

        let mut pool = ScratchPool::new();
        g.throughput(Throughput::Elements(1));
        g.bench_function(BenchmarkId::new("send", label), |b| {
            b.iter(|| {
                // Primary side: serialize body, tag it, wrap, serialize
                // envelope — with pooled buffers, as the fabric will.
                let body = pool.encode_msg(black_box(&msg));
                let auth = primary.authenticate(1, &body);
                pool.recycle(body);
                let env = Envelope { from: NodeId::Replica(ReplicaId(0)), auth, msg: msg.clone() };
                let wire = pool.encode_envelope(&env);
                let len = wire.len();
                pool.recycle(wire);
                len
            })
        });

        let body = encode_msg(&msg);
        let env = Envelope {
            from: NodeId::Replica(ReplicaId(0)),
            auth: primary.authenticate(1, &body),
            msg: msg.clone(),
        };
        let wire = encode_envelope(&env);
        g.bench_function(BenchmarkId::new("receive", label), |b| {
            b.iter(|| {
                // Backup side: deserialize, re-serialize the body the tag
                // covers, check the tag.
                let env = decode_envelope(black_box(&wire)).expect("decode");
                let body = encode_msg(&env.msg);
                backup.check(0, &body, &env.auth)
            })
        });
    }
    g.finish();
}

/// SUPPORT flood: the primary collects n−1 votes per slot and must check
/// all of them before aggregating a certificate. Serial loop vs the
/// batched one-pass check.
fn bench_support_flood(c: &mut Criterion) {
    let mut g = c.benchmark_group("support_flood");
    for (label, mode) in [("cmac", CryptoMode::Cmac), ("ed25519", CryptoMode::Ed25519)] {
        for n_votes in [16usize, 64] {
            let km = KeyMaterial::generate(n_votes + 1, 0, n_votes, mode, CertScheme::MultiSig, 5);
            let primary = km.replica(0);
            let votes: Vec<Vec<u8>> = (1..=n_votes)
                .map(|i| {
                    encode_msg(&ProtocolMsg::PoeSupportMac {
                        view: View(0),
                        seq: SeqNum(i as u64),
                        digest: poe_crypto::Digest::of(&i.to_le_bytes()),
                    })
                })
                .collect();
            let tags: Vec<(NodeIndex, AuthTag)> = votes
                .iter()
                .enumerate()
                .map(|(i, body)| {
                    let voter = km.replica(1 + i);
                    (voter.index(), voter.authenticate(0, body))
                })
                .collect();
            let items: Vec<(NodeIndex, &[u8], &AuthTag)> = votes
                .iter()
                .zip(&tags)
                .map(|(body, (voter, tag))| (*voter, body.as_slice(), tag))
                .collect();
            g.throughput(Throughput::Elements(n_votes as u64));
            g.bench_function(BenchmarkId::new(format!("serial_{label}"), n_votes), |b| {
                b.iter(|| items.iter().all(|(v, body, tag)| primary.check(*v, body, tag)))
            });
            g.bench_function(BenchmarkId::new(format!("batch_{label}"), n_votes), |b| {
                b.iter(|| primary.check_batch(black_box(&items)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_preprepare_roundtrip, bench_support_flood);
criterion_main!(benches);
