//! # poe-bench
//!
//! Microbenchmark suite and perf-baseline tooling. The benchmarks live
//! in `benches/` and run under the workspace's criterion-compatible
//! harness (`shims/criterion`), which writes one JSON report per bench
//! binary to `bench-results/` at the workspace root:
//!
//! * `benches/crypto.rs` — serial vs batched Ed25519 verification
//!   (batch sizes 1/16/64/256), MAC-vs-signature authenticator checks,
//!   threshold-certificate verification.
//! * `benches/kernel.rs` — wire-codec encode/decode round-trips, pooled
//!   vs fresh encoding, `encoded_len` measuring pass.
//! * `benches/protocol_step.rs` — composed replica hot-path steps:
//!   envelope encode → decode → authenticate → check, and the
//!   SUPPORT-flood verification a PoE primary performs per batch.
//! * `benches/store.rs` — `SpeculativeStore` execute / rollback /
//!   digest / checkpoint-stabilize.
//!
//! Committed baselines live in `bench-results/` (one JSON per bench,
//! refreshed when a perf PR lands); compare new runs against them before
//! claiming a speedup.
//!
//! This library crate intentionally exports only small helpers shared by
//! the bench binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use poe_kernel::ids::ClientId;
use poe_kernel::request::{Batch, ClientRequest};
use std::sync::Arc;

/// Deterministic pseudo-random bytes (xorshift64*), for building
/// benchmark payloads without a dependency on the rand shim.
pub fn prng_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut x = seed.wrapping_mul(0x2545f4914f6cdd1d) | 1;
    while out.len() < len {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        out.extend_from_slice(&x.wrapping_mul(0x2545f4914f6cdd1d).to_le_bytes());
    }
    out.truncate(len);
    out
}

/// A batch of `n` unsigned client requests with `op_len`-byte payloads,
/// shaped like the paper's PROPOSE contents.
pub fn sample_batch(n: usize, op_len: usize, seed: u64) -> Arc<Batch> {
    Batch::new(
        (0..n)
            .map(|i| {
                ClientRequest::new(
                    ClientId((i % 16) as u32),
                    seed * 100_000 + i as u64,
                    prng_bytes(seed ^ i as u64, op_len),
                    None,
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prng_is_deterministic() {
        assert_eq!(prng_bytes(1, 32), prng_bytes(1, 32));
        assert_ne!(prng_bytes(1, 32), prng_bytes(2, 32));
        assert_eq!(prng_bytes(3, 7).len(), 7);
    }

    #[test]
    fn sample_batch_shape() {
        let b = sample_batch(10, 64, 5);
        assert_eq!(b.requests.len(), 10);
        assert!(b.requests.iter().all(|r| r.op.len() == 64));
    }
}
