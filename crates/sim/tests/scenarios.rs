//! End-to-end scenario suite: seeded simulated clusters running the PoE
//! automaton, one test per fault mode, plus the determinism check the CI
//! job gates on.

use poe_consensus::SupportMode;
use poe_crypto::Digest;
use poe_kernel::ids::{NodeId, ReplicaId, SeqNum, View};
use poe_kernel::time::{Duration, Time};
use poe_net::DelayModel;
use poe_sim::{build_poe_cluster, DeliveryMode, Fault, PoeClusterConfig, Simulator};

fn secs(s: u64) -> Time {
    Time(Duration::from_secs(s).as_nanos())
}

/// Asserts every live replica converged to the same state digest,
/// ledger history, and execution frontier.
fn assert_converged(sim: &Simulator) -> (Digest, Digest, SeqNum) {
    let mut reference: Option<(Digest, Digest, SeqNum)> = None;
    for i in 0..sim.n_replicas() {
        if sim.is_crashed(NodeId::Replica(ReplicaId(i as u32))) {
            continue;
        }
        let r = sim.replica(i);
        let tuple = (r.state_digest(), r.ledger_digest(), r.execution_frontier());
        match &reference {
            None => reference = Some(tuple),
            Some(expect) => assert_eq!(*expect, tuple, "replica {i} diverged"),
        }
    }
    reference.expect("at least one live replica")
}

/// Happy path, threshold-signature support mode: n = 4 / f = 1 reaches
/// consensus on 1000 client requests with no view changes.
#[test]
fn happy_path_threshold_1000_requests() {
    let cfg = PoeClusterConfig::new(4, SupportMode::Threshold);
    assert_eq!(cfg.total_requests(), 1000);
    let mut sim = build_poe_cluster(&cfg);
    assert!(sim.run_until_completed(1000, secs(60)), "only {} done", sim.completed_requests());
    sim.run_for(Duration::from_secs(1)); // drain in-flight tails
    assert!(sim.completed_requests() >= 1000);
    assert_eq!(sim.stats().view_changes, 0);
    assert_eq!(sim.stats().rollbacks, 0);
    let (_, _, frontier) = assert_converged(&sim);
    assert!(frontier.0 >= 1000 / cfg.cluster.batch_size as u64);
    for i in 0..4 {
        assert_eq!(sim.replica(i).current_view(), View(0));
    }
}

/// Happy path, MAC support mode (Appendix A): same bar as the TS run.
#[test]
fn happy_path_mac_1000_requests() {
    let cfg = PoeClusterConfig::new(4, SupportMode::Mac);
    let mut sim = build_poe_cluster(&cfg);
    assert!(sim.run_until_completed(1000, secs(60)), "only {} done", sim.completed_requests());
    sim.run_for(Duration::from_secs(1));
    assert!(sim.completed_requests() >= 1000);
    assert_eq!(sim.stats().view_changes, 0);
    assert_converged(&sim);
}

/// Real-crypto spot check: CMAC link auth pairs with MAC support mode,
/// clients sign with Ed25519, certificates are Ed25519 multisigs in the
/// threshold run. Small request count — crypto here is real.
#[test]
fn happy_path_with_real_crypto() {
    for support in [SupportMode::Threshold, SupportMode::Mac] {
        let mut cfg = PoeClusterConfig::new(4, support);
        cfg.cluster = cfg
            .cluster
            .with_crypto_mode(poe_crypto::CryptoMode::Cmac)
            .with_cert_scheme(poe_crypto::CertScheme::MultiSig)
            .with_batch_size(10);
        cfg.n_clients = 2;
        cfg.requests_per_client = 20;
        let mut sim = build_poe_cluster(&cfg);
        assert!(
            sim.run_until_completed(40, secs(30)),
            "{support:?}: only {} done",
            sim.completed_requests()
        );
        sim.run_for(Duration::from_secs(1));
        assert_converged(&sim);
    }
}

/// Killing the primary mid-run triggers a view change; all live
/// replicas converge and the workload still completes.
#[test]
fn primary_crash_triggers_view_change() {
    let mut cfg = PoeClusterConfig::new(4, SupportMode::Threshold);
    cfg.n_clients = 2;
    cfg.requests_per_client = 100;
    let mut sim = build_poe_cluster(&cfg);
    sim.schedule_fault(
        Time(Duration::from_millis(40).as_nanos()),
        Fault::Crash(NodeId::Replica(ReplicaId(0))),
    );
    assert!(sim.run_until_completed(200, secs(120)), "only {} done", sim.completed_requests());
    sim.run_for(Duration::from_secs(1));
    assert!(sim.stats().view_changes >= 3, "live replicas must change view");
    assert!(sim.replica(1).current_view() > View(0));
    assert_converged(&sim);
    assert!(
        sim.trace().iter().any(|l| l.contains("viewchanged v1")),
        "trace records the view change"
    );
}

/// A mute primary (alive, outbound cut) is detected exactly like a
/// crashed one; being still connected inbound, it converges with the
/// cluster under the new view.
#[test]
fn mute_primary_is_replaced_and_converges() {
    let mut cfg = PoeClusterConfig::new(4, SupportMode::Threshold);
    cfg.n_clients = 2;
    cfg.requests_per_client = 50;
    let mut sim = build_poe_cluster(&cfg);
    sim.schedule_fault(Time(Duration::from_millis(40).as_nanos()), Fault::Mute(ReplicaId(0)));
    assert!(sim.run_until_completed(100, secs(120)), "only {} done", sim.completed_requests());
    sim.run_for(Duration::from_secs(4));
    assert!(sim.stats().view_changes >= 3);
    // The muted replica heard the NV-PROPOSE and every post-change
    // CERTIFY, so it converges too (it is not crashed).
    assert_converged(&sim);
    assert!(sim.replica(0).current_view() > View(0));
}

/// Speculative batches past the proven frontier roll back: the primary
/// crashes after its PROPOSE lands but before any CERTIFY, so backups
/// have executed a batch that the view change cannot prove.
#[test]
fn unproven_speculation_rolls_back_on_view_change() {
    let mut cfg = PoeClusterConfig::new(4, SupportMode::Threshold);
    cfg.n_clients = 1;
    cfg.requests_per_client = 1;
    cfg.client_outstanding = 1;
    cfg.delay = DelayModel::Constant(Duration::from_millis(10));
    let mut sim = build_poe_cluster(&cfg);
    // Timeline under 10 ms constant delay: request at ~10 ms, batch-cut
    // at ~15 ms, PROPOSE lands at ~25 ms (backups execute), SUPPORTs
    // land at ~35 ms, CERTIFY would land at ~45 ms. Crash at 30 ms: the
    // proposal is executed everywhere relevant but certified nowhere.
    sim.schedule_fault(
        Time(Duration::from_millis(30).as_nanos()),
        Fault::Crash(NodeId::Replica(ReplicaId(0))),
    );
    assert!(sim.run_until_completed(1, secs(120)), "request never completed");
    sim.run_for(Duration::from_secs(1));
    assert!(sim.stats().rollbacks >= 1, "speculative batch must roll back");
    assert!(sim.stats().view_changes >= 3);
    assert_converged(&sim);
    // The request was finally committed in the new view at seq 0.
    assert!(sim.trace().iter().any(|l| l.contains("rolledback to=genesis")));
    let frontier = sim.replica(1).execution_frontier();
    assert_eq!(frontier, SeqNum(1));
}

/// Lossy network: 1% i.i.d. drops with jittered delays. Retransmission,
/// re-INFORM, and (if needed) view changes still drive the workload to
/// completion with converged replicas.
#[test]
fn lossy_network_still_completes() {
    let mut cfg = PoeClusterConfig::new(4, SupportMode::Threshold);
    cfg.n_clients = 2;
    cfg.requests_per_client = 50;
    cfg.drop_prob = 0.01;
    cfg.delay =
        DelayModel::Uniform { min: Duration::from_micros(500), max: Duration::from_millis(3) };
    let mut sim = build_poe_cluster(&cfg);
    assert!(sim.run_until_completed(100, secs(240)), "only {} done", sim.completed_requests());
    sim.run_for(Duration::from_secs(4));
    assert_converged(&sim);
}

/// A backup partitioned away for a stretch (isolate → reconnect) does
/// not stop progress — the remaining nf replicas carry the load — and
/// after reconnection the backup converges via CERTIFY catch-up
/// messages for slots inside the window plus ongoing traffic.
#[test]
fn isolated_backup_reconnects_and_cluster_completes() {
    let mut cfg = PoeClusterConfig::new(4, SupportMode::Threshold);
    cfg.n_clients = 2;
    cfg.requests_per_client = 100;
    let mut sim = build_poe_cluster(&cfg);
    let backup = NodeId::Replica(ReplicaId(3));
    sim.schedule_fault(Time(Duration::from_millis(50).as_nanos()), Fault::Isolate(backup));
    sim.schedule_fault(Time(Duration::from_millis(250).as_nanos()), Fault::Reconnect(backup));
    assert!(sim.run_until_completed(200, secs(120)), "only {} done", sim.completed_requests());
    sim.run_for(Duration::from_secs(1));
    // The three connected replicas converge; R3 is live again but with
    // the default checkpoint interval its lag stays far below the repair
    // trigger (two full intervals), so it may legitimately be missing
    // batches dropped while it was cut off. Full catch-up through the
    // state-transfer protocol is exercised in `tests/recovery.rs`.
    let mut reference = None;
    for i in 0..3 {
        let r = sim.replica(i);
        let tuple = (r.state_digest(), r.ledger_digest(), r.execution_frontier());
        match &reference {
            None => reference = Some(tuple),
            Some(expect) => assert_eq!(*expect, tuple, "replica {i} diverged"),
        }
    }
}

/// Checkpoints stabilize and garbage-collect during a long run.
#[test]
fn checkpoints_stabilize_in_simulation() {
    let mut cfg = PoeClusterConfig::new(4, SupportMode::Threshold);
    cfg.cluster = cfg.cluster.with_checkpoint_interval(10).with_batch_size(10);
    cfg.n_clients = 2;
    cfg.requests_per_client = 250;
    let mut sim = build_poe_cluster(&cfg);
    assert!(sim.run_until_completed(500, secs(60)));
    sim.run_for(Duration::from_secs(1));
    assert!(sim.stats().checkpoints >= 4, "got {}", sim.stats().checkpoints);
    assert_converged(&sim);
}

/// The zero-copy refactor gate: the wire path (encode once → shared
/// frame → zero-copy decode per recipient) must be semantically
/// invisible. Running the same seeded scenario with the codec in the
/// loop (`Wire`, the default) and without it (`Direct`, the pre-refactor
/// engine behavior) must produce byte-identical notification traces —
/// i.e. traces before and after the zero-copy wire path are identical.
#[test]
fn wire_and_direct_delivery_traces_are_byte_identical() {
    let run = |delivery: DeliveryMode| -> (Vec<u8>, u64, Digest) {
        let mut cfg = PoeClusterConfig::new(4, SupportMode::Threshold);
        cfg.delivery = delivery;
        cfg.n_clients = 2;
        cfg.requests_per_client = 50;
        cfg.delay = DelayModel::ExponentialTail {
            base: Duration::from_micros(400),
            tail_mean: Duration::from_micros(300),
        };
        cfg.drop_prob = 0.005;
        let mut sim = build_poe_cluster(&cfg);
        sim.schedule_fault(
            Time(Duration::from_millis(25).as_nanos()),
            Fault::Crash(NodeId::Replica(ReplicaId(0))),
        );
        sim.run_until(secs(30));
        (sim.trace_bytes(), sim.completed_requests(), sim.replica(1).ledger_digest())
    };
    let (wire_trace, wire_done, wire_ledger) = run(DeliveryMode::Wire);
    let (direct_trace, direct_done, direct_ledger) = run(DeliveryMode::Direct);
    assert!(wire_done >= 100, "scenario must make progress (got {wire_done})");
    assert_eq!(wire_done, direct_done);
    assert_eq!(wire_ledger, direct_ledger, "ledgers must agree across delivery modes");
    assert_eq!(wire_trace, direct_trace, "the encoded wire path must be semantically transparent");
}

/// Wire mode does the paper's data-plane accounting: every broadcast is
/// encoded exactly once and shared, so the number of encodes is far
/// below the number of delivered messages (≈ n − 1 lower for
/// broadcast-dominated traffic), and every delivery is decoded.
#[test]
fn wire_mode_encodes_once_per_broadcast() {
    let cfg = PoeClusterConfig::new(4, SupportMode::Threshold);
    let mut sim = build_poe_cluster(&cfg);
    assert!(sim.run_until_completed(1000, secs(60)));
    sim.run_for(Duration::from_secs(1));
    let stats = sim.stats();
    assert_eq!(
        stats.delivered, stats.wire_decodes,
        "every delivered message must go through the shared-frame decoder"
    );
    assert!(
        stats.wire_encodes < stats.wire_decodes,
        "broadcast frames must be shared, not re-encoded per edge \
         (encodes={}, decodes={})",
        stats.wire_encodes,
        stats.wire_decodes
    );
}

/// Paper-scale smoke (§IV: n = 91, f = 30, nf = 61): a small fixed-seed
/// workload completes, replicas converge, and the encode-once broadcast
/// keeps the frame count ~n× below the delivery count. This is the CI
/// gate that keeps paper-scale wiring from rotting.
#[test]
fn paper_scale_n91_smoke() {
    let mut cfg = PoeClusterConfig::paper_scale(SupportMode::Threshold);
    cfg.cluster = cfg.cluster.with_batch_size(10);
    cfg.n_clients = 2;
    cfg.requests_per_client = 20;
    assert_eq!(cfg.cluster.n, 91);
    assert_eq!(cfg.cluster.nf(), 61);
    let mut sim = build_poe_cluster(&cfg);
    assert!(sim.run_until_completed(40, secs(60)), "only {} done", sim.completed_requests());
    sim.run_for(Duration::from_secs(1));
    assert_eq!(sim.stats().view_changes, 0);
    assert_converged(&sim);
    let stats = sim.stats();
    assert_eq!(stats.delivered, stats.wire_decodes);
    // Unicasts (SUPPORT, INFORM) encode one frame per delivery, but each
    // of the 4 batches also fans PROPOSE + CERTIFY out to 90 recipients
    // from ONE encode each — so decodes must exceed encodes by at least
    // those 4 × 2 × 89 shared broadcast edges.
    assert!(
        stats.wire_decodes >= stats.wire_encodes + 4 * 2 * 89,
        "n = 91 broadcasts must share frames (encodes={}, decodes={})",
        stats.wire_encodes,
        stats.wire_decodes
    );
}

/// The determinism gate: the same seed must reproduce a byte-identical
/// notification trace, even through a crash-induced view change; a
/// different seed must not.
#[test]
fn same_seed_reproduces_byte_identical_trace() {
    let run = |seed: u64| -> (Vec<u8>, u64) {
        let mut cfg = PoeClusterConfig::new(4, SupportMode::Threshold);
        cfg.cluster = cfg.cluster.with_seed(seed);
        cfg.n_clients = 2;
        cfg.requests_per_client = 50;
        cfg.delay = DelayModel::ExponentialTail {
            base: Duration::from_micros(400),
            tail_mean: Duration::from_micros(300),
        };
        cfg.drop_prob = 0.005;
        let mut sim = build_poe_cluster(&cfg);
        sim.schedule_fault(
            Time(Duration::from_millis(25).as_nanos()),
            Fault::Crash(NodeId::Replica(ReplicaId(0))),
        );
        sim.run_until(secs(30));
        (sim.trace_bytes(), sim.completed_requests())
    };
    let (trace_a, done_a) = run(42);
    let (trace_b, done_b) = run(42);
    assert!(!trace_a.is_empty());
    assert!(done_a >= 100, "scenario must make progress (got {done_a})");
    assert_eq!(done_a, done_b);
    assert_eq!(trace_a, trace_b, "same seed must replay identically");
    let (trace_c, _) = run(43);
    assert_ne!(trace_a, trace_c, "different seed must explore a different schedule");
}
