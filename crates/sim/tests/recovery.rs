//! State-transfer & crash-recovery scenarios: a replica that falls
//! behind past the repair trigger (two full checkpoint intervals)
//! closes the gap with the STATE-REQUEST / STATE-CHUNK protocol and
//! converges byte-identically with the cluster, plus a seeded chaos
//! sweep that randomizes fault schedules across checkpoint boundaries.

use poe_consensus::{PoeReplica, SupportMode};
use poe_crypto::Digest;
use poe_kernel::ids::{NodeId, ReplicaId, SeqNum};
use poe_kernel::time::{Duration, Time};
use poe_net::DelayModel;
use poe_sim::{build_poe_cluster, Fault, PoeClusterConfig, Simulator};

fn secs(s: u64) -> Time {
    Time(Duration::from_secs(s).as_nanos())
}

const CHECKPOINT_INTERVAL: u64 = 4;

/// Aggressive checkpoint cadence so a short outage spans several
/// checkpoint intervals: the repair trigger needs `f + 1` peers to have
/// proved a checkpoint at least two intervals past the victim's frontier.
fn recovery_cfg(support: SupportMode) -> PoeClusterConfig {
    let mut cfg = PoeClusterConfig::new(4, support);
    cfg.cluster = cfg.cluster.with_checkpoint_interval(CHECKPOINT_INTERVAL).with_batch_size(5);
    cfg.n_clients = 2;
    cfg.requests_per_client = 300;
    cfg
}

/// Asserts every live replica converged to the same state digest,
/// ledger history, and execution frontier.
fn assert_converged(sim: &Simulator) -> (Digest, Digest, SeqNum) {
    let mut reference: Option<(Digest, Digest, SeqNum)> = None;
    for i in 0..sim.n_replicas() {
        if sim.is_crashed(NodeId::Replica(ReplicaId(i as u32))) {
            continue;
        }
        let r = sim.replica(i);
        let tuple = (r.state_digest(), r.ledger_digest(), r.execution_frontier());
        match &reference {
            None => reference = Some(tuple),
            Some(expect) => assert_eq!(*expect, tuple, "replica {i} diverged"),
        }
    }
    reference.expect("at least one live replica")
}

/// Isolates replica 3 early, lets the cluster commit roughly half the
/// workload without it (far more than two checkpoint intervals of lag),
/// reconnects it while plenty of traffic remains, and drives the run to
/// completion. Returns the victim's lag at the moment of reconnection.
fn run_outage(sim: &mut Simulator, total: u64) -> u64 {
    let victim = NodeId::Replica(ReplicaId(3));
    sim.schedule_fault(sim.now() + Duration::from_millis(30), Fault::Isolate(victim));
    while sim.completed_requests() < total / 2 {
        sim.run_for(Duration::from_millis(10));
        assert!(
            sim.now() < secs(60),
            "cluster stalled during the outage at {}/{total}",
            sim.completed_requests()
        );
    }
    let lag = sim.replica(1).execution_frontier().0 - sim.replica(3).execution_frontier().0;
    sim.schedule_fault(sim.now() + Duration::from_millis(1), Fault::Reconnect(victim));
    assert!(sim.run_until_completed(total, secs(120)), "only {} done", sim.completed_requests());
    // Drain: the repair's probe → fetch → tail rounds run on 500 ms
    // retry timers, so give the protocol room to finish after the
    // workload stops generating traffic.
    sim.run_for(Duration::from_secs(10));
    lag
}

/// The tentpole acceptance scenario (threshold support): a 4-replica
/// cluster where one replica falls ≥ 2 checkpoints behind converges to
/// a byte-identical history digest on all four replicas — the certified
/// tail above the installed checkpoint is verified via threshold certs.
#[test]
fn isolated_replica_repairs_past_checkpoint_gc() {
    let cfg = recovery_cfg(SupportMode::Threshold);
    let mut sim = build_poe_cluster(&cfg);
    let lag = run_outage(&mut sim, cfg.total_requests());
    assert!(
        lag >= 2 * CHECKPOINT_INTERVAL,
        "outage must span ≥ 2 checkpoint intervals (lag = {lag})"
    );
    assert!(sim.stats().caught_up >= 1, "the victim must complete a repair");
    assert_converged(&sim);
    assert!(
        sim.trace().iter().any(|l| l.contains("caughtup")),
        "trace records the repair completion"
    );
    // The victim's flight recorder tells the same story in virtual
    // time: isolation, the fell-behind discovery, and the repair.
    let tl = sim.timeline(3);
    assert!(tl.contains("muted"), "isolation recorded: {tl}");
    assert!(tl.contains("caught-up"), "repair completion recorded: {tl}");
}

/// Same scenario in MAC support mode (Appendix A): with no transferable
/// certificates, the repaired replica adopts tail entries only at
/// `f + 1` distinct-sender multiplicity.
#[test]
fn isolated_replica_repairs_in_mac_mode() {
    let cfg = recovery_cfg(SupportMode::Mac);
    let mut sim = build_poe_cluster(&cfg);
    let lag = run_outage(&mut sim, cfg.total_requests());
    assert!(lag >= 2 * CHECKPOINT_INTERVAL, "outage too short (lag = {lag})");
    assert!(sim.stats().caught_up >= 1, "the victim must complete a repair");
    assert_converged(&sim);
}

/// The repair path must not disturb determinism: the same seed replays
/// the same outage → repair → convergence byte-for-byte.
#[test]
fn repair_run_is_deterministic() {
    let run = |seed: u64| -> (Vec<u8>, Digest) {
        let mut cfg = recovery_cfg(SupportMode::Threshold);
        cfg.cluster = cfg.cluster.with_seed(seed);
        let mut sim = build_poe_cluster(&cfg);
        run_outage(&mut sim, cfg.total_requests());
        (sim.trace_bytes(), sim.replica(3).ledger_digest())
    };
    let (trace_a, ledger_a) = run(7);
    let (trace_b, ledger_b) = run(7);
    assert_eq!(ledger_a, ledger_b);
    assert_eq!(trace_a, trace_b, "same seed must replay the repair identically");
}

/// Regression for the repair-budget liveness edge: serving budgets used
/// to refill only when a *new* checkpoint stabilized, so a repair that
/// started as client traffic drained exhausted the responders' buckets
/// and stalled until traffic resumed. The idle-refill timer
/// (`TimerKind::RepairBudget`, armed on the first throttle) now grants
/// a fresh budget after an idle tick, so catch-up completes against a
/// fully quiesced cluster.
#[test]
fn repair_completes_after_traffic_drains_via_idle_refill() {
    let mut cfg = recovery_cfg(SupportMode::Threshold);
    // A single-token budget over a many-chunk image: the repair needs
    // far more tokens than the final checkpoint refill granted, so it
    // can only finish through idle refills. Zero-payload values keep
    // the image (and the test) small; the short repair timeout keeps
    // the retry backoff from dominating the run.
    cfg.requests_per_client = 60;
    cfg.ycsb.zero_payload = true;
    cfg.cluster = cfg
        .cluster
        .with_repair_budget_chunks(1)
        .with_repair_chunk_bytes(512)
        .with_repair_timeout(Duration::from_millis(100));
    let total = cfg.total_requests();
    let mut sim = build_poe_cluster(&cfg);
    let victim = NodeId::Replica(ReplicaId(3));
    sim.schedule_fault(sim.now() + Duration::from_millis(30), Fault::Isolate(victim));
    // Hold the outage until the workload is nearly done, then
    // reconnect: the final checkpoints' votes trigger the victim's
    // repair, but by the time it fetches chunks the cluster is quiet —
    // no new checkpoints, hence no checkpoint-driven refills.
    while sim.completed_requests() < total * 80 / 100 {
        sim.run_for(Duration::from_millis(10));
        assert!(sim.now() < secs(60), "cluster stalled during the outage");
    }
    sim.schedule_fault(sim.now() + Duration::from_millis(1), Fault::Reconnect(victim));
    assert!(sim.run_until_completed(total, secs(120)), "only {} done", sim.completed_requests());
    // All client traffic has drained; the repair must finish anyway.
    sim.run_for(Duration::from_secs(60));
    if std::env::var("POE_DEBUG").is_ok() {
        for i in 0..4 {
            let st = sim.replica(i).as_any().downcast_ref::<PoeReplica>().unwrap().repair_stats();
            eprintln!("r{i}: {:?} exec={:?}", st, sim.replica(i).execution_frontier());
        }
        for l in sim.trace().iter().rev().take(30).rev() {
            eprintln!("{l}");
        }
    }
    assert!(sim.stats().caught_up >= 1, "the victim must complete a repair");
    assert_converged(&sim);
    let (throttled, idle_refills) = (0..4)
        .map(|i| {
            let stats = sim
                .replica(i)
                .as_any()
                .downcast_ref::<PoeReplica>()
                .expect("poe replica")
                .repair_stats();
            (stats.throttled, stats.idle_refills)
        })
        .fold((0, 0), |(t, r), (dt, dr)| (t + dt, r + dr));
    assert!(throttled >= 1, "the single-token budget must have throttled responders");
    assert!(idle_refills >= 1, "the idle tick must have granted at least one refill");
}

// ------------------------------------------------------------- chaos

/// splitmix64: tiny deterministic PRNG for schedule derivation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One randomized fault schedule: a seed-chosen backup is isolated,
/// muted, or crashed at a seed-chosen point, held across a seed-chosen
/// share of the workload (spanning checkpoint boundaries), then (for
/// recoverable faults) brought back. The cluster must complete the
/// workload and every live replica must agree on history and state.
fn chaos_case(seed: u64) -> Result<(), String> {
    let mut rng = Rng(seed);
    let support = if rng.pick(2) == 0 { SupportMode::Threshold } else { SupportMode::Mac };
    let mut cfg = PoeClusterConfig::new(4, support);
    cfg.cluster = cfg
        .cluster
        .with_seed(seed)
        .with_checkpoint_interval(CHECKPOINT_INTERVAL)
        .with_batch_size(5);
    cfg.n_clients = 2;
    cfg.requests_per_client = 150;
    cfg.delay =
        DelayModel::Uniform { min: Duration::from_micros(300), max: Duration::from_millis(2) };
    let total = cfg.total_requests();
    let mut sim = build_poe_cluster(&cfg);

    // Never the view-0 primary: primary faults are the view-change
    // suite's territory; this sweep targets the fell-behind gap.
    let victim = NodeId::Replica(ReplicaId(1 + rng.pick(3) as u32));
    let kind = rng.pick(4);
    let start = Duration::from_millis(10 + rng.pick(40));
    let fault = match kind {
        0 | 1 => Fault::Isolate(victim),
        2 => Fault::Mute(match victim {
            NodeId::Replica(r) => r,
            _ => unreachable!(),
        }),
        _ => Fault::Crash(victim),
    };
    if std::env::var("POE_CHAOS_SEED").is_ok() {
        eprintln!(
            "seed {seed}: support={support:?} victim={victim:?} fault={fault:?} start={start:?}"
        );
    }
    sim.schedule_fault(sim.now() + start, fault);

    // Hold the fault across several checkpoint boundaries: wait until
    // the live replicas commit a seed-dependent 30–69 % of the workload.
    let hold_until = total * (30 + rng.pick(40)) / 100;
    while sim.completed_requests() < hold_until {
        sim.run_for(Duration::from_millis(5));
        if sim.now() >= secs(60) {
            let snap: Vec<String> = (0..4)
                .map(|i| {
                    let r = sim.replica(i);
                    format!("r{i}: view={:?} exec={:?}", r.current_view(), r.execution_frontier())
                })
                .collect();
            let tail_len = if std::env::var("POE_CHAOS_SEED").is_ok() { usize::MAX } else { 12 };
            let tail: Vec<&str> =
                sim.trace().iter().rev().take(tail_len).rev().map(String::as_str).collect();
            return Err(format!(
                "stalled during fault window at {}/{total}; {}\n{}\nper-replica timelines:\n{}",
                sim.completed_requests(),
                snap.join(" "),
                tail.join("\n"),
                sim.timelines()
            ));
        }
    }
    match kind {
        0 | 1 => sim.schedule_fault(sim.now() + Duration::from_millis(1), Fault::Reconnect(victim)),
        2 => sim.schedule_fault(
            sim.now() + Duration::from_millis(1),
            Fault::Unmute(match victim {
                NodeId::Replica(r) => r,
                _ => unreachable!(),
            }),
        ),
        _ => {} // a crash is permanent in the simulator
    }
    if !sim.run_until_completed(total, secs(120)) {
        return Err(format!(
            "only {}/{total} requests completed\nper-replica timelines:\n{}",
            sim.completed_requests(),
            sim.timelines()
        ));
    }
    sim.run_for(Duration::from_secs(10));

    let mut reference: Option<(Digest, Digest)> = None;
    for i in 0..4 {
        if sim.is_crashed(NodeId::Replica(ReplicaId(i as u32))) {
            continue;
        }
        let r = sim.replica(i);
        let tuple = (r.state_digest(), r.ledger_digest());
        match &reference {
            None => reference = Some(tuple),
            Some(expect) if *expect == tuple => {}
            Some(expect) => {
                return Err(format!(
                    "replica {i} diverged: {tuple:?} != {expect:?}\nper-replica timelines:\n{}",
                    sim.timelines()
                ));
            }
        }
    }
    Ok(())
}

/// ~50-seed randomized crash/isolate sweep across checkpoint
/// boundaries. Reproduce a single failing seed with one command:
///
/// ```text
/// POE_CHAOS_SEED=17 cargo test -p poe-sim --release --test recovery chaos_sweep
/// ```
#[test]
fn chaos_sweep_recovers_across_checkpoint_boundaries() {
    if let Ok(s) = std::env::var("POE_CHAOS_SEED") {
        let seed: u64 = s.parse().expect("POE_CHAOS_SEED must be a u64");
        chaos_case(seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        return;
    }
    let mut failures = Vec::new();
    for seed in 0..50 {
        if let Err(e) = chaos_case(seed) {
            failures.push(format!("seed {seed}: {e}"));
        }
    }
    assert!(failures.is_empty(), "{} failing seeds:\n{}", failures.len(), failures.join("\n"));
}
