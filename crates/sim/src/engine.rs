//! The discrete-event engine: a seeded, totally ordered event queue over
//! virtual time.
//!
//! Determinism contract: given the same automatons, network model, seed,
//! and fault schedule, two runs produce byte-identical notification
//! traces. Everything that could introduce ambiguity is pinned down —
//! events are ordered by `(time, insertion id)`, network randomness
//! comes from one seeded RNG drawn in event order, and automatons are
//! required to emit actions deterministically (the PoE implementation
//! uses only ordered containers).

use poe_kernel::automaton::{Action, ClientAutomaton, Event, Notification, ReplicaAutomaton};
use poe_kernel::ids::{ClientId, NodeId, ReplicaId};
use poe_kernel::messages::ProtocolMsg;
use poe_kernel::time::{Duration, Time};
use poe_kernel::timer::{TimerKind, TimerTable};
use poe_net::NetworkModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

/// An injectable fault, applied when its scheduled time arrives.
#[derive(Clone, Debug)]
pub enum Fault {
    /// The node halts: no further events (messages or timers) reach it.
    /// Messages already in flight are still delivered to others.
    Crash(NodeId),
    /// The replica keeps running but all its *outbound* messages vanish
    /// (a mute primary: it still reads, executes, and times out).
    Mute(ReplicaId),
    /// Undo a [`Fault::Mute`].
    Unmute(ReplicaId),
    /// Cut the node off at the network layer in both directions.
    Isolate(NodeId),
    /// Undo a [`Fault::Isolate`].
    Reconnect(NodeId),
}

enum Queued {
    Init { node: NodeId },
    Deliver { to: NodeId, from: NodeId, msg: ProtocolMsg },
    Timer { node: NodeId, kind: TimerKind, gen: u64 },
    Fault(Fault),
}

struct Scheduled {
    at: Time,
    id: u64,
    queued: Queued,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    /// Reversed: `BinaryHeap` is a max-heap and we want earliest-first,
    /// with insertion order breaking ties.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.id).cmp(&(self.at, self.id))
    }
}

/// Aggregate counters over one run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimStats {
    /// Messages delivered to a live automaton.
    pub delivered: u64,
    /// Messages dropped (network, mute, or dead destination).
    pub dropped: u64,
    /// Timer events that fired while still armed.
    pub timer_fires: u64,
    /// Client requests completed (`RequestComplete` notifications).
    pub completed_requests: u64,
    /// Batches speculatively executed across all replicas.
    pub executed_batches: u64,
    /// Consensus decisions (view-commits) across all replicas.
    pub decided: u64,
    /// `ViewChanged` notifications across all replicas.
    pub view_changes: u64,
    /// `RolledBack` notifications across all replicas.
    pub rollbacks: u64,
    /// `CheckpointStable` notifications across all replicas.
    pub checkpoints: u64,
}

/// The deterministic simulator.
pub struct Simulator {
    now: Time,
    queue: BinaryHeap<Scheduled>,
    next_id: u64,
    replicas: Vec<Box<dyn ReplicaAutomaton>>,
    clients: Vec<Box<dyn ClientAutomaton>>,
    replica_timers: Vec<TimerTable>,
    client_timers: Vec<TimerTable>,
    net: NetworkModel,
    rng: StdRng,
    crashed: BTreeSet<NodeId>,
    muted: BTreeSet<NodeId>,
    trace: Vec<String>,
    stats: SimStats,
}

impl Simulator {
    /// Builds a simulator over the given automatons; every node receives
    /// [`Event::Init`] at time zero (replicas first, then clients).
    pub fn new(
        net: NetworkModel,
        seed: u64,
        replicas: Vec<Box<dyn ReplicaAutomaton>>,
        clients: Vec<Box<dyn ClientAutomaton>>,
    ) -> Simulator {
        let replica_timers = replicas.iter().map(|_| TimerTable::new()).collect();
        let client_timers = clients.iter().map(|_| TimerTable::new()).collect();
        let mut sim = Simulator {
            now: Time::ZERO,
            queue: BinaryHeap::new(),
            next_id: 0,
            replicas,
            clients,
            replica_timers,
            client_timers,
            net,
            rng: StdRng::seed_from_u64(seed),
            crashed: BTreeSet::new(),
            muted: BTreeSet::new(),
            trace: Vec::new(),
            stats: SimStats::default(),
        };
        for i in 0..sim.replicas.len() {
            sim.push(Time::ZERO, Queued::Init { node: NodeId::Replica(ReplicaId(i as u32)) });
        }
        for c in 0..sim.clients.len() {
            sim.push(Time::ZERO, Queued::Init { node: NodeId::Client(ClientId(c as u32)) });
        }
        sim
    }

    fn push(&mut self, at: Time, queued: Queued) {
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push(Scheduled { at, id, queued });
    }

    /// Schedules a fault for injection at virtual time `at`.
    pub fn schedule_fault(&mut self, at: Time, fault: Fault) {
        self.push(at, Queued::Fault(fault));
    }

    /// The virtual clock.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The notification trace: one line per notification (and fault), in
    /// delivery order. Byte-identical across runs with the same seed.
    pub fn trace(&self) -> &[String] {
        &self.trace
    }

    /// The whole trace as one byte string (for divergence checks).
    pub fn trace_bytes(&self) -> Vec<u8> {
        self.trace.join("\n").into_bytes()
    }

    /// Read access to replica `i`.
    pub fn replica(&self, i: usize) -> &dyn ReplicaAutomaton {
        &*self.replicas[i]
    }

    /// Read access to client `i`.
    pub fn client(&self, i: usize) -> &dyn ClientAutomaton {
        &*self.clients[i]
    }

    /// Number of replicas.
    pub fn n_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Total requests completed across all clients.
    pub fn completed_requests(&self) -> u64 {
        self.clients.iter().map(|c| c.completed()).sum()
    }

    /// Whether `node` has crashed (via fault injection).
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.contains(&node)
    }

    /// Processes a single event; `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Scheduled { at, queued, .. }) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        match queued {
            Queued::Init { node } => self.deliver(node, Event::Init),
            Queued::Deliver { to, from, msg } => {
                if self.crashed.contains(&to) {
                    self.stats.dropped += 1;
                } else {
                    self.stats.delivered += 1;
                    self.deliver(to, Event::Deliver { from, msg });
                }
            }
            Queued::Timer { node, kind, gen } => {
                if self.crashed.contains(&node) {
                    return true;
                }
                let current = match node {
                    NodeId::Replica(r) => self.replica_timers[r.index()].fire(&kind, gen),
                    NodeId::Client(c) => self.client_timers[c.index()].fire(&kind, gen),
                };
                if current {
                    self.stats.timer_fires += 1;
                    self.deliver(node, Event::Timeout(kind));
                }
            }
            Queued::Fault(fault) => self.apply_fault(fault),
        }
        true
    }

    fn apply_fault(&mut self, fault: Fault) {
        let line = match &fault {
            Fault::Crash(n) => {
                self.crashed.insert(*n);
                format!("fault crash {n:?}")
            }
            Fault::Mute(r) => {
                self.muted.insert(NodeId::Replica(*r));
                format!("fault mute {r:?}")
            }
            Fault::Unmute(r) => {
                self.muted.remove(&NodeId::Replica(*r));
                format!("fault unmute {r:?}")
            }
            Fault::Isolate(n) => {
                self.net.isolate(*n);
                format!("fault isolate {n:?}")
            }
            Fault::Reconnect(n) => {
                self.net.reconnect(*n);
                format!("fault reconnect {n:?}")
            }
        };
        self.trace.push(format!("{:>12} -- {line}", self.now.as_nanos()));
    }

    fn deliver(&mut self, node: NodeId, event: Event) {
        let mut out = poe_kernel::automaton::Outbox::new();
        match node {
            NodeId::Replica(r) => self.replicas[r.index()].on_event(self.now, event, &mut out),
            NodeId::Client(c) => self.clients[c.index()].on_event(self.now, event, &mut out),
        }
        for action in out.drain() {
            self.apply_action(node, action);
        }
    }

    fn apply_action(&mut self, from: NodeId, action: Action) {
        match action {
            Action::Send { to, msg } => self.route(from, to, msg),
            Action::Broadcast { msg } => {
                // Convention: a broadcast reaches every replica other
                // than the sender (clients broadcast to all replicas).
                for i in 0..self.replicas.len() {
                    let to = NodeId::Replica(ReplicaId(i as u32));
                    if to != from {
                        self.route(from, to, msg.clone());
                    }
                }
            }
            Action::SetTimer { kind, delay } => {
                let gen = match from {
                    NodeId::Replica(r) => self.replica_timers[r.index()].arm(kind),
                    NodeId::Client(c) => self.client_timers[c.index()].arm(kind),
                };
                let at = self.now + delay;
                self.push(at, Queued::Timer { node: from, kind, gen });
            }
            Action::CancelTimer { kind } => match from {
                NodeId::Replica(r) => self.replica_timers[r.index()].cancel(&kind),
                NodeId::Client(c) => self.client_timers[c.index()].cancel(&kind),
            },
            Action::Notify(n) => self.record(from, n),
        }
    }

    fn route(&mut self, from: NodeId, to: NodeId, msg: ProtocolMsg) {
        if self.muted.contains(&from) || self.crashed.contains(&to) {
            self.stats.dropped += 1;
            return;
        }
        match self.net.route(from, to, &mut self.rng) {
            None => self.stats.dropped += 1,
            Some(delay) => {
                let at = self.now + delay;
                self.push(at, Queued::Deliver { to, from, msg });
            }
        }
    }

    fn record(&mut self, node: NodeId, n: Notification) {
        match &n {
            Notification::RequestComplete { .. } => self.stats.completed_requests += 1,
            Notification::Executed { .. } => self.stats.executed_batches += 1,
            Notification::Decided { .. } => self.stats.decided += 1,
            Notification::ViewChanged { .. } => self.stats.view_changes += 1,
            Notification::RolledBack { .. } => self.stats.rollbacks += 1,
            Notification::CheckpointStable { .. } => self.stats.checkpoints += 1,
        }
        self.trace.push(format!("{:>12} {node:?} {}", self.now.as_nanos(), n.trace_line()));
    }

    /// Runs until the virtual clock reaches `deadline` (or the queue
    /// empties). The clock lands exactly on `deadline`.
    pub fn run_until(&mut self, deadline: Time) {
        while self.queue.peek().is_some_and(|s| s.at <= deadline) {
            self.step();
        }
        self.now = deadline;
    }

    /// Runs for `d` of virtual time.
    pub fn run_for(&mut self, d: Duration) {
        self.run_until(self.now + d);
    }

    /// Runs until `target` client requests have completed, checking at
    /// `tick` granularity; gives up at `horizon`. Returns whether the
    /// target was reached.
    pub fn run_until_completed(&mut self, target: u64, horizon: Time) -> bool {
        let tick = Duration::from_millis(50);
        while self.now < horizon {
            if self.completed_requests() >= target {
                return true;
            }
            if self.queue.is_empty() {
                break;
            }
            self.run_for(tick);
        }
        self.completed_requests() >= target
    }
}
