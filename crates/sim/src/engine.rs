//! The discrete-event engine: a seeded, totally ordered event queue over
//! virtual time.
//!
//! Determinism contract: given the same automatons, network model, seed,
//! and fault schedule, two runs produce byte-identical notification
//! traces. Everything that could introduce ambiguity is pinned down —
//! events are ordered by `(time, insertion id)`, network randomness
//! comes from one seeded RNG drawn in event order, and automatons are
//! required to emit actions deterministically (the PoE implementation
//! uses only ordered containers).
//!
//! ## The wire path
//!
//! By default ([`DeliveryMode::Wire`]) the engine is wire-accurate:
//! every send/broadcast encodes its message **exactly once** into a
//! refcounted [`WireBytes`] frame, every edge carries a clone of the
//! *view* (a refcount bump — a broadcast to `n − 1` recipients does
//! O(1) work per extra edge and holds one frame in the queue, not
//! `n − 1` message copies), and each delivery decodes through the
//! codec's zero-copy shared mode, so request payloads point into the
//! frame all the way into the consensus slots. [`DeliveryMode::Direct`]
//! skips the codec and hands automaton messages across directly; the
//! scenario suite asserts both modes produce byte-identical traces,
//! which is the proof that the wire path is semantically transparent.

use poe_kernel::automaton::{Action, ClientAutomaton, Event, Notification, ReplicaAutomaton};
use poe_kernel::codec;
use poe_kernel::ids::{ClientId, NodeId, ReplicaId};
use poe_kernel::messages::ProtocolMsg;
use poe_kernel::time::{Duration, Time};
use poe_kernel::timer::{TimerKind, TimerTable};
use poe_kernel::wire::WireBytes;
use poe_net::NetworkModel;
use poe_telemetry::{FlightRecorder, ProtoEvent, TimeBase};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};
use std::sync::Arc;

/// An injectable fault, applied when its scheduled time arrives.
#[derive(Clone, Debug)]
pub enum Fault {
    /// The node halts: no further events (messages or timers) reach it.
    /// Messages already in flight are still delivered to others.
    Crash(NodeId),
    /// The replica keeps running but all its *outbound* messages vanish
    /// (a mute primary: it still reads, executes, and times out).
    Mute(ReplicaId),
    /// Undo a [`Fault::Mute`].
    Unmute(ReplicaId),
    /// Cut the node off at the network layer in both directions.
    Isolate(NodeId),
    /// Undo a [`Fault::Isolate`].
    Reconnect(NodeId),
}

/// How messages travel between automatons.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DeliveryMode {
    /// Encode once per send/broadcast into a shared [`WireBytes`] frame;
    /// decode (zero-copy) at each delivery. Wire-accurate and the
    /// default.
    #[default]
    Wire,
    /// Hand `ProtocolMsg` values across directly, skipping the codec
    /// (the pre-wire-path engine behavior; kept for A/B trace checks).
    Direct,
}

/// A queued message body: either an encoded frame shared by every edge
/// of its broadcast, or (direct mode) a shared pointer to the message.
#[derive(Clone)]
enum Payload {
    Frame(WireBytes),
    Msg(Arc<ProtocolMsg>),
}

enum Queued {
    Init { node: NodeId },
    Deliver { to: NodeId, from: NodeId, payload: Payload },
    Timer { node: NodeId, kind: TimerKind, gen: u64 },
    Fault(Fault),
}

struct Scheduled {
    at: Time,
    id: u64,
    queued: Queued,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    /// Reversed: `BinaryHeap` is a max-heap and we want earliest-first,
    /// with insertion order breaking ties.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.id).cmp(&(self.at, self.id))
    }
}

/// Aggregate counters over one run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimStats {
    /// Messages delivered to a live automaton.
    pub delivered: u64,
    /// Messages dropped (network, mute, or dead destination).
    pub dropped: u64,
    /// Timer events that fired while still armed.
    pub timer_fires: u64,
    /// Client requests completed (`RequestComplete` notifications).
    pub completed_requests: u64,
    /// Batches speculatively executed across all replicas.
    pub executed_batches: u64,
    /// Consensus decisions (view-commits) across all replicas.
    pub decided: u64,
    /// `ViewChanged` notifications across all replicas.
    pub view_changes: u64,
    /// `RolledBack` notifications across all replicas.
    pub rollbacks: u64,
    /// `CheckpointStable` notifications across all replicas.
    pub checkpoints: u64,
    /// `FellBehind` notifications across all replicas (a replica needed
    /// state transfer after a view change).
    pub fell_behind: u64,
    /// `CaughtUp` notifications across all replicas (a state-transfer
    /// repair completed and the replica re-entered normal operation).
    pub caught_up: u64,
    /// Wire mode: messages encoded (one per send/broadcast *action*, no
    /// matter how many recipients the broadcast fans out to).
    pub wire_encodes: u64,
    /// Wire mode: frame bytes produced by those encodes (each broadcast
    /// frame counted once, not once per edge).
    pub wire_encoded_bytes: u64,
    /// Wire mode: deliveries decoded from a shared frame.
    pub wire_decodes: u64,
}

/// The deterministic simulator.
pub struct Simulator {
    now: Time,
    queue: BinaryHeap<Scheduled>,
    next_id: u64,
    replicas: Vec<Box<dyn ReplicaAutomaton>>,
    clients: Vec<Box<dyn ClientAutomaton>>,
    replica_timers: Vec<TimerTable>,
    client_timers: Vec<TimerTable>,
    net: NetworkModel,
    rng: StdRng,
    delivery: DeliveryMode,
    crashed: BTreeSet<NodeId>,
    muted: BTreeSet<NodeId>,
    trace: Vec<String>,
    stats: SimStats,
    /// Per-replica flight recorders (virtual time base). Pure
    /// observers: recording touches neither the RNG nor the event
    /// queue, so the determinism contract (byte-identical traces per
    /// seed) is unaffected.
    recorders: Vec<Arc<FlightRecorder>>,
    /// Recycled across deliveries (capacity survives; see
    /// [`Outbox::drain_iter`]).
    outbox: poe_kernel::automaton::Outbox,
    /// Reused encode buffer: frames are written here (no measuring
    /// pass, no per-frame buffer allocation) and then copied once into
    /// their exact-size shared allocation.
    frame_scratch: Vec<u8>,
}

impl Simulator {
    /// Builds a simulator over the given automatons; every node receives
    /// [`Event::Init`] at time zero (replicas first, then clients).
    /// Messages travel as encoded frames ([`DeliveryMode::Wire`]); see
    /// [`Simulator::with_delivery_mode`].
    pub fn new(
        net: NetworkModel,
        seed: u64,
        replicas: Vec<Box<dyn ReplicaAutomaton>>,
        clients: Vec<Box<dyn ClientAutomaton>>,
    ) -> Simulator {
        Simulator::with_delivery_mode(net, seed, replicas, clients, DeliveryMode::default())
    }

    /// [`Simulator::new`] with an explicit [`DeliveryMode`].
    pub fn with_delivery_mode(
        net: NetworkModel,
        seed: u64,
        replicas: Vec<Box<dyn ReplicaAutomaton>>,
        clients: Vec<Box<dyn ClientAutomaton>>,
        delivery: DeliveryMode,
    ) -> Simulator {
        let replica_timers = replicas.iter().map(|_| TimerTable::new()).collect();
        let client_timers = clients.iter().map(|_| TimerTable::new()).collect();
        let recorders = replicas
            .iter()
            .map(|_| Arc::new(FlightRecorder::with_default_capacity(TimeBase::Virtual)))
            .collect();
        // Pre-size the event queue for the steady-state in-flight load:
        // every replica keeps a few broadcasts and timers queued at once,
        // so paper-scale runs (n = 91) do not spend their warm-up
        // repeatedly regrowing the heap.
        let nodes = replicas.len() + clients.len();
        let mut sim = Simulator {
            now: Time::ZERO,
            queue: BinaryHeap::with_capacity(64 * nodes.max(4)),
            next_id: 0,
            replicas,
            clients,
            replica_timers,
            client_timers,
            net,
            rng: StdRng::seed_from_u64(seed),
            delivery,
            crashed: BTreeSet::new(),
            muted: BTreeSet::new(),
            trace: Vec::new(),
            stats: SimStats::default(),
            recorders,
            outbox: poe_kernel::automaton::Outbox::new(),
            frame_scratch: Vec::new(),
        };
        for i in 0..sim.replicas.len() {
            sim.push(Time::ZERO, Queued::Init { node: NodeId::Replica(ReplicaId(i as u32)) });
        }
        for c in 0..sim.clients.len() {
            sim.push(Time::ZERO, Queued::Init { node: NodeId::Client(ClientId(c as u32)) });
        }
        sim
    }

    /// The delivery mode in use.
    pub fn delivery_mode(&self) -> DeliveryMode {
        self.delivery
    }

    fn push(&mut self, at: Time, queued: Queued) {
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push(Scheduled { at, id, queued });
    }

    /// Schedules a fault for injection at virtual time `at`.
    pub fn schedule_fault(&mut self, at: Time, fault: Fault) {
        self.push(at, Queued::Fault(fault));
    }

    /// The virtual clock.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The notification trace: one line per notification (and fault), in
    /// delivery order. Byte-identical across runs with the same seed.
    pub fn trace(&self) -> &[String] {
        &self.trace
    }

    /// The whole trace as one byte string (for divergence checks).
    pub fn trace_bytes(&self) -> Vec<u8> {
        self.trace.join("\n").into_bytes()
    }

    /// Read access to replica `i`.
    pub fn replica(&self, i: usize) -> &dyn ReplicaAutomaton {
        &*self.replicas[i]
    }

    /// Read access to client `i`.
    pub fn client(&self, i: usize) -> &dyn ClientAutomaton {
        &*self.clients[i]
    }

    /// Number of replicas.
    pub fn n_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Total requests completed across all clients.
    pub fn completed_requests(&self) -> u64 {
        self.clients.iter().map(|c| c.completed()).sum()
    }

    /// Whether `node` has crashed (via fault injection).
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.contains(&node)
    }

    /// Replica `i`'s flight recorder (virtual time base).
    pub fn recorder(&self, i: usize) -> &Arc<FlightRecorder> {
        &self.recorders[i]
    }

    /// Replica `i`'s protocol timeline, rendered human-readable.
    pub fn timeline(&self, i: usize) -> String {
        self.recorders[i].dump(&format!("r{i}"))
    }

    /// Every replica's timeline concatenated — the post-mortem dump a
    /// failing chaos seed prints next to its repro line.
    pub fn timelines(&self) -> String {
        (0..self.recorders.len()).map(|i| self.timeline(i)).collect()
    }

    /// Processes a single event; `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Scheduled { at, queued, .. }) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        match queued {
            Queued::Init { node } => self.deliver(node, Event::Init),
            Queued::Deliver { to, from, payload } => {
                if self.crashed.contains(&to) {
                    self.stats.dropped += 1;
                } else {
                    self.stats.delivered += 1;
                    let msg = match payload {
                        Payload::Frame(frame) => {
                            self.stats.wire_decodes += 1;
                            codec::decode_msg_shared(&frame)
                                .expect("engine-encoded frame must decode")
                        }
                        // Direct mode: the last recipient takes the
                        // message; earlier ones clone it.
                        Payload::Msg(m) => Arc::try_unwrap(m).unwrap_or_else(|m| (*m).clone()),
                    };
                    self.deliver(to, Event::Deliver { from, msg });
                }
            }
            Queued::Timer { node, kind, gen } => {
                if self.crashed.contains(&node) {
                    return true;
                }
                let current = match node {
                    NodeId::Replica(r) => self.replica_timers[r.index()].fire(&kind, gen),
                    NodeId::Client(c) => self.client_timers[c.index()].fire(&kind, gen),
                };
                if current {
                    self.stats.timer_fires += 1;
                    self.deliver(node, Event::Timeout(kind));
                }
            }
            Queued::Fault(fault) => self.apply_fault(fault),
        }
        true
    }

    fn apply_fault(&mut self, fault: Fault) {
        let line = match &fault {
            Fault::Crash(n) => {
                self.crashed.insert(*n);
                self.flight_record(*n, ProtoEvent::Crashed);
                format!("fault crash {n:?}")
            }
            Fault::Mute(r) => {
                self.muted.insert(NodeId::Replica(*r));
                self.flight_record(NodeId::Replica(*r), ProtoEvent::Muted);
                format!("fault mute {r:?}")
            }
            Fault::Unmute(r) => {
                self.muted.remove(&NodeId::Replica(*r));
                self.flight_record(NodeId::Replica(*r), ProtoEvent::Unmuted);
                format!("fault unmute {r:?}")
            }
            Fault::Isolate(n) => {
                self.net.isolate(*n);
                self.flight_record(*n, ProtoEvent::Muted);
                format!("fault isolate {n:?}")
            }
            Fault::Reconnect(n) => {
                self.net.reconnect(*n);
                self.flight_record(*n, ProtoEvent::Unmuted);
                format!("fault reconnect {n:?}")
            }
        };
        self.trace.push(format!("{:>12} -- {line}", self.now.as_nanos()));
    }

    /// Records a flight-recorder event for `node` if it is a replica
    /// (client nodes carry no recorder).
    fn flight_record(&self, node: NodeId, event: ProtoEvent) {
        if let NodeId::Replica(r) = node {
            if let Some(rec) = self.recorders.get(r.index()) {
                rec.record(self.now.as_nanos(), event);
            }
        }
    }

    fn deliver(&mut self, node: NodeId, event: Event) {
        let mut out = std::mem::take(&mut self.outbox);
        match node {
            NodeId::Replica(r) => self.replicas[r.index()].on_event(self.now, event, &mut out),
            NodeId::Client(c) => self.clients[c.index()].on_event(self.now, event, &mut out),
        }
        for action in out.drain_iter() {
            self.apply_action(node, action);
        }
        self.outbox = out;
    }

    /// Packs a message for transit: in wire mode this is the **single**
    /// encode its whole broadcast shares. The message is written into
    /// the recycled scratch buffer (skipping `encoded_len`'s measuring
    /// pass) and copied once into its exact-size shared frame.
    fn pack(&mut self, msg: ProtocolMsg) -> Payload {
        match self.delivery {
            DeliveryMode::Wire => {
                self.frame_scratch.clear();
                codec::write_msg(&mut self.frame_scratch, &msg);
                let frame = WireBytes::copy_from(&self.frame_scratch);
                self.stats.wire_encodes += 1;
                self.stats.wire_encoded_bytes += frame.len() as u64;
                Payload::Frame(frame)
            }
            DeliveryMode::Direct => Payload::Msg(Arc::new(msg)),
        }
    }

    fn apply_action(&mut self, from: NodeId, action: Action) {
        match action {
            Action::Send { to, msg } => {
                let payload = self.pack(msg);
                self.route(from, to, payload);
            }
            Action::Broadcast { msg } => {
                // Convention: a broadcast reaches every replica other
                // than the sender (clients broadcast to all replicas).
                // One encode; every edge carries a clone of the view.
                let payload = self.pack(msg);
                for i in 0..self.replicas.len() {
                    let to = NodeId::Replica(ReplicaId(i as u32));
                    if to != from {
                        self.route(from, to, payload.clone());
                    }
                }
            }
            Action::SetTimer { kind, delay } => {
                let gen = match from {
                    NodeId::Replica(r) => self.replica_timers[r.index()].arm(kind),
                    NodeId::Client(c) => self.client_timers[c.index()].arm(kind),
                };
                let at = self.now + delay;
                self.push(at, Queued::Timer { node: from, kind, gen });
            }
            Action::CancelTimer { kind } => match from {
                NodeId::Replica(r) => self.replica_timers[r.index()].cancel(&kind),
                NodeId::Client(c) => self.client_timers[c.index()].cancel(&kind),
            },
            Action::Notify(n) => self.record(from, n),
        }
    }

    fn route(&mut self, from: NodeId, to: NodeId, payload: Payload) {
        if self.muted.contains(&from) || self.crashed.contains(&to) {
            self.stats.dropped += 1;
            return;
        }
        match self.net.route(from, to, &mut self.rng) {
            None => self.stats.dropped += 1,
            Some(delay) => {
                let at = self.now + delay;
                self.push(at, Queued::Deliver { to, from, payload });
            }
        }
    }

    fn record(&mut self, node: NodeId, n: Notification) {
        let flight = match &n {
            Notification::RequestComplete { .. } => {
                self.stats.completed_requests += 1;
                None
            }
            Notification::Executed { view, seq, .. } => {
                self.stats.executed_batches += 1;
                Some(ProtoEvent::Executed { view: view.0, seq: seq.0 })
            }
            Notification::Decided { seq } => {
                self.stats.decided += 1;
                Some(ProtoEvent::Decided { seq: seq.0 })
            }
            Notification::ViewChanged { view } => {
                self.stats.view_changes += 1;
                Some(ProtoEvent::ViewChanged { view: view.0 })
            }
            Notification::RolledBack { to } => {
                self.stats.rollbacks += 1;
                Some(ProtoEvent::RolledBack { to: to.map_or(0, |s| s.0) })
            }
            Notification::CheckpointStable { seq } => {
                self.stats.checkpoints += 1;
                Some(ProtoEvent::CheckpointStable { seq: seq.0 })
            }
            Notification::FellBehind { stable, exec_frontier, .. } => {
                self.stats.fell_behind += 1;
                Some(ProtoEvent::FellBehind { stable: stable.0, exec: exec_frontier.0 })
            }
            Notification::CaughtUp { stable, exec_frontier } => {
                self.stats.caught_up += 1;
                Some(ProtoEvent::CaughtUp { stable: stable.0, exec: exec_frontier.0 })
            }
        };
        if let Some(event) = flight {
            self.flight_record(node, event);
        }
        self.trace.push(format!("{:>12} {node:?} {}", self.now.as_nanos(), n.trace_line()));
    }

    /// Runs until the virtual clock reaches `deadline` (or the queue
    /// empties). The clock lands exactly on `deadline`.
    pub fn run_until(&mut self, deadline: Time) {
        while self.queue.peek().is_some_and(|s| s.at <= deadline) {
            self.step();
        }
        self.now = deadline;
    }

    /// Runs for `d` of virtual time.
    pub fn run_for(&mut self, d: Duration) {
        self.run_until(self.now + d);
    }

    /// Runs until `target` client requests have completed, checking at
    /// `tick` granularity; gives up at `horizon`. Returns whether the
    /// target was reached.
    pub fn run_until_completed(&mut self, target: u64, horizon: Time) -> bool {
        let tick = Duration::from_millis(50);
        while self.now < horizon {
            if self.completed_requests() >= target {
                return true;
            }
            if self.queue.is_empty() {
                break;
            }
            self.run_for(tick);
        }
        self.completed_requests() >= target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_crypto::Digest;
    use poe_kernel::automaton::Outbox;
    use poe_kernel::ids::SeqNum;
    use poe_net::DelayModel;

    /// A replica that broadcasts one checkpoint vote on Init and counts
    /// what it hears.
    struct Chatter {
        id: ReplicaId,
        heard: u64,
    }

    impl ReplicaAutomaton for Chatter {
        fn id(&self) -> ReplicaId {
            self.id
        }

        fn on_event(&mut self, _now: Time, event: Event, out: &mut Outbox) {
            match event {
                Event::Init => out.broadcast(ProtocolMsg::Checkpoint {
                    seq: SeqNum(self.id.0 as u64),
                    state_digest: Digest::of(&self.id.0.to_le_bytes()),
                }),
                Event::Deliver { .. } => self.heard += 1,
                Event::Timeout(_) => {}
            }
        }

        fn current_view(&self) -> poe_kernel::ids::View {
            poe_kernel::ids::View::ZERO
        }

        fn execution_frontier(&self) -> SeqNum {
            SeqNum::ZERO
        }

        fn state_digest(&self) -> Digest {
            Digest::EMPTY
        }

        fn ledger_digest(&self) -> Digest {
            Digest::EMPTY
        }

        fn protocol_name(&self) -> &'static str {
            "chatter"
        }

        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    fn chatter_sim(n: usize, mode: DeliveryMode) -> Simulator {
        let replicas: Vec<Box<dyn ReplicaAutomaton>> =
            (0..n).map(|i| Box::new(Chatter { id: ReplicaId(i as u32), heard: 0 }) as _).collect();
        let net = NetworkModel::new(DelayModel::Constant(Duration::from_millis(1)));
        Simulator::with_delivery_mode(net, 7, replicas, Vec::new(), mode)
    }

    /// The encode-once broadcast contract: one encode per broadcast
    /// *action*, one decode per delivered edge.
    #[test]
    fn broadcast_encodes_exactly_once() {
        for n in [4usize, 91] {
            let mut sim = chatter_sim(n, DeliveryMode::Wire);
            sim.run_for(Duration::from_secs(1));
            let stats = *sim.stats();
            assert_eq!(stats.wire_encodes, n as u64, "one encode per broadcasting replica");
            assert_eq!(stats.wire_decodes, (n * (n - 1)) as u64, "one decode per delivered edge");
            assert_eq!(stats.delivered, stats.wire_decodes);
            // The frame-byte counter follows encodes, not edges.
            let one_frame = poe_kernel::codec::encoded_len(&ProtocolMsg::Checkpoint {
                seq: SeqNum(0),
                state_digest: Digest::EMPTY,
            }) as u64;
            assert_eq!(stats.wire_encoded_bytes, n as u64 * one_frame);
        }
    }

    #[test]
    fn direct_mode_skips_the_codec() {
        let mut sim = chatter_sim(4, DeliveryMode::Direct);
        sim.run_for(Duration::from_secs(1));
        assert_eq!(sim.stats().wire_encodes, 0);
        assert_eq!(sim.stats().wire_decodes, 0);
        assert_eq!(sim.stats().delivered, 12);
    }
}
