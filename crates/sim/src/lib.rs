//! # poe-sim
//!
//! The deterministic discrete-event simulator that drives n-replica
//! clusters of any [`poe_kernel::automaton::ReplicaAutomaton`] /
//! [`poe_kernel::automaton::ClientAutomaton`] pair — the runtime behind
//! the paper's simulated experiments (§IV-I: "a simulation in which we
//! control the behavior of the network", message delays drawn from
//! [`poe_net::model::DelayModel`]).
//!
//! ## Map from code to paper
//!
//! | Paper | Here |
//! |---|---|
//! | §IV-I controlled message delay | [`poe_net::NetworkModel`] sampled per message from the seeded RNG |
//! | §II-B unreliable communication | drop probability + directed link blocking in the network model |
//! | Crash / failed-primary experiments (Fig. 9a–d) | [`engine::Fault::Crash`] / [`engine::Fault::Mute`] injection |
//! | Determinism of non-faulty replicas (§II-A) | one seeded event queue, `(time, insertion-id)` total order, byte-identical [`engine::Simulator::trace`] per seed |
//! | Fig. 8 / Fig. 11 figure runs | [`cluster`] builds ready-to-run PoE clusters (both support modes) over `poe-workload` request sources |
//!
//! The engine is protocol-agnostic: it owns the event queue, the virtual
//! clock, the per-node [`poe_kernel::timer::TimerTable`]s (implementing
//! the `SetTimer`/`CancelTimer`/`Timeout` contract with generation-based
//! cancellation), and fault injection. The [`cluster`] module wires the
//! PoE automaton, `poe-workload` clients, and the speculative store into
//! a runnable 4..n replica cluster.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod engine;

pub use cluster::{build_poe_cluster, PoeClusterConfig};
pub use engine::{DeliveryMode, Fault, SimStats, Simulator};
