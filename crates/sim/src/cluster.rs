//! Ready-to-run PoE clusters: replicas (PoE automaton over the
//! speculative store), workload-driven clients, key material, and the
//! network model, wired into a [`Simulator`].

use crate::engine::{DeliveryMode, Simulator};
use poe_consensus::{PoeReplica, SupportMode};
use poe_crypto::KeyMaterial;
use poe_kernel::automaton::{ClientAutomaton, ReplicaAutomaton};
use poe_kernel::config::ClusterConfig;
use poe_kernel::ids::{ClientId, ReplicaId};
use poe_net::{DelayModel, NetworkModel};
use poe_store::SpeculativeStore;
use poe_workload::{ClientConfig, WorkloadClient, YcsbConfig, YcsbWorkload};

/// Configuration of a simulated PoE cluster.
#[derive(Clone, Debug)]
pub struct PoeClusterConfig {
    /// Shared cluster parameters (n, f, batch size, timeouts, crypto).
    pub cluster: ClusterConfig,
    /// SUPPORT mode: threshold shares (Fig. 3) or MAC votes (App. A).
    pub support: SupportMode,
    /// Number of clients.
    pub n_clients: usize,
    /// Requests each client submits before stopping.
    pub requests_per_client: u64,
    /// Per-client in-flight window (closed loop when 1).
    pub client_outstanding: usize,
    /// Per-message delay distribution (§IV-I).
    pub delay: DelayModel,
    /// I.i.d. message drop probability.
    pub drop_prob: f64,
    /// Workload shape (defaults to the laptop-scale YCSB table).
    pub ycsb: YcsbConfig,
    /// Message delivery mode (encoded shared frames by default).
    pub delivery: DeliveryMode,
}

impl PoeClusterConfig {
    /// A small n-replica cluster with simulation-friendly defaults:
    /// unauthenticated links (crypto cost is measured by `poe-bench`,
    /// not simulated runs), dealer-keyed threshold certificates, 1 ms
    /// constant delay, no drops.
    pub fn new(n: usize, support: SupportMode) -> PoeClusterConfig {
        let cluster = ClusterConfig::new(n)
            .with_crypto_mode(poe_crypto::CryptoMode::None)
            .with_cert_scheme(poe_crypto::CertScheme::Simulated)
            .with_batch_size(20);
        PoeClusterConfig {
            cluster,
            support,
            n_clients: 4,
            requests_per_client: 250,
            client_outstanding: 4,
            delay: DelayModel::Constant(poe_kernel::time::Duration::from_millis(1)),
            drop_prob: 0.0,
            ycsb: YcsbConfig::small(),
            delivery: DeliveryMode::default(),
        }
    }

    /// Paper-scale configuration (§IV: n = 91, f = 30, nf = 61) with the
    /// same simulation-friendly crypto defaults as [`PoeClusterConfig::new`].
    pub fn paper_scale(support: SupportMode) -> PoeClusterConfig {
        PoeClusterConfig::new(91, support)
    }

    /// Total requests the clients will submit.
    pub fn total_requests(&self) -> u64 {
        self.n_clients as u64 * self.requests_per_client
    }
}

/// Builds the simulator for a PoE cluster described by `cfg`.
pub fn build_poe_cluster(cfg: &PoeClusterConfig) -> Simulator {
    let cluster = &cfg.cluster;
    let km = KeyMaterial::generate(
        cluster.n,
        cfg.n_clients,
        cluster.nf(),
        cluster.crypto_mode,
        cluster.cert_scheme,
        cluster.seed,
    );
    let replicas: Vec<Box<dyn ReplicaAutomaton>> = (0..cluster.n)
        .map(|i| {
            Box::new(PoeReplica::new(
                cluster.clone(),
                ReplicaId(i as u32),
                cfg.support,
                km.replica(i),
                Box::new(SpeculativeStore::new()),
            )) as Box<dyn ReplicaAutomaton>
        })
        .collect();
    let clients: Vec<Box<dyn ClientAutomaton>> = (0..cfg.n_clients)
        .map(|c| {
            let mut ccfg =
                ClientConfig::matching(ClientId(c as u32), cluster.n, cluster.f, cluster.nf())
                    .with_outstanding(cfg.client_outstanding)
                    .with_max_requests(cfg.requests_per_client)
                    .with_retry(cluster.client_timeout);
            ccfg.sign = cluster.crypto_mode != poe_crypto::CryptoMode::None;
            let source = YcsbWorkload::new(YcsbConfig {
                seed: cluster.seed ^ (0xC0FFEE + c as u64),
                ..cfg.ycsb.clone()
            });
            Box::new(WorkloadClient::new(ccfg, km.client(c), Box::new(source)))
                as Box<dyn ClientAutomaton>
        })
        .collect();
    let net = NetworkModel::new(cfg.delay).with_drop_prob(cfg.drop_prob);
    Simulator::with_delivery_mode(net, cluster.seed, replicas, clients, cfg.delivery)
}
