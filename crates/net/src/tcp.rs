//! `TcpHub`: the socket substrate — the [`Hub`] surface carried over
//! per-peer TCP streams.
//!
//! Topology: every replica hub binds a listener and dials one
//! **simplex** outbound link to each peer replica (A→B traffic rides
//! A's dialed connection; the accepted side only reads). Client-side
//! hubs dial every replica **duplex**: requests flow out and replies
//! come back on the same stream, the replica learning the client-id
//! block behind the connection from the handshake and routing replies
//! onto it.
//!
//! Wire format after the [`Hello`] handshake: each frame is
//! `[u32 len][u8 dest kind][u32 dest id][envelope]`. The 5-byte
//! destination header lets the receiving hub route without decoding
//! envelopes, and — because [`frame::write_frame`] gathers it with the
//! payload under one length prefix — an encode-once broadcast buffer
//! stays refcounted-shared across every outbox it sits in.
//!
//! Slow-peer policy (per the fabric's contract): frames queued toward a
//! replica on a replica hub use bounded-patience backpressure; client
//! replies and client-side requests shed at a full outbox. All of it is
//! counted per link and surfaced via [`Hub::link_reports`].

use crate::frame::{self, StreamFramer};
use crate::hub::{Hub, LinkReport};
use crate::supervise::{
    accept_tag, check_accept_tag, check_dial_tag, dial_tag, Backoff, Hello, LinkStats, Outbox,
    PeerIdentity,
};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use poe_crypto::provider::CryptoProvider;
use poe_kernel::ids::{ClientId, NodeId, ReplicaId};
use poe_kernel::wire::WireBytes;
use poe_telemetry::{FlightRecorder, LinkPeer, ProtoEvent};
use std::collections::{BTreeMap, HashMap};
use std::io::{BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Poll interval for stop-flag checks in blocking loops.
const TICK: Duration = Duration::from_millis(10);
/// `[dest kind u8][dest id u32]` prepended to every envelope.
const DEST_HEADER_LEN: usize = 5;
/// Most frames a writer drains per flush.
const WRITE_BURST: usize = 128;

/// A flight recorder plus the clock that stamps its link events, handed
/// to the hub by its embedder so connection supervision lands on the
/// *same timeline* as the replica's protocol events (`poe-node` passes
/// its cluster clock; timestamps are then directly comparable).
#[derive(Clone)]
pub struct LinkRecorder {
    recorder: Arc<FlightRecorder>,
    clock: Arc<dyn Fn() -> u64 + Send + Sync>,
}

impl LinkRecorder {
    /// Pairs `recorder` with the embedder's nanosecond clock.
    pub fn new(recorder: Arc<FlightRecorder>, clock: Arc<dyn Fn() -> u64 + Send + Sync>) -> Self {
        LinkRecorder { recorder, clock }
    }

    fn record(&self, event: ProtoEvent) {
        self.recorder.record((self.clock)(), event);
    }
}

impl std::fmt::Debug for LinkRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkRecorder").finish_non_exhaustive()
    }
}

/// Configuration of one [`TcpHub`].
#[derive(Clone)]
pub struct TcpConfig {
    /// Who this hub is on the wire.
    pub identity: PeerIdentity,
    /// Cluster instance id; both handshake sides must agree.
    pub cluster_id: u64,
    /// Cluster size (for key-material indexing of client identities).
    pub n_replicas: usize,
    /// Link-authentication provider; `None` disables handshake MACs.
    pub auth: Option<CryptoProvider>,
    /// Framer bound on inbound frame length.
    pub max_frame_len: usize,
    /// Outbox capacity of replica→replica links.
    pub replica_outbox: usize,
    /// Outbox capacity of client routes and client-side links.
    pub client_outbox: usize,
    /// How long a consensus-link send backpressures before shedding.
    pub send_patience: Duration,
    /// First reconnect delay.
    pub backoff_base: Duration,
    /// Reconnect delay cap.
    pub backoff_max: Duration,
    /// Dial timeout.
    pub connect_timeout: Duration,
    /// Read timeout while completing a handshake.
    pub handshake_timeout: Duration,
    /// Optional flight recorder for link up/down events.
    pub recorder: Option<LinkRecorder>,
}

impl TcpConfig {
    fn defaults(identity: PeerIdentity, cluster_id: u64, n_replicas: usize) -> TcpConfig {
        TcpConfig {
            identity,
            cluster_id,
            n_replicas,
            auth: None,
            max_frame_len: frame::DEFAULT_MAX_FRAME_LEN,
            replica_outbox: 8192,
            client_outbox: 4096,
            send_patience: Duration::from_millis(25),
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_secs(1),
            connect_timeout: Duration::from_secs(1),
            handshake_timeout: Duration::from_secs(2),
            recorder: None,
        }
    }

    /// Config for replica `id` of an `n_replicas` cluster.
    pub fn replica(id: u32, n_replicas: usize, cluster_id: u64) -> TcpConfig {
        TcpConfig::defaults(PeerIdentity::Replica(id), cluster_id, n_replicas)
    }

    /// Config for a client-side hub owning ids `base .. base + count`.
    pub fn clients(base: u32, count: u32, n_replicas: usize, cluster_id: u64) -> TcpConfig {
        TcpConfig::defaults(PeerIdentity::Clients { base, count }, cluster_id, n_replicas)
    }

    /// Enables link authentication with this hub's provider.
    pub fn with_auth(mut self, provider: CryptoProvider) -> TcpConfig {
        self.auth = Some(provider);
        self
    }

    /// Overrides the inbound frame-length bound.
    pub fn with_max_frame_len(mut self, max: usize) -> TcpConfig {
        self.max_frame_len = max;
        self
    }

    /// Attaches a flight recorder: link losses and (re)connects are
    /// recorded as [`ProtoEvent::LinkDown`] / [`ProtoEvent::LinkUp`].
    pub fn with_recorder(mut self, recorder: LinkRecorder) -> TcpConfig {
        self.recorder = Some(recorder);
        self
    }
}

/// One outbound supervised link to a peer replica.
struct PeerLink {
    peer: u32,
    addr: SocketAddr,
    outbox: Arc<Outbox>,
    stats: Arc<LinkStats>,
}

/// A learned reply route: the client-id block behind one accepted
/// client connection.
struct ClientRoute {
    base: u32,
    end: u32,
    outbox: Arc<Outbox>,
    stats: Arc<LinkStats>,
    seq: u64,
}

/// A locally registered client-group endpoint (mirrors `InprocHub`).
struct LocalGroup {
    base: u32,
    end: u32,
    tx: Sender<WireBytes>,
}

struct Inner {
    cfg: TcpConfig,
    stop: AtomicBool,
    /// Bumped by [`TcpHub::drop_links`]; writers holding an older
    /// generation abandon their connection and redial.
    conn_gen: AtomicU64,
    listen_addr: Option<SocketAddr>,
    local: RwLock<HashMap<NodeId, Sender<WireBytes>>>,
    local_groups: RwLock<Vec<LocalGroup>>,
    links: RwLock<BTreeMap<u32, Arc<PeerLink>>>,
    routes: RwLock<Vec<ClientRoute>>,
    /// Accepted sockets, kept so kill/shutdown can sever them.
    accepted: Mutex<Vec<TcpStream>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    /// Handshakes rejected before any link existed to charge them to.
    listener_rejects: AtomicU64,
    route_seq: AtomicU64,
}

/// The socket-substrate [`Hub`]. Cheap to clone; all clones share the
/// same links, routes, and supervision threads.
#[derive(Clone)]
pub struct TcpHub {
    inner: Arc<Inner>,
}

impl TcpHub {
    fn new(cfg: TcpConfig, listen_addr: Option<SocketAddr>) -> TcpHub {
        TcpHub {
            inner: Arc::new(Inner {
                cfg,
                stop: AtomicBool::new(false),
                conn_gen: AtomicU64::new(0),
                listen_addr,
                local: RwLock::new(HashMap::new()),
                local_groups: RwLock::new(Vec::new()),
                links: RwLock::new(BTreeMap::new()),
                routes: RwLock::new(Vec::new()),
                accepted: Mutex::new(Vec::new()),
                threads: Mutex::new(Vec::new()),
                listener_rejects: AtomicU64::new(0),
                route_seq: AtomicU64::new(0),
            }),
        }
    }

    /// Binds a listening hub (replicas). Use `port 0` to let the OS
    /// pick; [`TcpHub::local_addr`] reports the result.
    pub fn bind(cfg: TcpConfig, listen: SocketAddr) -> std::io::Result<TcpHub> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let hub = TcpHub::new(cfg, Some(addr));
        let h = hub.clone();
        let t = thread::Builder::new()
            .name(format!("tcp-accept-{}", hub.inner.cfg.identity.label()))
            .spawn(move || h.accept_loop(listener))
            .expect("spawn acceptor");
        hub.inner.threads.lock().push(t);
        Ok(hub)
    }

    /// A dial-only hub (client side): no listener; replies return on
    /// the dialed connections.
    pub fn connect_only(cfg: TcpConfig) -> TcpHub {
        TcpHub::new(cfg, None)
    }

    /// The bound listener address, if any.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.inner.listen_addr
    }

    /// Declares the peer replicas and starts one supervised writer per
    /// peer (own id skipped; already-known peers ignored).
    pub fn set_peers(&self, peers: &[(u32, SocketAddr)]) {
        for &(peer, addr) in peers {
            if self.inner.cfg.identity == PeerIdentity::Replica(peer) {
                continue;
            }
            let link = {
                let mut links = self.inner.links.write();
                if links.contains_key(&peer) {
                    continue;
                }
                let link = Arc::new(PeerLink {
                    peer,
                    addr,
                    outbox: Arc::new(Outbox::new(self.inner.cfg.replica_outbox)),
                    stats: Arc::new(LinkStats::default()),
                });
                links.insert(peer, link.clone());
                link
            };
            let h = self.clone();
            let t = thread::Builder::new()
                .name(format!("tcp-link-{}-r{peer}", self.inner.cfg.identity.label()))
                .spawn(move || h.writer_loop(link))
                .expect("spawn link writer");
            self.inner.threads.lock().push(t);
        }
    }

    /// Scripted connection kill: severs every established connection
    /// (accepted sockets and outbound links). Supervision redials with
    /// backoff; counters record the reconnects.
    pub fn drop_links(&self) {
        self.inner.conn_gen.fetch_add(1, Ordering::SeqCst);
        for s in self.inner.accepted.lock().drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    fn stopped(&self) -> bool {
        self.inner.stop.load(Ordering::Relaxed)
    }

    /// Sleeps `total` in stop-aware slices.
    fn sleep_supervised(&self, total: Duration) {
        let mut left = total;
        while !left.is_zero() && !self.stopped() {
            let step = left.min(TICK);
            thread::sleep(step);
            left -= step;
        }
    }

    // ------------------------------------------------------ accept side

    fn accept_loop(&self, listener: TcpListener) {
        while !self.stopped() {
            match listener.accept() {
                Ok((stream, _)) => {
                    let h = self.clone();
                    let t = thread::Builder::new()
                        .name(format!("tcp-conn-{}", self.inner.cfg.identity.label()))
                        .spawn(move || h.serve_conn(stream))
                        .expect("spawn conn handler");
                    self.inner.threads.lock().push(t);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(TICK);
                }
                Err(_) => thread::sleep(TICK),
            }
        }
    }

    /// Handshakes an inbound connection, then reads frames off it until
    /// it dies. Client connections also get a route + reply writer.
    fn serve_conn(&self, stream: TcpStream) {
        let cfg = &self.inner.cfg;
        let reject = || {
            self.inner.listener_rejects.fetch_add(1, Ordering::Relaxed);
        };
        if stream.set_read_timeout(Some(cfg.handshake_timeout)).is_err() {
            return;
        }
        let mut rd = &stream;
        let (hello, tag) = match Hello::read(&mut rd) {
            Ok(h) => h,
            Err(_) => return reject(),
        };
        if hello.cluster_id != cfg.cluster_id {
            return reject();
        }
        match hello.identity {
            PeerIdentity::Replica(r) => {
                if r as usize >= cfg.n_replicas || PeerIdentity::Replica(r) == cfg.identity {
                    return reject();
                }
            }
            PeerIdentity::Clients { count, .. } => {
                if count == 0 || count > 1 << 24 {
                    return reject();
                }
            }
        }
        let dialer_index = hello.identity.global_index(cfg.n_replicas);
        // Replica links prove identity with the handshake tag. Client
        // links don't MAC (their authenticity rides on per-request
        // signatures checked at admission), so a client hello is only
        // structurally validated.
        let authentic = match hello.identity {
            PeerIdentity::Replica(_) => {
                check_dial_tag(cfg.auth.as_ref(), &hello, dialer_index, &tag)
            }
            PeerIdentity::Clients { .. } => true,
        };
        if !authentic {
            return reject();
        }
        let my_hello = Hello { cluster_id: cfg.cluster_id, identity: cfg.identity };
        let answer = accept_tag(cfg.auth.as_ref(), &hello, &my_hello, dialer_index);
        {
            let mut wr = &stream;
            if my_hello.write(&mut wr, &answer).is_err() {
                return;
            }
        }
        let _ = stream.set_nodelay(true);
        if stream.set_read_timeout(Some(TICK)).is_err() {
            return;
        }
        if let Ok(clone) = stream.try_clone() {
            self.inner.accepted.lock().push(clone);
        }
        let stats = match hello.identity {
            // Inbound replica traffic shares the outbound link's
            // counters, giving one report line per peer pair.
            PeerIdentity::Replica(r) => match self.inner.links.read().get(&r) {
                Some(link) => link.stats.clone(),
                None => Arc::new(LinkStats::default()),
            },
            PeerIdentity::Clients { base, count } => {
                self.install_client_route(&stream, base, count)
            }
        };
        self.read_frames(stream, stats);
    }

    /// Registers (or replaces) the reply route for an accepted client
    /// connection and spawns its writer. Returns the route's stats for
    /// the reader side.
    fn install_client_route(&self, stream: &TcpStream, base: u32, count: u32) -> Arc<LinkStats> {
        let stats = Arc::new(LinkStats::default());
        stats.connects.fetch_add(1, Ordering::Relaxed);
        let outbox = Arc::new(Outbox::new(self.inner.cfg.client_outbox));
        let seq = self.inner.route_seq.fetch_add(1, Ordering::Relaxed);
        let mut replaced = false;
        {
            let mut routes = self.inner.routes.write();
            // A redial replaces the previous route for the same block:
            // its writer wakes on the closed outbox and exits.
            routes.retain(|r| {
                if r.base == base {
                    r.outbox.close();
                    replaced = true;
                    false
                } else {
                    true
                }
            });
            routes.push(ClientRoute {
                base,
                end: base + count,
                outbox: outbox.clone(),
                stats: stats.clone(),
                seq,
            });
        }
        if let Some(rec) = &self.inner.cfg.recorder {
            rec.record(ProtoEvent::LinkUp { peer: LinkPeer::Clients(base), reconnect: replaced });
        }
        if let Ok(wstream) = stream.try_clone() {
            let h = self.clone();
            let ob = outbox.clone();
            let st = stats.clone();
            let t = thread::Builder::new()
                .name(format!("tcp-route-c{base}"))
                .spawn(move || h.route_writer(wstream, ob, st, seq, base))
                .expect("spawn route writer");
            self.inner.threads.lock().push(t);
        }
        stats
    }

    /// Drains a client route's outbox onto its accepted socket until
    /// the route dies (socket error, replacement, shutdown).
    fn route_writer(
        &self,
        stream: TcpStream,
        outbox: Arc<Outbox>,
        stats: Arc<LinkStats>,
        seq: u64,
        base: u32,
    ) {
        let mut w = BufWriter::new(&stream);
        loop {
            if self.stopped() {
                break;
            }
            match outbox.pop_timeout(TICK) {
                Some((dest, frame)) => {
                    if write_dest_frame(&mut w, dest, &frame, &stats).is_err() {
                        break;
                    }
                    let mut burst = 1;
                    let mut failed = false;
                    while burst < WRITE_BURST {
                        match outbox.try_pop() {
                            Some((d, f)) => {
                                if write_dest_frame(&mut w, d, &f, &stats).is_err() {
                                    failed = true;
                                    break;
                                }
                                burst += 1;
                            }
                            None => break,
                        }
                    }
                    if failed || w.flush().is_err() {
                        break;
                    }
                }
                None => {
                    if outbox.is_closed() {
                        break;
                    }
                    let _ = w.flush();
                }
            }
        }
        outbox.close();
        let _ = stream.shutdown(Shutdown::Both);
        self.inner.routes.write().retain(|r| r.seq != seq);
        if !self.stopped() {
            if let Some(rec) = &self.inner.cfg.recorder {
                rec.record(ProtoEvent::LinkDown { peer: LinkPeer::Clients(base) });
            }
        }
    }

    // -------------------------------------------------------- dial side

    /// Supervised outbound link: dial → handshake → drain outbox, and
    /// on any loss redial with capped exponential backoff + jitter.
    fn writer_loop(&self, link: Arc<PeerLink>) {
        let cfg = &self.inner.cfg;
        let my_index = cfg.identity.global_index(cfg.n_replicas);
        let seed = cfg.cluster_id ^ ((my_index as u64) << 32) ^ link.peer as u64;
        let mut backoff = Backoff::new(cfg.backoff_base, cfg.backoff_max, seed);
        while !self.stopped() {
            if link.outbox.is_closed() {
                return;
            }
            let gen = self.inner.conn_gen.load(Ordering::SeqCst);
            let stream = match TcpStream::connect_timeout(&link.addr, cfg.connect_timeout) {
                Ok(s) => s,
                Err(_) => {
                    self.sleep_supervised(backoff.next_delay());
                    continue;
                }
            };
            if !self.dial_handshake(&stream, &link) {
                self.sleep_supervised(backoff.next_delay());
                continue;
            }
            backoff.reset();
            let prior = link.stats.connects.fetch_add(1, Ordering::Relaxed);
            if let Some(rec) = &cfg.recorder {
                rec.record(ProtoEvent::LinkUp {
                    peer: LinkPeer::Replica(link.peer),
                    reconnect: prior > 0,
                });
            }
            let _ = stream.set_nodelay(true);
            // Client-side links are duplex: replies ride back on this
            // connection, a reader per established connection.
            if matches!(cfg.identity, PeerIdentity::Clients { .. }) {
                if let Ok(rstream) = stream.try_clone() {
                    let _ = rstream.set_read_timeout(Some(TICK));
                    let h = self.clone();
                    let st = link.stats.clone();
                    let t = thread::Builder::new()
                        .name(format!("tcp-rx-{}-r{}", cfg.identity.label(), link.peer))
                        .spawn(move || h.read_frames(rstream, st))
                        .expect("spawn link reader");
                    self.inner.threads.lock().push(t);
                }
            }
            self.drain_connection(&stream, &link, gen);
            let _ = stream.shutdown(Shutdown::Both);
            if !self.stopped() {
                if let Some(rec) = &cfg.recorder {
                    rec.record(ProtoEvent::LinkDown { peer: LinkPeer::Replica(link.peer) });
                }
            }
        }
    }

    /// Runs the dialer side of the handshake; false on any mismatch.
    fn dial_handshake(&self, stream: &TcpStream, link: &PeerLink) -> bool {
        let cfg = &self.inner.cfg;
        if stream.set_read_timeout(Some(cfg.handshake_timeout)).is_err() {
            return false;
        }
        let my_hello = Hello { cluster_id: cfg.cluster_id, identity: cfg.identity };
        let tag = dial_tag(cfg.auth.as_ref(), &my_hello, link.peer);
        {
            let mut wr = stream;
            if my_hello.write(&mut wr, &tag).is_err() {
                return false;
            }
        }
        let mut rd = stream;
        let (theirs, answer) = match Hello::read(&mut rd) {
            Ok(h) => h,
            Err(_) => return false,
        };
        theirs.cluster_id == cfg.cluster_id
            && theirs.identity == PeerIdentity::Replica(link.peer)
            && check_accept_tag(cfg.auth.as_ref(), &my_hello, &theirs, link.peer, &answer)
    }

    /// Writes outbox frames onto one established connection until it
    /// fails, the hub stops, or [`TcpHub::drop_links`] bumps the
    /// generation.
    fn drain_connection(&self, stream: &TcpStream, link: &PeerLink, gen: u64) {
        let mut w = BufWriter::new(stream);
        loop {
            if self.stopped() || link.outbox.is_closed() {
                let _ = w.flush();
                return;
            }
            if self.inner.conn_gen.load(Ordering::SeqCst) != gen {
                let _ = w.flush();
                return;
            }
            match link.outbox.pop_timeout(TICK) {
                Some((dest, frame)) => {
                    if write_dest_frame(&mut w, dest, &frame, &link.stats).is_err() {
                        return;
                    }
                    let mut burst = 1;
                    while burst < WRITE_BURST {
                        match link.outbox.try_pop() {
                            Some((d, f)) => {
                                if write_dest_frame(&mut w, d, &f, &link.stats).is_err() {
                                    return;
                                }
                                burst += 1;
                            }
                            None => break,
                        }
                    }
                    if w.flush().is_err() {
                        return;
                    }
                }
                None => {
                    let _ = w.flush();
                }
            }
        }
    }

    // -------------------------------------------------------- read path

    /// Reads length-prefixed frames off a connection into local
    /// endpoints until EOF, a framing violation, stop, or a dead socket.
    fn read_frames(&self, mut stream: TcpStream, stats: Arc<LinkStats>) {
        let mut framer = StreamFramer::new(self.inner.cfg.max_frame_len);
        loop {
            loop {
                match framer.next_frame() {
                    Ok(Some(f)) => {
                        stats.note_in(f.len());
                        if !self.route_inbound(f) {
                            stats.rejected_in.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        // Hostile or corrupt framing: kill the
                        // connection, supervision redials.
                        stats.rejected_in.fetch_add(1, Ordering::Relaxed);
                        let _ = stream.shutdown(Shutdown::Both);
                        return;
                    }
                }
            }
            if self.stopped() {
                return;
            }
            match framer.refill(&mut stream) {
                Ok(0) => return,
                Ok(_) => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => return,
            }
        }
    }

    /// Parses a dest header and hands the envelope to the addressed
    /// local endpoint. False only on a malformed header; an unknown
    /// (e.g. deregistered) destination drops silently like `InprocHub`.
    fn route_inbound(&self, f: WireBytes) -> bool {
        let b = f.as_slice();
        if b.len() < DEST_HEADER_LEN || b[0] > 1 {
            return false;
        }
        let id = u32::from_le_bytes(b[1..5].try_into().expect("len 4"));
        let dest =
            if b[0] == 0 { NodeId::Replica(ReplicaId(id)) } else { NodeId::Client(ClientId(id)) };
        self.deliver_local(dest, f.slice(DEST_HEADER_LEN..f.len()));
        true
    }

    /// Delivers to an exact local registration, else a covering local
    /// client group. True if an endpoint took the frame.
    fn deliver_local(&self, dest: NodeId, frame: WireBytes) -> bool {
        if let Some(tx) = self.inner.local.read().get(&dest) {
            return tx.send(frame).is_ok();
        }
        if let NodeId::Client(c) = dest {
            for g in self.inner.local_groups.read().iter() {
                if g.base <= c.0 && c.0 < g.end {
                    return g.tx.send(frame).is_ok();
                }
            }
        }
        false
    }

    /// Queues a frame toward a peer replica, applying the slow-peer
    /// policy for this hub's identity: replica hubs backpressure
    /// (consensus traffic), client hubs shed (open-loop requests).
    fn queue_to_replica(&self, link: &PeerLink, dest: NodeId, frame: WireBytes) -> bool {
        let ok = match self.inner.cfg.identity {
            PeerIdentity::Replica(_) => {
                link.outbox.push_wait(dest, frame, self.inner.cfg.send_patience)
            }
            PeerIdentity::Clients { .. } => link.outbox.try_push(dest, frame),
        };
        if !ok {
            link.stats.shed.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }
}

/// Writes one `[len][dest][envelope]` frame; the shared payload buffer
/// is gathered, never copied into a combined allocation.
fn write_dest_frame<W: Write>(
    w: &mut W,
    dest: NodeId,
    frame: &WireBytes,
    stats: &LinkStats,
) -> std::io::Result<()> {
    let mut hdr = [0u8; DEST_HEADER_LEN];
    match dest {
        NodeId::Replica(r) => {
            hdr[0] = 0;
            hdr[1..5].copy_from_slice(&r.0.to_le_bytes());
        }
        NodeId::Client(c) => {
            hdr[0] = 1;
            hdr[1..5].copy_from_slice(&c.0.to_le_bytes());
        }
    }
    let n = frame::write_frame(w, &[&hdr, frame.as_slice()])?;
    stats.note_out(n);
    Ok(())
}

impl Hub for TcpHub {
    fn register(&self, node: NodeId) -> Receiver<WireBytes> {
        let (tx, rx) = unbounded();
        self.inner.local.write().insert(node, tx);
        rx
    }

    fn register_client_group(&self, base: u32, count: u32) -> Receiver<WireBytes> {
        let (tx, rx) = unbounded();
        let mut groups = self.inner.local_groups.write();
        groups.retain(|g| g.base != base);
        groups.push(LocalGroup { base, end: base + count, tx });
        rx
    }

    fn deregister(&self, node: NodeId) {
        self.inner.local.write().remove(&node);
    }

    fn deregister_client_group(&self, base: u32) {
        self.inner.local_groups.write().retain(|g| g.base != base);
    }

    fn send(&self, to: NodeId, frame: WireBytes) -> bool {
        if self.inner.local.read().contains_key(&to) {
            return self.deliver_local(to, frame);
        }
        match to {
            NodeId::Replica(r) => {
                let link = self.inner.links.read().get(&r.0).cloned();
                match link {
                    Some(link) => self.queue_to_replica(&link, to, frame),
                    None => false,
                }
            }
            NodeId::Client(c) => {
                if self.deliver_local(to, frame.clone()) {
                    return true;
                }
                let routes = self.inner.routes.read();
                match routes.iter().find(|rt| rt.base <= c.0 && c.0 < rt.end) {
                    Some(rt) => {
                        // Reply path: shed, never stall consensus.
                        let ok = rt.outbox.try_push(to, frame);
                        if !ok {
                            rt.stats.shed.fetch_add(1, Ordering::Relaxed);
                        }
                        ok
                    }
                    None => false,
                }
            }
        }
    }

    fn broadcast(&self, from: NodeId, frame: &WireBytes) -> usize {
        let mut reached = 0;
        {
            let local = self.inner.local.read();
            for (&node, tx) in local.iter() {
                if matches!(node, NodeId::Replica(_))
                    && node != from
                    && tx.send(frame.clone()).is_ok()
                {
                    reached += 1;
                }
            }
        }
        let links: Vec<Arc<PeerLink>> = self.inner.links.read().values().cloned().collect();
        for link in links {
            if from == NodeId::Replica(ReplicaId(link.peer)) {
                continue;
            }
            if self.queue_to_replica(&link, NodeId::Replica(ReplicaId(link.peer)), frame.clone()) {
                reached += 1;
            }
        }
        reached
    }

    fn link_reports(&self) -> Vec<LinkReport> {
        let mut out = Vec::new();
        for link in self.inner.links.read().values() {
            out.push(link.stats.report(format!("r{}", link.peer), link.outbox.peak()));
        }
        for rt in self.inner.routes.read().iter() {
            out.push(
                rt.stats.report(format!("c{}+{}", rt.base, rt.end - rt.base), rt.outbox.peak()),
            );
        }
        let rejects = self.inner.listener_rejects.load(Ordering::Relaxed);
        if rejects > 0 {
            out.push(LinkReport {
                peer: "listener".into(),
                rejected_in: rejects,
                ..LinkReport::default()
            });
        }
        out
    }

    fn shutdown(&self) {
        if self.inner.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        for link in self.inner.links.read().values() {
            link.outbox.close();
        }
        for rt in self.inner.routes.read().iter() {
            rt.outbox.close();
        }
        for s in self.inner.accepted.lock().drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
        // Handler threads may still be registering while we join; drain
        // until the list stays empty.
        loop {
            let handles: Vec<JoinHandle<()>> = {
                let mut g = self.inner.threads.lock();
                g.drain(..).collect()
            };
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_crypto::{CertScheme, CryptoMode, KeyMaterial};
    use std::io::Read;
    use std::time::Instant;

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().expect("addr")
    }

    /// Binds `n` replica hubs on loopback and fully meshes them.
    fn mesh(n: usize, cluster_id: u64, auth: Option<&Arc<KeyMaterial>>) -> Vec<TcpHub> {
        let hubs: Vec<TcpHub> = (0..n)
            .map(|i| {
                let mut cfg = TcpConfig::replica(i as u32, n, cluster_id);
                if let Some(km) = auth {
                    cfg = cfg.with_auth(km.replica(i));
                }
                TcpHub::bind(cfg, loopback()).expect("bind")
            })
            .collect();
        let peers: Vec<(u32, SocketAddr)> = hubs
            .iter()
            .enumerate()
            .map(|(i, h)| (i as u32, h.local_addr().expect("addr")))
            .collect();
        for h in &hubs {
            h.set_peers(&peers);
        }
        hubs
    }

    fn recv_payload(rx: &Receiver<WireBytes>, timeout: Duration) -> Option<Vec<u8>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Ok(f) = rx.try_recv() {
                return Some(f.as_slice().to_vec());
            }
            if Instant::now() >= deadline {
                return None;
            }
            thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn frames_cross_replica_links_and_broadcast_fans_out() {
        let hubs = mesh(3, 0xA1, None);
        let rx: Vec<_> = hubs
            .iter()
            .enumerate()
            .map(|(i, h)| h.register(NodeId::Replica(ReplicaId(i as u32))))
            .collect();
        assert!(hubs[0].send(NodeId::Replica(ReplicaId(1)), WireBytes::copy_from(b"direct")));
        assert_eq!(recv_payload(&rx[1], Duration::from_secs(5)).as_deref(), Some(&b"direct"[..]));
        let shared = WireBytes::copy_from(b"everyone");
        assert_eq!(hubs[2].broadcast(NodeId::Replica(ReplicaId(2)), &shared), 2);
        assert_eq!(recv_payload(&rx[0], Duration::from_secs(5)).as_deref(), Some(&b"everyone"[..]));
        assert_eq!(recv_payload(&rx[1], Duration::from_secs(5)).as_deref(), Some(&b"everyone"[..]));
        let total = LinkReport::total(&hubs[0].link_reports());
        assert!(total.connects >= 1 && total.frames_out >= 1);
        for h in &hubs {
            h.shutdown();
        }
    }

    #[test]
    fn client_hub_requests_out_replies_back() {
        let hubs = mesh(2, 0xB2, None);
        let r0 = hubs[0].register(NodeId::Replica(ReplicaId(0)));
        let chub = TcpHub::connect_only(TcpConfig::clients(10, 4, 2, 0xB2));
        let peers: Vec<(u32, SocketAddr)> =
            (0..2).map(|i| (i as u32, hubs[i].local_addr().expect("addr"))).collect();
        chub.set_peers(&peers);
        let crx = chub.register_client_group(10, 4);
        assert!(chub.send(NodeId::Replica(ReplicaId(0)), WireBytes::copy_from(b"request")));
        assert_eq!(recv_payload(&r0, Duration::from_secs(5)).as_deref(), Some(&b"request"[..]));
        // The replica hub learned the c10+4 route; replies go back.
        let deadline = Instant::now() + Duration::from_secs(5);
        while hubs[0].link_reports().iter().all(|r| !r.peer.starts_with('c')) {
            assert!(Instant::now() < deadline, "route learned");
            thread::sleep(Duration::from_millis(5));
        }
        assert!(hubs[0].send(NodeId::Client(ClientId(12)), WireBytes::copy_from(b"reply")));
        assert_eq!(recv_payload(&crx, Duration::from_secs(5)).as_deref(), Some(&b"reply"[..]));
        chub.shutdown();
        for h in &hubs {
            h.shutdown();
        }
    }

    #[test]
    fn authenticated_mesh_rejects_wrong_cluster_and_carries_frames() {
        let km = KeyMaterial::generate(2, 1, 2, CryptoMode::Cmac, CertScheme::Simulated, 5);
        let hubs = mesh(2, 0xC3, Some(&km));
        let r1 = hubs[1].register(NodeId::Replica(ReplicaId(1)));
        assert!(hubs[0].send(NodeId::Replica(ReplicaId(1)), WireBytes::copy_from(b"macd")));
        assert_eq!(recv_payload(&r1, Duration::from_secs(5)).as_deref(), Some(&b"macd"[..]));
        // A dialer from a different cluster id (= different key space)
        // must be refused even though it speaks the protocol.
        let alien_km = KeyMaterial::generate(2, 1, 2, CryptoMode::Cmac, CertScheme::Simulated, 6);
        let alien =
            TcpHub::bind(TcpConfig::replica(0, 2, 0xC3).with_auth(alien_km.replica(0)), loopback())
                .expect("bind");
        alien.set_peers(&[(1, hubs[1].local_addr().expect("addr"))]);
        thread::sleep(Duration::from_millis(100));
        let rejected: u64 = hubs[1].link_reports().iter().map(|r| r.rejected_in).sum();
        assert!(rejected >= 1, "forged handshake rejected, got {rejected}");
        alien.shutdown();
        for h in &hubs {
            h.shutdown();
        }
    }

    #[test]
    fn drop_links_reconnects_with_counters() {
        let hubs = mesh(2, 0xD4, None);
        let r1 = hubs[1].register(NodeId::Replica(ReplicaId(1)));
        assert!(hubs[0].send(NodeId::Replica(ReplicaId(1)), WireBytes::copy_from(b"before")));
        assert_eq!(recv_payload(&r1, Duration::from_secs(5)).as_deref(), Some(&b"before"[..]));
        hubs[0].drop_links();
        hubs[1].drop_links();
        // Supervision redials; a post-kill frame still arrives.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let _ = hubs[0].send(NodeId::Replica(ReplicaId(1)), WireBytes::copy_from(b"after"));
            if let Some(p) = recv_payload(&r1, Duration::from_millis(100)) {
                assert_eq!(p, b"after");
                break;
            }
            assert!(Instant::now() < deadline, "reconnect delivered a frame");
        }
        let total = LinkReport::total(&hubs[0].link_reports());
        assert!(total.reconnects >= 1, "reconnect counted: {total:?}");
        for h in &hubs {
            h.shutdown();
        }
    }

    #[test]
    fn oversize_frame_kills_connection_but_not_the_hub() {
        let hubs = mesh(2, 0xE5, None);
        let _r1 = hubs[1].register(NodeId::Replica(ReplicaId(1)));
        // Speak a valid handshake, then a hostile length prefix.
        let addr = hubs[1].local_addr().expect("addr");
        let mut s = TcpStream::connect(addr).expect("connect");
        let hello = Hello { cluster_id: 0xE5, identity: PeerIdentity::Replica(0) };
        hello.write(&mut s, &poe_crypto::provider::AuthTag::None).expect("hello");
        let mut buf = [0u8; 64];
        let _ = s.read(&mut buf).expect("welcome");
        s.write_all(&u32::MAX.to_le_bytes()).expect("hostile prefix");
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let rejected: u64 = hubs[1].link_reports().iter().map(|r| r.rejected_in).sum();
            if rejected >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "hostile frame rejected");
            thread::sleep(Duration::from_millis(5));
        }
        // The hub still serves legitimate peers afterwards.
        let r1b = hubs[1].register(NodeId::Replica(ReplicaId(1)));
        assert!(hubs[0].send(NodeId::Replica(ReplicaId(1)), WireBytes::copy_from(b"alive")));
        assert_eq!(recv_payload(&r1b, Duration::from_secs(5)).as_deref(), Some(&b"alive"[..]));
        for h in &hubs {
            h.shutdown();
        }
    }
}
