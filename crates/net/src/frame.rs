//! Length-prefixed stream framing for socket transports.
//!
//! A TCP stream carries `[u32 LE payload_len][payload]` frames. The
//! [`StreamFramer`] turns the stream's arbitrary read boundaries back
//! into whole frames **zero-copy**: each `refill` reads one chunk into a
//! fresh refcounted block, and every frame that lands wholly inside a
//! block is returned as a [`WireBytes`] sub-view of it — the same
//! buffer-sharing contract the rest of the wire path (decode, batch
//! slots, ledger) is built on. Only a frame torn across blocks pays a
//! stitch copy.
//!
//! Hostile/torn input is a first-class case, not an error path:
//!
//! * a length prefix above [`StreamFramer::max_frame_len`] is rejected
//!   **before any allocation** — a malicious 4-byte header cannot make
//!   the receiver reserve gigabytes;
//! * a zero-length frame is rejected (no valid envelope is empty, and
//!   accepting it would let a peer spin the reader for free);
//! * partial reads, truncation mid-header and mid-payload simply leave
//!   bytes pending until more arrive or EOF drops the connection.

use poe_kernel::wire::WireBytes;
use std::io::{Read, Write};

/// Bytes of the `u32` little-endian length prefix.
pub const FRAME_HEADER_LEN: usize = 4;

/// Default ceiling on one frame's payload (16 MiB — a full batch of
/// large YCSB values fits with room; a hostile prefix does not).
pub const DEFAULT_MAX_FRAME_LEN: usize = 16 << 20;

/// Default size of one read chunk.
pub const DEFAULT_READ_CHUNK: usize = 64 << 10;

/// Why a stream must be torn down (framing violations are not
/// recoverable: after one, byte alignment with the peer is gone).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds the configured ceiling.
    Oversize {
        /// The claimed payload length.
        len: usize,
        /// The configured ceiling it broke.
        max: usize,
    },
    /// The length prefix was zero.
    Empty,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversize { len, max } => {
                write!(f, "frame length {len} exceeds max_frame_len {max}")
            }
            FrameError::Empty => write!(f, "zero-length frame"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame assembler over arbitrary read boundaries.
///
/// Usage shape (one per connection, reader-thread owned):
///
/// ```text
/// loop {
///     while let Some(frame) = framer.next_frame()? { deliver(frame) }
///     if framer.refill(&mut socket)? == 0 { break /* EOF */ }
/// }
/// ```
#[derive(Debug)]
pub struct StreamFramer {
    max_frame_len: usize,
    read_chunk: usize,
    /// Current zero-copy block and the parse position inside it.
    block: WireBytes,
    pos: usize,
    /// Stitch buffer for a frame torn across blocks (holds header +
    /// payload bytes accumulated so far).
    pending: Vec<u8>,
    /// Total bytes (header + payload) of the frame being stitched; 0
    /// while the pending header itself is still incomplete.
    need: usize,
}

impl Default for StreamFramer {
    fn default() -> Self {
        StreamFramer::new(DEFAULT_MAX_FRAME_LEN)
    }
}

impl StreamFramer {
    /// A framer enforcing `max_frame_len` on every length prefix.
    pub fn new(max_frame_len: usize) -> StreamFramer {
        StreamFramer {
            max_frame_len,
            read_chunk: DEFAULT_READ_CHUNK,
            block: WireBytes::empty(),
            pos: 0,
            pending: Vec::new(),
            need: 0,
        }
    }

    /// The configured per-frame payload ceiling.
    pub fn max_frame_len(&self) -> usize {
        self.max_frame_len
    }

    /// Sets the read-chunk size (testing knob; tiny chunks exercise the
    /// stitch path).
    pub fn with_read_chunk(mut self, read_chunk: usize) -> StreamFramer {
        self.read_chunk = read_chunk.max(1);
        self
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn buffered(&self) -> usize {
        (self.block.len() - self.pos) + self.pending.len()
    }

    /// Reads one chunk from `r` into a fresh shared block. Returns the
    /// byte count (0 = EOF). Call when [`StreamFramer::next_frame`]
    /// returns `Ok(None)`; any unconsumed tail of the previous block is
    /// first moved into the stitch buffer.
    pub fn refill<R: Read>(&mut self, r: &mut R) -> std::io::Result<usize> {
        self.spill_tail();
        let mut buf = vec![0u8; self.read_chunk];
        let n = r.read(&mut buf)?;
        buf.truncate(n);
        self.block = WireBytes::from(buf);
        self.pos = 0;
        Ok(n)
    }

    /// Hands the framer bytes that were already read elsewhere (the
    /// handshake path reads its fixed-size preamble directly and may
    /// over-read into the first frames).
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        self.spill_tail();
        self.block = WireBytes::copy_from(bytes);
        self.pos = 0;
    }

    /// Moves the unconsumed tail of the current block into the stitch
    /// buffer so the block can be replaced.
    fn spill_tail(&mut self) {
        let tail = &self.block.as_slice()[self.pos..];
        if !tail.is_empty() {
            self.pending.extend_from_slice(tail);
        }
        self.block = WireBytes::empty();
        self.pos = 0;
    }

    /// Returns the next complete frame, `Ok(None)` when more bytes are
    /// needed, or a [`FrameError`] on a framing violation (tear the
    /// connection down — alignment is unrecoverable).
    pub fn next_frame(&mut self) -> Result<Option<WireBytes>, FrameError> {
        loop {
            // A stitch in progress consumes the new block first.
            if !self.pending.is_empty() {
                if self.need == 0 {
                    // Header incomplete: top it up to 4 bytes, then vet
                    // the length before reserving anything.
                    let want = FRAME_HEADER_LEN - self.pending.len().min(FRAME_HEADER_LEN);
                    let take = want.min(self.block.len() - self.pos);
                    self.pending.extend_from_slice(&self.block[self.pos..self.pos + take]);
                    self.pos += take;
                    if self.pending.len() < FRAME_HEADER_LEN {
                        return Ok(None);
                    }
                    let len = u32::from_le_bytes(
                        self.pending[..FRAME_HEADER_LEN].try_into().expect("len 4"),
                    ) as usize;
                    self.vet(len)?;
                    self.need = FRAME_HEADER_LEN + len;
                    self.pending.reserve(self.need - self.pending.len());
                }
                let want = self.need - self.pending.len();
                let take = want.min(self.block.len() - self.pos);
                self.pending.extend_from_slice(&self.block[self.pos..self.pos + take]);
                self.pos += take;
                if self.pending.len() < self.need {
                    return Ok(None);
                }
                let whole = WireBytes::from(std::mem::take(&mut self.pending));
                self.need = 0;
                return Ok(Some(whole.slice(FRAME_HEADER_LEN..whole.len())));
            }
            let avail = self.block.len() - self.pos;
            if avail == 0 {
                return Ok(None);
            }
            if avail < FRAME_HEADER_LEN {
                self.spill_tail();
                continue;
            }
            let len = u32::from_le_bytes(
                self.block[self.pos..self.pos + FRAME_HEADER_LEN].try_into().expect("len 4"),
            ) as usize;
            self.vet(len)?;
            let total = FRAME_HEADER_LEN + len;
            if avail < total {
                self.spill_tail();
                self.need = total;
                self.pending.reserve(total - self.pending.len());
                return Ok(None);
            }
            // The whole frame sits inside this block: zero-copy view.
            let start = self.pos + FRAME_HEADER_LEN;
            self.pos += total;
            return Ok(Some(self.block.slice(start..start + len)));
        }
    }

    /// Validates a length prefix before any buffer is sized by it.
    fn vet(&self, len: usize) -> Result<(), FrameError> {
        if len == 0 {
            return Err(FrameError::Empty);
        }
        if len > self.max_frame_len {
            return Err(FrameError::Oversize { len, max: self.max_frame_len });
        }
        Ok(())
    }
}

/// Writes one `[u32 LE len][parts...]` frame; `len` covers all parts.
/// Multiple parts let a sender prepend a routing header to a shared
/// payload buffer without concatenating them first.
pub fn write_frame<W: Write>(w: &mut W, parts: &[&[u8]]) -> std::io::Result<usize> {
    let len: usize = parts.iter().map(|p| p.len()).sum();
    let header = (u32::try_from(len).expect("frame length fits u32")).to_le_bytes();
    w.write_all(&header)?;
    for part in parts {
        w.write_all(part)?;
    }
    Ok(FRAME_HEADER_LEN + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that serves a byte script in fixed-size drips.
    struct Drip {
        bytes: Vec<u8>,
        pos: usize,
        step: usize,
    }

    impl Read for Drip {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.step.min(self.bytes.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn encode(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for p in payloads {
            write_frame(&mut out, &[p]).unwrap();
        }
        out
    }

    fn drain<R: Read>(framer: &mut StreamFramer, r: &mut R) -> Vec<Vec<u8>> {
        let mut frames = Vec::new();
        loop {
            while let Some(f) = framer.next_frame().expect("well-formed stream") {
                frames.push(f.as_slice().to_vec());
            }
            if framer.refill(r).expect("in-memory read") == 0 {
                return frames;
            }
        }
    }

    #[test]
    fn frames_within_one_block_are_zero_copy() {
        let mut framer = StreamFramer::default();
        let wire = encode(&[b"alpha", b"beta"]);
        let mut src = Drip { bytes: wire, pos: 0, step: usize::MAX };
        framer.refill(&mut src).unwrap();
        let a = framer.next_frame().unwrap().expect("first frame");
        let b = framer.next_frame().unwrap().expect("second frame");
        assert_eq!(a.as_slice(), b"alpha");
        assert_eq!(b.as_slice(), b"beta");
        assert!(a.shares_buffer_with(&b), "both frames are views of the read block");
        assert!(framer.next_frame().unwrap().is_none());
        assert_eq!(framer.buffered(), 0);
    }

    /// One-byte reads tear every frame across block boundaries: the
    /// stitch path must reassemble them byte-perfectly, in order.
    #[test]
    fn partial_reads_reassemble() {
        for step in [1, 2, 3, 5, 7] {
            let payloads: Vec<Vec<u8>> = (0u8..10).map(|i| vec![i; 1 + i as usize * 17]).collect();
            let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
            let mut src = Drip { bytes: encode(&refs), pos: 0, step };
            let mut framer = StreamFramer::default().with_read_chunk(step.max(2));
            let got = drain(&mut framer, &mut src);
            assert_eq!(got, payloads, "step {step}");
        }
    }

    #[test]
    fn truncated_stream_yields_no_partial_frame() {
        let mut wire = encode(&[b"whole"]);
        let cut = wire.len() - 2;
        wire.extend_from_slice(&encode(&[b"torn-off"])[..cut.min(6)]);
        let mut framer = StreamFramer::default();
        let mut src = Drip { bytes: wire, pos: 0, step: 3 };
        let got = drain(&mut framer, &mut src);
        assert_eq!(got, vec![b"whole".to_vec()], "only the complete frame surfaces");
        assert!(framer.buffered() > 0, "the torn tail stays pending, never delivered");
    }

    /// The attack the ceiling exists for: a 4-byte header claiming a
    /// multi-gigabyte payload must be rejected before any allocation.
    #[test]
    fn oversize_prefix_rejected_before_allocating() {
        let mut framer = StreamFramer::new(1024);
        let mut wire = (u32::MAX).to_le_bytes().to_vec();
        wire.extend_from_slice(&[0xAB; 8]);
        framer.push_bytes(&wire);
        assert_eq!(
            framer.next_frame(),
            Err(FrameError::Oversize { len: u32::MAX as usize, max: 1024 })
        );
        // Same check on the stitch path (header arrives one byte at a
        // time, so the length is only known mid-stitch).
        let mut framer = StreamFramer::new(1024).with_read_chunk(1);
        let mut src = Drip { bytes: (1_000_000u32).to_le_bytes().to_vec(), pos: 0, step: 1 };
        let err = loop {
            match framer.next_frame() {
                Ok(Some(_)) => panic!("no frame can complete"),
                Ok(None) => {
                    if framer.refill(&mut src).unwrap() == 0 {
                        panic!("stream ended before the oversize header completed");
                    }
                }
                Err(e) => break e,
            }
        };
        assert_eq!(err, FrameError::Oversize { len: 1_000_000, max: 1024 });
    }

    #[test]
    fn boundary_lengths_exact_max_ok_one_over_rejected() {
        let max = 64;
        let payload = vec![7u8; max];
        let mut framer = StreamFramer::new(max);
        framer.push_bytes(&encode(&[payload.as_slice()]));
        assert_eq!(framer.next_frame().unwrap().expect("at-max frame").len(), max);
        let over = vec![7u8; max + 1];
        framer.push_bytes(&encode(&[over.as_slice()]));
        assert_eq!(framer.next_frame(), Err(FrameError::Oversize { len: max + 1, max }));
    }

    #[test]
    fn zero_length_frame_rejected() {
        let mut framer = StreamFramer::default();
        framer.push_bytes(&0u32.to_le_bytes());
        assert_eq!(framer.next_frame(), Err(FrameError::Empty));
    }

    #[test]
    fn push_bytes_then_refill_keeps_order() {
        let wire = encode(&[b"first", b"second", b"third"]);
        let (head, tail) = wire.split_at(7);
        let mut framer = StreamFramer::default();
        framer.push_bytes(head);
        let mut src = Drip { bytes: tail.to_vec(), pos: 0, step: 4 };
        let got = drain(&mut framer, &mut src);
        assert_eq!(got, vec![b"first".to_vec(), b"second".to_vec(), b"third".to_vec()]);
    }

    #[test]
    fn write_frame_concatenates_parts_under_one_length() {
        let mut out = Vec::new();
        let n = write_frame(&mut out, &[b"head", b"body"]).unwrap();
        assert_eq!(n, out.len());
        assert_eq!(&out[..4], &8u32.to_le_bytes());
        assert_eq!(&out[4..], b"headbody");
    }
}
