//! In-process transport: crossbeam channels between fabric threads.
//!
//! Each node (replica or client) registers once and receives a consumer
//! endpoint; anyone holding the hub can send encoded frames to any
//! registered node. This plays the role of the datacenter network for the
//! multi-threaded fabric runtime, while keeping everything in one process
//! so experiments are self-contained.
//!
//! Frames are [`WireBytes`] views: a broadcast encodes its message once
//! and every recipient queue receives a clone of the *view* (a refcount
//! bump), not a copy of the bytes. Receivers decode with the codec's
//! shared mode, so payloads keep pointing into the same frame end-to-end.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use poe_kernel::ids::NodeId;
use poe_kernel::wire::WireBytes;
use std::collections::HashMap;
use std::sync::Arc;

/// A contiguous block of client ids sharing one inbound queue.
struct ClientGroup {
    /// First client id of the block.
    base: u32,
    /// One past the last client id.
    end: u32,
    tx: Sender<WireBytes>,
}

/// A shared message hub connecting all nodes of one cluster.
#[derive(Clone, Default)]
pub struct InprocHub {
    inner: Arc<RwLock<HashMap<NodeId, Sender<WireBytes>>>>,
    /// Client-id ranges multiplexed onto shared queues (open-loop
    /// drivers simulate 10⁵–10⁶ sessions; registering each one in the
    /// map would cost memory per session for endpoints that all drain
    /// into the same thread anyway). Exact registrations win.
    groups: Arc<RwLock<Vec<ClientGroup>>>,
}

impl InprocHub {
    /// An empty hub.
    pub fn new() -> InprocHub {
        InprocHub::default()
    }

    /// Registers `node`, returning its inbound queue. Re-registering
    /// replaces the previous endpoint (the old receiver starves).
    pub fn register(&self, node: NodeId) -> Receiver<WireBytes> {
        let (tx, rx) = unbounded();
        self.inner.write().insert(node, tx);
        rx
    }

    /// Registers the client-id block `base .. base + count` onto one
    /// shared queue: anything sent to any client in the range lands on
    /// the returned receiver. An exact [`InprocHub::register`] entry
    /// for an id in the range takes precedence; overlapping groups
    /// resolve to the earliest registration.
    pub fn register_client_group(&self, base: u32, count: u32) -> Receiver<WireBytes> {
        assert!(count >= 1, "empty client group");
        let (tx, rx) = unbounded();
        self.groups.write().push(ClientGroup { base, end: base + count, tx });
        rx
    }

    /// Removes the client group starting at `base` (subsequent sends to
    /// its range fail unless covered by another registration).
    pub fn deregister_client_group(&self, base: u32) {
        self.groups.write().retain(|g| g.base != base);
    }

    /// Removes a node (subsequent sends to it fail).
    pub fn deregister(&self, node: NodeId) {
        self.inner.write().remove(&node);
    }

    /// Sends an encoded frame to `to`. Returns false if the node is
    /// unknown or its receiver was dropped.
    pub fn send(&self, to: NodeId, frame: WireBytes) -> bool {
        {
            let guard = self.inner.read();
            if let Some(tx) = guard.get(&to) {
                return tx.send(frame).is_ok();
            }
        }
        if let NodeId::Client(c) = to {
            let groups = self.groups.read();
            for g in groups.iter() {
                if (g.base..g.end).contains(&c.0) {
                    return g.tx.send(frame).is_ok();
                }
            }
        }
        false
    }

    /// Delivers one already-encoded frame to every *replica* except
    /// `from` (the kernel's broadcast convention): the frame is cloned
    /// per recipient — a refcount bump, never a byte copy. Returns the
    /// number of queues reached.
    pub fn broadcast(&self, from: NodeId, frame: &WireBytes) -> usize {
        let guard = self.inner.read();
        let mut reached = 0;
        for (node, tx) in guard.iter() {
            if *node != from && matches!(node, NodeId::Replica(_)) && tx.send(frame.clone()).is_ok()
            {
                reached += 1;
            }
        }
        reached
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_kernel::ids::{ClientId, ReplicaId};

    fn r(i: u32) -> NodeId {
        NodeId::Replica(ReplicaId(i))
    }

    fn frame(bytes: &[u8]) -> WireBytes {
        WireBytes::copy_from(bytes)
    }

    #[test]
    fn register_send_receive() {
        let hub = InprocHub::new();
        let rx = hub.register(r(0));
        assert!(hub.send(r(0), frame(&[1, 2, 3])));
        assert_eq!(&rx.recv().unwrap()[..], &[1, 2, 3]);
    }

    #[test]
    fn unknown_destination_fails() {
        let hub = InprocHub::new();
        assert!(!hub.send(r(9), frame(&[0])));
    }

    #[test]
    fn deregister_stops_delivery() {
        let hub = InprocHub::new();
        let _rx = hub.register(r(0));
        hub.deregister(r(0));
        assert!(!hub.send(r(0), frame(&[0])));
        assert!(hub.is_empty());
    }

    #[test]
    fn dropped_receiver_reports_failure() {
        let hub = InprocHub::new();
        let rx = hub.register(r(1));
        drop(rx);
        assert!(!hub.send(r(1), frame(&[0])));
    }

    #[test]
    fn multiple_nodes_are_independent() {
        let hub = InprocHub::new();
        let rx0 = hub.register(r(0));
        let rx1 = hub.register(NodeId::Client(ClientId(0)));
        hub.send(r(0), frame(&[0]));
        hub.send(NodeId::Client(ClientId(0)), frame(&[1]));
        assert_eq!(&rx0.recv().unwrap()[..], &[0]);
        assert_eq!(&rx1.recv().unwrap()[..], &[1]);
        assert_eq!(hub.len(), 2);
    }

    /// A broadcast shares one frame allocation across all recipients.
    #[test]
    fn broadcast_shares_one_frame() {
        let hub = InprocHub::new();
        let rx1 = hub.register(r(1));
        let rx2 = hub.register(r(2));
        let rx3 = hub.register(r(3));
        let _client = hub.register(NodeId::Client(ClientId(0)));
        let f = frame(b"propose");
        assert_eq!(hub.broadcast(r(0), &f), 3, "replicas only, sender excluded");
        for rx in [&rx1, &rx2, &rx3] {
            let got = rx.recv().unwrap();
            assert_eq!(&got[..], b"propose");
            assert!(got.shares_buffer_with(&f), "recipients must share the sender's buffer");
        }
    }

    #[test]
    fn broadcast_excludes_sender() {
        let hub = InprocHub::new();
        let rx0 = hub.register(r(0));
        let _rx1 = hub.register(r(1));
        hub.broadcast(r(0), &frame(b"x"));
        assert!(rx0.try_recv().is_err(), "sender must not hear its own broadcast");
    }

    #[test]
    fn client_group_multiplexes_a_range() {
        let hub = InprocHub::new();
        let rx = hub.register_client_group(100, 3);
        assert!(hub.send(NodeId::Client(ClientId(100)), frame(&[0])));
        assert!(hub.send(NodeId::Client(ClientId(102)), frame(&[2])));
        assert!(!hub.send(NodeId::Client(ClientId(103)), frame(&[3])), "outside the range");
        assert!(!hub.send(NodeId::Client(ClientId(99)), frame(&[9])), "below the range");
        let got: Vec<u8> = (0..2).map(|_| rx.recv().unwrap()[0]).collect();
        assert_eq!(got, vec![0, 2]);
        hub.deregister_client_group(100);
        assert!(!hub.send(NodeId::Client(ClientId(100)), frame(&[0])));
    }

    #[test]
    fn exact_registration_beats_the_group() {
        let hub = InprocHub::new();
        let group_rx = hub.register_client_group(0, 10);
        let exact_rx = hub.register(NodeId::Client(ClientId(5)));
        assert!(hub.send(NodeId::Client(ClientId(5)), frame(&[5])));
        assert_eq!(&exact_rx.recv().unwrap()[..], &[5]);
        assert!(group_rx.try_recv().is_err(), "the exact endpoint won");
    }

    #[test]
    fn group_receivers_are_not_replica_broadcast_targets() {
        let hub = InprocHub::new();
        let group_rx = hub.register_client_group(0, 1000);
        let _r1 = hub.register(r(1));
        assert_eq!(hub.broadcast(r(0), &frame(b"propose")), 1, "replicas only");
        assert!(group_rx.try_recv().is_err());
    }

    #[test]
    fn cross_thread_delivery() {
        let hub = InprocHub::new();
        let rx = hub.register(r(0));
        let hub2 = hub.clone();
        let handle = std::thread::spawn(move || {
            for i in 0..100u8 {
                assert!(hub2.send(r(0), WireBytes::from(vec![i])));
            }
        });
        handle.join().unwrap();
        let received: Vec<u8> = (0..100).map(|_| rx.recv().unwrap()[0]).collect();
        assert_eq!(received, (0..100).collect::<Vec<u8>>());
    }
}
