//! In-process transport: crossbeam channels between fabric threads.
//!
//! Each node (replica or client) registers once and receives a consumer
//! endpoint; anyone holding the hub can send encoded envelopes to any
//! registered node. This plays the role of the datacenter network for the
//! multi-threaded fabric runtime, while keeping everything in one process
//! so experiments are self-contained.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use poe_kernel::ids::NodeId;
use std::collections::HashMap;
use std::sync::Arc;

/// A shared message hub connecting all nodes of one cluster.
#[derive(Clone, Default)]
pub struct InprocHub {
    inner: Arc<RwLock<HashMap<NodeId, Sender<Vec<u8>>>>>,
}

impl InprocHub {
    /// An empty hub.
    pub fn new() -> InprocHub {
        InprocHub::default()
    }

    /// Registers `node`, returning its inbound queue. Re-registering
    /// replaces the previous endpoint (the old receiver starves).
    pub fn register(&self, node: NodeId) -> Receiver<Vec<u8>> {
        let (tx, rx) = unbounded();
        self.inner.write().insert(node, tx);
        rx
    }

    /// Removes a node (subsequent sends to it fail).
    pub fn deregister(&self, node: NodeId) {
        self.inner.write().remove(&node);
    }

    /// Sends encoded bytes to `to`. Returns false if the node is unknown
    /// or its receiver was dropped.
    pub fn send(&self, to: NodeId, bytes: Vec<u8>) -> bool {
        let guard = self.inner.read();
        match guard.get(&to) {
            Some(tx) => tx.send(bytes).is_ok(),
            None => false,
        }
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_kernel::ids::{ClientId, ReplicaId};

    fn r(i: u32) -> NodeId {
        NodeId::Replica(ReplicaId(i))
    }

    #[test]
    fn register_send_receive() {
        let hub = InprocHub::new();
        let rx = hub.register(r(0));
        assert!(hub.send(r(0), vec![1, 2, 3]));
        assert_eq!(rx.recv().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn unknown_destination_fails() {
        let hub = InprocHub::new();
        assert!(!hub.send(r(9), vec![0]));
    }

    #[test]
    fn deregister_stops_delivery() {
        let hub = InprocHub::new();
        let _rx = hub.register(r(0));
        hub.deregister(r(0));
        assert!(!hub.send(r(0), vec![0]));
        assert!(hub.is_empty());
    }

    #[test]
    fn dropped_receiver_reports_failure() {
        let hub = InprocHub::new();
        let rx = hub.register(r(1));
        drop(rx);
        assert!(!hub.send(r(1), vec![0]));
    }

    #[test]
    fn multiple_nodes_are_independent() {
        let hub = InprocHub::new();
        let rx0 = hub.register(r(0));
        let rx1 = hub.register(NodeId::Client(ClientId(0)));
        hub.send(r(0), vec![0]);
        hub.send(NodeId::Client(ClientId(0)), vec![1]);
        assert_eq!(rx0.recv().unwrap(), vec![0]);
        assert_eq!(rx1.recv().unwrap(), vec![1]);
        assert_eq!(hub.len(), 2);
    }

    #[test]
    fn cross_thread_delivery() {
        let hub = InprocHub::new();
        let rx = hub.register(r(0));
        let hub2 = hub.clone();
        let handle = std::thread::spawn(move || {
            for i in 0..100u8 {
                assert!(hub2.send(r(0), vec![i]));
            }
        });
        handle.join().unwrap();
        let received: Vec<u8> = (0..100).map(|_| rx.recv().unwrap()[0]).collect();
        assert_eq!(received, (0..100).collect::<Vec<u8>>());
    }
}
