//! The transport abstraction the fabric runtime is generic over.
//!
//! A [`Hub`] is one node's view of the cluster network: replicas and
//! clients register inbound endpoints on it and push encoded
//! [`WireBytes`] frames through it. The in-process substrate
//! ([`crate::InprocHub`]) implements it with crossbeam channels (every
//! node shares one hub); the socket substrate ([`crate::TcpHub`]) gives
//! each process its own hub whose sends cross real TCP streams.
//!
//! The contract mirrors what the fabric always assumed of `InprocHub`:
//!
//! * `register` endpoints are single-consumer receivers; re-registering
//!   a node replaces the previous endpoint.
//! * `send` is fire-and-forget: `false` means the destination is
//!   *locally* unknown or its queue rejected the frame — a socket hub
//!   returns `true` once the frame is queued toward a peer, delivery
//!   being the network's (and the protocol's retransmission machinery's)
//!   problem, exactly like UDP-ish datacenter fabric semantics.
//! * `broadcast` reaches every *replica* except `from` and reports how
//!   many outbound queues accepted the frame. The frame is passed by
//!   reference so a shared encode-once buffer stays shared wherever the
//!   substrate permits (in-proc always; TCP when link auth allows).

use crossbeam::channel::Receiver;
use poe_kernel::ids::NodeId;
use poe_kernel::wire::WireBytes;

/// Per-link supervision counters a transport can report.
///
/// The in-proc hub has no links and reports none; the TCP hub reports
/// one entry per supervised connection (outbound peer links and learned
/// client routes).
#[derive(Clone, Debug, Default)]
pub struct LinkReport {
    /// Human-readable peer label (`"r2"` for a replica link, `"c0+512"`
    /// for a client-group route).
    pub peer: String,
    /// Successful connection establishments (handshake completed).
    pub connects: u64,
    /// Re-establishments after a loss — `connects` minus the first.
    pub reconnects: u64,
    /// Frames written to this link.
    pub frames_out: u64,
    /// Payload bytes written (frame headers included).
    pub bytes_out: u64,
    /// Frames read from this link.
    pub frames_in: u64,
    /// Payload bytes read (frame headers included).
    pub bytes_in: u64,
    /// Peak depth of the bounded send queue.
    pub queue_peak: u64,
    /// Frames dropped because the send queue was full (shed-policy
    /// links: client replies and driver requests; consensus links
    /// backpressure instead).
    pub shed: u64,
    /// Inbound frames or handshakes rejected by framing or
    /// authentication (hostile/torn input, wrong cluster, bad MAC).
    pub rejected_in: u64,
}

impl LinkReport {
    /// Sums every counter of `reports` into one aggregate (peer label
    /// `"total"`), for one-line summaries.
    pub fn total(reports: &[LinkReport]) -> LinkReport {
        let mut t = LinkReport { peer: "total".into(), ..LinkReport::default() };
        for r in reports {
            t.connects += r.connects;
            t.reconnects += r.reconnects;
            t.frames_out += r.frames_out;
            t.bytes_out += r.bytes_out;
            t.frames_in += r.frames_in;
            t.bytes_in += r.bytes_in;
            t.queue_peak = t.queue_peak.max(r.queue_peak);
            t.shed += r.shed;
            t.rejected_in += r.rejected_in;
        }
        t
    }
}

/// One node's interface to the cluster network. See the module docs for
/// the semantics each implementation must honor.
pub trait Hub: Clone + Send + Sync + 'static {
    /// Registers `node`, returning its inbound frame queue.
    /// Re-registering replaces the previous endpoint.
    fn register(&self, node: NodeId) -> Receiver<WireBytes>;

    /// Registers the client-id block `base .. base + count` onto one
    /// shared queue (open-loop drivers multiplex 10⁵ sessions; exact
    /// registrations take precedence).
    fn register_client_group(&self, base: u32, count: u32) -> Receiver<WireBytes>;

    /// Removes a node's endpoint.
    fn deregister(&self, node: NodeId);

    /// Removes the client group starting at `base`.
    fn deregister_client_group(&self, base: u32);

    /// Sends an encoded frame toward `to`. See the module docs for what
    /// `false` means per substrate.
    fn send(&self, to: NodeId, frame: WireBytes) -> bool;

    /// Delivers one encoded frame toward every replica except `from`,
    /// returning the number of queues that accepted it.
    fn broadcast(&self, from: NodeId, frame: &WireBytes) -> usize;

    /// Per-link supervision counters (empty for link-less substrates).
    fn link_reports(&self) -> Vec<LinkReport> {
        Vec::new()
    }

    /// Tears down any background machinery (listener/reader/writer
    /// threads). Idempotent; a no-op for thread-less substrates.
    fn shutdown(&self) {}
}

impl Hub for crate::InprocHub {
    fn register(&self, node: NodeId) -> Receiver<WireBytes> {
        crate::InprocHub::register(self, node)
    }

    fn register_client_group(&self, base: u32, count: u32) -> Receiver<WireBytes> {
        crate::InprocHub::register_client_group(self, base, count)
    }

    fn deregister(&self, node: NodeId) {
        crate::InprocHub::deregister(self, node)
    }

    fn deregister_client_group(&self, base: u32) {
        crate::InprocHub::deregister_client_group(self, base)
    }

    fn send(&self, to: NodeId, frame: WireBytes) -> bool {
        crate::InprocHub::send(self, to, frame)
    }

    fn broadcast(&self, from: NodeId, frame: &WireBytes) -> usize {
        crate::InprocHub::broadcast(self, from, frame)
    }
}
