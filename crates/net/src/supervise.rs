//! Connection supervision primitives for socket transports.
//!
//! A supervised link is a state machine, not an error path: it dials
//! with **capped exponential backoff + jitter** ([`Backoff`]), proves
//! both endpoints' identities with an authenticated handshake
//! ([`Hello`]), drains a **bounded outbox** ([`Outbox`]) whose overflow
//! policy depends on what the frames are (consensus traffic waits —
//! backpressure; client replies shed), and counts everything
//! ([`LinkStats`]) so a report can show exactly what each link did.

use crate::hub::LinkReport;
use poe_crypto::provider::{AuthTag, CryptoProvider};
use poe_kernel::ids::NodeId;
use poe_kernel::wire::WireBytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

// ------------------------------------------------------------- counters

/// Shared atomic counters of one supervised link (writer, reader, and
/// senders all update the same instance).
#[derive(Debug, Default)]
pub struct LinkStats {
    /// Successful handshakes.
    pub connects: AtomicU64,
    /// Frames written.
    pub frames_out: AtomicU64,
    /// Bytes written (frame headers included).
    pub bytes_out: AtomicU64,
    /// Frames read.
    pub frames_in: AtomicU64,
    /// Bytes read (frame headers included).
    pub bytes_in: AtomicU64,
    /// Frames dropped at a full outbox (or after exhausting the
    /// backpressure patience on a consensus link).
    pub shed: AtomicU64,
    /// Inbound rejections: framing violations, handshake failures.
    pub rejected_in: AtomicU64,
}

impl LinkStats {
    /// Snapshot into a [`LinkReport`]; `reconnects` is every successful
    /// handshake after the first.
    pub fn report(&self, peer: String, queue_peak: u64) -> LinkReport {
        let connects = self.connects.load(Ordering::Relaxed);
        LinkReport {
            peer,
            connects,
            reconnects: connects.saturating_sub(1),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            queue_peak,
            shed: self.shed.load(Ordering::Relaxed),
            rejected_in: self.rejected_in.load(Ordering::Relaxed),
        }
    }

    /// Counts one written frame of `bytes` bytes.
    pub fn note_out(&self, bytes: usize) {
        self.frames_out.fetch_add(1, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Counts one read frame of `bytes` payload bytes (+ header).
    pub fn note_in(&self, bytes: usize) {
        self.frames_in.fetch_add(1, Ordering::Relaxed);
        self.bytes_in
            .fetch_add(bytes as u64 + crate::frame::FRAME_HEADER_LEN as u64, Ordering::Relaxed);
    }
}

// -------------------------------------------------------------- backoff

/// Capped exponential backoff with uniform jitter. Jitter is drawn from
/// a per-link seeded stream, so a cluster-wide connection storm does
/// not re-dial in lockstep.
#[derive(Debug)]
pub struct Backoff {
    base: Duration,
    max: Duration,
    cur: Duration,
    rng: StdRng,
}

impl Backoff {
    /// A backoff starting at `base`, doubling to at most `max`.
    pub fn new(base: Duration, max: Duration, seed: u64) -> Backoff {
        Backoff { base, max, cur: base, rng: StdRng::seed_from_u64(seed) }
    }

    /// The next delay to sleep before re-dialing: the current step plus
    /// up to 50% jitter. Doubles the step, capped.
    pub fn next_delay(&mut self) -> Duration {
        let step_us = self.cur.as_micros() as u64;
        let jitter_us = self.rng.gen_range(0..step_us.max(2) / 2 + 1);
        let delay = Duration::from_micros(step_us + jitter_us);
        self.cur = (self.cur * 2).min(self.max);
        delay
    }

    /// Resets to the base step (call after a successful handshake).
    pub fn reset(&mut self) {
        self.cur = self.base;
    }

    /// The current (un-jittered) step.
    pub fn current(&self) -> Duration {
        self.cur
    }
}

// --------------------------------------------------------------- outbox

/// A bounded MPSC queue of destination-tagged frames feeding one writer
/// thread, with both overflow disciplines the slow-peer policy needs:
/// [`Outbox::try_push`] (shed) and [`Outbox::push_wait`] (bounded-
/// patience backpressure).
#[derive(Debug)]
pub struct Outbox {
    cap: usize,
    state: Mutex<OutboxState>,
    /// Signals consumers (writer thread) that an item or close arrived.
    pop_cv: Condvar,
    /// Signals producers that room opened up.
    push_cv: Condvar,
}

#[derive(Debug)]
struct OutboxState {
    q: VecDeque<(NodeId, WireBytes)>,
    closed: bool,
    peak: u64,
}

impl Outbox {
    /// An open outbox holding at most `cap` frames.
    pub fn new(cap: usize) -> Outbox {
        assert!(cap >= 1, "outbox capacity must be positive");
        Outbox {
            cap,
            state: Mutex::new(OutboxState { q: VecDeque::new(), closed: false, peak: 0 }),
            pop_cv: Condvar::new(),
            push_cv: Condvar::new(),
        }
    }

    /// Queues a frame unless the outbox is full or closed.
    pub fn try_push(&self, dest: NodeId, frame: WireBytes) -> bool {
        let mut s = self.state.lock().expect("outbox poisoned");
        if s.closed || s.q.len() >= self.cap {
            return false;
        }
        s.q.push_back((dest, frame));
        s.peak = s.peak.max(s.q.len() as u64);
        drop(s);
        self.pop_cv.notify_one();
        true
    }

    /// Queues a frame, waiting up to `patience` for room when full —
    /// the consensus-link discipline: a slow peer backpressures the
    /// sender before anything is dropped. Returns false if the outbox
    /// closed or patience ran out (the caller counts the shed).
    pub fn push_wait(&self, dest: NodeId, frame: WireBytes, patience: Duration) -> bool {
        let deadline = Instant::now() + patience;
        let mut s = self.state.lock().expect("outbox poisoned");
        while !s.closed && s.q.len() >= self.cap {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            let (next, timed_out) = self.push_cv.wait_timeout(s, left).expect("outbox poisoned");
            s = next;
            if timed_out.timed_out() && s.q.len() >= self.cap {
                return false;
            }
        }
        if s.closed {
            return false;
        }
        s.q.push_back((dest, frame));
        s.peak = s.peak.max(s.q.len() as u64);
        drop(s);
        self.pop_cv.notify_one();
        true
    }

    /// Dequeues one frame, waiting up to `timeout`. `None` on timeout
    /// or when closed-and-empty (check [`Outbox::is_closed`]).
    pub fn pop_timeout(&self, timeout: Duration) -> Option<(NodeId, WireBytes)> {
        let mut s = self.state.lock().expect("outbox poisoned");
        if s.q.is_empty() && !s.closed {
            let (next, _) = self.pop_cv.wait_timeout(s, timeout).expect("outbox poisoned");
            s = next;
        }
        let item = s.q.pop_front();
        if item.is_some() {
            drop(s);
            self.push_cv.notify_one();
        }
        item
    }

    /// Dequeues one frame without waiting.
    pub fn try_pop(&self) -> Option<(NodeId, WireBytes)> {
        let mut s = self.state.lock().expect("outbox poisoned");
        let item = s.q.pop_front();
        if item.is_some() {
            drop(s);
            self.push_cv.notify_one();
        }
        item
    }

    /// Closes the outbox: pushes fail, waiters wake, the writer drains
    /// what is queued and exits.
    pub fn close(&self) {
        self.state.lock().expect("outbox poisoned").closed = true;
        self.pop_cv.notify_all();
        self.push_cv.notify_all();
    }

    /// Whether [`Outbox::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("outbox poisoned").closed
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.state.lock().expect("outbox poisoned").q.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Peak depth ever reached.
    pub fn peak(&self) -> u64 {
        self.state.lock().expect("outbox poisoned").peak
    }
}

// ------------------------------------------------------------ handshake

/// Handshake frame magic.
pub const HANDSHAKE_MAGIC: [u8; 4] = *b"POE1";
/// Handshake wire version.
pub const HANDSHAKE_VERSION: u8 = 1;
/// Ceiling on the encoded auth tag (the largest real tag is 65 bytes).
const MAX_TAG_LEN: usize = 128;
/// Fixed size of the identity core every tag covers.
pub const HELLO_CORE_LEN: usize = 22;

/// Who a link endpoint claims to be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeerIdentity {
    /// Replica `id`.
    Replica(u32),
    /// A client-side hub multiplexing the client-id block
    /// `base .. base + count`.
    Clients {
        /// First client id.
        base: u32,
        /// Number of client ids.
        count: u32,
    },
}

impl PeerIdentity {
    /// The key-material index this identity authenticates with
    /// (replicas `0..n`, then clients).
    pub fn global_index(&self, n_replicas: usize) -> u32 {
        match *self {
            PeerIdentity::Replica(r) => r,
            PeerIdentity::Clients { base, .. } => n_replicas as u32 + base,
        }
    }

    /// Short display label (`r2`, `c100+512`).
    pub fn label(&self) -> String {
        match *self {
            PeerIdentity::Replica(r) => format!("r{r}"),
            PeerIdentity::Clients { base, count } => format!("c{base}+{count}"),
        }
    }
}

/// The identity half of the handshake: each endpoint sends one `Hello`
/// (magic, version, cluster id, claimed identity) plus an [`AuthTag`]
/// over the identity core — the dialer tags its own core, the acceptor
/// tags dialer-core ‖ acceptor-core, binding both directions. With
/// authentication disabled both tags are [`AuthTag::None`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hello {
    /// Cluster instance id (derived from the shared seed): two clusters
    /// on one host cannot cross-connect.
    pub cluster_id: u64,
    /// The sender's claimed identity.
    pub identity: PeerIdentity,
}

impl Hello {
    /// The fixed-size byte core the handshake tags cover.
    pub fn core(&self) -> [u8; HELLO_CORE_LEN] {
        let mut out = [0u8; HELLO_CORE_LEN];
        out[..4].copy_from_slice(&HANDSHAKE_MAGIC);
        out[4] = HANDSHAKE_VERSION;
        out[5..13].copy_from_slice(&self.cluster_id.to_le_bytes());
        let (kind, id, count) = match self.identity {
            PeerIdentity::Replica(r) => (0u8, r, 1u32),
            PeerIdentity::Clients { base, count } => (1u8, base, count),
        };
        out[13] = kind;
        out[14..18].copy_from_slice(&id.to_le_bytes());
        out[18..22].copy_from_slice(&count.to_le_bytes());
        out
    }

    /// Writes core + length-prefixed tag.
    pub fn write<W: Write>(&self, w: &mut W, tag: &AuthTag) -> std::io::Result<()> {
        let mut buf = Vec::with_capacity(HELLO_CORE_LEN + 4 + tag.encoded_len());
        buf.extend_from_slice(&self.core());
        buf.extend_from_slice(&(tag.encoded_len() as u32).to_le_bytes());
        tag.encode(&mut buf);
        w.write_all(&buf)
    }

    /// Reads and structurally validates one hello. Magic/version/tag
    /// violations surface as `InvalidData`; identity and tag *checking*
    /// is the caller's job (it knows the key material).
    pub fn read<R: Read>(r: &mut R) -> std::io::Result<(Hello, AuthTag)> {
        let bad = |what: &str| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("handshake: {what}"))
        };
        let mut core = [0u8; HELLO_CORE_LEN];
        r.read_exact(&mut core)?;
        if core[..4] != HANDSHAKE_MAGIC {
            return Err(bad("bad magic"));
        }
        if core[4] != HANDSHAKE_VERSION {
            return Err(bad("unsupported version"));
        }
        let cluster_id = u64::from_le_bytes(core[5..13].try_into().expect("len 8"));
        let id = u32::from_le_bytes(core[14..18].try_into().expect("len 4"));
        let count = u32::from_le_bytes(core[18..22].try_into().expect("len 4"));
        let identity = match core[13] {
            0 => PeerIdentity::Replica(id),
            1 if count >= 1 => PeerIdentity::Clients { base: id, count },
            _ => return Err(bad("bad identity kind")),
        };
        let mut len4 = [0u8; 4];
        r.read_exact(&mut len4)?;
        let tag_len = u32::from_le_bytes(len4) as usize;
        if tag_len > MAX_TAG_LEN {
            return Err(bad("oversize auth tag"));
        }
        let mut tag_buf = vec![0u8; tag_len];
        r.read_exact(&mut tag_buf)?;
        let (tag, used) = AuthTag::decode(&tag_buf).ok_or_else(|| bad("malformed auth tag"))?;
        if used != tag_len {
            return Err(bad("auth tag padding"));
        }
        Ok((Hello { cluster_id, identity }, tag))
    }
}

/// Computes the tag a dialer sends: over its own hello core, keyed to
/// the acceptor. `None` provider ⇒ unauthenticated links.
pub fn dial_tag(auth: Option<&CryptoProvider>, hello: &Hello, acceptor_index: u32) -> AuthTag {
    match auth {
        Some(p) => p.authenticate(acceptor_index, &hello.core()),
        None => AuthTag::None,
    }
}

/// Computes the tag an acceptor answers with: over dialer-core ‖
/// acceptor-core, keyed to the dialer.
pub fn accept_tag(
    auth: Option<&CryptoProvider>,
    dialer_hello: &Hello,
    acceptor_hello: &Hello,
    dialer_index: u32,
) -> AuthTag {
    match auth {
        Some(p) => {
            let mut msg = Vec::with_capacity(2 * HELLO_CORE_LEN);
            msg.extend_from_slice(&dialer_hello.core());
            msg.extend_from_slice(&acceptor_hello.core());
            p.authenticate(dialer_index, &msg)
        }
        None => AuthTag::None,
    }
}

/// Verifies a dialer's tag (acceptor side). A `None` provider trusts
/// everything (the in-datacenter model).
pub fn check_dial_tag(
    auth: Option<&CryptoProvider>,
    hello: &Hello,
    dialer_index: u32,
    tag: &AuthTag,
) -> bool {
    match auth {
        Some(p) => p.check(dialer_index, &hello.core(), tag),
        None => true,
    }
}

/// Verifies an acceptor's tag (dialer side).
pub fn check_accept_tag(
    auth: Option<&CryptoProvider>,
    dialer_hello: &Hello,
    acceptor_hello: &Hello,
    acceptor_index: u32,
    tag: &AuthTag,
) -> bool {
    match auth {
        Some(p) => {
            let mut msg = Vec::with_capacity(2 * HELLO_CORE_LEN);
            msg.extend_from_slice(&dialer_hello.core());
            msg.extend_from_slice(&acceptor_hello.core());
            p.check(acceptor_index, &msg, tag)
        }
        None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_crypto::{CertScheme, CryptoMode, KeyMaterial};
    use poe_kernel::ids::{NodeId, ReplicaId};

    fn frame(b: &[u8]) -> WireBytes {
        WireBytes::copy_from(b)
    }

    #[test]
    fn backoff_doubles_caps_and_jitters_within_bounds() {
        let base = Duration::from_millis(10);
        let max = Duration::from_millis(80);
        let mut b = Backoff::new(base, max, 7);
        let mut step = base;
        for _ in 0..6 {
            let d = b.next_delay();
            assert!(
                d >= step && d <= step + step / 2 + Duration::from_micros(1),
                "{d:?} vs {step:?}"
            );
            step = (step * 2).min(max);
        }
        assert_eq!(b.current(), max, "capped");
        b.reset();
        assert_eq!(b.current(), base);
    }

    #[test]
    fn outbox_try_push_sheds_at_capacity() {
        let ob = Outbox::new(2);
        let dest = NodeId::Replica(ReplicaId(1));
        assert!(ob.try_push(dest, frame(b"a")));
        assert!(ob.try_push(dest, frame(b"b")));
        assert!(!ob.try_push(dest, frame(b"c")), "full sheds");
        assert_eq!(ob.peak(), 2);
        assert_eq!(ob.try_pop().unwrap().1.as_slice(), b"a");
        assert!(ob.try_push(dest, frame(b"c")), "room reopened");
    }

    #[test]
    fn outbox_push_wait_backpressures_until_room() {
        let ob = std::sync::Arc::new(Outbox::new(1));
        let dest = NodeId::Replica(ReplicaId(0));
        assert!(ob.try_push(dest, frame(b"first")));
        let consumer = {
            let ob = ob.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                ob.pop_timeout(Duration::from_secs(1)).expect("item queued")
            })
        };
        let t0 = Instant::now();
        assert!(ob.push_wait(dest, frame(b"second"), Duration::from_secs(2)), "waited for room");
        assert!(t0.elapsed() >= Duration::from_millis(20), "actually blocked");
        assert_eq!(consumer.join().unwrap().1.as_slice(), b"first");
        // Patience exhausted: the queue stays full, push_wait gives up.
        assert!(!ob.push_wait(dest, frame(b"third"), Duration::from_millis(20)));
    }

    #[test]
    fn outbox_close_wakes_and_rejects() {
        let ob = std::sync::Arc::new(Outbox::new(1));
        let waiter = {
            let ob = ob.clone();
            std::thread::spawn(move || ob.pop_timeout(Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(10));
        ob.close();
        assert_eq!(waiter.join().unwrap(), None, "close wakes a blocked pop");
        assert!(!ob.try_push(NodeId::Replica(ReplicaId(0)), frame(b"x")));
        assert!(ob.is_closed());
    }

    #[test]
    fn hello_roundtrips_and_rejects_garbage() {
        for identity in [PeerIdentity::Replica(3), PeerIdentity::Clients { base: 100, count: 512 }]
        {
            let hello = Hello { cluster_id: 0xDEAD_BEEF, identity };
            let mut wire = Vec::new();
            hello.write(&mut wire, &AuthTag::None).unwrap();
            let (back, tag) = Hello::read(&mut wire.as_slice()).unwrap();
            assert_eq!(back, hello);
            assert_eq!(tag, AuthTag::None);
        }
        assert!(Hello::read(&mut &b"NOPE############################"[..]).is_err());
    }

    #[test]
    fn handshake_tags_bind_both_identities() {
        let km = KeyMaterial::generate(4, 2, 3, CryptoMode::Cmac, CertScheme::Simulated, 9);
        let dialer = Hello { cluster_id: 7, identity: PeerIdentity::Replica(0) };
        let acceptor = Hello { cluster_id: 7, identity: PeerIdentity::Replica(2) };
        let p0 = km.replica(0);
        let p2 = km.replica(2);
        let t = dial_tag(Some(&p0), &dialer, 2);
        assert!(check_dial_tag(Some(&p2), &dialer, 0, &t));
        let mut forged = dialer;
        forged.identity = PeerIdentity::Replica(1);
        assert!(!check_dial_tag(Some(&p2), &forged, 1, &t), "identity swap breaks the tag");
        let a = accept_tag(Some(&p2), &dialer, &acceptor, 0);
        assert!(check_accept_tag(Some(&p0), &dialer, &acceptor, 2, &a));
        assert!(!check_accept_tag(Some(&p0), &forged, &acceptor, 2, &a));
        // Clients authenticate with their key-material index too.
        let c = Hello { cluster_id: 7, identity: PeerIdentity::Clients { base: 0, count: 2 } };
        let pc = km.client(0);
        let ct = dial_tag(Some(&pc), &c, 2);
        assert!(check_dial_tag(Some(&p2), &c, c.identity.global_index(4), &ct));
    }
}
