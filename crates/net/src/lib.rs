//! # poe-net
//!
//! Network substrates for the two runtimes:
//!
//! * [`model`] — the *simulated* network: per-link delay distributions,
//!   probabilistic drops, directed link blocking and group partitions.
//!   The discrete-event simulator samples a delivery delay (or a drop)
//!   for every message; unreliable-network scenarios in the paper
//!   (§II-B: "when the network is unreliable and messages do not get
//!   delivered…") are expressed through this model.
//! * [`inproc`] — the *in-process* transport: crossbeam channels carrying
//!   encoded [`poe_kernel::wire::WireBytes`] frames between the threads
//!   of the fabric runtime (paper §III's multi-threaded pipelined
//!   architecture), exercising the real wire codec. Broadcasts encode
//!   once and share the frame across every recipient queue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inproc;
pub mod model;

pub use inproc::InprocHub;
pub use model::{DelayModel, NetworkModel};
