//! # poe-net
//!
//! Network substrates for the runtimes:
//!
//! * [`model`] — the *simulated* network: per-link delay distributions,
//!   probabilistic drops, directed link blocking and group partitions.
//!   The discrete-event simulator samples a delivery delay (or a drop)
//!   for every message; unreliable-network scenarios in the paper
//!   (§II-B: "when the network is unreliable and messages do not get
//!   delivered…") are expressed through this model.
//! * [`inproc`] — the *in-process* transport: crossbeam channels carrying
//!   encoded [`poe_kernel::wire::WireBytes`] frames between the threads
//!   of the fabric runtime (paper §III's multi-threaded pipelined
//!   architecture), exercising the real wire codec. Broadcasts encode
//!   once and share the frame across every recipient queue.
//! * [`tcp`] — the *socket* transport: the same [`Hub`] surface carried
//!   over supervised per-peer TCP streams ([`frame`] does the length-
//!   prefixed zero-copy framing, [`supervise`] the backoff/handshake/
//!   outbox machinery), so replicas run as real networked processes.
//!
//! The [`hub::Hub`] trait is the seam: the fabric runtime is generic
//! over it and cannot tell the substrates apart.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod hub;
pub mod inproc;
pub mod model;
pub mod supervise;
pub mod tcp;

pub use frame::{FrameError, StreamFramer, DEFAULT_MAX_FRAME_LEN};
pub use hub::{Hub, LinkReport};
pub use inproc::InprocHub;
pub use model::{DelayModel, NetworkModel};
pub use supervise::PeerIdentity;
pub use tcp::{LinkRecorder, TcpConfig, TcpHub};
