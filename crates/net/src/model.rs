//! The simulated network model.
//!
//! Determines, per message, whether it is delivered and after how long.
//! The paper's §IV-I simulation "delays the arrival of messages by a
//! pre-determined message delay" — [`DelayModel::Constant`] reproduces
//! exactly that; the jittered models make the other experiments more
//! realistic without hurting determinism (sampling uses the simulator's
//! seeded RNG).

use poe_kernel::ids::NodeId;
use poe_kernel::time::Duration;
use rand::Rng;
use std::collections::HashSet;

/// Per-link delay distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DelayModel {
    /// Fixed delay (the paper's Fig. 11 setting: 10/20/40 ms).
    Constant(Duration),
    /// Uniform in `[min, max]`.
    Uniform {
        /// Lower bound.
        min: Duration,
        /// Upper bound (inclusive).
        max: Duration,
    },
    /// `base` plus an exponentially distributed tail of mean
    /// `tail_mean` (a common LAN/WAN latency shape).
    ExponentialTail {
        /// Deterministic propagation floor.
        base: Duration,
        /// Mean of the exponential tail.
        tail_mean: Duration,
    },
}

impl DelayModel {
    /// A typical intra-datacenter link (~0.5 ms ± tail), the scale of the
    /// paper's Google Cloud deployment.
    pub fn lan() -> DelayModel {
        DelayModel::ExponentialTail {
            base: Duration::from_micros(300),
            tail_mean: Duration::from_micros(200),
        }
    }

    /// Samples one delay.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        match *self {
            DelayModel::Constant(d) => d,
            DelayModel::Uniform { min, max } => {
                debug_assert!(min <= max);
                Duration(rng.gen_range(min.0..=max.0))
            }
            DelayModel::ExponentialTail { base, tail_mean } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let tail = (-u.ln()) * tail_mean.0 as f64;
                base + Duration(tail as u64)
            }
        }
    }
}

/// The cluster-wide network model.
#[derive(Clone, Debug)]
pub struct NetworkModel {
    delay: DelayModel,
    drop_prob: f64,
    /// Directed blocked links.
    blocked: HashSet<(NodeId, NodeId)>,
    /// Nodes cut off entirely (crashed or partitioned away).
    isolated: HashSet<NodeId>,
}

impl NetworkModel {
    /// A reliable network with the given delay model.
    pub fn new(delay: DelayModel) -> NetworkModel {
        NetworkModel { delay, drop_prob: 0.0, blocked: HashSet::new(), isolated: HashSet::new() }
    }

    /// Sets an i.i.d. message drop probability.
    pub fn with_drop_prob(mut self, p: f64) -> NetworkModel {
        assert!((0.0..=1.0).contains(&p));
        self.drop_prob = p;
        self
    }

    /// The delay model in use.
    pub fn delay_model(&self) -> DelayModel {
        self.delay
    }

    /// Blocks the directed link `from → to`.
    pub fn block_link(&mut self, from: NodeId, to: NodeId) {
        self.blocked.insert((from, to));
    }

    /// Unblocks the directed link.
    pub fn unblock_link(&mut self, from: NodeId, to: NodeId) {
        self.blocked.remove(&(from, to));
    }

    /// Isolates a node: nothing in or out (models a crashed or
    /// partitioned-away node at the network layer).
    pub fn isolate(&mut self, node: NodeId) {
        self.isolated.insert(node);
    }

    /// Reconnects an isolated node.
    pub fn reconnect(&mut self, node: NodeId) {
        self.isolated.remove(&node);
    }

    /// Whether the node is currently isolated.
    pub fn is_isolated(&self, node: NodeId) -> bool {
        self.isolated.contains(&node)
    }

    /// Decides the fate of one message: `Some(delay)` to deliver after
    /// `delay`, `None` to drop.
    pub fn route<R: Rng + ?Sized>(
        &self,
        from: NodeId,
        to: NodeId,
        rng: &mut R,
    ) -> Option<Duration> {
        if self.isolated.contains(&from) || self.isolated.contains(&to) {
            return None;
        }
        if self.blocked.contains(&(from, to)) {
            return None;
        }
        if self.drop_prob > 0.0 && rng.gen::<f64>() < self.drop_prob {
            return None;
        }
        Some(self.delay.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_kernel::ids::{ClientId, ReplicaId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn r(i: u32) -> NodeId {
        NodeId::Replica(ReplicaId(i))
    }

    #[test]
    fn constant_delay_is_exact() {
        let m = NetworkModel::new(DelayModel::Constant(Duration::from_millis(10)));
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(m.route(r(0), r(1), &mut rng), Some(Duration::from_millis(10)));
        }
    }

    #[test]
    fn uniform_delay_in_bounds() {
        let model =
            DelayModel::Uniform { min: Duration::from_millis(1), max: Duration::from_millis(5) };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let d = model.sample(&mut rng);
            assert!(d >= Duration::from_millis(1) && d <= Duration::from_millis(5));
        }
    }

    #[test]
    fn exponential_tail_has_floor() {
        let model = DelayModel::ExponentialTail {
            base: Duration::from_millis(2),
            tail_mean: Duration::from_micros(500),
        };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(model.sample(&mut rng) >= Duration::from_millis(2));
        }
    }

    #[test]
    fn drops_follow_probability() {
        let m = NetworkModel::new(DelayModel::Constant(Duration::ZERO)).with_drop_prob(0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let delivered = (0..10_000).filter(|_| m.route(r(0), r(1), &mut rng).is_some()).count();
        assert!((4_000..6_000).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn blocked_links_are_directional() {
        let mut m = NetworkModel::new(DelayModel::Constant(Duration::ZERO));
        m.block_link(r(0), r(1));
        let mut rng = StdRng::seed_from_u64(4);
        assert!(m.route(r(0), r(1), &mut rng).is_none());
        assert!(m.route(r(1), r(0), &mut rng).is_some());
        m.unblock_link(r(0), r(1));
        assert!(m.route(r(0), r(1), &mut rng).is_some());
    }

    #[test]
    fn isolation_cuts_both_directions() {
        let mut m = NetworkModel::new(DelayModel::Constant(Duration::ZERO));
        m.isolate(r(2));
        let mut rng = StdRng::seed_from_u64(5);
        assert!(m.route(r(0), r(2), &mut rng).is_none());
        assert!(m.route(r(2), r(0), &mut rng).is_none());
        assert!(m.route(r(0), r(1), &mut rng).is_some());
        assert!(m.is_isolated(r(2)));
        m.reconnect(r(2));
        assert!(m.route(r(0), r(2), &mut rng).is_some());
    }

    #[test]
    fn clients_and_replicas_are_distinct_nodes() {
        let mut m = NetworkModel::new(DelayModel::Constant(Duration::ZERO));
        m.isolate(NodeId::Client(ClientId(0)));
        let mut rng = StdRng::seed_from_u64(6);
        assert!(m.route(r(0), NodeId::Client(ClientId(0)), &mut rng).is_none());
        assert!(m.route(r(0), r(0), &mut rng).is_some());
    }
}
