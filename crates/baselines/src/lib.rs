//! (under construction)
#![allow(dead_code)]
