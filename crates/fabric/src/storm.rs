//! Retry-storm tests: the session table must keep replies exactly-once
//! per *execution* no matter how aggressively a client retransmits —
//! duplicates while the request is in flight, retries after the reply,
//! and retries after the cached reply frame was evicted. Run in both
//! SUPPORT modes (threshold shares and MAC votes), since the reply path
//! the cache serves is the INFORM fan-out of either.

use crate::cluster::{FabricCluster, FabricConfig, FabricReport};
use crate::runtime::encode_frame;
use poe_consensus::SupportMode;
use poe_kernel::codec::{decode_envelope_shared, ScratchPool};
use poe_kernel::ids::{ClientId, NodeId, ReplicaId};
use poe_kernel::messages::{ProtocolMsg, ReplyKind};
use poe_kernel::request::ClientRequest;
use poe_kernel::wire::WireBytes;
use poe_workload::{YcsbConfig, YcsbWorkload};
use std::collections::HashSet;
use std::time::{Duration, Instant};

const CLIENT: ClientId = ClientId(0);

struct Storm {
    cluster: FabricCluster,
    rx: crossbeam::channel::Receiver<WireBytes>,
    scratch: ScratchPool,
    source: YcsbWorkload,
}

impl Storm {
    fn launch(support: SupportMode, reply_cache_bytes: usize) -> Storm {
        let mut cfg = FabricConfig::new(4, support);
        cfg.n_clients = 1; // Key material for the one storming client.
        cfg.tuning.reply_cache_bytes = reply_cache_bytes;
        // Keep the dup-suppression window wide so the storm cannot
        // sneak through on grace passthrough and blur the counters.
        cfg.tuning.session_grace = Duration::from_secs(30);
        let cluster = FabricCluster::launch_headless(&cfg);
        let rx = cluster.shared().hub.register(NodeId::Client(CLIENT));
        Storm {
            cluster,
            rx,
            scratch: ScratchPool::new(),
            source: YcsbWorkload::new(YcsbConfig::small()),
        }
    }

    fn request(&mut self, req_id: u64) -> ClientRequest {
        let op = self.source.next_transaction().encode();
        ClientRequest::new(CLIENT, req_id, op, None)
    }

    /// One encoded copy of `req`, as the client would frame it.
    fn frame(&mut self, req: &ClientRequest, broadcast: bool) -> WireBytes {
        let msg = if broadcast {
            ProtocolMsg::RequestBroadcast(req.clone())
        } else {
            ProtocolMsg::Request(req.clone())
        };
        encode_frame(&mut self.scratch, NodeId::Client(CLIENT), msg)
    }

    fn send_to_primary(&mut self, req: &ClientRequest, copies: usize) {
        let frame = self.frame(req, false);
        for _ in 0..copies {
            self.cluster.shared().hub.send(NodeId::Replica(ReplicaId(0)), frame.clone());
        }
    }

    fn broadcast(&mut self, req: &ClientRequest, copies: usize) {
        let frame = self.frame(req, true);
        for _ in 0..copies {
            self.cluster.shared().hub.broadcast(NodeId::Client(CLIENT), &frame);
        }
    }

    /// Drains INFORM replies for `req` until `want` distinct replicas
    /// answered (panics after 5 s — the request was lost). Egress
    /// records the reply in the session cache *before* sending, so once
    /// a replica's INFORM arrived here, its cache is known warm.
    fn await_informs(&mut self, req: &ClientRequest, want: usize) -> usize {
        let mut replicas = HashSet::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while replicas.len() < want {
            let left = deadline.saturating_duration_since(Instant::now());
            assert!(!left.is_zero(), "no INFORM quorum for req {} in 5s", req.req_id);
            let Ok(frame) = self.rx.recv_timeout(left.min(Duration::from_millis(50))) else {
                continue;
            };
            let Ok(env) = decode_envelope_shared(&frame) else { continue };
            if let ProtocolMsg::Reply(r) = env.msg {
                if r.kind == ReplyKind::PoeInform && r.req_id == req.req_id {
                    replicas.insert(r.replica);
                }
            }
        }
        replicas.len()
    }

    /// Counts replies for `req` arriving within `window` (for phases
    /// where *some* replay service is expected, or none at all).
    fn count_replies(&mut self, req: &ClientRequest, window: Duration) -> usize {
        let deadline = Instant::now() + window;
        let mut seen = 0;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return seen;
            }
            let Ok(frame) = self.rx.recv_timeout(left) else { continue };
            let Ok(env) = decode_envelope_shared(&frame) else { continue };
            if let ProtocolMsg::Reply(r) = env.msg {
                if r.req_id == req.req_id {
                    seen += 1;
                }
            }
        }
    }

    fn finish(self) -> FabricReport {
        let report =
            self.cluster.run_to_completion(Duration::from_secs(30)).expect("storm run completes");
        assert!(report.converged(), "replicas must converge after the storm");
        report
    }
}

/// The exactly-once invariant, independent of storm timing: each
/// replica executed exactly `batches` batches, no matter how many
/// copies of the requests it saw.
fn assert_executed(report: &FabricReport, batches: u64) {
    for r in &report.replicas {
        assert_eq!(
            r.consensus.executed, batches,
            "replica {} re-executed under the retry storm",
            r.id
        );
    }
}

fn storm_in_flight_and_after_reply(support: SupportMode) {
    let mut storm = Storm::launch(support, 1 << 20);
    let req = storm.request(1);

    // Phase 1 — duplicates in flight: two waves so the second wave
    // classifies against a noted (post-verify) watermark even if the
    // first wave shares one admission chunk.
    storm.send_to_primary(&req, 16);
    std::thread::sleep(Duration::from_millis(2));
    storm.send_to_primary(&req, 16);
    // Wait for *all four* INFORMs: every replica's reply cache is then
    // warm (in MAC mode the quorum can complete off backups before the
    // primary's own egress has recorded its reply).
    let informs = storm.await_informs(&req, 4);
    assert!(informs >= 3, "nf matching INFORMs complete the request");

    // Phase 2 — retry after the reply: the primary must answer from the
    // reply cache; a broadcast retransmission also exercises the
    // non-primary replay path.
    storm.send_to_primary(&req, 8);
    storm.broadcast(&req, 2);
    let replays = storm.count_replies(&req, Duration::from_millis(300));
    assert!(replays > 0, "retry after reply must be served from the cache");

    // A second request keeps the session advancing normally.
    let req2 = storm.request(2);
    storm.send_to_primary(&req2, 1);
    storm.await_informs(&req2, 4);

    let report = storm.finish();
    assert_executed(&report, 2);
    let primary = &report.replicas[0];
    assert!(
        primary.session.replayed_from_cache > 0,
        "primary must have served cached replies: {:?}",
        primary.session
    );
    let dedup = primary.session.dup_in_flight + primary.session.replayed_from_cache;
    assert!(dedup > 0, "storm copies must be absorbed by the session table");
    // Backups saw broadcast retransmissions after the reply was cached.
    assert!(
        report.replicas.iter().skip(1).any(|r| r.session.replayed_from_cache > 0),
        "some backup must have replayed from its cache"
    );
}

fn storm_after_eviction(support: SupportMode) {
    // A 1-byte budget evicts every reply frame the moment it is cached.
    let mut storm = Storm::launch(support, 1);
    let req = storm.request(1);
    storm.send_to_primary(&req, 4);
    storm.await_informs(&req, 4);
    storm.count_replies(&req, Duration::from_millis(50)); // Drain stragglers.

    // Retry after eviction, at the primary: must be dropped as stale —
    // NOT re-executed, and no reply can be served (the frame is gone).
    storm.send_to_primary(&req, 8);
    let replies = storm.count_replies(&req, Duration::from_millis(300));
    assert_eq!(replies, 0, "evicted reply cannot be replayed by the session table");

    // Broadcast retransmissions additionally reach the backups, whose
    // caches are also evicted: the relay path hands them to the
    // automaton, whose own last-reply state may re-serve the INFORM
    // (liveness) — but nothing may re-execute.
    storm.broadcast(&req, 2);
    storm.count_replies(&req, Duration::from_millis(200));

    let report = storm.finish();
    assert_executed(&report, 1);
    let primary = &report.replicas[0];
    assert!(primary.session.evicted_replies > 0, "budget must have evicted: {:?}", primary.session);
    assert!(
        primary.session.stale_dropped > 0,
        "post-eviction retries must be dropped stale, not re-executed: {:?}",
        primary.session
    );
}

#[test]
fn retry_storm_exactly_once_ts() {
    storm_in_flight_and_after_reply(SupportMode::Threshold);
}

#[test]
fn retry_storm_exactly_once_mac() {
    storm_in_flight_and_after_reply(SupportMode::Mac);
}

#[test]
fn retry_after_eviction_is_not_reexecuted_ts() {
    storm_after_eviction(SupportMode::Threshold);
}

#[test]
fn retry_after_eviction_is_not_reexecuted_mac() {
    storm_after_eviction(SupportMode::Mac);
}
