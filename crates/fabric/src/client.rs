//! Client threads: one OS thread per YCSB client, driving the
//! [`WorkloadClient`] automaton on the wall clock.
//!
//! Each client registers its own hub endpoint, submits signed requests
//! to the primary (broadcasting on retry, exactly like the simulated
//! client), collects `nf` matching INFORMs per request, and records
//! end-to-end latency from the `RequestComplete` notifications. The
//! thread exits on its own once the workload budget is spent — that is
//! the natural first phase of the cluster's shutdown protocol.

use crate::runtime::{encode_frame, ClusterShared, TICK};
use crate::wheel::TimerWheel;
use crossbeam::channel::{Receiver, RecvTimeoutError};
use poe_kernel::automaton::{Action, ClientAutomaton, Event, Notification, Outbox};
use poe_kernel::codec::{decode_envelope_shared, ScratchPool};
use poe_kernel::ids::NodeId;
use poe_kernel::wire::WireBytes;
use poe_net::Hub;
use poe_telemetry::Histogram;
use poe_workload::WorkloadClient;
use std::sync::Arc;

/// What one client thread reports back on exit.
#[derive(Clone, Debug, Default)]
pub(crate) struct ClientStats {
    /// Requests completed (quorum of matching replies collected).
    pub completed: u64,
    /// End-to-end latency histogram in nanoseconds (bounded memory; the
    /// cluster merges all clients' histograms into one summary).
    pub latencies: Histogram,
}

pub(crate) fn client_loop<H: Hub>(
    shared: Arc<ClusterShared<H>>,
    rx: Receiver<WireBytes>,
    mut client: WorkloadClient,
) -> ClientStats {
    let my_node = NodeId::Client(client.id());
    let mut wheel = TimerWheel::new();
    let mut scratch = ScratchPool::new();
    let mut out = Outbox::new();
    let mut stats = ClientStats::default();

    let step = |client: &mut WorkloadClient,
                event: Event,
                wheel: &mut TimerWheel,
                scratch: &mut ScratchPool,
                out: &mut Outbox,
                stats: &mut ClientStats| {
        let now = shared.now();
        client.on_event(now, event, out);
        for action in out.drain_iter() {
            match action {
                Action::Send { to, msg } => {
                    let frame = encode_frame(scratch, my_node, msg);
                    shared.hub.send(to, frame);
                }
                Action::Broadcast { msg } => {
                    // Client convention: a broadcast reaches all replicas
                    // (the retransmission fallback of §II-B).
                    let frame = encode_frame(scratch, my_node, msg);
                    shared.hub.broadcast(my_node, &frame);
                }
                Action::SetTimer { kind, delay } => wheel.arm(kind, now + delay),
                Action::CancelTimer { kind } => wheel.cancel(&kind),
                Action::Notify(Notification::RequestComplete { submitted_at, .. }) => {
                    stats.latencies.record(now.since(submitted_at).as_nanos());
                }
                Action::Notify(_) => {}
            }
        }
    };

    step(&mut client, Event::Init, &mut wheel, &mut scratch, &mut out, &mut stats);
    loop {
        if client.is_done() || shared.stopped() {
            break;
        }
        let now = shared.now();
        while let Some(kind) = wheel.pop_expired(now) {
            step(&mut client, Event::Timeout(kind), &mut wheel, &mut scratch, &mut out, &mut stats);
        }
        let wait = wheel.wait_budget(shared.now(), TICK);
        match rx.recv_timeout(wait) {
            Ok(frame) => {
                if let Ok(env) = decode_envelope_shared(&frame) {
                    let event = Event::Deliver { from: env.from, msg: env.msg };
                    step(&mut client, event, &mut wheel, &mut scratch, &mut out, &mut stats);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Late INFORM frames for this client now fail fast at the hub
    // instead of queueing into a dead endpoint.
    shared.hub.deregister(my_node);
    stats.completed = client.completed();
    stats
}
