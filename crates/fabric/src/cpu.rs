//! Per-thread CPU accounting for requests/sec/core.
//!
//! Open-loop throughput numbers are only comparable across machines
//! when normalized by the CPU they consumed: *requests per second per
//! core* divides completed requests by the CPU-seconds the replica
//! stage threads actually burned (driver threads are excluded — they
//! are the load generator, not the system under test).
//!
//! Each stage thread reads its own on-CPU time at exit from
//! `/proc/thread-self/schedstat` (field 1: cumulative nanoseconds the
//! thread spent running, maintained by the Linux scheduler even without
//! `CONFIG_SCHEDSTATS` fine granularity via `sum_exec_runtime`). On
//! kernels without it, `/proc/thread-self/stat` utime+stime provides a
//! jiffy-granular fallback; failing both, zero — callers treat a zero
//! sum as "CPU accounting unavailable" rather than dividing by it.

/// Cumulative on-CPU nanoseconds of the *calling* thread (0 when no
/// accounting source is available).
pub(crate) fn thread_cpu_ns() -> u64 {
    schedstat_ns().or_else(stat_ns).unwrap_or(0)
}

/// `/proc/thread-self/schedstat`: "`<on-cpu-ns> <wait-ns> <slices>`".
fn schedstat_ns() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
    text.split_whitespace().next()?.parse().ok()
}

/// `/proc/thread-self/stat` fields 14+15 (utime+stime), in clock ticks.
/// Coarse (typically 10 ms granularity) but universally available.
fn stat_ns() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/thread-self/stat").ok()?;
    // Field 2 (comm) may contain spaces; everything after the closing
    // paren is well-formed.
    let after = text.rsplit_once(") ")?.1;
    let mut fields = after.split_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?; // field 14 overall
    let stime: u64 = fields.next()?.parse().ok()?; // field 15
                                                   // USER_HZ is 100 on every Linux ABI this runs on.
    Some((utime + stime) * 10_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_time_is_monotone_and_advances_under_load() {
        let before = thread_cpu_ns();
        // Burn a visible amount of CPU (~tens of ms even on slow boxes).
        let mut acc = 0u64;
        for i in 0..20_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let after = thread_cpu_ns();
        assert!(after >= before, "cpu clock must be monotone");
        // Only assert progress when an accounting source exists at all.
        if before > 0 || after > 0 {
            assert!(after > before, "20M mults must consume measurable CPU");
        }
    }
}
