//! Per-replica telemetry: the metric registry, hot-path counter
//! handles, queue-depth histograms, and the flight recorder — one
//! [`ReplicaTelemetry`] per replica, shared by all four stage threads.
//!
//! The split follows the cost model of `poe-telemetry`:
//!
//! * **Hot handles** (frame counter, shed counters, batch-cut counter,
//!   queue-depth histograms) are `Arc`-cloned into the stage loops at
//!   spawn; updating one is a relaxed atomic RMW.
//! * **Scrape-refreshed gauges** (view/commit/exec frontiers, live
//!   queue depths and peaks, recorder drops) are only written when
//!   [`ReplicaTelemetry::render`] runs: the renderer pulls from the
//!   [`ReplicaProbe`] and the queues' [`DepthGauge`] mirrors, so the
//!   stage threads pay nothing for them.
//! * **The flight recorder** is fed protocol events by the consensus
//!   stage's notification path, coalesced shed/deferral episodes by
//!   ingress/batching, and link transitions by the TCP supervisor.
//!
//! A [`ReplicaTelemetry`] survives crash/restart of its replica (the
//! cluster hands the same `Arc` to the restarted stages), so a
//! post-mortem timeline spans the fault.

use crate::queue::DepthGauge;
use crate::stage::ReplicaProbe;
use poe_telemetry::{AtomicHistogram, Counter, FlightRecorder, Gauge, Registry, TimeBase};
use std::sync::{Arc, Mutex};

/// Live sources sampled at scrape time, attached when the stage
/// threads spawn.
pub(crate) struct TelemetrySources {
    pub probe: Arc<ReplicaProbe>,
    pub batch_depth: Arc<DepthGauge>,
    pub cons_depth: Arc<DepthGauge>,
    pub reply_depth: Arc<DepthGauge>,
}

/// One replica's metrics + flight recorder. Constructed by the cluster
/// (or `poe-node`) *before* the stage threads spawn so the recorder can
/// also be handed to the transport layer for link events.
pub struct ReplicaTelemetry {
    registry: Registry,
    recorder: Arc<FlightRecorder>,
    replica: u32,

    // Hot handles, cloned into stage loops.
    pub(crate) frames: Arc<Counter>,
    pub(crate) shed_retransmits: Arc<Counter>,
    pub(crate) shed_full: Arc<Counter>,
    pub(crate) batches_cut: Arc<Counter>,
    pub(crate) deferrals: Arc<Counter>,
    pub(crate) replies_sent: Arc<Counter>,
    pub(crate) executed: Arc<Counter>,
    pub(crate) decided: Arc<Counter>,
    pub(crate) checkpoints: Arc<Counter>,
    pub(crate) view_changes: Arc<Counter>,
    pub(crate) rollbacks: Arc<Counter>,
    pub(crate) fell_behind: Arc<Counter>,
    pub(crate) caught_up: Arc<Counter>,
    /// Requests per cut batch.
    pub(crate) batch_len: Arc<AtomicHistogram>,
    /// Bounded ingress→batching queue depth, sampled per admitted frame.
    pub(crate) batch_depth_hist: Arc<AtomicHistogram>,
    /// Consensus queue depth, sampled per consumed job.
    pub(crate) cons_depth_hist: Arc<AtomicHistogram>,

    // Scrape-refreshed gauges.
    view_g: Arc<Gauge>,
    exec_g: Arc<Gauge>,
    commit_g: Arc<Gauge>,
    depth_batch_g: Arc<Gauge>,
    depth_cons_g: Arc<Gauge>,
    depth_reply_g: Arc<Gauge>,
    peak_batch_g: Arc<Gauge>,
    peak_cons_g: Arc<Gauge>,
    peak_reply_g: Arc<Gauge>,
    recorder_events_g: Arc<Gauge>,
    recorder_dropped_g: Arc<Gauge>,

    sources: Mutex<Option<TelemetrySources>>,
}

impl ReplicaTelemetry {
    /// A fresh registry + recorder for replica `replica`, stamping
    /// recorder events in `timebase`.
    pub fn new(replica: u32, timebase: TimeBase) -> Arc<ReplicaTelemetry> {
        let registry = Registry::new();
        let rl = |extra: Vec<(&'static str, String)>| {
            let mut labels = vec![("replica", replica.to_string())];
            labels.extend(extra);
            labels
        };
        let stage = |s: &str| rl(vec![("stage", s.to_string())]);
        let frames = registry.counter_with(
            "poe_ingress_frames_total",
            "Hub frames decoded by the ingress stage",
            rl(vec![]),
        );
        let shed_retransmits = registry.counter_with(
            "poe_shed_total",
            "Client messages shed at the bounded ingress queue",
            rl(vec![("kind", "retransmit".to_string())]),
        );
        let shed_full = registry.counter_with(
            "poe_shed_total",
            "Client messages shed at the bounded ingress queue",
            rl(vec![("kind", "full".to_string())]),
        );
        let batches_cut = registry.counter_with(
            "poe_batches_cut_total",
            "PROPOSE batches cut by the batching stage",
            rl(vec![]),
        );
        let deferrals = registry.counter_with(
            "poe_deferrals_total",
            "Admission pauses while the consensus queue was deep",
            rl(vec![]),
        );
        let replies_sent = registry.counter_with(
            "poe_replies_sent_total",
            "Client replies delivered by the egress stage",
            rl(vec![]),
        );
        let notif = |kind: &str| {
            registry.counter_with(
                "poe_notifications_total",
                "Protocol notifications surfaced by the automaton",
                rl(vec![("kind", kind.to_string())]),
            )
        };
        let executed = notif("executed");
        let decided = notif("decided");
        let checkpoints = notif("checkpoint_stable");
        let view_changes = notif("view_changed");
        let rollbacks = notif("rolled_back");
        let fell_behind = notif("fell_behind");
        let caught_up = notif("caught_up");
        let batch_len =
            registry.histogram_with("poe_batch_len", "Requests per cut batch", rl(vec![]));
        let batch_depth_hist = registry.histogram_with(
            "poe_queue_depth_samples",
            "Queue depth distribution, sampled on the hot path",
            stage("batching"),
        );
        let cons_depth_hist = registry.histogram_with(
            "poe_queue_depth_samples",
            "Queue depth distribution, sampled on the hot path",
            stage("consensus"),
        );
        let view_g = registry.gauge_with("poe_view", "Current view number", rl(vec![]));
        let exec_g =
            registry.gauge_with("poe_exec_frontier", "Speculative execution frontier", rl(vec![]));
        let commit_g = registry.gauge_with("poe_commit_frontier", "Commit frontier", rl(vec![]));
        let depth = |s: &str| {
            registry.gauge_with("poe_queue_depth", "Live queue depth at scrape time", stage(s))
        };
        let peak = |s: &str| {
            registry.gauge_with("poe_queue_peak", "Deepest queue backlog observed", stage(s))
        };
        let depth_batch_g = depth("batching");
        let depth_cons_g = depth("consensus");
        let depth_reply_g = depth("reply");
        let peak_batch_g = peak("batching");
        let peak_cons_g = peak("consensus");
        let peak_reply_g = peak("reply");
        let recorder_events_g = registry.gauge_with(
            "poe_recorder_events",
            "Events retained in the flight recorder",
            rl(vec![]),
        );
        let recorder_dropped_g = registry.gauge_with(
            "poe_recorder_dropped_total",
            "Flight-recorder events overwritten by newer ones",
            rl(vec![]),
        );
        Arc::new(ReplicaTelemetry {
            registry,
            recorder: Arc::new(FlightRecorder::with_default_capacity(timebase)),
            replica,
            frames,
            shed_retransmits,
            shed_full,
            batches_cut,
            deferrals,
            replies_sent,
            executed,
            decided,
            checkpoints,
            view_changes,
            rollbacks,
            fell_behind,
            caught_up,
            batch_len,
            batch_depth_hist,
            cons_depth_hist,
            view_g,
            exec_g,
            commit_g,
            depth_batch_g,
            depth_cons_g,
            depth_reply_g,
            peak_batch_g,
            peak_cons_g,
            peak_reply_g,
            recorder_events_g,
            recorder_dropped_g,
            sources: Mutex::new(None),
        })
    }

    /// The replica this telemetry belongs to.
    pub fn replica(&self) -> u32 {
        self.replica
    }

    /// The flight recorder (shareable with the transport layer).
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Wires the live sources the scrape-time refresh reads. Called at
    /// stage spawn; a restart re-attaches the new generation's sources.
    pub(crate) fn attach_sources(&self, sources: TelemetrySources) {
        *self.sources.lock().expect("telemetry sources poisoned") = Some(sources);
    }

    /// Live queue depths `(batching, consensus)` for external samplers
    /// (the open-loop tick sampler). Zero when not yet attached.
    pub fn queue_depths(&self) -> (u64, u64) {
        let sources = self.sources.lock().expect("telemetry sources poisoned");
        match sources.as_ref() {
            Some(s) => (s.batch_depth.depth(), s.cons_depth.depth()),
            None => (0, 0),
        }
    }

    /// Total client messages shed so far (retransmit + full).
    pub fn shed_total(&self) -> u64 {
        self.shed_retransmits.get() + self.shed_full.get()
    }

    /// Renders the whole registry as Prometheus text, refreshing the
    /// scrape-time gauges first.
    pub fn render(&self) -> String {
        self.refresh();
        self.registry.render()
    }

    /// The flight-recorder timeline, labeled `r<id>`.
    pub fn timeline(&self) -> String {
        self.recorder.dump(&format!("r{}", self.replica))
    }

    /// The last `k` timeline lines (for failure dumps).
    pub fn timeline_tail(&self, k: usize) -> String {
        self.recorder.tail(&format!("r{}", self.replica), k)
    }

    fn refresh(&self) {
        let sources = self.sources.lock().expect("telemetry sources poisoned");
        if let Some(s) = sources.as_ref() {
            let snap = s.probe.snapshot();
            self.view_g.set(snap.view);
            self.exec_g.set(snap.exec);
            self.commit_g.set(snap.commit);
            self.depth_batch_g.set(s.batch_depth.depth());
            self.depth_cons_g.set(s.cons_depth.depth());
            self.depth_reply_g.set(s.reply_depth.depth());
            self.peak_batch_g.set(s.batch_depth.peak());
            self.peak_cons_g.set(s.cons_depth.peak());
            self.peak_reply_g.set(s.reply_depth.peak());
        }
        self.recorder_events_g.set(self.recorder.len() as u64);
        self.recorder_dropped_g.set(self.recorder.dropped());
    }
}
